//! The two committed-baseline sweeps — batched pipeline and decoder
//! backends — as library functions.
//!
//! The `pipeline` and `decode_sweep` binaries print these rows; the
//! `regression` binary re-runs them at the baselines' scales and compares
//! against the committed `results/BENCH_*.json` files (see
//! [`crate::regression`]). Keeping the row generation here means the gate
//! measures exactly what the baselines recorded — same grid, same seeds,
//! same datasets — so any delta is a code change, not a harness drift.
//!
//! Every modeled figure in a row is deterministic; only `wall_ms` (host
//! wall-clock) varies between machines, and the regression gate ignores
//! it.

use gpu_sim::{DeviceSpec, Gpu};
use huff_core::archive;
use huff_core::batch::{compress_batched, BatchOptions};
use huff_core::decode::{
    gpu::{decode_kind_on_gpu, decode_range_on_gpu},
    DecoderKind,
};
use huff_core::encode::{reduce_shuffle, BreakingStrategy, ChunkedStream, MergeConfig};
use huff_core::integrity::{DecompressOptions, Section};
use huff_core::metrics::{self, roofline::DEFAULT_THRESHOLD};
use huff_core::tune::{Dispatch, Tuner};
use huff_core::{histogram, CanonicalCodebook, KernelPlan};
use huff_datasets::PaperDataset;
use serde::Serialize;

use crate::wall;

/// Scale the committed `results/BENCH_pipeline.json` baseline was
/// generated at (see EXPERIMENTS.md).
pub const PIPELINE_BASELINE_SCALE: f64 = 1.0 / 64.0;

/// Scale the committed `results/BENCH_decode.json` baseline was generated
/// at (the harness default; the `accept-64mb` rows always run full size).
pub const DECODE_BASELINE_SCALE: f64 = 1.0 / 16.0;

/// Scale the committed `results/BENCH_autotune.json` baseline was
/// generated at (see EXPERIMENTS.md).
pub const AUTOTUNE_BASELINE_SCALE: f64 = 1.0 / 64.0;

/// Scale the committed `results/BENCH_range.json` baseline was generated
/// at (the `accept-64mb` rows always run full size).
pub const RANGE_BASELINE_SCALE: f64 = 1.0 / 16.0;

/// Scale the committed `results/BENCH_latency.json` baseline was
/// generated at (see EXPERIMENTS.md § "Tail-latency gate").
pub const LATENCY_BASELINE_SCALE: f64 = 1.0 / 64.0;

/// Slice widths the range sweep probes, in percent of the decoded
/// payload. The 1 % slice is the CI acceptance point: it must model at
/// least 10× faster than the full decode on `accept-64mb`.
pub const RANGE_SLICE_PCTS: &[u32] = &[1, 5, 25];

/// The swept (shards, streams, devices) grid: the serial reference plus
/// every overlap axis alone and combined.
pub const PIPELINE_GRID: &[(usize, usize, usize)] = &[
    (1, 1, 1), // serial reference: one shard, one stream
    (4, 1, 1), // sharded but still serial (stream FIFO)
    (4, 2, 1), // double-buffered
    (8, 2, 1),
    (8, 4, 1), // deeper stream fan-out
    (8, 2, 2), // two devices, double-buffered each
    (16, 4, 2),
];

/// One pipeline-sweep row (`rsh-bench-v1` table `"pipeline"`).
#[derive(Serialize)]
pub struct PipelineRow {
    /// Table V workload name.
    pub dataset: &'static str,
    /// Modeled device name.
    pub device: &'static str,
    /// Devices in the fleet.
    pub devices: usize,
    /// Shards the input was split into.
    pub shards: usize,
    /// Streams per device.
    pub streams: usize,
    /// Input size in MB.
    pub input_mb: f64,
    /// Modeled contended makespan, ms.
    pub makespan_ms: f64,
    /// Serial (one-stream) baseline of the same kernels, ms.
    pub serial_ms: f64,
    /// `serial_ms / makespan_ms`.
    pub speedup: f64,
    /// Modeled end-to-end throughput, GB/s.
    pub modeled_gbps: f64,
    /// Host wall-clock of the rayon shard pipelines, ms
    /// (machine-dependent; excluded from regression comparison).
    pub wall_ms: f64,
    /// Compression ratio achieved on the frame.
    pub ratio: f64,
}

/// One decoder-sweep row (`rsh-bench-v1` table `"decode"`).
#[derive(Serialize)]
pub struct DecodeRow {
    /// Workload name (`accept-64mb` for the fixed acceptance input).
    pub dataset: String,
    /// Decoder backend name.
    pub decoder: &'static str,
    /// Modeled device name.
    pub device: &'static str,
    /// Input size in MB.
    pub input_mb: f64,
    /// Achieved payload bits per symbol.
    pub avg_bits: f64,
    /// Payload chunks in the stream.
    pub chunks: usize,
    /// Modeled decode time, ms.
    pub modeled_ms: f64,
    /// Modeled decode throughput, GB/s.
    pub modeled_gbps: f64,
    /// Host wall-clock of the bit-exact host decode, ms
    /// (machine-dependent; excluded from regression comparison).
    pub wall_ms: f64,
}

/// Run the batched multi-stream pipeline sweep at `scale`: every Table V
/// workload × {V100, RTX 5000} × [`PIPELINE_GRID`].
pub fn pipeline_rows(scale: f64) -> Vec<PipelineRow> {
    let mut rows = Vec::new();
    for d in PaperDataset::all() {
        let n = d.symbols_at_scale(scale);
        let data = d.generate(n, 0xD5EA5E);
        for (dev_name, spec) in [("V100", DeviceSpec::v100()), ("RTX 5000", DeviceSpec::rtx5000())]
        {
            for &(shards, streams, devices) in PIPELINE_GRID {
                let mut opts = BatchOptions::new(d.num_symbols());
                opts.shard_symbols = n.div_ceil(shards).max(1);
                opts.streams = streams;
                opts.devices = vec![spec.clone(); devices];
                opts.reduction = Some(d.paper_reduction());
                opts.symbol_bytes = d.symbol_bytes() as u8;

                let ((frame, report), wall_s) =
                    wall(|| compress_batched(&data, &opts).expect("sweep pipeline"));
                rows.push(PipelineRow {
                    dataset: d.name(),
                    device: dev_name,
                    devices,
                    shards: report.shards.len(),
                    streams,
                    input_mb: report.input_bytes as f64 / 1e6,
                    makespan_ms: report.makespan * 1e3,
                    serial_ms: report.serial_seconds * 1e3,
                    speedup: report.speedup(),
                    modeled_gbps: report.throughput() / 1e9,
                    wall_ms: wall_s * 1e3,
                    ratio: report.input_bytes as f64 / frame.len() as f64,
                });
            }
        }
    }
    rows
}

/// Encode `data` the way `table2`/`pipeline` do: CPU histogram, parallel
/// codebook, reduce-shuffle with the sparse sidecar.
fn encode(data: &[u16], bins: usize, reduction: u32) -> (ChunkedStream, CanonicalCodebook) {
    let freqs = histogram::parallel_cpu::histogram(data, bins, rayon::current_num_threads());
    let book = huff_core::build_codebook(&freqs, 16).expect("codebook");
    let config = MergeConfig::new(10, reduction);
    let stream = reduce_shuffle::encode(data, &book, config, BreakingStrategy::SparseSidecar)
        .expect("encode");
    (stream, book)
}

fn decode_sweep_rows(
    label: &str,
    data: &[u16],
    symbol_bytes: u64,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    decoders: &[DecoderKind],
) -> Vec<DecodeRow> {
    let input_bytes = data.len() as u64 * symbol_bytes;
    let avg_bits = if stream.num_symbols == 0 {
        0.0
    } else {
        stream.total_bits as f64 / stream.num_symbols as f64
    };
    decoders
        .iter()
        .map(|&decoder| {
            let gpu = Gpu::v100();
            let ((symbols, secs), wall_s) =
                wall(|| decode_kind_on_gpu(&gpu, stream, book, decoder).expect("decode"));
            assert_eq!(symbols, data, "{label}/{} not bit-exact", decoder.name());
            DecodeRow {
                dataset: label.to_string(),
                decoder: decoder.name(),
                device: "V100",
                input_mb: input_bytes as f64 / 1e6,
                avg_bits,
                chunks: stream.num_chunks(),
                modeled_ms: secs * 1e3,
                modeled_gbps: input_bytes as f64 / secs / 1e9,
                wall_ms: wall_s * 1e3,
            }
        })
        .collect()
}

/// Run the decoder sweep at `scale`: every Table V workload × every
/// backend (all verified bit-exact), plus the fixed full-size 64 MB
/// acceptance rows (`chunked`/`lut` only — the serial backend's host
/// decode is single-threaded and its modeled time is minutes).
pub fn decode_rows(scale: f64) -> Vec<DecodeRow> {
    let all = [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut];
    let mut rows = Vec::new();
    for d in PaperDataset::all() {
        let n = d.symbols_at_scale(scale);
        let data = d.generate(n, 0xD5EA5E);
        let (stream, book) = encode(&data, d.num_symbols(), d.paper_reduction());
        rows.extend(decode_sweep_rows(d.name(), &data, d.symbol_bytes(), &stream, &book, &all));
    }
    rows.extend(accept_64mb_rows());
    rows
}

/// One autotune-sweep row (`rsh-bench-v1` table `"autotune"`): the fixed
/// CLI default geometry vs the tuner's decision on the same input.
#[derive(Serialize)]
pub struct AutotuneRow {
    /// Workload name (Table V dataset, `incompressible`, or `tiny`).
    pub dataset: String,
    /// Modeled device name.
    pub device: &'static str,
    /// Input size in MB.
    pub input_mb: f64,
    /// Measured signature average bitwidth.
    pub avg_bits: f64,
    /// Dispatch path the tuner chose (part of the regression key — a
    /// decision flip against the committed baseline fails the gate).
    pub dispatch: &'static str,
    /// Tuned reduction factor (0 for store-raw).
    pub reduction: u32,
    /// Tuned shard count.
    pub shards: u32,
    /// Tuned stream count.
    pub streams: u32,
    /// Recommended decoder backend.
    pub decoder: &'static str,
    /// Whether a repeated decide() hit the in-process tuning cache.
    pub cache_hit: bool,
    /// Modeled throughput of the fixed default geometry, GB/s.
    pub fixed_gbps: f64,
    /// Modeled throughput of the autotuned decision, GB/s.
    pub auto_gbps: f64,
    /// Host wall-clock, ms (machine-dependent; excluded from the gate).
    pub wall_ms: f64,
}

/// Measure one autotune comparison: the fixed CLI default (the
/// `BatchOptions::new` geometry with Fig. 3's auto reduction) vs the
/// tuner's decision, both priced by the same models. Store-raw and
/// CPU-serial decisions use the decision's modeled host/copy time,
/// rescaled from the signature's representative size class to the actual
/// input length.
fn autotune_row(label: String, data: &[u16], num_symbols: usize, symbol_bytes: u8) -> AutotuneRow {
    let input_bytes = data.len() as f64 * f64::from(symbol_bytes);
    let mut fixed = BatchOptions::new(num_symbols);
    fixed.symbol_bytes = symbol_bytes;

    let ((fixed_secs, sig, decision, hit, auto_secs), wall_s) = wall(|| {
        let (_, fixed_report) = compress_batched(data, &fixed).expect("fixed-default run");
        let mut tuner = Tuner::new(DeviceSpec::v100());
        let (sig, decision, _) = tuner.decide(data, num_symbols, symbol_bytes).expect("decide");
        let (_, _, hit) = tuner.decide(data, num_symbols, symbol_bytes).expect("re-decide");
        let auto_secs = match decision.dispatch {
            Dispatch::Gpu => {
                let mut tuned = BatchOptions::new(num_symbols);
                tuned.shard_symbols = data.len().div_ceil(decision.shards.max(1) as usize).max(1);
                tuned.streams = decision.streams.max(1) as usize;
                tuned.reduction = Some(decision.reduction.max(1));
                tuned.symbol_bytes = symbol_bytes;
                let (_, report) = compress_batched(data, &tuned).expect("autotuned run");
                report.makespan
            }
            Dispatch::CpuSerial | Dispatch::StoreRaw => {
                decision.modeled_seconds()
                    * (data.len() as f64 / sig.representative_symbols() as f64)
            }
        };
        (fixed_report.makespan, sig, decision, hit, auto_secs)
    });

    AutotuneRow {
        dataset: label,
        device: "V100",
        input_mb: input_bytes / 1e6,
        avg_bits: sig.avg_bits(),
        dispatch: decision.dispatch.name(),
        reduction: decision.reduction,
        shards: decision.shards,
        streams: decision.streams,
        decoder: decision.decoder.name(),
        cache_hit: hit,
        fixed_gbps: input_bytes / fixed_secs / 1e9,
        auto_gbps: input_bytes / auto_secs / 1e9,
        wall_ms: wall_s * 1e3,
    }
}

/// Deterministic incompressible bytes: uniform over all 256 values, so
/// the canonical codebook is flat 8-bit and the incompressibility ratio
/// is 1.0 — the store-raw early exit must fire.
fn incompressible_symbols(n: usize) -> Vec<u16> {
    (0..n).map(|i| (((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 24) % 256) as u16).collect()
}

/// Run the autotune entropy-spectrum sweep at `scale`: every Table V
/// workload (1.03 → 5.2 avg bits) on a V100, plus two fixed-size probes
/// for the dispatch early exits — `incompressible` (ratio 1.0 →
/// store-raw) and `tiny` (1.5 Ki symbols → CPU-serial). The autotune
/// acceptance contract (gated in CI and by the committed baseline) is
/// that `auto_gbps >= fixed_gbps` on every row: the hysteresis in
/// `huff_core::tune::plan` keeps the default geometry unless a candidate
/// models a clear win, so autotuning can only tie or improve.
pub fn autotune_rows(scale: f64) -> Vec<AutotuneRow> {
    let mut rows = Vec::new();
    for d in PaperDataset::all() {
        let n = d.symbols_at_scale(scale);
        let data = d.generate(n, 0xD5EA5E);
        rows.push(autotune_row(
            d.name().to_string(),
            &data,
            d.num_symbols(),
            d.symbol_bytes() as u8,
        ));
    }
    rows.push(autotune_row("incompressible".to_string(), &incompressible_symbols(1 << 16), 256, 1));
    let tiny = PaperDataset::Enwik8.generate(1500, 0xD5EA5E);
    rows.push(autotune_row("tiny".to_string(), &tiny, 256, 1));
    rows
}

/// One per-kernel roofline row of the acceptance encode (`rsh-bench-v1`
/// table `"kernels"`).
///
/// The regression gate keys on `(dataset, device, plan, kernel, bound)`,
/// so a kernel *changing its `Bound` classification* against the
/// committed `results/BENCH_kernels.json` baseline is a hard failure (a
/// missing/unexpected key), not a quiet metric delta — the Bound class
/// is part of the contract.
#[derive(Serialize)]
pub struct KernelRow {
    /// Workload name (`accept-64mb`: the fixed acceptance input).
    pub dataset: String,
    /// Modeled device name.
    pub device: &'static str,
    /// Kernel plan the pipeline ran under (`fused` / `unfused`).
    pub plan: &'static str,
    /// Kernel name on the device clock.
    pub kernel: String,
    /// Roofline `Bound` classification (part of the regression key).
    pub bound: &'static str,
    /// Modeled kernel time, ms.
    pub modeled_ms: f64,
    /// Achieved over effective bandwidth, `[0, 1]`.
    pub efficiency: f64,
    /// Host wall-clock of the profiled run, ms (machine-dependent;
    /// excluded from regression comparison).
    pub wall_ms: f64,
}

/// Profile the fixed 64 MB acceptance encode on a V100 under both
/// [`KernelPlan`]s and emit one row per kernel launch (deduplicated by
/// name — repeated launches of the same kernel are summed). This is the
/// Bound-class acceptance sweep the regression gate certifies: the fused
/// plan must keep `hist_fused_reduction` and `enc_shuffle_merge` off the
/// latency wall, and `enc_breaking_backtrace` coalesced.
pub fn kernel_rows() -> Vec<KernelRow> {
    let d = PaperDataset::Enwik8;
    let n = (64 << 20) / d.symbol_bytes() as usize;
    let data = d.generate(n, 0xACCE97);
    let mut rows = Vec::new();
    for plan in [KernelPlan::fused(), KernelPlan::unfused()] {
        let gpu = Gpu::v100();
        let opts = metrics::ProfileOptions::new(d.num_symbols())
            .symbol_bytes(d.symbol_bytes())
            .reduction(d.paper_reduction())
            .plan(plan);
        let ((_, profile), wall_s) =
            wall(|| metrics::profile_compress(&gpu, &data, &opts).expect("profiled encode"));
        let report = profile.roofline(DEFAULT_THRESHOLD);
        // Sum repeated launches of the same kernel into one row so the
        // regression key stays unique.
        let mut by_name: Vec<KernelRow> = Vec::new();
        for k in &report.kernels {
            match by_name.iter_mut().find(|r| r.kernel == k.name) {
                Some(r) => r.modeled_ms += k.seconds * 1e3,
                None => by_name.push(KernelRow {
                    dataset: "accept-64mb".to_string(),
                    device: "V100",
                    plan: plan.name(),
                    kernel: k.name.clone(),
                    bound: k.counters.bound.name(),
                    modeled_ms: k.seconds * 1e3,
                    efficiency: k.counters.efficiency,
                    wall_ms: wall_s * 1e3,
                }),
            }
        }
        rows.extend(by_name);
    }
    rows
}

/// The fixed 64 MB acceptance rows alone: enwik8-shaped byte data (~5.2
/// payload bits/symbol), always full size. CI gates on the `lut` row
/// beating `chunked` here.
pub fn accept_64mb_rows() -> Vec<DecodeRow> {
    let d = PaperDataset::Enwik8;
    let n = (64 << 20) / d.symbol_bytes() as usize;
    let data = d.generate(n, 0xACCE97);
    let (stream, book) = encode(&data, d.num_symbols(), d.paper_reduction());
    decode_sweep_rows(
        "accept-64mb",
        &data,
        d.symbol_bytes(),
        &stream,
        &book,
        &[DecoderKind::Chunked, DecoderKind::Lut],
    )
}

/// One range-sweep row (`rsh-bench-v1` table `"range"`): a
/// [`huff_core::archive::decode_range`] probe of one slice width through
/// the modeled device, against the full decode of the same archive on
/// the same backend.
///
/// The regression gate keys on `(dataset, decoder, slice_pct)` and
/// compares `range_ms` (lower), `speedup` (higher) and `overhead_pct`
/// (lower) — so a seek-index fallback to the prefix scan that slows the
/// probe, a range decode that starts touching extra chunks, or a
/// trailer that bloats the archive all trip the gate.
#[derive(Serialize)]
pub struct RangeRow {
    /// Workload name (`accept-64mb` for the fixed acceptance input).
    pub dataset: String,
    /// Decoder backend name.
    pub decoder: &'static str,
    /// Modeled device name.
    pub device: &'static str,
    /// Slice width as a percentage of the decoded payload.
    pub slice_pct: u32,
    /// Input size in MB.
    pub input_mb: f64,
    /// Requested slice width in bytes.
    pub range_bytes: u64,
    /// Chunks the range decode actually decoded.
    pub chunks_touched: usize,
    /// Chunks in the whole archive.
    pub total_chunks: usize,
    /// u64-word index probes spent locating the covering chunks.
    pub probes: u64,
    /// Whether the seek-index trailer served the lookup (`false` means
    /// the prefix-scan fallback ran).
    pub index_used: bool,
    /// Modeled full-archive decode time on the same backend, ms.
    pub full_ms: f64,
    /// Modeled range decode time (probe + window decode), ms.
    pub range_ms: f64,
    /// `full_ms / range_ms`.
    pub speedup: f64,
    /// Seek-index trailer size as a percentage of the archive.
    pub overhead_pct: f64,
    /// Host wall-clock of the bit-exact host range decode, ms
    /// (machine-dependent; excluded from regression comparison).
    pub wall_ms: f64,
}

fn range_sweep_rows(
    label: &str,
    data: &[u16],
    symbol_bytes: u64,
    packed: &[u8],
    decoders: &[DecoderKind],
) -> Vec<RangeRow> {
    let sb = symbol_bytes as usize;
    let total = data.len() as u64 * symbol_bytes;
    let expected: Vec<u8> =
        data.iter().flat_map(|&s| u64::from(s).to_le_bytes()[..sb].to_vec()).collect();
    let overhead_pct = archive::layout(packed)
        .ok()
        .and_then(|sections| sections.into_iter().find(|(s, _)| *s == Section::SeekIndex))
        .map_or(0.0, |(_, span)| 100.0 * span.len() as f64 / packed.len() as f64);
    let opts = DecompressOptions::default();

    let mut rows = Vec::new();
    for &decoder in decoders {
        let gpu = Gpu::v100();
        let (full, full_secs) =
            decode_range_on_gpu(&gpu, packed, 0..total, &opts, decoder).expect("full decode");
        assert_eq!(full.bytes, expected, "{label}/{}: full decode not bit-exact", decoder.name());
        for &pct in RANGE_SLICE_PCTS {
            // Off-center, chunk-unaligned start so the window carries a
            // partial chunk at both ends.
            let span = (total * u64::from(pct) / 100).max(1);
            let lo = (total - span) * 37 / 100;
            let range = lo..lo + span;
            let gpu = Gpu::v100();
            let ((r, secs), wall_s) = wall(|| {
                decode_range_on_gpu(&gpu, packed, range.clone(), &opts, decoder)
                    .expect("range decode")
            });
            assert_eq!(
                r.bytes,
                expected[lo as usize..(lo + span) as usize],
                "{label}/{}/{pct}%: range not a slice of the full decode",
                decoder.name()
            );
            rows.push(RangeRow {
                dataset: label.to_string(),
                decoder: decoder.name(),
                device: "V100",
                slice_pct: pct,
                input_mb: total as f64 / 1e6,
                range_bytes: span,
                chunks_touched: r.chunks_touched,
                total_chunks: r.total_chunks,
                probes: r.index_probes,
                index_used: r.index_used,
                full_ms: full_secs * 1e3,
                range_ms: secs * 1e3,
                speedup: full_secs / secs,
                overhead_pct,
                wall_ms: wall_s * 1e3,
            });
        }
    }
    rows
}

/// Compress one workload into a seekable single-archive container (the
/// RSH2 format `rsh compress` writes, seek-index trailer included).
fn seekable_archive(data: &[u16], num_symbols: usize, symbol_bytes: u8, reduction: u32) -> Vec<u8> {
    let mut opts = archive::CompressOptions::new(num_symbols);
    opts.reduction = Some(reduction);
    opts.symbol_bytes = symbol_bytes;
    archive::compress(data, &opts).expect("range sweep compress")
}

/// Run the random-access range sweep at `scale`: every Table V workload
/// × {`chunked`, `lut`} × [`RANGE_SLICE_PCTS`], plus the fixed full-size
/// 64 MB acceptance rows. Every slice is verified byte-identical to the
/// corresponding slice of the full decode before its row is emitted.
pub fn range_rows(scale: f64) -> Vec<RangeRow> {
    let decoders = [DecoderKind::Chunked, DecoderKind::Lut];
    let mut rows = Vec::new();
    for d in PaperDataset::all() {
        let n = d.symbols_at_scale(scale);
        let data = d.generate(n, 0xD5EA5E);
        let packed =
            seekable_archive(&data, d.num_symbols(), d.symbol_bytes() as u8, d.paper_reduction());
        rows.extend(range_sweep_rows(d.name(), &data, d.symbol_bytes(), &packed, &decoders));
    }
    rows.extend(accept_range_rows());
    rows
}

/// One tail-latency row (`rsh-bench-v1` table `"latency"`): the virtual-
/// time latency percentiles of one request class under the pinned seeded
/// chaos storm.
///
/// The regression gate keys on `(dataset, class)` and compares `p50_ms`
/// and `p99_ms` (both lower-is-better, 2 % tolerance). Every figure is
/// **virtual time** from the engine's modeled clock — deterministic for
/// the pinned seed — so, exactly like `wall_ms` everywhere else, only
/// host wall-clock is excluded from comparison (see EXPERIMENTS.md).
#[derive(Serialize)]
pub struct LatencyRow {
    /// Workload name (the payload generator's dataset).
    pub dataset: &'static str,
    /// Request class (`compress` / `decompress` / `decompress_range`).
    pub class: String,
    /// Requests of this class the storm completed (all outcomes).
    pub requests: u64,
    /// Virtual-time p50 latency (queue + backoff + service), ms.
    pub p50_ms: f64,
    /// Virtual-time p99 latency, ms.
    pub p99_ms: f64,
    /// Virtual-time p999 latency, ms (reported, not gated).
    pub p999_ms: f64,
    /// Host wall-clock of the storm, ms (machine-dependent; excluded
    /// from regression comparison).
    pub wall_ms: f64,
}

/// Chaos seed the latency baseline is pinned to. Part of the contract:
/// changing it regenerates a different fault schedule and invalidates
/// the committed baseline.
pub const LATENCY_STORM_SEED: u64 = 0xC0FFEE;

/// Requests the pinned storm submits (spread over the three classes).
pub const LATENCY_STORM_REQUESTS: usize = 36;

/// Drive the pinned seeded chaos storm and return its engine: a mixed
/// compress / decompress / range workload over one payload, every third
/// request per class, decode requests under a 0.5 s deadline so the
/// storm's deadline faults burn budget deterministically.
fn latency_storm(scale: f64) -> huff_core::serve::Engine {
    use huff_core::serve::{ChaosConfig, Engine, EngineConfig, Request};
    let d = PaperDataset::Nci;
    let n = ((1 << 20) as f64 * scale) as usize;
    let data = d.generate(n.max(4096), LATENCY_STORM_SEED);
    let mut cfg = EngineConfig::new(d.num_symbols());
    cfg.batch.shard_symbols = data.len().div_ceil(4).max(1024);
    cfg.batch.symbol_bytes = d.symbol_bytes() as u8;
    let (frame, _) = compress_batched(&data, &cfg.batch).expect("latency storm compress");
    let total = data.len() as u64 * d.symbol_bytes();
    let mut eng = Engine::with_chaos(cfg, ChaosConfig::storm(LATENCY_STORM_SEED));
    for i in 0..LATENCY_STORM_REQUESTS {
        let t = i as f64 * 50e-6;
        let req = match i % 3 {
            0 => Request::compress(format!("lat-c{i}"), t, data.clone()),
            1 => Request::decompress(format!("lat-d{i}"), t, frame.clone()).with_deadline(0.5),
            _ => {
                let lo = (i as u64 * 997) % (total / 2);
                Request::decompress_range(format!("lat-r{i}"), t, frame.clone(), lo..lo + 1024)
                    .with_deadline(0.5)
            }
        };
        eng.submit(req).expect("latency storm submission");
    }
    eng
}

/// Run the tail-latency sweep at `scale`: one pinned chaos storm, one
/// row per request class with its virtual-time p50/p99/p999.
pub fn latency_rows(scale: f64) -> Vec<LatencyRow> {
    let (eng, wall_s) = wall(|| latency_storm(scale));
    let book = eng.latency();
    book.classes()
        .iter()
        .map(|&class| {
            let h = book.class(class);
            LatencyRow {
                dataset: PaperDataset::Nci.name(),
                class: class.to_string(),
                requests: h.count(),
                p50_ms: h.quantile(0.50) * 1e3,
                p99_ms: h.quantile(0.99) * 1e3,
                p999_ms: h.quantile(0.999) * 1e3,
                wall_ms: wall_s * 1e3,
            }
        })
        .collect()
}

/// The fixed 64 MB acceptance range rows alone. CI gates on the 1 %
/// slice modeling ≥ 10× the full decode and the seek-index overhead
/// staying ≤ 5 % of the archive, on both backends.
pub fn accept_range_rows() -> Vec<RangeRow> {
    let d = PaperDataset::Enwik8;
    let n = (64 << 20) / d.symbol_bytes() as usize;
    let data = d.generate(n, 0xACCE97);
    let packed =
        seekable_archive(&data, d.num_symbols(), d.symbol_bytes() as u8, d.paper_reduction());
    range_sweep_rows(
        "accept-64mb",
        &data,
        d.symbol_bytes(),
        &packed,
        &[DecoderKind::Chunked, DecoderKind::Lut],
    )
}
