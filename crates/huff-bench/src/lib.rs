//! Shared harness utilities for the table/figure regenerators.
//!
//! Each `table*`/`fig*` binary reproduces one table or figure of the paper
//! (see DESIGN.md's per-experiment index). Binaries print a fixed-width
//! human table to stdout and, with `--json`, machine-readable rows to
//! stderr for EXPERIMENTS.md tooling. Every row is wrapped in the
//! versioned `rsh-bench-v1` envelope
//! (`{"schema":"rsh-bench-v1","table":...,"row":{...}}`, see FORMAT.md),
//! so downstream tooling can route rows from any binary through one
//! parser. Binaries that run a full pipeline also accept
//! `--trace <path>` and write an `rsh-trace-v1` pipeline profile there
//! (the same schema `rsh profile` emits).

#![warn(missing_docs)]

pub mod regression;
pub mod sweeps;

use serde::json::{Map, Value};
use serde::Serialize;

/// Version tag of the JSON row envelope emitted by [`emit_row`].
pub const BENCH_SCHEMA: &str = "rsh-bench-v1";

/// Common CLI knobs for the regenerators.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Fraction of the paper's dataset sizes to run at (default 1/16; the
    /// modeled device numbers are scale-invariant once launch overhead
    /// amortizes).
    pub scale: f64,
    /// Emit JSON rows to stderr.
    pub json: bool,
    /// Write an `rsh-trace-v1` pipeline profile to this path (binaries
    /// that run a full pipeline honor it; others ignore it).
    pub trace: Option<String>,
    /// Write every `rsh-bench-v1` row, one per line, to this path as well
    /// (the committed `results/BENCH_*.json` baselines; binaries that
    /// don't batch rows ignore it).
    pub out: Option<String>,
    /// Write `rsh-span-v1` span-tree JSONL to this path (serve binaries
    /// honor it for their chaos runs; others ignore it).
    pub spans: Option<String>,
}

impl HarnessArgs {
    /// Parse from `std::env::args`:
    /// `[--scale X] [--json] [--trace PATH] [--out PATH] [--spans PATH]`.
    pub fn parse() -> Self {
        let mut out =
            HarnessArgs { scale: 1.0 / 16.0, json: false, trace: None, out: None, spans: None };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale requires a number");
                }
                "--json" => out.json = true,
                "--trace" => {
                    out.trace = Some(args.next().expect("--trace requires a path"));
                }
                "--out" => {
                    out.out = Some(args.next().expect("--out requires a path"));
                }
                "--spans" => {
                    out.spans = Some(args.next().expect("--spans requires a path"));
                }
                // Flags consumed by individual regenerators.
                "--prefix-sum" | "--chaos" => {}
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale FRACTION] [--json] [--trace PATH] [--out PATH] \
                         [--spans PATH]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        assert!(out.scale > 0.0 && out.scale <= 1.0, "scale must be in (0, 1]");
        out
    }
}

/// Write collected `rsh-bench-v1` row lines to `args.out` if set.
pub fn emit_out(args: &HarnessArgs, lines: &[String]) {
    if let Some(path) = &args.out {
        std::fs::write(path, lines.join("\n") + "\n").expect("writable --out path");
        eprintln!("{} rows written to {path}", lines.len());
    }
}

/// One result row in the versioned `rsh-bench-v1` envelope, as a string.
pub fn row_json<T: Serialize>(table: &str, row: &T) -> String {
    let mut m = Map::new();
    m.insert("schema".into(), BENCH_SCHEMA.into());
    m.insert("table".into(), table.into());
    m.insert("row".into(), row.to_json());
    Value::Object(m).to_string()
}

/// Emit one machine-readable result row on stderr when `--json` is set.
pub fn emit_row<T: Serialize>(args: &HarnessArgs, table: &str, row: &T) {
    if args.json {
        eprintln!("{}", row_json(table, row));
    }
}

/// Write an `rsh-trace-v1` pipeline profile to `args.trace` if set.
pub fn emit_trace(args: &HarnessArgs, profile: &huff_core::metrics::PipelineProfile) {
    if let Some(path) = &args.trace {
        std::fs::write(path, profile.to_json_string()).expect("writable --trace path");
        eprintln!("trace written to {path}");
    }
}

/// Format seconds as milliseconds with 3 decimals.
pub fn ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

/// Format bytes/second as GB/s with one decimal.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.1}", bytes_per_sec / 1e9)
}

/// Wall-clock one closure, returning (result, seconds). Runs once — the
/// regenerators measure modeled device time; host wall-clock appears only
/// in the CPU tables where criterion benches give the precise numbers.
pub fn wall<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = std::time::Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Median-of-`n` wall-clock of a closure (for the CPU-side tables).
pub fn wall_median<R>(n: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(n >= 1);
    let mut times = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let t = std::time::Instant::now();
        last = Some(f());
        times.push(t.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    (last.expect("n >= 1"), times[times.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ms(0.001234), "1.234");
        assert_eq!(gbps(314.6e9), "314.6");
    }

    #[test]
    fn row_json_wraps_in_versioned_envelope() {
        #[derive(Serialize)]
        struct Row {
            dataset: String,
            gbps: f64,
        }
        let s = row_json("table5", &Row { dataset: "nyx".into(), gbps: 150.5 });
        assert!(s.starts_with("{\"schema\":\"rsh-bench-v1\",\"table\":\"table5\",\"row\":{"));
        assert!(s.contains("\"dataset\":\"nyx\""));
        assert!(s.contains("\"gbps\":150.5"));
    }

    #[test]
    fn wall_median_returns_result() {
        let (r, t) = wall_median(3, || 42);
        assert_eq!(r, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn wall_measures() {
        let (_, t) = wall(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(t >= 0.004);
    }
}
