//! Bench-regression gate: compare freshly-run sweep rows against the
//! committed `results/BENCH_*.json` baselines.
//!
//! The baselines are line-delimited `rsh-bench-v1` rows. Rows pair up by
//! a *key* (the configuration fields — dataset, device, grid point,
//! decoder); each paired row is then compared metric by metric under a
//! relative noise tolerance. Every metric has a direction: throughput
//! and speedup regress when they *drop*, modeled times when they *rise*.
//! Host wall-clock (`wall_ms`) is machine-dependent and never compared.
//!
//! A missing or unexpected key is always a regression — a silently
//! dropped configuration is the exact decay the gate exists to catch.
//! Improvements beyond the tolerance are reported (so stale baselines
//! are visible) but do not fail the gate; refresh them with
//! `huff-bench regression --update-baselines` (see EXPERIMENTS.md).

use serde::json::Value;

/// Default relative noise tolerance. The modeled figures are
/// deterministic, so this only has to absorb float churn from compiler
/// or dependency drift — 2 % is generous.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// Which way a metric regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a drop beyond tolerance is a regression.
    HigherIsBetter,
    /// Time-like: a rise beyond tolerance is a regression.
    LowerIsBetter,
}

/// One compared metric: its row field name and direction.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Field name inside the `row` object.
    pub name: &'static str,
    /// Which way it regresses.
    pub direction: Direction,
}

/// Key and metric schema of the `pipeline` table.
pub const PIPELINE_KEY: &[&str] = &["dataset", "device", "devices", "shards", "streams"];
/// Compared metrics of the `pipeline` table.
pub const PIPELINE_METRICS: &[MetricSpec] = &[
    MetricSpec { name: "makespan_ms", direction: Direction::LowerIsBetter },
    MetricSpec { name: "serial_ms", direction: Direction::LowerIsBetter },
    MetricSpec { name: "speedup", direction: Direction::HigherIsBetter },
    MetricSpec { name: "modeled_gbps", direction: Direction::HigherIsBetter },
    MetricSpec { name: "ratio", direction: Direction::HigherIsBetter },
];

/// Key and metric schema of the `decode` table.
pub const DECODE_KEY: &[&str] = &["dataset", "decoder"];
/// Compared metrics of the `decode` table.
pub const DECODE_METRICS: &[MetricSpec] = &[
    MetricSpec { name: "modeled_ms", direction: Direction::LowerIsBetter },
    MetricSpec { name: "modeled_gbps", direction: Direction::HigherIsBetter },
];

/// Key of the `autotune` table. `dispatch` is part of the key on
/// purpose: a tuning-policy change that flips a decision against the
/// committed baseline shows up as a missing/unexpected key, not a silent
/// throughput delta.
pub const AUTOTUNE_KEY: &[&str] = &["dataset", "device", "dispatch"];
/// Compared metrics of the `autotune` table.
pub const AUTOTUNE_METRICS: &[MetricSpec] = &[
    MetricSpec { name: "fixed_gbps", direction: Direction::HigherIsBetter },
    MetricSpec { name: "auto_gbps", direction: Direction::HigherIsBetter },
];

/// Key of the `kernels` table. `plan` and `bound` are both part of the
/// key on purpose: a kernel regressing its roofline `Bound` class under
/// either plan (say `enc_breaking_backtrace` sliding from `memory` back
/// to `latency`) surfaces as a missing/unexpected baseline row — a hard
/// failure — rather than a quiet efficiency delta.
pub const KERNEL_KEY: &[&str] = &["dataset", "device", "plan", "kernel", "bound"];
/// Compared metrics of the `kernels` table.
pub const KERNEL_METRICS: &[MetricSpec] = &[
    MetricSpec { name: "modeled_ms", direction: Direction::LowerIsBetter },
    MetricSpec { name: "efficiency", direction: Direction::HigherIsBetter },
];

/// Key of the `latency` table: one row per request class of the pinned
/// seeded chaos storm ([`crate::sweeps::latency_rows`]).
pub const LATENCY_KEY: &[&str] = &["dataset", "class"];
/// Compared metrics of the `latency` table. Both percentiles are
/// **virtual-time** figures from the engine's modeled clock —
/// deterministic for the pinned storm seed — so they sit under the same
/// 2 % tolerance as every other modeled metric; host wall-clock
/// (`wall_ms`) remains the only excluded column.
pub const LATENCY_METRICS: &[MetricSpec] = &[
    MetricSpec { name: "p50_ms", direction: Direction::LowerIsBetter },
    MetricSpec { name: "p99_ms", direction: Direction::LowerIsBetter },
];

/// Key of the `range` table. `slice_pct` is part of the key so each
/// slice width is compared against its own baseline row; a range decode
/// silently falling back from the seek index to the prefix scan shows up
/// as a `range_ms`/`speedup` regression on every row.
pub const RANGE_KEY: &[&str] = &["dataset", "decoder", "slice_pct"];
/// Compared metrics of the `range` table.
pub const RANGE_METRICS: &[MetricSpec] = &[
    MetricSpec { name: "range_ms", direction: Direction::LowerIsBetter },
    MetricSpec { name: "speedup", direction: Direction::HigherIsBetter },
    MetricSpec { name: "overhead_pct", direction: Direction::LowerIsBetter },
];

/// Outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance of the baseline.
    Ok,
    /// Better than baseline by more than the tolerance (baseline is
    /// stale — consider `--update-baselines`).
    Improved,
    /// Worse than baseline by more than the tolerance.
    Regressed,
}

impl Status {
    /// Stable lower-case name used in the report.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Regressed => "REGRESSED",
        }
    }
}

/// One metric's delta between baseline and current.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Table the row belongs to.
    pub table: &'static str,
    /// Rendered row key, e.g. `enwik8/V100/1/4/2`.
    pub key: String,
    /// Metric name.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Signed relative change, `(current - baseline) / baseline`.
    pub change: f64,
    /// Classification under the tolerance and the metric's direction.
    pub status: Status,
}

/// Full comparison of one table: per-metric deltas plus any key
/// mismatches between baseline and current row sets.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Every compared metric, in baseline row order.
    pub deltas: Vec<Delta>,
    /// Keys present in the baseline but not re-measured.
    pub missing: Vec<String>,
    /// Keys measured but absent from the baseline.
    pub unexpected: Vec<String>,
}

impl Comparison {
    /// Number of regressed metrics (key mismatches count too).
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.status == Status::Regressed).count()
            + self.missing.len()
            + self.unexpected.len()
    }

    /// Gate verdict: no regressed metrics and no key mismatches.
    pub fn ok(&self) -> bool {
        self.regressions() == 0
    }

    /// Merge another table's comparison into this one.
    pub fn merge(&mut self, other: Comparison) {
        self.deltas.extend(other.deltas);
        self.missing.extend(other.missing);
        self.unexpected.extend(other.unexpected);
    }

    /// The full per-metric delta report, one line per comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<9} {:<32} {:<13} {:>14} {:>14} {:>8}  {}\n",
            "table", "key", "metric", "baseline", "current", "delta", "status"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<9} {:<32} {:<13} {:>14.6} {:>14.6} {:>+7.2}%  {}\n",
                d.table,
                d.key,
                d.metric,
                d.baseline,
                d.current,
                d.change * 100.0,
                d.status.name()
            ));
        }
        for k in &self.missing {
            out.push_str(&format!("missing from current run: {k}\n"));
        }
        for k in &self.unexpected {
            out.push_str(&format!("not in baseline: {k}\n"));
        }
        out
    }

    /// A short summary: counts per status plus the worst swing.
    pub fn summary(&self) -> String {
        let count = |s: Status| self.deltas.iter().filter(|d| d.status == s).count();
        let worst = self
            .deltas
            .iter()
            .max_by(|a, b| a.change.abs().total_cmp(&b.change.abs()))
            .map_or(String::from("no deltas"), |d| {
                format!(
                    "largest swing {:+.2}% on {}/{}/{}",
                    d.change * 100.0,
                    d.table,
                    d.key,
                    d.metric
                )
            });
        format!(
            "{} metrics compared: {} ok, {} improved, {} regressed, {} missing, {} unexpected; {}",
            self.deltas.len(),
            count(Status::Ok),
            count(Status::Improved),
            count(Status::Regressed),
            self.missing.len(),
            self.unexpected.len(),
            worst
        )
    }
}

/// Parse a committed baseline file: one `rsh-bench-v1` line per row, all
/// belonging to `table`. Returns the inner `row` objects.
pub fn parse_baseline(text: &str, table: &str) -> Result<Vec<Value>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let obj = v.as_object().ok_or_else(|| format!("line {}: not an object", i + 1))?;
        match obj.get("schema").and_then(Value::as_str) {
            Some(s) if s == crate::BENCH_SCHEMA => {}
            other => return Err(format!("line {}: bad schema {other:?}", i + 1)),
        }
        match obj.get("table").and_then(Value::as_str) {
            Some(t) if t == table => {}
            other => {
                return Err(format!("line {}: expected table {table:?}, got {other:?}", i + 1))
            }
        }
        rows.push(obj.get("row").cloned().ok_or_else(|| format!("line {}: no row", i + 1))?);
    }
    if rows.is_empty() {
        return Err(format!("no {table} rows in baseline"));
    }
    Ok(rows)
}

/// Render a row's key fields as a stable `/`-joined string.
fn key_of(row: &Value, key_fields: &[&str]) -> String {
    key_fields
        .iter()
        .map(|f| match row.as_object().and_then(|o| o.get(f)) {
            Some(Value::String(s)) => s.clone(),
            Some(v) => v.to_string(),
            None => String::from("?"),
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn metric_of(row: &Value, name: &str) -> Option<f64> {
    row.as_object()?.get(name)?.as_f64()
}

/// Compare `current` rows against `baseline` rows, pairing by
/// `key_fields` and judging each of `metrics` under `tolerance`.
pub fn compare(
    table: &'static str,
    key_fields: &[&str],
    metrics: &[MetricSpec],
    baseline: &[Value],
    current: &[Value],
    tolerance: f64,
) -> Comparison {
    let mut cmp = Comparison::default();
    let current_keyed: Vec<(String, &Value)> =
        current.iter().map(|r| (key_of(r, key_fields), r)).collect();
    let mut matched = vec![false; current_keyed.len()];

    for base_row in baseline {
        let key = key_of(base_row, key_fields);
        let Some(pos) = current_keyed.iter().position(|(k, _)| *k == key) else {
            cmp.missing.push(format!("{table}/{key}"));
            continue;
        };
        matched[pos] = true;
        let cur_row = current_keyed[pos].1;
        for m in metrics {
            let (Some(b), Some(c)) = (metric_of(base_row, m.name), metric_of(cur_row, m.name))
            else {
                cmp.missing.push(format!("{table}/{key}/{}", m.name));
                continue;
            };
            let change = if b == 0.0 {
                if c == 0.0 {
                    0.0
                } else {
                    f64::INFINITY.copysign(c)
                }
            } else {
                (c - b) / b.abs()
            };
            // A positive `worse` means the metric moved in its bad
            // direction, whatever that direction is.
            let worse = match m.direction {
                Direction::LowerIsBetter => change,
                Direction::HigherIsBetter => -change,
            };
            let status = if worse > tolerance {
                Status::Regressed
            } else if worse < -tolerance {
                Status::Improved
            } else {
                Status::Ok
            };
            cmp.deltas.push(Delta {
                table,
                key: key.clone(),
                metric: m.name,
                baseline: b,
                current: c,
                change,
                status,
            });
        }
    }
    for (i, (key, _)) in current_keyed.iter().enumerate() {
        if !matched[i] {
            cmp.unexpected.push(format!("{table}/{key}"));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_json;
    use serde::Serialize;

    #[derive(Serialize, Clone)]
    struct Row {
        dataset: String,
        decoder: &'static str,
        modeled_ms: f64,
        modeled_gbps: f64,
        wall_ms: f64,
    }

    fn row(dataset: &str, decoder: &'static str, ms: f64, gbps: f64) -> Value {
        Row { dataset: dataset.into(), decoder, modeled_ms: ms, modeled_gbps: gbps, wall_ms: 1.0 }
            .to_json()
    }

    fn baseline() -> Vec<Value> {
        vec![row("enwik8", "chunked", 0.05, 117.0), row("enwik8", "lut", 0.04, 118.0)]
    }

    #[test]
    fn identical_runs_pass() {
        let cmp = compare("decode", DECODE_KEY, DECODE_METRICS, &baseline(), &baseline(), 0.02);
        assert!(cmp.ok(), "{}", cmp.render());
        assert_eq!(cmp.deltas.len(), 4);
        assert!(cmp.deltas.iter().all(|d| d.status == Status::Ok));
    }

    #[test]
    fn noise_within_tolerance_passes() {
        let current =
            vec![row("enwik8", "chunked", 0.0505, 116.0), row("enwik8", "lut", 0.04, 118.5)];
        let cmp = compare("decode", DECODE_KEY, DECODE_METRICS, &baseline(), &current, 0.02);
        assert!(cmp.ok(), "{}", cmp.render());
    }

    #[test]
    fn synthetic_degradation_beyond_tolerance_fails() {
        // Throughput degraded 10 % >> 2 % tolerance: the gate must trip.
        let current =
            vec![row("enwik8", "chunked", 0.055, 105.3), row("enwik8", "lut", 0.04, 118.0)];
        let cmp = compare("decode", DECODE_KEY, DECODE_METRICS, &baseline(), &current, 0.02);
        assert!(!cmp.ok());
        assert_eq!(cmp.regressions(), 2); // modeled_ms up AND modeled_gbps down
        let report = cmp.render();
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("modeled_gbps"));
    }

    #[test]
    fn improvement_beyond_tolerance_is_reported_not_failed() {
        let current =
            vec![row("enwik8", "chunked", 0.02, 290.0), row("enwik8", "lut", 0.04, 118.0)];
        let cmp = compare("decode", DECODE_KEY, DECODE_METRICS, &baseline(), &current, 0.02);
        assert!(cmp.ok(), "{}", cmp.render());
        assert!(cmp.deltas.iter().any(|d| d.status == Status::Improved));
        assert!(cmp.summary().contains("2 improved"));
    }

    #[test]
    fn missing_and_unexpected_keys_fail() {
        let current =
            vec![row("enwik8", "chunked", 0.05, 117.0), row("enwik8", "serial", 1.0, 0.1)];
        let cmp = compare("decode", DECODE_KEY, DECODE_METRICS, &baseline(), &current, 0.02);
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["decode/enwik8/lut"]);
        assert_eq!(cmp.unexpected, vec!["decode/enwik8/serial"]);
    }

    #[test]
    fn wall_clock_is_never_compared() {
        let mut noisy = baseline();
        // wall_ms differs wildly; no compared metric mentions it.
        if let Value::Object(o) = &mut noisy[0] {
            o.insert("wall_ms".into(), Value::Float(9999.0));
        }
        let cmp = compare("decode", DECODE_KEY, DECODE_METRICS, &baseline(), &noisy, 0.02);
        assert!(cmp.ok());
        assert!(cmp.deltas.iter().all(|d| d.metric != "wall_ms"));
    }

    #[test]
    fn parse_baseline_roundtrips_emitted_rows() {
        let text = [
            row_json(
                "decode",
                &Row {
                    dataset: "a".into(),
                    decoder: "chunked",
                    modeled_ms: 1.0,
                    modeled_gbps: 2.0,
                    wall_ms: 1.0,
                },
            ),
            row_json(
                "decode",
                &Row {
                    dataset: "b".into(),
                    decoder: "lut",
                    modeled_ms: 3.0,
                    modeled_gbps: 4.0,
                    wall_ms: 1.0,
                },
            ),
        ]
        .join("\n");
        let rows = parse_baseline(&text, "decode").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(key_of(&rows[0], DECODE_KEY), "a/chunked");
        assert_eq!(metric_of(&rows[1], "modeled_gbps"), Some(4.0));
    }

    #[test]
    fn parse_baseline_rejects_wrong_table_and_garbage() {
        assert!(parse_baseline("", "decode").is_err());
        assert!(parse_baseline("{not json", "decode").is_err());
        let wrong = row_json(
            "pipeline",
            &Row {
                dataset: "a".into(),
                decoder: "chunked",
                modeled_ms: 1.0,
                modeled_gbps: 2.0,
                wall_ms: 1.0,
            },
        );
        assert!(parse_baseline(&wrong, "decode").is_err());
    }

    #[derive(Serialize, Clone)]
    struct KRow {
        dataset: String,
        device: &'static str,
        plan: &'static str,
        kernel: String,
        bound: &'static str,
        modeled_ms: f64,
        efficiency: f64,
        wall_ms: f64,
    }

    fn krow(plan: &'static str, kernel: &str, bound: &'static str, ms: f64) -> Value {
        KRow {
            dataset: "accept-64mb".into(),
            device: "V100",
            plan,
            kernel: kernel.into(),
            bound,
            modeled_ms: ms,
            efficiency: 0.8,
            wall_ms: 1.0,
        }
        .to_json()
    }

    #[test]
    fn bound_class_flip_is_a_hard_failure() {
        // The Bound class is part of the kernels key: a kernel keeping its
        // time but flipping classification must fail the gate as a
        // missing + unexpected key pair, not pass as an "ok" metric delta.
        let base = vec![
            krow("fused", "hist_fused_reduction", "memory", 0.1),
            krow("fused", "enc_shuffle_merge", "memory", 0.2),
        ];
        let flipped = vec![
            krow("fused", "hist_fused_reduction", "latency", 0.1),
            krow("fused", "enc_shuffle_merge", "memory", 0.2),
        ];
        let cmp = compare("kernels", KERNEL_KEY, KERNEL_METRICS, &base, &flipped, 0.02);
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["kernels/accept-64mb/V100/fused/hist_fused_reduction/memory"]);
        assert_eq!(
            cmp.unexpected,
            vec!["kernels/accept-64mb/V100/fused/hist_fused_reduction/latency"]
        );
        // Identical runs still pass, and wall clock is never compared.
        let same = compare("kernels", KERNEL_KEY, KERNEL_METRICS, &base, &base, 0.02);
        assert!(same.ok(), "{}", same.render());
        assert!(same.deltas.iter().all(|d| d.metric != "wall_ms"));
    }

    #[test]
    fn zero_baseline_handled() {
        let b = vec![row("z", "chunked", 0.0, 0.0)];
        let same = compare("decode", DECODE_KEY, DECODE_METRICS, &b, &b, 0.02);
        assert!(same.ok());
        let worse = vec![row("z", "chunked", 1.0, 0.0)];
        let cmp = compare("decode", DECODE_KEY, DECODE_METRICS, &b, &worse, 0.02);
        assert!(!cmp.ok());
    }
}
