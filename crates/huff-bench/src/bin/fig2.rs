//! Fig. 2 — SHUFFLE-merge's two-step batch move: the right group's leading
//! bits fill the left group's residual bits; the trailing bits land in the
//! next typed data cell.

use huff_core::encode::shuffle_merge::trace_fig2;

fn main() {
    println!("FIG 2: two-step batch move of grouped and typed data\n");
    let left = "110101001110101011010011011";
    let right = "10011101010001110101101011010101001101";
    println!("left group  ({} bits): {left}", left.len());
    println!("right group ({} bits): {right}\n", right.len());
    for line in trace_fig2(left, right) {
        println!("{line}");
    }
    println!(
        "\n(step 1 fills the residual l-circ bits of the last left cell; step 2 writes the\n\
         remaining l-bullet bits into the following cell — contention-free per window)"
    );
}
