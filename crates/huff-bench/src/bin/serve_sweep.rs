//! Serve-engine load sweep — request rate × payload size against the
//! fault-tolerant serving engine ([`huff_core::serve`]).
//!
//! For each payload size the sweep first measures the modeled service
//! time of one request, then offers load at gaps derived from it (from
//! 4× the service time down to 0.25×). Past the saturation knee —
//! offered rate exceeding `workers / service` — a correct engine sheds
//! at admission instead of queueing unboundedly; the sweep locates the
//! knee (first rate with sheds) and **fails** (exit 1) if the highest
//! offered rate produced no shedding, i.e. if the queue grew without
//! bound.
//!
//! `--chaos` additionally runs the seeded fault storm
//! ([`huff_core::serve::ChaosConfig::storm`]) over a mixed
//! compress/decompress workload and verifies the acceptance properties:
//! every request ends in exactly one outcome, counters reconcile with
//! the completion trace, and every served response is bit-exact outside
//! reported damage. `--json` emits `rsh-bench-v1` rows (table
//! `"serve"`) on stderr; `--out PATH` writes them to a file.

use huff_bench::{emit_out, emit_row, row_json, HarnessArgs};
use huff_core::batch::compress_batched;
use huff_core::serve::{ChaosConfig, Engine, EngineConfig, Outcome, Request, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One sweep cell (`rsh-bench-v1` table `"serve"`).
#[derive(Serialize)]
struct ServeRow {
    /// Payload size in symbols.
    payload_symbols: usize,
    /// Modeled inter-arrival gap, microseconds.
    gap_us: f64,
    /// Offered request rate, requests/second.
    offered_rps: f64,
    /// Requests served bit-exactly on the primary path.
    success: usize,
    /// Requests served on a degraded path.
    degraded: usize,
    /// Requests shed at admission.
    shed: usize,
    /// Requests that missed their deadline.
    deadline: usize,
    /// Requests that failed terminally.
    failed: usize,
    /// Mean modeled queue wait, milliseconds.
    mean_queue_wait_ms: f64,
    /// Deepest admission queue observed.
    max_depth: usize,
    /// p50 admitted-request latency (queue wait + backoff + service),
    /// milliseconds of virtual time.
    p50_ms: f64,
    /// p99 admitted-request latency, milliseconds of virtual time.
    p99_ms: f64,
    /// p999 admitted-request latency, milliseconds of virtual time.
    p999_ms: f64,
    /// True for the first row (lowest gap first) at or past the knee.
    saturated: bool,
}

fn payload(n: usize, seed: u64) -> Vec<u16> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0u16..256)).collect()
}

fn engine_config(shard_symbols: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(256);
    cfg.batch.shard_symbols = shard_symbols;
    cfg
}

const REQUESTS_PER_CELL: usize = 40;

struct CellStats {
    success: usize,
    degraded: usize,
    shed: usize,
    deadline: usize,
    failed: usize,
    mean_wait: f64,
    max_depth: usize,
    p50: f64,
    p99: f64,
    p999: f64,
}

fn sweep_cell(symbols: &[u16], gap_s: f64) -> CellStats {
    let mut eng = Engine::new(engine_config(symbols.len().div_ceil(4).max(1024)));
    for i in 0..REQUESTS_PER_CELL {
        let t = i as f64 * gap_s;
        eng.submit(Request::compress(format!("s{i}"), t, symbols.to_vec()))
            .expect("in-order submission cannot fail");
    }
    // Admitted-only: shed requests are observed at zero latency and
    // would deflate the percentiles the columns document.
    let hist = eng.latency().admitted("compress");
    let r = eng.report();
    let admitted = r.completions.iter().filter(|c| c.outcome.label() != "shed").count();
    let mean_wait = if admitted == 0 { 0.0 } else { r.queue_wait_total() / admitted as f64 };
    CellStats {
        success: r.count("success"),
        degraded: r.count("degraded"),
        shed: r.count("shed"),
        deadline: r.count("deadline"),
        failed: r.count("failed"),
        mean_wait,
        max_depth: r.max_depth,
        p50: hist.quantile(0.50),
        p99: hist.quantile(0.99),
        p999: hist.quantile(0.999),
    }
}

/// Measure the modeled service time of one request at this payload size.
fn service_seconds(symbols: &[u16]) -> f64 {
    let mut eng = Engine::new(engine_config(symbols.len().div_ceil(4).max(1024)));
    let c = eng.submit(Request::compress("probe", 0.0, symbols.to_vec())).unwrap();
    c.service
}

/// Run the seeded chaos storm and verify the acceptance properties.
/// Returns the run's `rsh-span-v1` JSONL so the harness can aggregate
/// span trees across seeds (`--spans PATH`).
fn chaos_verification(seed: u64) -> Result<String, String> {
    let n = 20_000;
    let syms = payload(n, seed);
    let cfg = engine_config(4096);
    let (frame, _) = compress_batched(&syms, &cfg.batch).map_err(|e| e.to_string())?;

    let mut eng = Engine::with_chaos(cfg, ChaosConfig::storm(seed));
    for i in 0..24 {
        let t = i as f64 * 50e-6; // 2× overload vs typical modeled service
        let req = if i % 2 == 0 {
            Request::compress(format!("s{seed}-c{i}"), t, syms.clone())
        } else {
            Request::decompress(format!("s{seed}-d{i}"), t, frame.clone()).with_deadline(0.25)
        };
        eng.submit(req).map_err(|e| e.to_string())?;
    }
    let spans = eng.span_jsonl();
    let report = eng.report();

    let outcome_total: usize =
        ["success", "degraded", "shed", "deadline", "failed"].iter().map(|l| report.count(l)).sum();
    if outcome_total != report.completions.len() {
        return Err(format!(
            "outcome partition broken: {outcome_total} labels over {} requests",
            report.completions.len()
        ));
    }
    if !report.reconciles_with(eng.metrics()) {
        return Err("registry counters do not reconcile with the completion trace".into());
    }
    for c in &report.completions {
        let Some(resp) = &c.response else { continue };
        match resp {
            Response::Frame(bytes) => {
                if *bytes != frame {
                    return Err(format!("{}: compressed frame not bit-identical", c.trace_id));
                }
            }
            // The sweep submits no range requests, so a byte-slice
            // response can only be a dispatch bug.
            Response::Bytes(_) => {
                return Err(format!("{}: unexpected range response", c.trace_id));
            }
            Response::Symbols(out) => {
                if out.len() != syms.len() {
                    return Err(format!("{}: wrong decoded length", c.trace_id));
                }
                let damage = c.recovery.as_ref();
                for (i, (&got, &want)) in out.iter().zip(&syms).enumerate() {
                    let damaged = damage
                        .is_some_and(|r| r.damaged_ranges.iter().any(|&(s, e)| i >= s && i < e));
                    if !damaged && got != want {
                        return Err(format!(
                            "{}: wrong byte at {i} outside reported damage",
                            c.trace_id
                        ));
                    }
                }
            }
        }
        if let Outcome::Degraded { symbols_lost, .. } = c.outcome {
            let reported = c.recovery.as_ref().map_or(0, |r| r.symbols_lost);
            if symbols_lost != reported {
                return Err(format!("{}: degraded loss count disagrees", c.trace_id));
            }
        }
    }
    Ok(spans)
}

fn main() {
    let chaos = std::env::args().any(|a| a == "--chaos");
    let args = HarnessArgs::parse();
    println!("SERVE SWEEP: request rate x payload size, scale {}\n", args.scale);
    println!(
        "{:<16} {:>9} {:>12} {:>8} {:>9} {:>6} {:>9} {:>7} {:>14} {:>9} {:>9} {:>9} {:>10}",
        "payload syms",
        "gap us",
        "offered rps",
        "success",
        "degraded",
        "shed",
        "deadline",
        "failed",
        "mean wait ms",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "saturated"
    );

    let base_sizes = [1usize << 16, 1 << 18, 1 << 20];
    let mut lines = Vec::new();
    let mut any_saturated = true;
    for (pi, &base) in base_sizes.iter().enumerate() {
        let n = ((base as f64 * args.scale) as usize).max(4096);
        let symbols = payload(n, 0xC0FFEE + pi as u64);
        let service = service_seconds(&symbols);
        let mut knee_seen = false;
        // 4× the service time down to 0.25×: past ~0.5× per worker the
        // engine must shed rather than queue unboundedly.
        for mult in [4.0, 2.0, 1.0, 0.5, 0.25] {
            let gap_s = service * mult;
            let cell = sweep_cell(&symbols, gap_s);
            knee_seen |= cell.shed > 0;
            let row = ServeRow {
                payload_symbols: n,
                gap_us: gap_s * 1e6,
                offered_rps: 1.0 / gap_s,
                success: cell.success,
                degraded: cell.degraded,
                shed: cell.shed,
                deadline: cell.deadline,
                failed: cell.failed,
                mean_queue_wait_ms: cell.mean_wait * 1e3,
                max_depth: cell.max_depth,
                p50_ms: cell.p50 * 1e3,
                p99_ms: cell.p99 * 1e3,
                p999_ms: cell.p999 * 1e3,
                saturated: cell.shed > 0,
            };
            // Percentiles come from nearest-rank over the same
            // admitted-request population, so the tail can never rank
            // below the median; a violation means the histogram broke.
            if row.p999_ms < row.p50_ms {
                eprintln!(
                    "serve_sweep: latency histogram inverted: p999 {:.4}ms < p50 {:.4}ms \
                     at payload {} gap {:.1}us",
                    row.p999_ms, row.p50_ms, row.payload_symbols, row.gap_us
                );
                std::process::exit(1);
            }
            println!(
                "{:<16} {:>9.1} {:>12.1} {:>8} {:>9} {:>6} {:>9} {:>7} {:>14.4} {:>9.4} \
                 {:>9.4} {:>9.4} {:>10}",
                row.payload_symbols,
                row.gap_us,
                row.offered_rps,
                row.success,
                row.degraded,
                row.shed,
                row.deadline,
                row.failed,
                row.mean_queue_wait_ms,
                row.p50_ms,
                row.p99_ms,
                row.p999_ms,
                row.saturated,
            );
            emit_row(&args, "serve", &row);
            lines.push(row_json("serve", &row));
        }
        if knee_seen {
            println!("  knee found: shedding engaged past saturation\n");
        } else {
            println!("  ERROR: no shedding at any offered rate\n");
            any_saturated = false;
        }
    }
    emit_out(&args, &lines);

    if !any_saturated {
        eprintln!("serve_sweep: load generator never drove the engine into shedding");
        std::process::exit(1);
    }

    if chaos {
        let mut all_spans = String::new();
        for seed in [1u64, 7, 42] {
            match chaos_verification(seed) {
                Ok(spans) => {
                    println!("chaos seed {seed}: all acceptance properties hold");
                    all_spans.push_str(&spans);
                }
                Err(e) => {
                    eprintln!("chaos seed {seed}: VIOLATION: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &args.spans {
            std::fs::write(path, all_spans).expect("writable --spans path");
            eprintln!("chaos span trees written to {path}");
        }
    }
}
