//! Section II-C's motivating measurement: constructing an 8192-symbol
//! codebook *serially on the GPU* costs on the order of 100 ms — enough to
//! drag the throughput of compressing 1 GB below 10 GB/s on its own.

use gpu_sim::Gpu;
use huff_core::codebook;
use huff_core::histogram;
use huff_datasets::dna;

fn main() {
    let (syms, space) = dna::kmer_dataset(8 << 20, 5, 5);
    let freqs = histogram::parallel_cpu::histogram(&syms, space, 8);

    let gpu = Gpu::v100();
    let (_, t) = codebook::gpu::serial_on_gpu(&gpu, &freqs).unwrap();
    println!("MOTIVATION (Section II-C): serial codebook construction on one V100 thread");
    println!(
        "  8192-symbol codebook: {:.1} ms modeled (paper: ~144 ms naive, 59 ms tuned)",
        t.total * 1e3
    );

    let gb = 1.0e9;
    let equivalent = gb / t.total / 1e9;
    println!(
        "  at that cost, compressing 1 GB cannot exceed {equivalent:.1} GB/s before a single\n  \
         payload byte moves — hence the parallel two-phase construction."
    );

    let gpu2 = Gpu::v100();
    let (_, p) = codebook::gpu::parallel_on_gpu(&gpu2, &freqs).unwrap();
    println!("  parallel construction: {:.3} ms ({:.1}x faster)", p.total * 1e3, t.total / p.total);
}
