//! Section II-C's motivating measurement: constructing an 8192-symbol
//! codebook *serially on the GPU* costs on the order of 100 ms — enough to
//! drag the throughput of compressing 1 GB below 10 GB/s on its own.
//! `--json` emits the comparison as one `rsh-bench-v1` row.

use gpu_sim::Gpu;
use huff_bench::{emit_row, HarnessArgs};
use huff_core::codebook;
use huff_core::histogram;
use huff_datasets::dna;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    symbols: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    serial_cap_gbps: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let (syms, space) = dna::kmer_dataset(8 << 20, 5, 5);
    let freqs = histogram::parallel_cpu::histogram(&syms, space, 8);

    let gpu = Gpu::v100();
    let (_, t) = codebook::gpu::serial_on_gpu(&gpu, &freqs).unwrap();
    println!("MOTIVATION (Section II-C): serial codebook construction on one V100 thread");
    println!(
        "  8192-symbol codebook: {:.1} ms modeled (paper: ~144 ms naive, 59 ms tuned)",
        t.total * 1e3
    );

    let gb = 1.0e9;
    let equivalent = gb / t.total / 1e9;
    println!(
        "  at that cost, compressing 1 GB cannot exceed {equivalent:.1} GB/s before a single\n  \
         payload byte moves — hence the parallel two-phase construction."
    );

    let gpu2 = Gpu::v100();
    let (_, p) = codebook::gpu::parallel_on_gpu(&gpu2, &freqs).unwrap();
    println!("  parallel construction: {:.3} ms ({:.1}x faster)", p.total * 1e3, t.total / p.total);

    emit_row(
        &args,
        "motivation",
        &Row {
            symbols: space,
            serial_ms: t.total * 1e3,
            parallel_ms: p.total * 1e3,
            speedup: t.total / p.total,
            serial_cap_gbps: equivalent,
        },
    );
}
