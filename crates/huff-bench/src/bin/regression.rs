//! Bench-regression gate — re-run the pipeline, decode, autotune,
//! per-kernel roofline, and random-access range sweeps and compare every
//! modeled metric against the committed `results/BENCH_pipeline.json` /
//! `results/BENCH_decode.json` / `results/BENCH_autotune.json` /
//! `results/BENCH_kernels.json` / `results/BENCH_range.json` baselines.
//!
//! The sweeps re-run at exactly the scales the baselines were generated
//! at ([`huff_bench::sweeps`]), so every modeled figure is deterministic
//! and any delta beyond the noise tolerance is a real behavior change.
//! Host wall-clock (`wall_ms`) is machine-dependent and never compared.
//! Prints a per-metric delta report and exits nonzero if any metric
//! regressed or any row went missing/unexpected; improvements are
//! reported but pass. CI runs this in the bench-smoke job.
//!
//! The autotune table keys on `(dataset, device, dispatch)`, so a
//! tuning-policy change that flips a cached decision (a dataset moving
//! from `gpu` to `store_raw`, say) surfaces as a missing/unexpected
//! baseline row — a hard failure — rather than a quiet throughput delta.
//! The kernels table likewise keys on `(dataset, device, plan, kernel,
//! bound)`: a kernel in the 64 MB acceptance sweep regressing its
//! roofline `Bound` class under either plan is a hard failure.
//!
//! ```text
//! usage: regression [--tolerance F] [--baseline-dir DIR] [--report PATH]
//!                   [--pipeline-scale F] [--decode-scale F]
//!                   [--autotune-scale F] [--update-baselines]
//! ```
//!
//! `--update-baselines` rewrites the baseline files from the fresh run
//! instead of comparing (use after an intentional model change; see
//! EXPERIMENTS.md).

use huff_bench::regression::{
    compare, parse_baseline, Comparison, AUTOTUNE_KEY, AUTOTUNE_METRICS, DECODE_KEY,
    DECODE_METRICS, DEFAULT_TOLERANCE, KERNEL_KEY, KERNEL_METRICS, LATENCY_KEY, LATENCY_METRICS,
    PIPELINE_KEY, PIPELINE_METRICS, RANGE_KEY, RANGE_METRICS,
};
use huff_bench::{row_json, sweeps};
use serde::json::Value;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::exit;

struct Args {
    tolerance: f64,
    baseline_dir: PathBuf,
    report: Option<PathBuf>,
    pipeline_scale: f64,
    decode_scale: f64,
    autotune_scale: f64,
    range_scale: f64,
    latency_scale: f64,
    update: bool,
}

impl Args {
    fn parse() -> Self {
        let mut out = Args {
            tolerance: DEFAULT_TOLERANCE,
            baseline_dir: PathBuf::from("results"),
            report: None,
            pipeline_scale: sweeps::PIPELINE_BASELINE_SCALE,
            decode_scale: sweeps::DECODE_BASELINE_SCALE,
            autotune_scale: sweeps::AUTOTUNE_BASELINE_SCALE,
            range_scale: sweeps::RANGE_BASELINE_SCALE,
            latency_scale: sweeps::LATENCY_BASELINE_SCALE,
            update: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut num = |flag: &str| -> f64 {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{flag} requires a number"))
            };
            match a.as_str() {
                "--tolerance" => out.tolerance = num("--tolerance"),
                "--pipeline-scale" => out.pipeline_scale = num("--pipeline-scale"),
                "--decode-scale" => out.decode_scale = num("--decode-scale"),
                "--autotune-scale" => out.autotune_scale = num("--autotune-scale"),
                "--range-scale" => out.range_scale = num("--range-scale"),
                "--latency-scale" => out.latency_scale = num("--latency-scale"),
                "--baseline-dir" => {
                    out.baseline_dir =
                        PathBuf::from(args.next().expect("--baseline-dir requires a path"));
                }
                "--report" => {
                    out.report =
                        Some(PathBuf::from(args.next().expect("--report requires a path")));
                }
                "--update-baselines" => out.update = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: regression [--tolerance F] [--baseline-dir DIR] [--report PATH] \
                         [--pipeline-scale F] [--decode-scale F] [--autotune-scale F] \
                         [--range-scale F] [--latency-scale F] [--update-baselines]"
                    );
                    exit(0);
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        assert!(out.tolerance >= 0.0, "tolerance must be non-negative");
        out
    }
}

fn rows_to_values<T: Serialize>(rows: &[T]) -> Vec<Value> {
    rows.iter().map(|r| r.to_json()).collect()
}

fn write_baseline<T: Serialize>(path: &Path, table: &str, rows: &[T]) {
    let lines: Vec<String> = rows.iter().map(|r| row_json(table, r)).collect();
    std::fs::write(path, lines.join("\n") + "\n").expect("writable baseline path");
    println!("{} {table} rows written to {}", lines.len(), path.display());
}

fn load_baseline(path: &Path, table: &str) -> Vec<Value> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {}: {e}", path.display());
        eprintln!("(run with --update-baselines to create it)");
        exit(2);
    });
    parse_baseline(&text, table).unwrap_or_else(|e| {
        eprintln!("bad baseline {}: {e}", path.display());
        exit(2);
    })
}

fn main() {
    let args = Args::parse();
    let pipeline_path = args.baseline_dir.join("BENCH_pipeline.json");
    let decode_path = args.baseline_dir.join("BENCH_decode.json");
    let autotune_path = args.baseline_dir.join("BENCH_autotune.json");
    let kernels_path = args.baseline_dir.join("BENCH_kernels.json");
    let range_path = args.baseline_dir.join("BENCH_range.json");
    let latency_path = args.baseline_dir.join("BENCH_latency.json");

    println!(
        "REGRESSION GATE: pipeline sweep @ scale {}, decode sweep @ scale {}, autotune sweep @ \
         scale {}, range sweep @ scale {}, latency storm @ scale {}, tolerance {:.1}%\n",
        args.pipeline_scale,
        args.decode_scale,
        args.autotune_scale,
        args.range_scale,
        args.latency_scale,
        args.tolerance * 100.0
    );

    let pipeline_rows = sweeps::pipeline_rows(args.pipeline_scale);
    let decode_rows = sweeps::decode_rows(args.decode_scale);
    let autotune_rows = sweeps::autotune_rows(args.autotune_scale);
    let kernel_rows = sweeps::kernel_rows();
    let range_rows = sweeps::range_rows(args.range_scale);
    let latency_rows = sweeps::latency_rows(args.latency_scale);

    if args.update {
        write_baseline(&pipeline_path, "pipeline", &pipeline_rows);
        write_baseline(&decode_path, "decode", &decode_rows);
        write_baseline(&autotune_path, "autotune", &autotune_rows);
        write_baseline(&kernels_path, "kernels", &kernel_rows);
        write_baseline(&range_path, "range", &range_rows);
        write_baseline(&latency_path, "latency", &latency_rows);
        println!("baselines updated; commit the new results/ files");
        return;
    }

    let mut cmp = Comparison::default();
    cmp.merge(compare(
        "pipeline",
        PIPELINE_KEY,
        PIPELINE_METRICS,
        &load_baseline(&pipeline_path, "pipeline"),
        &rows_to_values(&pipeline_rows),
        args.tolerance,
    ));
    cmp.merge(compare(
        "decode",
        DECODE_KEY,
        DECODE_METRICS,
        &load_baseline(&decode_path, "decode"),
        &rows_to_values(&decode_rows),
        args.tolerance,
    ));
    cmp.merge(compare(
        "autotune",
        AUTOTUNE_KEY,
        AUTOTUNE_METRICS,
        &load_baseline(&autotune_path, "autotune"),
        &rows_to_values(&autotune_rows),
        args.tolerance,
    ));
    cmp.merge(compare(
        "kernels",
        KERNEL_KEY,
        KERNEL_METRICS,
        &load_baseline(&kernels_path, "kernels"),
        &rows_to_values(&kernel_rows),
        args.tolerance,
    ));
    cmp.merge(compare(
        "range",
        RANGE_KEY,
        RANGE_METRICS,
        &load_baseline(&range_path, "range"),
        &rows_to_values(&range_rows),
        args.tolerance,
    ));
    cmp.merge(compare(
        "latency",
        LATENCY_KEY,
        LATENCY_METRICS,
        &load_baseline(&latency_path, "latency"),
        &rows_to_values(&latency_rows),
        args.tolerance,
    ));

    let report = cmp.render();
    print!("{report}");
    println!("\n{}", cmp.summary());
    if let Some(path) = &args.report {
        std::fs::write(path, format!("{report}\n{}\n", cmp.summary()))
            .expect("writable --report path");
        println!("report written to {}", path.display());
    }

    if cmp.ok() {
        println!("PASS: no regressions beyond tolerance");
    } else {
        println!("FAIL: {} regression(s) — see report above", cmp.regressions());
        exit(1);
    }
}
