//! Pipeline sweep — batched multi-stream compression over shard count ×
//! stream count × device count, on the Table V workloads, both devices.
//!
//! Each configuration splits the dataset into `shards` equal shards and
//! runs every shard's histogram→codebook→encode chain on its own stream
//! ([`huff_core::batch`]); the row reports the modeled contended makespan,
//! the serial (one-stream) baseline of the same kernels, the overlap
//! speedup, the modeled end-to-end GB/s, and the real host wall-clock of
//! the run (rayon does the shard pipelines in parallel). The rows come
//! from [`huff_bench::sweeps::pipeline_rows`] — the same function the
//! `regression` gate re-runs against the committed baseline. `--json`
//! emits `rsh-bench-v1` rows on stderr; `--out PATH` writes the same rows
//! to a file — `results/BENCH_pipeline.json` is the committed baseline
//! (see EXPERIMENTS.md for the regeneration command).

use huff_bench::sweeps::pipeline_rows;
use huff_bench::{emit_out, emit_row, row_json, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    println!("PIPELINE SWEEP: batched multi-stream compression, scale {}\n", args.scale);
    println!(
        "{:<10} {:<9} {:>4} {:>7} {:>8} {:>8} {:>12} {:>11} {:>8} {:>13} {:>9}",
        "dataset",
        "device",
        "dev",
        "shards",
        "streams",
        "MB",
        "makespan ms",
        "serial ms",
        "speedup",
        "modeled GB/s",
        "wall ms"
    );

    let mut lines = Vec::new();
    let mut group: Option<(&str, &str)> = None;
    for row in pipeline_rows(args.scale) {
        // Blank line between each (dataset, device) grid block.
        if group.is_some_and(|g| g != (row.dataset, row.device)) {
            println!();
        }
        group = Some((row.dataset, row.device));
        println!(
            "{:<10} {:<9} {:>4} {:>7} {:>8} {:>8.1} {:>12.3} {:>11.3} {:>8.2} {:>13.1} {:>9.1}",
            row.dataset,
            row.device,
            row.devices,
            row.shards,
            row.streams,
            row.input_mb,
            row.makespan_ms,
            row.serial_ms,
            row.speedup,
            row.modeled_gbps,
            row.wall_ms,
        );
        emit_row(&args, "pipeline", &row);
        lines.push(row_json("pipeline", &row));
    }
    println!();
    emit_out(&args, &lines);
    println!("(modeled device time; wall ms is host time for the rayon shard pipelines)");
}
