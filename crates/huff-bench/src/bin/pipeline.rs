//! Pipeline sweep — batched multi-stream compression over shard count ×
//! stream count × device count, on the Table V workloads, both devices.
//!
//! Each configuration splits the dataset into `shards` equal shards and
//! runs every shard's histogram→codebook→encode chain on its own stream
//! ([`huff_core::batch`]); the row reports the modeled contended makespan,
//! the serial (one-stream) baseline of the same kernels, the overlap
//! speedup, the modeled end-to-end GB/s, and the real host wall-clock of
//! the run (rayon does the shard pipelines in parallel). `--json` emits
//! `rsh-bench-v1` rows on stderr; `--out PATH` writes the same rows to a
//! file — `results/BENCH_pipeline.json` is the committed baseline (see
//! EXPERIMENTS.md for the regeneration command).

use gpu_sim::DeviceSpec;
use huff_bench::{emit_out, emit_row, row_json, wall, HarnessArgs};
use huff_core::batch::{compress_batched, BatchOptions};
use huff_datasets::PaperDataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    device: &'static str,
    devices: usize,
    shards: usize,
    streams: usize,
    input_mb: f64,
    makespan_ms: f64,
    serial_ms: f64,
    speedup: f64,
    modeled_gbps: f64,
    wall_ms: f64,
    ratio: f64,
}

/// The swept (shards, streams, devices) grid: the serial reference plus
/// every overlap axis alone and combined.
const GRID: &[(usize, usize, usize)] = &[
    (1, 1, 1), // serial reference: one shard, one stream
    (4, 1, 1), // sharded but still serial (stream FIFO)
    (4, 2, 1), // double-buffered
    (8, 2, 1),
    (8, 4, 1), // deeper stream fan-out
    (8, 2, 2), // two devices, double-buffered each
    (16, 4, 2),
];

fn main() {
    let args = HarnessArgs::parse();
    println!("PIPELINE SWEEP: batched multi-stream compression, scale {}\n", args.scale);
    println!(
        "{:<10} {:<9} {:>4} {:>7} {:>8} {:>8} {:>12} {:>11} {:>8} {:>13} {:>9}",
        "dataset",
        "device",
        "dev",
        "shards",
        "streams",
        "MB",
        "makespan ms",
        "serial ms",
        "speedup",
        "modeled GB/s",
        "wall ms"
    );

    let mut lines = Vec::new();
    for d in PaperDataset::all() {
        let n = d.symbols_at_scale(args.scale);
        let data = d.generate(n, 0xD5EA5E);
        for (dev_name, spec) in [("V100", DeviceSpec::v100()), ("RTX 5000", DeviceSpec::rtx5000())]
        {
            for &(shards, streams, devices) in GRID {
                let mut opts = BatchOptions::new(d.num_symbols());
                opts.shard_symbols = n.div_ceil(shards).max(1);
                opts.streams = streams;
                opts.devices = vec![spec.clone(); devices];
                opts.reduction = Some(d.paper_reduction());
                opts.symbol_bytes = d.symbol_bytes() as u8;

                let ((frame, report), wall_s) =
                    wall(|| compress_batched(&data, &opts).expect("sweep pipeline"));
                let row = Row {
                    dataset: d.name(),
                    device: dev_name,
                    devices,
                    shards: report.shards.len(),
                    streams,
                    input_mb: report.input_bytes as f64 / 1e6,
                    makespan_ms: report.makespan * 1e3,
                    serial_ms: report.serial_seconds * 1e3,
                    speedup: report.speedup(),
                    modeled_gbps: report.throughput() / 1e9,
                    wall_ms: wall_s * 1e3,
                    ratio: report.input_bytes as f64 / frame.len() as f64,
                };
                println!(
                    "{:<10} {:<9} {:>4} {:>7} {:>8} {:>8.1} {:>12.3} {:>11.3} {:>8.2} {:>13.1} {:>9.1}",
                    row.dataset,
                    row.device,
                    row.devices,
                    row.shards,
                    row.streams,
                    row.input_mb,
                    row.makespan_ms,
                    row.serial_ms,
                    row.speedup,
                    row.modeled_gbps,
                    row.wall_ms,
                );
                emit_row(&args, "pipeline", &row);
                lines.push(row_json("pipeline", &row));
            }
            println!();
        }
    }
    emit_out(&args, &lines);
    println!("(modeled device time; wall ms is host time for the rayon shard pipelines)");
}
