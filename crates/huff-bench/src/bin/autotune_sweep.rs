//! Autotune entropy-spectrum sweep — the fixed CLI default geometry vs
//! the adaptive tuner's decision on every Table V workload (1.03 → 5.2
//! avg payload bits), plus the two dispatch early-exit probes:
//! `incompressible` (uniform bytes, ratio 1.0 → store-raw) and `tiny`
//! (1.5 Ki symbols → CPU-serial, under one kernel launch).
//!
//! Each row runs the fixed default (`BatchOptions::new` geometry,
//! Fig. 3's auto reduction) and the autotuned decision
//! (`huff_core::tune::plan`, DESIGN.md § "Tuning policy") and reports
//! both modeled throughputs. The binary asserts the acceptance contract
//! directly — `auto_gbps >= fixed_gbps` on every row — so a tuning
//! policy that loses to the defaults anywhere fails the run, not just
//! the JSON post-processing. The `cache_hit` column re-decides each
//! input once and must show the in-process tuning cache answering.
//!
//! The rows come from [`huff_bench::sweeps::autotune_rows`] — the same
//! function the `regression` gate re-runs against the committed
//! baseline. `--json` emits `rsh-bench-v1` rows on stderr; `--out PATH`
//! writes them to a file — `results/BENCH_autotune.json` is the
//! committed baseline (see EXPERIMENTS.md for the regeneration command).

use huff_bench::sweeps::autotune_rows;
use huff_bench::{emit_out, emit_row, row_json, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    println!("AUTOTUNE SWEEP: fixed defaults vs tuned dispatch on V100, scale {}\n", args.scale);
    println!(
        "{:<15} {:>8} {:>9} {:<11} {:>3} {:>7} {:>8} {:<8} {:>6} {:>11} {:>11} {:>9}",
        "dataset",
        "MB",
        "avg bits",
        "dispatch",
        "r",
        "shards",
        "streams",
        "decoder",
        "cache",
        "fixed GB/s",
        "auto GB/s",
        "wall ms"
    );

    let mut lines = Vec::new();
    for row in autotune_rows(args.scale) {
        println!(
            "{:<15} {:>8.2} {:>9.4} {:<11} {:>3} {:>7} {:>8} {:<8} {:>6} {:>11.1} {:>11.1} {:>9.1}",
            row.dataset,
            row.input_mb,
            row.avg_bits,
            row.dispatch,
            row.reduction,
            row.shards,
            row.streams,
            row.decoder,
            if row.cache_hit { "hit" } else { "MISS" },
            row.fixed_gbps,
            row.auto_gbps,
            row.wall_ms,
        );
        assert!(
            row.auto_gbps >= row.fixed_gbps * (1.0 - 1e-9),
            "{}: autotuned {:.3} GB/s lost to the fixed default {:.3} GB/s",
            row.dataset,
            row.auto_gbps,
            row.fixed_gbps,
        );
        assert!(row.cache_hit, "{}: repeated decide() missed the tuning cache", row.dataset);
        emit_row(&args, "autotune", &row);
        lines.push(row_json("autotune", &row));
    }

    emit_out(&args, &lines);
    println!(
        "\n(autotuned >= fixed on every row by the hysteresis contract; store_raw / cpu_serial \
         rows use the decision's modeled host time)"
    );
}
