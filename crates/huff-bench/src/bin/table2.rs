//! Table II — encode throughput (GB/s) vs chunk magnitude M ∈ {12,11,10}
//! and reduction factor r ∈ {4,3,2} on Nyx-Quant-like data, on both
//! devices, with the breaking percentage per r; plus the wider-word
//! future-work ablation.

use gpu_sim::Gpu;
use huff_bench::{emit_row, HarnessArgs};
use huff_core::encode::gpu::encode_on_gpu;
use huff_core::encode::{BreakingStrategy, MergeConfig};
use huff_core::histogram;
use huff_datasets::PaperDataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: &'static str,
    magnitude: u32,
    reduction: u32,
    encode_gbps: f64,
    breaking_pct: f64,
    strategy: &'static str,
}

fn main() {
    let args = HarnessArgs::parse();
    let d = PaperDataset::NyxQuant;
    let n = d.symbols_at_scale(args.scale);
    eprintln!("generating {n} Nyx-Quant-like symbols (scale {})...", args.scale);
    let data = d.generate(n, 2021);
    let sb = d.symbol_bytes();
    let freqs = histogram::parallel_cpu::histogram(&data, 1024, 8);
    let book = huff_core::build_codebook(&freqs, 16).unwrap();
    let input_bytes = (data.len() as u64 * sb) as f64;

    println!(
        "TABLE II: encode throughput (GB/s) by magnitude and reduction factor (Nyx-Quant-like)\n"
    );
    for (dev_name, make) in [("RTX 5000", Gpu::rtx5000 as fn() -> Gpu), ("V100", Gpu::v100)] {
        println!("--- {dev_name} ---");
        println!("{:>8} {:>6} {:>6} {:>6} | {:>11}", "r \\ M", "2^12", "2^11", "2^10", "breaking");
        for r in [4u32, 3, 2] {
            let mut cells = Vec::new();
            let mut breaking = 0.0;
            for m in [12u32, 11, 10] {
                let gpu = make();
                let (stream, times) = encode_on_gpu(
                    &gpu,
                    &data,
                    sb,
                    &book,
                    MergeConfig::new(m, r),
                    BreakingStrategy::SparseSidecar,
                )
                .unwrap();
                let gbps = input_bytes / times.total / 1e9;
                breaking = stream.breaking_fraction() * 100.0;
                cells.push(gbps);
                emit_row(
                    &args,
                    "table2",
                    &Row {
                        device: dev_name,
                        magnitude: m,
                        reduction: r,
                        encode_gbps: gbps,
                        breaking_pct: breaking,
                        strategy: "sparse-sidecar",
                    },
                );
            }
            println!(
                "{:>4} ({:>2}x) {:>6.1} {:>6.1} {:>6.1} | {:>10.6}%",
                r,
                1 << r,
                cells[0],
                cells[1],
                cells[2],
                breaking
            );
        }
        println!();
    }

    // Future-work ablation: handle breaking points with a wider word
    // instead of the sparse sidecar.
    println!("ablation (V100, M=10): breaking-point strategy");
    println!("{:>16} {:>12} {:>12}", "r", "sidecar GB/s", "widen GB/s");
    for r in [4u32, 3, 2] {
        let mut out = Vec::new();
        for strat in [BreakingStrategy::SparseSidecar, BreakingStrategy::WidenWord] {
            let gpu = Gpu::v100();
            let (_, times) =
                encode_on_gpu(&gpu, &data, sb, &book, MergeConfig::new(10, r), strat).unwrap();
            let gbps = input_bytes / times.total / 1e9;
            out.push(gbps);
            emit_row(
                &args,
                "table2-ablation",
                &Row {
                    device: "V100",
                    magnitude: 10,
                    reduction: r,
                    encode_gbps: gbps,
                    breaking_pct: 0.0,
                    strategy: match strat {
                        BreakingStrategy::SparseSidecar => "sparse-sidecar",
                        BreakingStrategy::WidenWord => "widen-word",
                    },
                },
            );
        }
        println!("{:>16} {:>12.1} {:>12.1}", r, out[0], out[1]);
    }
}
