//! Range sweep — modeled random-access decode of byte slices through the
//! seek-index trailer ([`huff_core::seek::ChunkIndex`], FORMAT.md §10),
//! against the full decode of the same archive on the same backend.
//!
//! Each row compresses a Table V workload into a seekable RSH2 archive,
//! then decodes one slice ([`huff_bench::sweeps::RANGE_SLICE_PCTS`]:
//! 1 % / 5 % / 25 % of the payload, chunk-unaligned on both ends) with
//! [`huff_core::decode::gpu::decode_range_on_gpu`] on a modeled V100.
//! The modeled time is the `dec_seek_probe` launch (index rank/select
//! probes priced by the gpu-sim index-probe traffic term) plus the
//! window decode, so `speedup = full_ms / range_ms` is exactly the win
//! the succinct index buys: the decode touches only the covering chunks
//! (`chunks_touched` / `total_chunks` in the row proves it), and its
//! payload traffic scales with the slice, not the archive. Every slice
//! is verified byte-identical to the corresponding slice of the full
//! decode before the row is emitted.
//!
//! The `accept-64mb` rows always run at full size regardless of
//! `--scale`; they gate CI twice: the 1 % slice must model ≥ 10× the
//! full decode, and the seek-index trailer must stay ≤ 5 % of the
//! archive (`overhead_pct`).
//!
//! The rows come from [`huff_bench::sweeps::range_rows`] — the same
//! function the `regression` gate re-runs against the committed
//! baseline. `--json` emits `rsh-bench-v1` rows on stderr; `--out PATH`
//! writes the same rows to a file — `results/BENCH_range.json` is the
//! committed baseline (see EXPERIMENTS.md for the regeneration command).

use huff_bench::sweeps::range_rows;
use huff_bench::{emit_out, emit_row, row_json, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    println!("RANGE SWEEP: modeled random-access decode on V100, scale {}\n", args.scale);
    println!(
        "{:<12} {:<8} {:>6} {:>10} {:>11} {:>7} {:>10} {:>10} {:>8} {:>9} {:>6}",
        "dataset",
        "decoder",
        "slice%",
        "range KB",
        "chunks",
        "probes",
        "full ms",
        "range ms",
        "speedup",
        "overhd%",
        "index"
    );

    let mut lines = Vec::new();
    let mut group: Option<String> = None;
    for row in range_rows(args.scale) {
        if group.as_deref().is_some_and(|g| g != row.dataset) {
            println!();
        }
        group = Some(row.dataset.clone());
        println!(
            "{:<12} {:<8} {:>6} {:>10.1} {:>5}/{:<5} {:>7} {:>10.4} {:>10.4} {:>8.1} {:>9.3} {:>6}",
            row.dataset,
            row.decoder,
            row.slice_pct,
            row.range_bytes as f64 / 1e3,
            row.chunks_touched,
            row.total_chunks,
            row.probes,
            row.full_ms,
            row.range_ms,
            row.speedup,
            row.overhead_pct,
            if row.index_used { "seek" } else { "scan" },
        );
        emit_row(&args, "range", &row);
        lines.push(row_json("range", &row));
    }

    emit_out(&args, &lines);
    println!(
        "\n(modeled device time: dec_seek_probe + window decode; chunks is touched/total — the \
         decode reads only the covering chunks)"
    );
}
