//! Table III — codebook-construction time breakdown (ms) on both devices,
//! cuSZ's serial construction vs the parallel two-phase construction, for
//! 1024 (Nyx-Quant) through 8192 (5-mer) symbols. `--json` emits one
//! `rsh-bench-v1` row per (workload, device) pair.

use gpu_sim::Gpu;
use huff_bench::{emit_row, wall_median, HarnessArgs};
use huff_core::codebook;
use huff_core::histogram;
use huff_datasets::{dna, PaperDataset};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    device: &'static str,
    symbols: usize,
    cpu_serial_ms: f64,
    cusz_gen_ms: f64,
    cusz_canonize_ms: f64,
    ours_cl_ms: f64,
    ours_cw_ms: f64,
    speedup: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let n = (8 << 20) as usize;

    let mut workloads: Vec<(String, Vec<u64>)> = Vec::new();
    {
        let d = PaperDataset::NyxQuant;
        let data = d.generate(n, 33);
        // SZ's codebook spans all 1024 quantization bins even when the
        // sample leaves some empty; floor each bin at 1 (Table III's
        // "#SYMBOL 1024").
        let mut h = histogram::parallel_cpu::histogram(&data, 1024, 8);
        for f in h.iter_mut() {
            *f = (*f).max(1);
        }
        workloads.push(("Nyx-Quant".into(), h));
    }
    for k in [3usize, 4, 5] {
        let (syms, space) = dna::kmer_dataset(n, k, 44 + k as u64);
        workloads.push((format!("{k}-MER"), histogram::parallel_cpu::histogram(&syms, space, 8)));
    }

    println!("TABLE III: codebook construction time (ms), TU = RTX 5000, V = V100\n");
    println!(
        "{:<10} {:>8} | {:>10} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} | {:>8}",
        "workload",
        "#symbols",
        "CPU serial",
        "cusz TU",
        "cusz V",
        "canon TU",
        "canon V",
        "CL TU",
        "CL V",
        "CW TU",
        "CW V",
        "speedupV"
    );

    for (name, freqs) in workloads {
        let symbols = freqs.iter().filter(|&&f| f > 0).count();
        let (_, cpu_serial) = wall_median(5, || codebook::serial::build(&freqs).unwrap());

        let tu = Gpu::rtx5000();
        let (_, s_tu) = codebook::gpu::serial_on_gpu(&tu, &freqs).unwrap();
        let v = Gpu::v100();
        let (_, s_v) = codebook::gpu::serial_on_gpu(&v, &freqs).unwrap();

        let tu2 = Gpu::rtx5000();
        let (_, p_tu) = codebook::gpu::parallel_on_gpu(&tu2, &freqs).unwrap();
        let v2 = Gpu::v100();
        let (_, p_v) = codebook::gpu::parallel_on_gpu(&v2, &freqs).unwrap();

        println!(
            "{:<10} {:>8} | {:>10.3} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} | {:>7.1}x",
            name,
            symbols,
            cpu_serial * 1e3,
            s_tu.gen_codebook * 1e3,
            s_v.gen_codebook * 1e3,
            s_tu.canonize * 1e3,
            s_v.canonize * 1e3,
            p_tu.generate_cl * 1e3,
            p_v.generate_cl * 1e3,
            p_tu.generate_cw * 1e3,
            p_v.generate_cw * 1e3,
            s_v.total / p_v.total,
        );
        // One JSON row per device, so every row has a uniform shape.
        for (device, s, p) in [("RTX 5000", &s_tu, &p_tu), ("V100", &s_v, &p_v)] {
            emit_row(
                &args,
                "table3",
                &Row {
                    workload: name.clone(),
                    device,
                    symbols,
                    cpu_serial_ms: cpu_serial * 1e3,
                    cusz_gen_ms: s.gen_codebook * 1e3,
                    cusz_canonize_ms: s.canonize * 1e3,
                    ours_cl_ms: p.generate_cl * 1e3,
                    ours_cw_ms: p.generate_cw * 1e3,
                    speedup: s.total / p.total,
                },
            );
        }
    }
    println!("\n(CPU serial is wall clock on this host; device columns are modeled)");
}
