//! Table IV — multithreaded CPU codebook construction (ms) vs core count,
//! for 1024-8192 symbols from dataset-like histograms and 16384-65536
//! symbols from synthetic normal histograms (footnote 3).

use huff_bench::{emit_row, wall_median, HarnessArgs};
use huff_core::codebook;
use huff_core::histogram;
use huff_datasets::{dna, histograms, PaperDataset};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    symbols: usize,
    serial_ms: f64,
    cores_ms: Vec<(usize, f64)>,
}

fn main() {
    let args = HarnessArgs::parse();
    let cores = [1usize, 2, 4, 6, 8];

    let mut hists: Vec<(usize, Vec<u64>)> = Vec::new();
    {
        let data = PaperDataset::NyxQuant.generate(4 << 20, 5);
        let mut h = histogram::parallel_cpu::histogram(&data, 1024, 8);
        for f in h.iter_mut() {
            *f = (*f).max(1);
        }
        hists.push((1024, h));
    }
    for k in [3usize, 4, 5] {
        let (syms, space) = dna::kmer_dataset(4 << 20, k, 6);
        hists.push((space, histogram::parallel_cpu::histogram(&syms, space, 8)));
    }
    for n in [16384usize, 32768, 65536] {
        hists.push((n, histograms::normal(n, 50_000_000, 7)));
    }

    println!("TABLE IV: multithread codebook construction (ms, wall clock on this host)\n");
    print!("{:>8} {:>9}", "#SYMBOL", "SERIAL");
    for c in cores {
        print!(" {:>8}", format!("{c} CORES"));
    }
    println!();

    for (n, freqs) in hists {
        let (_, serial) = wall_median(5, || codebook::serial::build(&freqs).unwrap());
        print!("{:>8} {:>9.3}", n, serial * 1e3);
        let mut cores_ms = Vec::new();
        for c in cores {
            let (_, t) =
                wall_median(5, || codebook::multithread::codeword_lengths(&freqs, c).unwrap());
            print!(" {:>8.3}", t * 1e3);
            cores_ms.push((c, t * 1e3));
        }
        println!();
        emit_row(&args, "table4", &Row { symbols: n, serial_ms: serial * 1e3, cores_ms });
    }
    println!(
        "\n(expected shape: flat-array construction beats the serial heap for large n;\n\
         extra threads only pay off for the largest codebooks — Section V-B1)"
    );
}
