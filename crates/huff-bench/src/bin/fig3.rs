//! Fig. 3 — the reduction-factor decision: sweep the average codeword
//! bitwidth, show the rule's chosen r, the expected merged bitwidth window
//! [l_W/2, l_W), and the modeled throughput of each candidate r so the
//! chosen one can be compared against the alternatives.

use gpu_sim::Gpu;
use huff_bench::{emit_row, HarnessArgs};
use huff_core::encode::gpu::encode_on_gpu;
use huff_core::encode::{BreakingStrategy, MergeConfig};
use huff_core::entropy::{decide_reduction_factor, expected_merged_bits};
use huff_core::histogram;
use huff_datasets::calibrated;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    avg_bits: f64,
    chosen_r: u32,
    merged_bits: f64,
    gbps_r2: f64,
    gbps_r3: f64,
    gbps_r4: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let n = 8 << 20;

    println!("FIG 3: average bitwidth -> reduction factor (32-bit word, M = 10)\n");
    println!(
        "{:>9} {:>9} {:>13} | {:>9} {:>9} {:>9}",
        "avg bits", "chosen r", "merged bits", "r=2 GB/s", "r=3 GB/s", "r=4 GB/s"
    );

    for target in [1.03f64, 1.5, 2.0, 2.3, 3.0, 4.0, 5.2, 6.5, 8.0] {
        let data = calibrated::sample(256, target, n, 0xF16);
        let freqs = histogram::parallel_cpu::histogram(&data, 256, 8);
        let book = huff_core::build_codebook(&freqs, 8).unwrap();
        let avg = book.average_bitwidth(&freqs);
        let r = decide_reduction_factor(avg, 32, 10);

        let mut gbps = [0.0f64; 3];
        for (i, cand) in [2u32, 3, 4].into_iter().enumerate() {
            let gpu = Gpu::v100();
            let (_, times) = encode_on_gpu(
                &gpu,
                &data,
                2,
                &book,
                MergeConfig::new(10, cand),
                BreakingStrategy::SparseSidecar,
            )
            .unwrap();
            gbps[i] = (n * 2) as f64 / times.total / 1e9;
        }
        let row = Row {
            avg_bits: avg,
            chosen_r: r,
            merged_bits: expected_merged_bits(avg, r),
            gbps_r2: gbps[0],
            gbps_r3: gbps[1],
            gbps_r4: gbps[2],
        };
        println!(
            "{:>9.4} {:>9} {:>13.1} | {:>9.1} {:>9.1} {:>9.1}",
            row.avg_bits, row.chosen_r, row.merged_bits, row.gbps_r2, row.gbps_r3, row.gbps_r4
        );
        emit_row(&args, "fig3", &row);
    }
    println!("\n(the rule keeps the r-times-merged codeword in [16, 32) bits)");
}
