//! Table VI — multithreaded CPU Huffman encoder on Nyx-Quant-like data:
//! histogram GB/s, codebook ms, encode GB/s and parallel efficiency per
//! core count, with the modeled GPU numbers alongside. `--json` emits
//! `rsh-bench-v1` rows: `table6` for the CPU sweep, `table6-gpu` for the
//! modeled device reference.

use gpu_sim::Gpu;
use huff_bench::{emit_row, wall_median, HarnessArgs};
use huff_core::encode::{gpu::encode_on_gpu, multithread, BreakingStrategy, MergeConfig};
use huff_core::{codebook, histogram, pipeline};
use huff_datasets::PaperDataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cores: usize,
    hist_gbps: f64,
    codebook_ms: f64,
    encode_gbps: f64,
    parallel_efficiency: f64,
    overall_gbps: f64,
}

#[derive(Serialize)]
struct GpuRow {
    device: &'static str,
    hist_gbps: f64,
    encode_gbps: f64,
    overall_gbps: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let d = PaperDataset::NyxQuant;
    let n = d.symbols_at_scale(args.scale);
    eprintln!("generating {n} Nyx-Quant-like symbols...");
    let data = d.generate(n, 66);
    let bytes = (n as u64 * d.symbol_bytes()) as f64;
    let freqs = histogram::parallel_cpu::histogram(&data, 1024, 8);
    let book = huff_core::build_codebook(&freqs, 16).unwrap();

    // Sweep past the physical core count like the paper does (its Table VI
    // includes 64 workers on 56 cores to show the oversubscription cliff).
    let max_cores = std::thread::available_parallelism().map_or(8, |p| p.get());
    let mut cores: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 56, 64];
    cores.retain(|&c| c <= 2 * max_cores);
    if cores.len() < 3 {
        cores = vec![1, 2, 4];
    }

    println!("TABLE VI: multithread CPU encoder on Nyx-Quant-like data (wall clock)\n");
    println!(
        "{:>6} {:>11} {:>12} {:>12} {:>12} {:>13}",
        "cores", "hist GB/s", "codebook ms", "enc GB/s", "efficiency", "overall GB/s"
    );

    let mut base_encode: Option<f64> = None;
    for &c in &cores {
        let (_, hist_t) =
            wall_median(3, || histogram::parallel_cpu::histogram_with_pool(&data, 1024, c));
        let (_, book_t) =
            wall_median(3, || codebook::multithread::codeword_lengths(&freqs, c).unwrap());
        let (_, enc_t) =
            wall_median(3, || multithread::encode_with_pool(&data, &book, c, 1 << 16).unwrap());
        let enc_gbps = bytes / enc_t / 1e9;
        let base = *base_encode.get_or_insert(enc_t);
        let eff = base / enc_t / c as f64;
        let overall = bytes / (hist_t + book_t + enc_t) / 1e9;
        let row = Row {
            cores: c,
            hist_gbps: bytes / hist_t / 1e9,
            codebook_ms: book_t * 1e3,
            encode_gbps: enc_gbps,
            parallel_efficiency: eff,
            overall_gbps: overall,
        };
        println!(
            "{:>6} {:>11.2} {:>12.3} {:>12.2} {:>12.2} {:>13.2}",
            row.cores,
            row.hist_gbps,
            row.codebook_ms,
            row.encode_gbps,
            row.parallel_efficiency,
            row.overall_gbps
        );
        emit_row(&args, "table6", &row);
    }

    // GPU reference columns (modeled).
    println!("\nmodeled GPU reference:");
    for (name, make) in [("RTX 5000", Gpu::rtx5000 as fn() -> Gpu), ("V100", Gpu::v100)] {
        let gpu = make();
        let (_, _, report) = pipeline::run(
            &gpu,
            &data,
            d.symbol_bytes(),
            1024,
            10,
            Some(3),
            pipeline::PipelineKind::ReduceShuffle,
        )
        .unwrap();
        // Encode-only figure from a fresh device for a clean clock.
        let g2 = make();
        let (_, enc) = encode_on_gpu(
            &g2,
            &data,
            d.symbol_bytes(),
            &book,
            MergeConfig::new(10, 3),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let row = GpuRow {
            device: name,
            hist_gbps: report.hist_gbps(),
            encode_gbps: bytes / enc.total / 1e9,
            overall_gbps: report.overall_gbps(),
        };
        println!(
            "{:<9} hist {:>7.1} GB/s | encode {:>7.1} GB/s | overall {:>7.1} GB/s",
            row.device, row.hist_gbps, row.encode_gbps, row.overall_gbps
        );
        emit_row(&args, "table6-gpu", &row);
    }
}
