//! Decoder sweep — modeled decode throughput of every decoder backend
//! ([`huff_core::decode::DecoderKind`]) over the Table V workloads, plus
//! the fixed 64 MB acceptance input.
//!
//! Each row encodes a dataset with the paper's per-dataset reduction
//! factor, then decodes the stream on a modeled V100 with one backend:
//! `serial` (one device thread, the Section II-C baseline), `chunked`
//! (one block per chunk, bit-serial within the chunk) and `lut`
//! (subchunk gap-array sync pass + multi-bit LUT decode, Rivera et al.
//! 2022). All backends are verified bit-exact against the input before
//! the row is emitted. The interesting output is the modeled crossover
//! (DESIGN.md § "Sync-pass cost model"): the bit-serial kernel's time
//! scales with payload *bits*, the LUT pipeline's with *symbols*, so LUT
//! wins on large inputs with ~4+ payload bits per symbol (enwik9, Flan,
//! the 64 MB acceptance input) and loses where codes are near 1 bit
//! (Nyx-Quant) or the input is small enough that its extra sync-pass
//! launch ramp dominates (mr, nci at bench scales).
//!
//! The `accept-64mb` rows always run at full size regardless of
//! `--scale` (they gate CI: modeled LUT throughput must beat bit-serial
//! chunked there); the serial backend is skipped for them — its modeled
//! time is minutes and its host decode is single-threaded.
//!
//! `--json` emits `rsh-bench-v1` rows on stderr; `--out PATH` writes the
//! same rows to a file — `results/BENCH_decode.json` is the committed
//! baseline (see EXPERIMENTS.md for the regeneration command).

use gpu_sim::Gpu;
use huff_bench::{emit_out, emit_row, row_json, wall, HarnessArgs};
use huff_core::decode::{gpu::decode_kind_on_gpu, DecoderKind};
use huff_core::encode::{reduce_shuffle, BreakingStrategy, ChunkedStream, MergeConfig};
use huff_core::{histogram, CanonicalCodebook};
use huff_datasets::PaperDataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    decoder: &'static str,
    device: &'static str,
    input_mb: f64,
    avg_bits: f64,
    chunks: usize,
    modeled_ms: f64,
    modeled_gbps: f64,
    wall_ms: f64,
}

/// Encode `data` the way `table2`/`pipeline` do: CPU histogram, parallel
/// codebook, reduce-shuffle with the sparse sidecar.
fn encode(data: &[u16], bins: usize, reduction: u32) -> (ChunkedStream, CanonicalCodebook) {
    let freqs = histogram::parallel_cpu::histogram(data, bins, rayon::current_num_threads());
    let book = huff_core::build_codebook(&freqs, 16).expect("codebook");
    let config = MergeConfig::new(10, reduction);
    let stream = reduce_shuffle::encode(data, &book, config, BreakingStrategy::SparseSidecar)
        .expect("encode");
    (stream, book)
}

fn sweep_rows(
    label: &str,
    data: &[u16],
    symbol_bytes: u64,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    decoders: &[DecoderKind],
) -> Vec<Row> {
    let input_bytes = data.len() as u64 * symbol_bytes;
    let avg_bits = if stream.num_symbols == 0 {
        0.0
    } else {
        stream.total_bits as f64 / stream.num_symbols as f64
    };
    decoders
        .iter()
        .map(|&decoder| {
            let gpu = Gpu::v100();
            let ((symbols, secs), wall_s) =
                wall(|| decode_kind_on_gpu(&gpu, stream, book, decoder).expect("decode"));
            assert_eq!(symbols, data, "{label}/{} not bit-exact", decoder.name());
            Row {
                dataset: label.to_string(),
                decoder: decoder.name(),
                device: "V100",
                input_mb: input_bytes as f64 / 1e6,
                avg_bits,
                chunks: stream.num_chunks(),
                modeled_ms: secs * 1e3,
                modeled_gbps: input_bytes as f64 / secs / 1e9,
                wall_ms: wall_s * 1e3,
            }
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    println!("DECODER SWEEP: modeled decode on V100, scale {}\n", args.scale);
    println!(
        "{:<12} {:<8} {:>8} {:>9} {:>8} {:>12} {:>13} {:>9}",
        "dataset", "decoder", "MB", "avg bits", "chunks", "modeled ms", "modeled GB/s", "wall ms"
    );

    let all = [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut];
    let mut lines = Vec::new();
    let mut emit = |args: &HarnessArgs, rows: Vec<Row>| {
        for row in rows {
            println!(
                "{:<12} {:<8} {:>8.2} {:>9.4} {:>8} {:>12.4} {:>13.1} {:>9.1}",
                row.dataset,
                row.decoder,
                row.input_mb,
                row.avg_bits,
                row.chunks,
                row.modeled_ms,
                row.modeled_gbps,
                row.wall_ms,
            );
            emit_row(args, "decode", &row);
            lines.push(row_json("decode", &row));
        }
    };

    for d in PaperDataset::all() {
        let n = d.symbols_at_scale(args.scale);
        let data = d.generate(n, 0xD5EA5E);
        let (stream, book) = encode(&data, d.num_symbols(), d.paper_reduction());
        emit(&args, sweep_rows(d.name(), &data, d.symbol_bytes(), &stream, &book, &all));
        println!();
    }

    // The fixed 64 MB acceptance input: enwik8-shaped byte data (~5.2
    // payload bits/symbol), always full-size. CI gates on the lut row
    // beating the chunked row here.
    let d = PaperDataset::Enwik8;
    let n = (64 << 20) / d.symbol_bytes() as usize;
    let data = d.generate(n, 0xACCE97);
    let (stream, book) = encode(&data, d.num_symbols(), d.paper_reduction());
    emit(
        &args,
        sweep_rows(
            "accept-64mb",
            &data,
            d.symbol_bytes(),
            &stream,
            &book,
            &[DecoderKind::Chunked, DecoderKind::Lut],
        ),
    );

    emit_out(&args, &lines);
    println!("\n(modeled device time; wall ms is the host-side decode doing the bit-exact work)");
}
