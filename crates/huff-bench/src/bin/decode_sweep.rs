//! Decoder sweep — modeled decode throughput of every decoder backend
//! ([`huff_core::decode::DecoderKind`]) over the Table V workloads, plus
//! the fixed 64 MB acceptance input.
//!
//! Each row encodes a dataset with the paper's per-dataset reduction
//! factor, then decodes the stream on a modeled V100 with one backend:
//! `serial` (one device thread, the Section II-C baseline), `chunked`
//! (one block per chunk, bit-serial within the chunk) and `lut`
//! (subchunk gap-array sync pass + multi-bit LUT decode, Rivera et al.
//! 2022). All backends are verified bit-exact against the input before
//! the row is emitted. The interesting output is the modeled crossover
//! (DESIGN.md § "Sync-pass cost model"): the bit-serial kernel's time
//! scales with payload *bits*, the LUT pipeline's with *symbols*, so LUT
//! wins on large inputs with ~4+ payload bits per symbol (enwik9, Flan,
//! the 64 MB acceptance input) and loses where codes are near 1 bit
//! (Nyx-Quant) or the input is small enough that its extra sync-pass
//! launch ramp dominates (mr, nci at bench scales).
//!
//! The `accept-64mb` rows always run at full size regardless of
//! `--scale` (they gate CI: modeled LUT throughput must beat bit-serial
//! chunked there); the serial backend is skipped for them — its modeled
//! time is minutes and its host decode is single-threaded.
//!
//! The rows come from [`huff_bench::sweeps::decode_rows`] — the same
//! function the `regression` gate re-runs against the committed baseline.
//! `--json` emits `rsh-bench-v1` rows on stderr; `--out PATH` writes the
//! same rows to a file — `results/BENCH_decode.json` is the committed
//! baseline (see EXPERIMENTS.md for the regeneration command).

use huff_bench::sweeps::decode_rows;
use huff_bench::{emit_out, emit_row, row_json, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    println!("DECODER SWEEP: modeled decode on V100, scale {}\n", args.scale);
    println!(
        "{:<12} {:<8} {:>8} {:>9} {:>8} {:>12} {:>13} {:>9}",
        "dataset", "decoder", "MB", "avg bits", "chunks", "modeled ms", "modeled GB/s", "wall ms"
    );

    let mut lines = Vec::new();
    let mut group: Option<String> = None;
    for row in decode_rows(args.scale) {
        // Blank line between datasets.
        if group.as_deref().is_some_and(|g| g != row.dataset) {
            println!();
        }
        group = Some(row.dataset.clone());
        println!(
            "{:<12} {:<8} {:>8.2} {:>9.4} {:>8} {:>12.4} {:>13.1} {:>9.1}",
            row.dataset,
            row.decoder,
            row.input_mb,
            row.avg_bits,
            row.chunks,
            row.modeled_ms,
            row.modeled_gbps,
            row.wall_ms,
        );
        emit_row(&args, "decode", &row);
        lines.push(row_json("decode", &row));
    }

    emit_out(&args, &lines);
    println!("\n(modeled device time; wall ms is the host-side decode doing the bit-exact work)");
}
