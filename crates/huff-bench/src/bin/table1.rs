//! Table I — parallelism taxonomy of the pipeline's kernels.

fn main() {
    println!("TABLE I: Parallelism implemented for Huffman coding's subprocedures\n");
    print!("{}", huff_core::kernels::render_table());
}
