//! Table V — full pipeline breakdown on the six datasets, cuSZ coarse
//! baseline vs the reduce-shuffle encoder, on both devices: average bits,
//! breaking fraction, reduce factor, histogram GB/s, codebook ms, encode
//! GB/s, overall GB/s. `--json` emits `rsh-bench-v1` rows;
//! `--trace PATH` additionally writes an `rsh-trace-v1` pipeline profile
//! of the reduce-shuffle encoder on the V100 over the first dataset.

use gpu_sim::Gpu;
use huff_bench::{emit_row, emit_trace, HarnessArgs};
use huff_core::metrics;
use huff_core::pipeline::{run, PipelineKind};
use huff_datasets::PaperDataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    encoder: &'static str,
    dataset: &'static str,
    device: &'static str,
    input_mb: f64,
    avg_bits: f64,
    breaking_pct: f64,
    reduce: u32,
    hist_gbps: f64,
    codebook_ms: f64,
    encode_gbps: f64,
    overall_gbps: f64,
}

fn main() {
    let include_prefix_sum = std::env::args().any(|a| a == "--prefix-sum");
    let args = HarnessArgs::parse();
    println!(
        "TABLE V: overall Huffman encoder breakdown (modeled device time), scale {}\n",
        args.scale
    );
    println!(
        "{:<8} {:<10} {:<9} {:>8} {:>9} {:>10} {:>8} {:>10} {:>12} {:>12} {:>13}",
        "encoder",
        "dataset",
        "device",
        "MB",
        "avg bits",
        "breaking%",
        "#reduce",
        "hist GB/s",
        "codebook ms",
        "encode GB/s",
        "overall GB/s"
    );

    let mut encoders =
        vec![("cuSZ", PipelineKind::CuszCoarse), ("ours", PipelineKind::ReduceShuffle)];
    if include_prefix_sum {
        encoders.push(("prefix", PipelineKind::PrefixSum));
    }
    for (enc_name, kind) in encoders {
        for d in PaperDataset::all() {
            let n = d.symbols_at_scale(args.scale);
            let data = d.generate(n, 0xD5EA5E);
            for (dev, make) in [("RTX 5000", Gpu::rtx5000 as fn() -> Gpu), ("V100", Gpu::v100)] {
                let gpu = make();
                let (_, _, report) = run(
                    &gpu,
                    &data,
                    d.symbol_bytes(),
                    d.num_symbols(),
                    10,
                    Some(d.paper_reduction()),
                    kind,
                )
                .unwrap();
                let row = Row {
                    encoder: enc_name,
                    dataset: d.name(),
                    device: dev,
                    input_mb: report.input_bytes as f64 / 1e6,
                    avg_bits: report.avg_bits,
                    breaking_pct: report.breaking_fraction * 100.0,
                    reduce: report.reduction,
                    hist_gbps: report.hist_gbps(),
                    codebook_ms: report.times.codebook * 1e3,
                    encode_gbps: report.encode_gbps(),
                    overall_gbps: report.overall_gbps(),
                };
                println!(
                    "{:<8} {:<10} {:<9} {:>8.1} {:>9.4} {:>10.6} {:>8} {:>10.1} {:>12.3} {:>12.1} {:>13.1}",
                    row.encoder,
                    row.dataset,
                    row.device,
                    row.input_mb,
                    row.avg_bits,
                    row.breaking_pct,
                    row.reduce,
                    row.hist_gbps,
                    row.codebook_ms,
                    row.encode_gbps,
                    row.overall_gbps,
                );
                emit_row(&args, "table5", &row);
            }
        }
        println!();
    }
    println!("(run with --scale 1.0 for the paper's full dataset sizes)");

    if args.trace.is_some() {
        let d = PaperDataset::all()[0];
        let n = d.symbols_at_scale(args.scale);
        let data = d.generate(n, 0xD5EA5E);
        let gpu = Gpu::v100();
        let opts = metrics::ProfileOptions::new(d.num_symbols())
            .symbol_bytes(d.symbol_bytes())
            .reduction(d.paper_reduction());
        let (_, profile) = metrics::profile_compress(&gpu, &data, &opts).unwrap();
        emit_trace(&args, &profile);
    }
}
