//! Fig. 1 — REDUCE-merge of 8-to-1: the per-iteration state of the
//! codeword array as one thread folds eight codewords into one unit.
//! `--json` emits the trace as `rsh-bench-v1` rows (one per merge level).

use huff_bench::{emit_row, HarnessArgs};
use huff_core::encode::reduce_merge::trace_fig1;
use huff_core::histogram;
use huff_datasets::PaperDataset;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    level: usize,
    codewords: Vec<String>,
}

fn main() {
    let args = HarnessArgs::parse();
    let data = PaperDataset::NyxQuant.generate(100_000, 8);
    let freqs = histogram::parallel_cpu::histogram(&data, 1024, 4);
    let book = huff_core::build_codebook(&freqs, 8).unwrap();

    // Pick a window with some symbol variety so the trace shows
    // variable-length codes merging (an all-centre-bin window is all "0"s).
    let window = data
        .chunks_exact(8)
        .find(|w| {
            let distinct: std::collections::HashSet<u16> = w.iter().copied().collect();
            distinct.len() >= 3
        })
        .unwrap_or(&data[..8]);
    println!("FIG 1: REDUCE-merge of 8-to-1 (one unit, r = 3)\n");
    println!("symbols: {window:?}");
    for (i, level) in trace_fig1(window, &book).into_iter().enumerate() {
        let tag = if i == 0 { "lookup ".to_string() } else { format!("iter {i}  ") };
        println!("{tag}[{}]", level.join("] ["));
        emit_row(&args, "fig1", &Row { level: i, codewords: level });
    }
    println!(
        "\n(each iteration halves the codeword count; lengths add — MERGE is order-preserving)"
    );
}
