//! Wall-clock host benchmarks: decoders.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use huff_core::encode::{self, BreakingStrategy, MergeConfig};
use huff_core::{decode, histogram};
use huff_datasets::PaperDataset;

fn bench_decode(c: &mut Criterion) {
    let n = 1 << 20;
    let data = PaperDataset::Enwik8.generate(n, 3);
    let freqs = histogram::parallel_cpu::histogram(&data, 256, 8);
    let book = huff_core::build_codebook(&freqs, 16).unwrap();
    let serial_stream = encode::serial::encode(&data, &book).unwrap();
    let chunked = encode::reduce_shuffle::encode(
        &data,
        &book,
        MergeConfig::new(10, 2),
        BreakingStrategy::SparseSidecar,
    )
    .unwrap();
    let tree = huff_core::tree::build_tree(&freqs).unwrap();
    let tree_stream = {
        let codes = huff_core::tree::tree_codebook(&freqs).unwrap();
        let mut w = huff_core::bitstream::BitWriter::new();
        for &s in &data {
            w.push_code(codes[s as usize]);
        }
        w.finish()
    };

    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Bytes(n as u64));
    g.sample_size(10);

    g.bench_function("treeless_canonical", |b| {
        b.iter(|| {
            decode::canonical::decode(&serial_stream.bytes, serial_stream.bit_len, n, &book)
                .unwrap()
        });
    });
    g.bench_function("tree_walking", |b| {
        b.iter(|| decode::tree::decode(&tree_stream.0, tree_stream.1, n, &tree).unwrap());
    });
    g.bench_function("chunked_parallel", |b| {
        b.iter(|| decode::chunked::decode(&chunked, &book).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
