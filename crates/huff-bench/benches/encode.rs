//! Wall-clock host benchmarks: the encoder family on Nyx-Quant-like data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use huff_core::encode::{self, BreakingStrategy, MergeConfig};
use huff_core::histogram;
use huff_datasets::PaperDataset;

fn bench_encode(c: &mut Criterion) {
    let n = 1 << 20;
    let data = PaperDataset::NyxQuant.generate(n, 2);
    let freqs = histogram::parallel_cpu::histogram(&data, 1024, 8);
    let book = huff_core::build_codebook(&freqs, 16).unwrap();

    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Bytes((n * 2) as u64));
    g.sample_size(10);

    g.bench_function("serial", |b| {
        b.iter(|| encode::serial::encode(&data, &book).unwrap());
    });
    for threads in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("multithread", threads), &threads, |b, &t| {
            b.iter(|| encode::multithread::encode(&data, &book, t, 1 << 16).unwrap());
        });
    }
    g.bench_function("prefix_sum", |b| {
        b.iter(|| encode::prefix_sum::encode(&data, &book).unwrap());
    });
    g.bench_function("coarse_chunked", |b| {
        b.iter(|| encode::coarse::encode(&data, &book, MergeConfig::new(10, 3)).unwrap());
    });
    for r in [2u32, 3, 4] {
        g.bench_with_input(BenchmarkId::new("reduce_shuffle_r", r), &r, |b, &r| {
            b.iter(|| {
                encode::reduce_shuffle::encode(
                    &data,
                    &book,
                    MergeConfig::new(10, r),
                    BreakingStrategy::SparseSidecar,
                )
                .unwrap()
            });
        });
    }
    // Ablation: representative-word width (u32 per the paper vs the u64
    // future-work variant) on a single chunk path.
    g.bench_function("chunk_word_u32", |b| {
        b.iter(|| {
            encode::reduce_shuffle::encode_chunk::<u32>(
                &data[..1024],
                &book,
                MergeConfig::new(10, 3),
            )
        });
    });
    g.bench_function("chunk_word_u64", |b| {
        b.iter(|| {
            encode::reduce_shuffle::encode_chunk::<u64>(
                &data[..1024],
                &book,
                MergeConfig::new(10, 3),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
