//! Wall-clock host benchmarks: histogramming backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use huff_core::histogram;
use huff_datasets::PaperDataset;

fn bench_histogram(c: &mut Criterion) {
    let n = 2 << 20;
    let data = PaperDataset::NyxQuant.generate(n, 1);
    let mut g = c.benchmark_group("histogram");
    g.throughput(Throughput::Bytes((n * 2) as u64));
    g.sample_size(10);

    g.bench_function("serial", |b| {
        b.iter(|| histogram::serial::histogram(&data, 1024));
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel_cpu", threads), &threads, |b, &t| {
            b.iter(|| histogram::parallel_cpu::histogram(&data, 1024, t));
        });
    }
    g.bench_function("gpu_sim_functional", |b| {
        b.iter(|| {
            let gpu = gpu_sim::Gpu::v100();
            histogram::gpu::histogram(&gpu, &data, 1024, 2)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
