//! Wall-clock host benchmarks: full compress/decompress archives per
//! dataset preset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use huff_core::archive::{compress, decompress, CompressOptions};
use huff_datasets::PaperDataset;

fn bench_end_to_end(c: &mut Criterion) {
    let n = 1 << 19;
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);

    for d in PaperDataset::all() {
        let data = d.generate(n, 9);
        let mut opts = CompressOptions::new(d.num_symbols());
        opts.reduction = Some(d.paper_reduction());
        g.throughput(Throughput::Bytes(n as u64 * d.symbol_bytes()));
        g.bench_with_input(BenchmarkId::new("compress", d.name()), &data, |b, data| {
            b.iter(|| compress(data, &opts).unwrap());
        });
        let packed = compress(&data, &opts).unwrap();
        g.bench_with_input(BenchmarkId::new("decompress", d.name()), &packed, |b, p| {
            b.iter(|| decompress(p).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
