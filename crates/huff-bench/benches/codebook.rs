//! Wall-clock host benchmarks: codebook construction (the CPU-side basis
//! of Tables III and IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use huff_core::codebook;
use huff_datasets::histograms;

fn bench_codebook(c: &mut Criterion) {
    let mut g = c.benchmark_group("codebook");
    g.sample_size(10);

    for n in [1024usize, 4096, 16384] {
        let freqs = histograms::normal(n, 10_000_000, 7);
        g.bench_with_input(BenchmarkId::new("serial_heap", n), &freqs, |b, f| {
            b.iter(|| codebook::serial::build(f).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("parallel_two_phase", n), &freqs, |b, f| {
            b.iter(|| codebook::parallel(f, 16).unwrap());
        });
        for threads in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("multithread_{threads}t"), n),
                &freqs,
                |b, f| {
                    b.iter(|| codebook::multithread::codeword_lengths(f, threads).unwrap());
                },
            );
        }
    }

    // Ablation: Merge-Path partition count in GenerateCL (the paper sizes
    // partitions to the SM count).
    {
        let freqs = {
            let mut f = histograms::normal(8192, 10_000_000, 9);
            f.sort_unstable();
            f
        };
        for partitions in [1usize, 16, 80] {
            g.bench_with_input(
                BenchmarkId::new("generate_cl_partitions", partitions),
                &partitions,
                |b, &p| {
                    b.iter(|| codebook::generate_cl(&freqs, p));
                },
            );
        }
    }

    // Ablation: PRAM-style pointer-doubling depth computation vs the O(n)
    // sweep, on the parent array of a 65536-leaf Huffman tree.
    {
        let freqs = histograms::normal(65536, 10_000_000, 7);
        let book = codebook::parallel(&freqs, 16).unwrap();
        let _ = book;
        // Rebuild the raw parent array via the multithread builder's
        // internals: simplest faithful stand-in is a bamboo-free random
        // Huffman-like parent array.
        let n = 65536usize;
        let total = 2 * n - 1;
        let mut parent = vec![u32::MAX; total];
        let mut state = 3u64;
        for (id, p) in parent.iter_mut().enumerate().take(total - 1) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lo = id as u32 + 1;
            let hi = (total - 1) as u32;
            *p = lo + ((state >> 33) as u32 % (hi - lo + 1).max(1));
        }
        g.bench_function("pram_pointer_doubling_65536", |b| {
            b.iter(|| codebook::multithread::pointer_doubling_depths(&parent));
        });
        g.bench_function("sequential_sweep_65536", |b| {
            b.iter(|| {
                let mut depth = vec![0u32; total];
                for id in (0..total - 1).rev() {
                    depth[id] = depth[parent[id] as usize] + 1;
                }
                depth
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codebook);
criterion_main!(benches);
