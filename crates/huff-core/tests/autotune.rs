//! Acceptance tests for the adaptive autotuner (`huff_core::tune`).
//!
//! The contract under test:
//!
//! 1. **Bit-identity.** Compressing through the tuner yields exactly the
//!    bytes you get by passing the tuner's chosen parameters explicitly
//!    to the underlying entry points (`compress_batched`,
//!    `archive::compress`, `store_raw`) — the tuner selects, it never
//!    invents a format.
//! 2. **Cache round-trip.** A persisted `rsh-tune-v1` cache reloads to
//!    the identical decisions, and a corrupted cache degrades to fresh
//!    modeling — it never fails a request and never serves a mangled
//!    decision.
//! 3. **Dispatch round-trip.** Every dispatch path's output decompresses
//!    through the single `archive::decompress_with` entry point.

use gpu_sim::DeviceSpec;
use huff_core::archive::{self, CompressOptions};
use huff_core::batch::{self, BatchOptions};
use huff_core::integrity::DecompressOptions;
use huff_core::tune::{self, Dispatch, TuneCache, Tuner};
use proptest::prelude::*;

/// Skewed symbols over `k` bins: a golden-ratio multiplicative hash
/// folded to a triangular-ish distribution, deterministic per seed.
fn skewed(n: usize, k: u16, seed: u64) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_add(seed).wrapping_mul(0x9E3779B97F4A7C15);
            let a = (x >> 33) as u16 % k;
            let b = (x & 0xFFFF) as u16 % k;
            a.min(b)
        })
        .collect()
}

/// Re-create the tuner's output through the explicit public entry
/// points, from the decision's own parameters.
fn explicit_bytes(
    symbols: &[u16],
    num_symbols: usize,
    symbol_bytes: u8,
    decision: &tune::Decision,
    device: &DeviceSpec,
) -> Vec<u8> {
    match decision.dispatch {
        Dispatch::StoreRaw => tune::store_raw(symbols, symbol_bytes).unwrap(),
        Dispatch::CpuSerial => {
            let mut opts = CompressOptions::new(num_symbols);
            opts.reduction = Some(decision.reduction.max(1));
            opts.symbol_bytes = symbol_bytes;
            archive::compress(symbols, &opts).unwrap()
        }
        Dispatch::Gpu => {
            let mut opts = BatchOptions::new(num_symbols);
            opts.shard_symbols = symbols.len().div_ceil(decision.shards.max(1) as usize).max(1);
            opts.streams = decision.streams.max(1) as usize;
            opts.devices = vec![device.clone()];
            opts.reduction = Some(decision.reduction.max(1));
            opts.symbol_bytes = symbol_bytes;
            let (frame, _) = batch::compress_batched(symbols, &opts).unwrap();
            frame
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Autotuned output is bit-identical to the same parameters passed
    /// explicitly, across input sizes that exercise all three dispatch
    /// paths, and round-trips through the archive entry point.
    #[test]
    fn autotuned_output_matches_explicit_parameters(
        n in 64usize..60_000,
        k in 2u16..512,
        seed in 0u64..1u64 << 48,
    ) {
        let symbols = skewed(n, k, seed);
        let device = DeviceSpec::v100();
        let mut tuner = Tuner::new(device.clone());
        let (_, decision, hit) =
            tuner.decide(&symbols, usize::from(k), 2).unwrap();
        prop_assert!(!hit, "fresh tuner must model, not hit");

        let (auto_bytes, d2, _) = tuner.compress(&symbols, usize::from(k), 2).unwrap();
        prop_assert_eq!(&d2, &decision, "decide() then compress() must agree");

        let manual = explicit_bytes(&symbols, usize::from(k), 2, &decision, &device);
        prop_assert_eq!(&auto_bytes, &manual, "tuned vs explicit bytes diverge");

        let back = archive::decompress_with(&auto_bytes, &DecompressOptions::default()).unwrap();
        prop_assert_eq!(back.symbols, symbols);
    }

    /// Cache round-trip: decisions survive the disk format bit-exactly,
    /// and a warmed tuner replays them without re-modeling.
    #[test]
    fn cache_roundtrips_decisions_bit_exactly(
        n in 256usize..20_000,
        k in 2u16..300,
        seed in 0u64..1u64 << 48,
    ) {
        let dir = std::env::temp_dir().join(format!("rsh-tune-prop-{seed:x}-{n}"));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune.cache");
        let symbols = skewed(n, k, seed);

        let mut cold = Tuner::with_cache_path(DeviceSpec::v100(), &path);
        let (sig, decision, hit) = cold.decide(&symbols, usize::from(k), 2).unwrap();
        prop_assert!(!hit);

        let mut warm = Tuner::with_cache_path(DeviceSpec::v100(), &path);
        let (sig2, decision2, hit2) = warm.decide(&symbols, usize::from(k), 2).unwrap();
        prop_assert!(hit2, "persisted decision must be found on reload");
        prop_assert_eq!(sig2, sig);
        prop_assert_eq!(decision2, decision);
        prop_assert_eq!(warm.modeled_sweeps, 0);

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupted_cache_file_degrades_to_modeling() {
    let dir = std::env::temp_dir().join("rsh-tune-corrupt-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tune.cache");
    let symbols = skewed(30_000, 64, 7);

    let mut tuner = Tuner::with_cache_path(DeviceSpec::v100(), &path);
    let (_, clean_decision, _) = tuner.decide(&symbols, 64, 2).unwrap();
    let clean_len = std::fs::metadata(&path).unwrap().len();
    assert!(clean_len > 12, "cache file should have a header plus one entry");

    // Flip a byte in every region of the file; the reader contract is
    // "fall back to modeling, never fail the request".
    for at in [0u64, 5, 9, 13, clean_len - 2] {
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[at as usize] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();

        let mut hurt = Tuner::with_cache_path(DeviceSpec::v100(), &path);
        let (_, decision, hit) = hurt.decide(&symbols, 64, 2).unwrap();
        assert!(!hit, "corrupt cache (byte {at}) must not serve a hit");
        assert_eq!(decision, clean_decision, "re-modeled decision must match the clean one");
    }

    // A truncated file keeps no partial entry.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let cache = TuneCache::load(&path);
    assert!(cache.is_empty(), "truncated single-entry cache must load empty");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_dispatch_path_is_archive_compatible() {
    let device = DeviceSpec::v100();
    let cases: Vec<(Vec<u16>, usize, u8, Dispatch)> = vec![
        // Large skewed input: GPU batch path, RSHM frame.
        (skewed(50_000, 256, 1), 256, 2, Dispatch::Gpu),
        // Tiny input: CPU-serial path, RSH2 archive.
        (skewed(512, 64, 2), 64, 2, Dispatch::CpuSerial),
        // Uniform bytes: incompressible, RSHR raw container.
        ((0..40_000).map(|i| (i % 251) as u16).collect(), 256, 1, Dispatch::StoreRaw),
    ];
    for (symbols, k, width, want) in cases {
        let mut tuner = Tuner::new(device.clone());
        let (sig, decision, _) = tuner.decide(&symbols, k, width).unwrap();
        assert_eq!(decision.dispatch, want, "sig {sig:?}");
        let bytes = tune::compress_with_decision(
            &symbols,
            k,
            width,
            &decision,
            std::slice::from_ref(&device),
        )
        .unwrap();
        let back = archive::decompress_with(&bytes, &DecompressOptions::default()).unwrap();
        assert_eq!(back.symbols, symbols);
        assert!(archive::verify(&bytes).unwrap().is_clean());
    }
}

#[test]
fn signature_quantization_reuses_decisions_across_similar_inputs() {
    // Two different seeds over the same alphabet and size class produce
    // the same signature, so the second input rides the first's cached
    // decision — the whole point of signature-keyed (not input-keyed)
    // caching.
    let a = skewed(32_768, 128, 11);
    let b = skewed(32_768, 128, 13);
    let mut tuner = Tuner::new(DeviceSpec::v100());
    let (sig_a, _, hit_a) = tuner.decide(&a, 128, 2).unwrap();
    let (sig_b, _, hit_b) = tuner.decide(&b, 128, 2).unwrap();
    assert!(!hit_a);
    assert_eq!(sig_a, sig_b, "similar inputs must quantize to one signature");
    assert!(hit_b, "second similar input must hit the in-memory cache");
    assert_eq!(tuner.modeled_sweeps, 1);
}
