//! Property tests for the decoder-backend equivalence contract: `serial`,
//! `chunked` and `lut` must produce bit-identical output — strict and
//! best-effort — for any distribution, chunk geometry, LUT width and
//! subchunk width, including through the RSHM frame path.

use huff_core::archive::{compress, CompressOptions};
use huff_core::codebook;
use huff_core::decode::{self, lut, DecoderKind};
use huff_core::encode::{reduce_shuffle, BreakingStrategy, ChunkedStream, MergeConfig};
use huff_core::{frame, CanonicalCodebook, DecompressOptions};
use proptest::prelude::*;

const KINDS: [DecoderKind; 3] = [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut];

/// Encode `picks` (indices into the frequency table) under the given
/// geometry, returning the stream and book.
fn encoded(
    freqs: &[u64],
    picks: &[usize],
    magnitude: u32,
    reduction: u32,
    strategy: BreakingStrategy,
) -> (ChunkedStream, CanonicalCodebook, Vec<u16>) {
    let book = codebook::parallel(freqs, 4).unwrap();
    let syms: Vec<u16> = picks.iter().map(|&p| (p % freqs.len()) as u16).collect();
    let stream =
        reduce_shuffle::encode(&syms, &book, MergeConfig::new(magnitude, reduction), strategy)
            .unwrap();
    (stream, book, syms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Strict decode: all three backends recover the input exactly, for
    /// any distribution, chunk magnitude, reduction factor and breaking
    /// strategy.
    #[test]
    fn all_backends_agree_strict(
        freqs in proptest::collection::vec(1u64..5_000, 2..48),
        picks in proptest::collection::vec(0usize..48, 0..3_000),
        magnitude in 4u32..13,
        reduction in 1u32..4,
        widen in any::<bool>(),
    ) {
        let strategy =
            if widen { BreakingStrategy::WidenWord } else { BreakingStrategy::SparseSidecar };
        let (stream, book, syms) =
            encoded(&freqs, &picks, magnitude, reduction.min(magnitude - 1), strategy);
        for kind in KINDS {
            let got = decode::decode_stream(&stream, &book, kind).unwrap();
            prop_assert_eq!(&got, &syms, "{} diverged from input", kind.name());
        }
    }

    /// The LUT decoder is exact for any probe width and subchunk width,
    /// not just the defaults the dispatcher uses.
    #[test]
    fn lut_exact_for_any_probe_and_subchunk_width(
        freqs in proptest::collection::vec(1u64..2_000, 2..40),
        picks in proptest::collection::vec(0usize..40, 1..2_000),
        lut_bits in 1u32..15,
        width_exp in 0u32..21,
        width_jitter in 0u64..3,
    ) {
        // Widths from 1 bit to 1 MiBit, off-power-of-two included.
        let width_bits = (1u64 << width_exp) + width_jitter;
        let (stream, book, syms) =
            encoded(&freqs, &picks, 10, 2, BreakingStrategy::SparseSidecar);
        let table = lut::DecodeLut::build(&book, lut_bits);
        let cfg = lut::SubchunkConfig { width_bits };
        let (got, stats) = lut::decode_with(&stream, &book, &table, cfg).unwrap();
        prop_assert_eq!(&got, &syms, "lut({lut_bits}) width {width_bits} diverged");
        // Coded symbols plus sidecar-spliced breaking-unit symbols cover
        // the input exactly.
        prop_assert_eq!(
            stats.decoded_symbols + stream.outliers.total_symbols() as u64,
            syms.len() as u64
        );
    }

    /// Best-effort decode: every backend fills the same damaged chunks
    /// with the same sentinel runs and decodes the same symbols from the
    /// intact chunks.
    #[test]
    fn all_backends_agree_best_effort(
        freqs in proptest::collection::vec(1u64..2_000, 2..40),
        picks in proptest::collection::vec(0usize..40, 1..3_000),
        damage_seed in any::<u64>(),
        sentinel in any::<u16>(),
    ) {
        let (stream, book, _) = encoded(&freqs, &picks, 8, 2, BreakingStrategy::SparseSidecar);
        // Derive a damage mask from the seed: ~1 in 4 chunks damaged.
        let damaged: Vec<bool> = (0..stream.num_chunks())
            .map(|i| {
                let x = (damage_seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
                    .wrapping_mul(0xD1B54A32D192ED03);
                x >> 62 == 0
            })
            .collect();
        let (want, want_report) =
            decode::decode_stream_best_effort(&stream, &book, &damaged, sentinel, KINDS[0]);
        for kind in &KINDS[1..] {
            let (got, report) =
                decode::decode_stream_best_effort(&stream, &book, &damaged, sentinel, *kind);
            prop_assert_eq!(&got, &want, "{} best-effort diverged", kind.name());
            prop_assert_eq!(
                &report.damaged_chunks, &want_report.damaged_chunks,
                "{} reported different damage", kind.name()
            );
            prop_assert_eq!(
                report.symbols_lost, want_report.symbols_lost,
                "{} lost a different symbol count", kind.name()
            );
        }
    }

    /// The RSHM frame path honors the selected backend and stays
    /// bit-exact for every backend and shard geometry.
    #[test]
    fn frame_path_agrees_for_every_backend(
        n in 1usize..20_000,
        shard_symbols in 512usize..8_192,
        seed in any::<u64>(),
    ) {
        let syms: Vec<u16> = (0..n)
            .map(|i| {
                let x = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                ((x >> 41) % 256) as u16
            })
            .collect();
        let shards: Vec<Vec<u8>> = syms
            .chunks(shard_symbols)
            .map(|s| compress(s, &CompressOptions::new(256)).unwrap())
            .collect();
        let framed =
            frame::assemble(&shards, syms.len() as u64, shard_symbols as u64, 2).unwrap();
        for kind in KINDS {
            let opts = DecompressOptions::default().with_decoder(kind);
            let rec = frame::decompress_with(&framed, &opts).unwrap();
            prop_assert_eq!(&rec.symbols, &syms, "{} frame decode diverged", kind.name());
            prop_assert!(rec.report.is_clean());
        }
    }
}
