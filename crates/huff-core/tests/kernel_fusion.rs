//! Property tests for the kernel-fusion contract: the fused and unfused
//! [`KernelPlan`]s are pure launch-schedule choices — encoded streams,
//! archives and RSHM frames must be bit-identical under every plan, for
//! every breaking strategy, and decode exactly under every decoder
//! backend. Fusion changes modeled kernel time, never bytes.

use gpu_sim::Gpu;
use huff_core::archive;
use huff_core::batch::{compress_batched, BatchOptions};
use huff_core::codebook;
use huff_core::decode::{self, DecoderKind};
use huff_core::encode::{gpu::encode_on_gpu_with_plan, BreakingStrategy, MergeConfig};
use huff_core::metrics::{self, ProfileOptions};
use huff_core::{DecompressOptions, KernelPlan};
use proptest::prelude::*;

const KINDS: [DecoderKind; 3] = [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut];
const PLANS: [KernelPlan; 2] = [KernelPlan::fused(), KernelPlan::unfused()];

fn symbols(n: usize, seed: u64, bins: u64) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let x = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            ((x >> 41) % bins) as u16
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Device encode: fused and unfused plans emit bit-identical chunked
    /// streams for any distribution, geometry and breaking strategy, and
    /// every decoder backend recovers the input from either.
    #[test]
    fn plans_encode_bit_identical_streams(
        freqs in proptest::collection::vec(1u64..4_000, 2..48),
        picks in proptest::collection::vec(0usize..48, 1..3_000),
        magnitude in 4u32..12,
        reduction in 1u32..4,
        widen in any::<bool>(),
    ) {
        let strategy =
            if widen { BreakingStrategy::WidenWord } else { BreakingStrategy::SparseSidecar };
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> = picks.iter().map(|&p| (p % freqs.len()) as u16).collect();
        let config = MergeConfig::new(magnitude, reduction.min(magnitude - 1));

        let streams: Vec<_> = PLANS
            .iter()
            .map(|&plan| {
                let gpu = Gpu::v100();
                encode_on_gpu_with_plan(&gpu, &syms, 2, &book, config, strategy, plan).unwrap().0
            })
            .collect();
        prop_assert_eq!(&streams[0], &streams[1], "plans diverged on stream bytes");
        for kind in KINDS {
            let got = decode::decode_stream(&streams[0], &book, kind).unwrap();
            prop_assert_eq!(&got, &syms, "{} diverged from input", kind.name());
        }
    }

    /// Archive path: the profiled compress pipeline produces the same
    /// archive bytes under either plan, and the archive decodes exactly
    /// under every backend.
    #[test]
    fn plans_produce_bit_identical_archives(
        n in 1usize..20_000,
        seed in any::<u64>(),
        bins in 2u64..300,
    ) {
        let syms = symbols(n, seed, bins);
        let archives: Vec<Vec<u8>> = PLANS
            .iter()
            .map(|&plan| {
                let gpu = Gpu::v100();
                let opts = ProfileOptions::new(512).plan(plan);
                metrics::profile_compress(&gpu, &syms, &opts).unwrap().0
            })
            .collect();
        prop_assert_eq!(&archives[0], &archives[1], "plans diverged on archive bytes");
        for kind in KINDS {
            let opts = DecompressOptions::default().with_decoder(kind);
            let rec = archive::decompress_with(&archives[0], &opts).unwrap();
            prop_assert_eq!(&rec.symbols, &syms, "{} archive decode diverged", kind.name());
        }
    }

    /// Frame path: batched compression emits the same multi-shard RSHM
    /// frame under either plan, for any shard geometry, and the frame
    /// decodes exactly under every backend.
    #[test]
    fn plans_produce_bit_identical_frames(
        n in 1usize..20_000,
        shard_symbols in 512usize..8_192,
        streams in 1usize..4,
        seed in any::<u64>(),
    ) {
        let syms = symbols(n, seed, 256);
        let frames: Vec<Vec<u8>> = PLANS
            .iter()
            .map(|&plan| {
                let mut opts = BatchOptions::new(512);
                opts.shard_symbols = shard_symbols;
                opts.streams = streams;
                opts.plan = plan;
                compress_batched(&syms, &opts).unwrap().0
            })
            .collect();
        prop_assert_eq!(&frames[0], &frames[1], "plans diverged on frame bytes");
        for kind in KINDS {
            let opts = DecompressOptions::default().with_decoder(kind);
            let rec = archive::decompress_with(&frames[0], &opts).unwrap();
            prop_assert_eq!(&rec.symbols, &syms, "{} frame decode diverged", kind.name());
        }
    }
}
