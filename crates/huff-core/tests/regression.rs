//! Regression tests for defects found (and fixed) during development.
//! Each test documents the original failure mode.

use huff_core::codebook::{self, CanonicalCodebook};
use huff_core::decode;
use huff_core::encode::{self, reduce_shuffle, BreakingStrategy, MergeConfig};
use huff_core::{archive, histogram};

/// A 65536-symbol space used to overflow `0..len as u16` into an empty
/// range, making `from_lengths` report EmptyHistogram for the paper's
/// largest codebook size.
#[test]
fn full_u16_symbol_space_codebook() {
    let n = 65536usize;
    let freqs: Vec<u64> = (0..n).map(|i| (i as u64 % 1000) + 1).collect();
    let book = codebook::parallel(&freqs, 8).unwrap();
    assert_eq!(book.coded_symbols(), n);
    let rebuilt = CanonicalCodebook::from_lengths(&book.lengths()).unwrap();
    assert_eq!(book, rebuilt);
}

/// The parallel builder originally assigned same-length codes in
/// frequency-sort order while `from_lengths` used (length, symbol) order,
/// so archives (which store lengths only) decoded to permuted symbols.
#[test]
fn archive_codebook_reconstruction_not_permuted() {
    // Equal frequencies force heavy tie-breaking.
    let data: Vec<u16> = (0..60_000).map(|i| (i % 64) as u16).collect();
    let packed = archive::compress(&data, &archive::CompressOptions::new(64)).unwrap();
    assert_eq!(archive::decompress(&packed).unwrap(), data);
}

/// SHUFFLE-merge's spill step could leave stale bits beyond the merged
/// payload, corrupting later iterations' ORs; slack must be zeroed.
#[test]
fn shuffle_slack_bits_stay_clean_across_iterations() {
    // Lengths engineered so early merges leave partial words that later
    // iterations append onto.
    let lens = [31u32, 1, 17, 15, 3, 29, 32, 0];
    let mut words: Vec<u32> =
        lens.iter().map(|&l| if l == 0 { 0 } else { (u32::MAX >> (32 - l)) << (32 - l) }).collect();
    let (total, _) = encode::shuffle_merge::shuffle_chunk(&mut words, &lens);
    assert_eq!(total, lens.iter().map(|&l| u64::from(l)).sum::<u64>());
    // Every payload bit is 1; every slack bit is 0.
    for i in 0..(words.len() * 32) as u64 {
        let bit = (words[(i / 32) as usize] >> (31 - (i % 32))) & 1 == 1;
        assert_eq!(bit, i < total, "bit {i}");
    }
}

/// The coarse encoder's staging buffer mishandled codewords longer than 32
/// bits (split across the staging word boundary).
#[test]
fn coarse_encoder_handles_40_bit_codewords() {
    let lengths: Vec<u32> = (1..=40).chain([40]).collect();
    let book = CanonicalCodebook::from_lengths(&lengths).unwrap();
    let syms: Vec<u16> = (0..500).map(|i| (i % 41) as u16).collect();
    let coarse = encode::coarse::encode(&syms, &book, MergeConfig::new(6, 1)).unwrap();
    let serial = encode::serial::encode(&syms, &book).unwrap();
    assert_eq!(coarse.bytes, serial.bytes);
}

/// Breaking units at the very first and very last unit of a chunk, and in
/// the final partial chunk, must splice back at the right positions.
#[test]
fn breaking_at_chunk_edges() {
    let lengths = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 12];
    let book = CanonicalCodebook::from_lengths(&lengths).unwrap();
    let m = 6u32; // 64-symbol chunks, r=4 -> 16-symbol units
    let mut syms = vec![0u16; 64 * 3 + 40]; // 3 full chunks + partial tail
                                            // First unit of chunk 0 breaks.
    for s in syms.iter_mut().take(4) {
        *s = 12;
    }
    // Last unit of chunk 1 breaks.
    for s in &mut syms[64 + 48..64 + 52] {
        *s = 12;
    }
    // A unit inside the partial tail breaks.
    for s in &mut syms[192 + 16..192 + 20] {
        *s = 12;
    }
    let stream = reduce_shuffle::encode(
        &syms,
        &book,
        MergeConfig::new(m, 4),
        BreakingStrategy::SparseSidecar,
    )
    .unwrap();
    assert!(stream.outliers.num_units() >= 3, "{}", stream.outliers.num_units());
    assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), syms);
}

/// Histograms with a symbol exactly at the top of the range (the 65535
/// boundary) must count, encode, and decode.
#[test]
fn top_of_range_symbol() {
    let mut freqs = vec![0u64; 65536];
    freqs[0] = 10;
    freqs[65535] = 5;
    let book = codebook::parallel(&freqs, 4).unwrap();
    let syms = vec![0u16, 65535, 0, 65535, 0];
    let enc = encode::serial::encode(&syms, &book).unwrap();
    let dec = decode::canonical::decode(&enc.bytes, enc.bit_len, syms.len(), &book).unwrap();
    assert_eq!(dec, syms);
}

/// `generate_cl` must stay optimal when the two-smallest selection has to
/// drop a *leaf* for parity (internal queue holding only `t`).
#[test]
fn generate_cl_parity_drop_of_leaf() {
    // Three equal leaves: round 1 melds two, the third is copy-eligible
    // but must be dropped for parity and consumed later.
    for n in [3usize, 5, 9, 17] {
        let freqs = vec![1u64; n];
        let (cl, _) = codebook::generate_cl(&freqs, 2);
        let reference = huff_core::tree::codeword_lengths(&freqs).unwrap();
        assert_eq!(
            huff_core::tree::weighted_length(&freqs, &cl),
            huff_core::tree::weighted_length(&freqs, &reference),
            "n={n}"
        );
    }
}

/// Corrupt outlier ordering in an archive must be rejected, not panic
/// (found by the bit-flip fuzz test).
#[test]
fn archive_rejects_shuffled_outliers() {
    let lengths = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 12];
    let book = CanonicalCodebook::from_lengths(&lengths).unwrap();
    let syms: Vec<u16> = (0..5000).map(|i| if i % 512 < 4 { 12u16 } else { 0 }).collect();
    let stream = reduce_shuffle::encode(
        &syms,
        &book,
        MergeConfig::new(8, 4),
        BreakingStrategy::SparseSidecar,
    )
    .unwrap();
    assert!(stream.outliers.num_units() >= 2);
    let packed = archive::serialize(&stream, &book, 2).unwrap();
    // Find the outlier table and swap the first two unit indices.
    // Layout: magic(4) sym(1) M(1) r(1) pad(1) nsym(8) cb_len(4) lens(13)
    //         n_chunks(4) chunk_lens(8 each) outliers(4) ...
    let n_chunks = syms.len().div_ceil(256);
    let off = 4 + 4 + 8 + 4 + 13 + 4 + 8 * n_chunks + 4;
    let mut corrupt = packed.clone();
    // Swap 8-byte indices of outlier 0 and 1 (entry = 8 idx + 2 count + 32 syms).
    let entry = 8 + 2 + 2 * 16;
    for b in 0..8 {
        corrupt.swap(off + b, off + entry + b);
    }
    assert!(archive::deserialize(&corrupt).is_err());
}

/// GPU and CPU histograms must agree on data where one block's partition
/// is empty (more blocks than elements).
#[test]
fn gpu_histogram_more_blocks_than_data() {
    let gpu = gpu_sim::Gpu::v100();
    let data = vec![3u16; 7];
    let h = histogram::gpu::histogram(&gpu, &data, 8, 2);
    assert_eq!(h, histogram::serial::histogram(&data, 8));
}
