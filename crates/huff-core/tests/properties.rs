//! Property-based tests for huff-core's algorithmic invariants.

use huff_core::codebook::{self, generate_cl, generate_cw};
use huff_core::codeword::Codeword;
use huff_core::encode::reduce_merge::{reduce_unit, Unit};
use huff_core::encode::shuffle_merge::{merge_window, shuffle_chunk};
use huff_core::{bitstream, tree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// GenerateCL produces Huffman-optimal lengths for any frequency set.
    #[test]
    fn generate_cl_optimal(
        mut freqs in proptest::collection::vec(1u64..1u64 << 50, 2..500)
    ) {
        freqs.sort_unstable();
        let (cl, _) = generate_cl(&freqs, 8);
        let reference = tree::codeword_lengths(&freqs).unwrap();
        prop_assert_eq!(
            tree::weighted_length(&freqs, &cl),
            tree::weighted_length(&freqs, &reference)
        );
        prop_assert_eq!(tree::kraft_sum(&cl), 1u128 << 64);
        // Sorted ascending frequency => non-increasing lengths.
        prop_assert!(cl.windows(2).all(|w| w[0] >= w[1]));
    }

    /// GenerateCW emits a prefix-free canonical code for any valid
    /// (complete) length profile.
    #[test]
    fn generate_cw_prefix_free(
        mut freqs in proptest::collection::vec(1u64..1u64 << 30, 2..200)
    ) {
        freqs.sort_unstable();
        let (cl, _) = generate_cl(&freqs, 4);
        let cw = generate_cw(&cl).unwrap();
        for (i, a) in cw.codes.iter().enumerate() {
            for (j, b) in cw.codes.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_prefix_of(b));
                }
            }
        }
        // Canonical ordering: codes ascend as left-aligned fractions.
        for w in cw.codes.windows(2) {
            let fa = w[0].bits() << (64 - w[0].len());
            let fb = w[1].bits() << (64 - w[1].len());
            prop_assert!(fa < fb);
        }
    }

    /// Codebook symbol decode inverts the code for every symbol.
    #[test]
    fn decode_symbol_inverts_code(
        freqs in proptest::collection::vec(0u64..1000, 2..200)
    ) {
        prop_assume!(freqs.iter().filter(|&&f| f > 0).count() >= 1);
        let book = codebook::parallel(&freqs, 4).unwrap();
        for (sym, &f) in freqs.iter().enumerate() {
            if f == 0 { continue; }
            let code = book.code(sym as u16);
            let mut pos = 0;
            let got = book.decode_symbol(|| {
                let bit = (code.bits() >> (code.len() - 1 - pos)) & 1 == 1;
                pos += 1;
                Ok(bit)
            }).unwrap();
            prop_assert_eq!(got, sym as u16);
            prop_assert_eq!(pos, code.len());
        }
    }

    /// merge_window places the right group exactly after the left for any
    /// lengths and payloads.
    #[test]
    fn merge_window_concatenates(
        left_bits in proptest::collection::vec(any::<bool>(), 0..120),
        right_bits in proptest::collection::vec(any::<bool>(), 0..120),
    ) {
        let span = 8usize; // 4 words per side = up to 128 bits
        let mut window = vec![0u32; span];
        let pack = |bits: &[bool], words: &mut [u32]| {
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    words[i / 32] |= 1 << (31 - (i % 32));
                }
            }
        };
        pack(&left_bits, &mut window[..span / 2]);
        pack(&right_bits, &mut window[span / 2..]);
        let total = merge_window(&mut window, left_bits.len() as u32, right_bits.len() as u32);
        prop_assert_eq!(total as usize, left_bits.len() + right_bits.len());
        for (i, &b) in left_bits.iter().chain(&right_bits).enumerate() {
            let got = (window[i / 32] >> (31 - (i % 32))) & 1 == 1;
            prop_assert_eq!(got, b, "bit {}", i);
        }
        // Slack after the payload is zeroed.
        for i in total as usize..span * 32 {
            let got = (window[i / 32] >> (31 - (i % 32))) & 1 == 1;
            prop_assert!(!got, "dirty slack at bit {}", i);
        }
    }

    /// shuffle_chunk equals straight concatenation for any cell lengths.
    #[test]
    fn shuffle_chunk_concatenates(
        cells in proptest::collection::vec((0u32..33, any::<u32>()), 1..65)
    ) {
        let n = cells.len().next_power_of_two();
        let mut words = vec![0u32; n];
        let mut lens = vec![0u32; n];
        let mut expect = String::new();
        for (i, &(l, payload)) in cells.iter().enumerate() {
            lens[i] = l;
            if l > 0 {
                let p = payload & (((1u64 << l) - 1) as u32);
                words[i] = p << (32 - l);
                for b in 0..l {
                    expect.push(if (p >> (l - 1 - b)) & 1 == 1 { '1' } else { '0' });
                }
            }
        }
        let (total, _) = shuffle_chunk(&mut words, &lens);
        prop_assert_eq!(total as usize, expect.len());
        let mut got = String::new();
        for i in 0..total {
            let w = words[(i / 32) as usize];
            got.push(if (w >> (31 - (i % 32))) & 1 == 1 { '1' } else { '0' });
        }
        prop_assert_eq!(got, expect);
    }

    /// reduce_unit equals the fold of MERGE, and breaking triggers exactly
    /// when the true merged length exceeds the word width.
    #[test]
    fn reduce_unit_matches_fold(
        freqs in proptest::collection::vec(1u64..10_000, 2..64),
        picks in proptest::collection::vec(0usize..64, 0..40),
    ) {
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> = picks.iter().map(|&p| (p % freqs.len()) as u16).collect();
        let true_len: u64 = syms.iter().map(|&s| u64::from(book.code(s).len())).sum();
        match reduce_unit::<u32>(&syms, &book) {
            Unit::Merged { len, word } => {
                prop_assert!(true_len <= 32);
                prop_assert_eq!(u64::from(len), true_len);
                if len > 0 && len < 32 {
                    prop_assert_eq!(word & ((1u32 << (32 - len)) - 1), 0, "dirty low bits");
                }
            }
            Unit::Breaking => prop_assert!(true_len > 32),
        }
    }

    /// BitWriter/BitReader round-trip arbitrary field sequences.
    #[test]
    fn bitstream_roundtrip(fields in proptest::collection::vec((1u32..64, any::<u64>()), 0..200)) {
        let mut w = bitstream::BitWriter::new();
        let fields: Vec<(u32, u64)> = fields
            .into_iter()
            .map(|(l, v)| (l, v & ((1u64 << l) - 1)))
            .collect();
        for &(l, v) in &fields {
            w.push_bits(v, l);
        }
        let (buf, bits) = w.finish();
        let mut r = bitstream::BitReader::new(&buf, bits);
        for &(l, v) in &fields {
            prop_assert_eq!(r.read_bits(l).unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Codeword MERGE against bit-string concatenation (the operator's
    /// defining property).
    #[test]
    fn merge_is_string_concat(
        a_bits in proptest::collection::vec(any::<bool>(), 0..32),
        b_bits in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        let to_str = |v: &[bool]| -> String {
            v.iter().map(|&b| if b { '1' } else { '0' }).collect()
        };
        let a = Codeword::from_bit_string(&to_str(&a_bits));
        let b = Codeword::from_bit_string(&to_str(&b_bits));
        let m = a.merge(b).unwrap();
        prop_assert_eq!(m.to_bit_string(), format!("{}{}", to_str(&a_bits), to_str(&b_bits)));
    }
}
