//! Self-contained compressed container.
//!
//! A downstream user wants `compress(data) -> bytes -> decompress`, not a
//! pile of kernels; this module is that API. The container stores only the
//! per-symbol codeword *lengths* — canonical codes are reconstructed
//! deterministically on decode ([`CanonicalCodebook::from_lengths`]), which
//! is one of the practical payoffs of canonization the paper highlights.
//!
//! Current layout, version 2 (little-endian):
//!
//! ```text
//! magic "RSH2" | symbol_bytes u8 | magnitude u8 | reduction u8 | pad u8
//! num_symbols u64 | codebook_len u32 | lengths u8 × codebook_len
//! num_chunks u32 | chunk_bit_lens u64 × num_chunks
//! outlier_units u32 | { unit_index u64, count u16, symbols u16 × count }*
//! total_bits u64
//! chunk_crcs u32 × num_chunks   CRC32 of each chunk's payload byte span
//! header_crc u32                CRC32 of every byte preceding this field
//! payload bytes
//! ```
//!
//! A chunk's *payload byte span* is `floor(off/8) .. ceil((off+len)/8)` of
//! the payload, where `off`/`len` are its bit offset and bit length — the
//! bytes a decoder must read to decode the chunk. Adjacent chunks share a
//! boundary byte, so one damaged byte can (conservatively) fail two chunk
//! checksums. The header CRC covers everything before it, including the
//! chunk CRC table: header damage is always fatal, because the codebook
//! and chunk offsets are required to decode anything.
//!
//! Version 1 (`RSH1`, the original format) is identical minus the two
//! checksum fields. [`deserialize`] reads both versions; [`serialize`]
//! writes version 2; [`serialize_v1`] is kept for compatibility testing
//! and interop with older readers.

use crate::codebook::{self, CanonicalCodebook};
use crate::decode;
use crate::encode::{self, BreakingStrategy, ChunkedStream, MergeConfig};
use crate::error::{HuffError, Result};
use crate::histogram;
use crate::integrity::{
    crc32, DecompressOptions, Recovered, RecoveryMode, RecoveryReport, Section, Verify,
};
use crate::sparse::SparseOutliers;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::ops::Range;

const MAGIC_V1: &[u8; 4] = b"RSH1";
const MAGIC_V2: &[u8; 4] = b"RSH2";

/// Options for [`compress`].
#[derive(Debug, Clone, Copy)]
pub struct CompressOptions {
    /// Number of symbols the histogram spans (e.g. 1024 quantization bins,
    /// 256 for byte data).
    pub num_symbols: usize,
    /// Chunk magnitude `M`.
    pub magnitude: u32,
    /// Reduction factor; `None` applies the Fig. 3 rule.
    pub reduction: Option<u32>,
    /// Breaking-point strategy.
    pub strategy: BreakingStrategy,
    /// Native symbol width recorded in the header (1 or 2 bytes).
    pub symbol_bytes: u8,
}

impl CompressOptions {
    /// Defaults for 2-byte symbols over `num_symbols` bins.
    pub fn new(num_symbols: usize) -> Self {
        CompressOptions {
            num_symbols,
            magnitude: 10,
            reduction: None,
            strategy: BreakingStrategy::SparseSidecar,
            symbol_bytes: 2,
        }
    }
}

/// Compress `symbols` into a self-contained archive.
pub fn compress(symbols: &[u16], opts: &CompressOptions) -> Result<Vec<u8>> {
    let freqs =
        histogram::parallel_cpu::histogram(symbols, opts.num_symbols, rayon::current_num_threads());
    let book = codebook::parallel(&freqs, 16)?;
    let config = match opts.reduction {
        Some(r) => MergeConfig::new(opts.magnitude, r),
        None => MergeConfig::auto::<u32>(opts.magnitude, &freqs, &book),
    };
    let stream = encode::reduce_shuffle::encode(symbols, &book, config, opts.strategy)?;
    let packed = serialize(&stream, &book, opts.symbol_bytes);
    {
        let bytes_in = symbols.len() as u64 * u64::from(opts.symbol_bytes);
        let ratio = if packed.is_empty() { 1.0 } else { bytes_in as f64 / packed.len() as f64 };
        crate::metrics::registry::global().record_compress(
            bytes_in,
            packed.len() as u64,
            ratio,
            stream.num_chunks(),
        );
    }
    Ok(packed)
}

/// Decompress an archive produced by [`compress`].
///
/// Equivalent to [`decompress_with`] under the default
/// [`DecompressOptions`]: full verification, strict mode.
pub fn decompress(archive: &[u8]) -> Result<Vec<u16>> {
    Ok(decompress_with(archive, &DecompressOptions::default())?.symbols)
}

/// Decompress under an explicit verification and recovery policy.
///
/// In [`RecoveryMode::Strict`] the first failed check aborts with a typed
/// error; the returned report is clean. In [`RecoveryMode::BestEffort`]
/// every chunk whose checksum passes (and whose decode succeeds) is
/// recovered, damaged regions are filled with `opts.sentinel`, and the
/// report lists what was lost. Header damage is fatal in both modes.
///
/// Multi-shard frames ([`crate::frame`], magic `RSHM`) are dispatched to
/// the frame decoder, and store-raw containers ([`crate::tune`], magic
/// `RSHR`) to the raw decoder, so this is the single entry point for all
/// three formats.
pub fn decompress_with(archive: &[u8], opts: &DecompressOptions) -> Result<Recovered> {
    if crate::frame::is_frame(archive) {
        return crate::frame::decompress_with(archive, opts);
    }
    if crate::tune::is_raw(archive) {
        return crate::tune::decompress_raw_with(archive, opts);
    }
    let parsed = deserialize_with(archive, opts)?;
    let recovered = match opts.mode {
        RecoveryMode::Strict => {
            let symbols = decode::decode_stream(&parsed.stream, &parsed.book, opts.decoder)?;
            let report = RecoveryReport::clean(parsed.stream.num_chunks());
            Recovered { symbols, report }
        }
        RecoveryMode::BestEffort => {
            let (symbols, report) = decode::decode_stream_best_effort(
                &parsed.stream,
                &parsed.book,
                &parsed.chunk_damage,
                opts.sentinel,
                opts.decoder,
            );
            Recovered { symbols, report }
        }
    };
    crate::metrics::registry::global().record_decompress(
        archive.len() as u64,
        recovered.symbols.len() as u64 * u64::from(parsed.symbol_bytes.max(1)),
        recovered.report.total_chunks,
        recovered.report.damaged_chunks.len(),
    );
    Ok(recovered)
}

/// Check an archive's checksums without decoding the payload.
///
/// Fails with a typed error when the archive is structurally invalid or
/// its header checksum does not match. Otherwise returns a report whose
/// `damaged_chunks` lists every chunk with a failing payload checksum
/// (with the symbol ranges that would be lost to best-effort recovery).
/// RSH1 archives carry no checksums, so they verify clean whenever they
/// parse.
///
/// ```
/// use huff_core::archive::{compress, verify, CompressOptions};
///
/// let data: Vec<u16> = (0..10_000).map(|i| (i % 50) as u16).collect();
/// let packed = compress(&data, &CompressOptions::new(64)).unwrap();
/// assert!(verify(&packed).unwrap().is_clean());
///
/// // Flip one payload bit: verify localizes the damage to one chunk.
/// let mut damaged = packed.clone();
/// let last = damaged.len() - 1;
/// damaged[last] ^= 0x10;
/// let report = verify(&damaged).unwrap();
/// assert_eq!(report.damaged_chunks.len(), 1);
/// ```
pub fn verify(archive: &[u8]) -> Result<RecoveryReport> {
    crate::metrics::registry::global().record_verify();
    if crate::frame::is_frame(archive) {
        return crate::frame::verify(archive);
    }
    if crate::tune::is_raw(archive) {
        return crate::tune::verify_raw(archive);
    }
    let opts = DecompressOptions { mode: RecoveryMode::BestEffort, ..Default::default() };
    let parsed = deserialize_with(archive, &opts)?;
    Ok(decode::chunked::damage_report(&parsed.stream, &parsed.chunk_damage))
}

/// A fully parsed archive plus per-chunk verification results.
#[derive(Debug)]
pub struct Parsed {
    /// The chunked payload and its metadata.
    pub stream: ChunkedStream,
    /// The reconstructed canonical codebook.
    pub book: CanonicalCodebook,
    /// Native symbol width recorded in the header.
    pub symbol_bytes: u8,
    /// Container version (1 or 2).
    pub version: u8,
    /// `chunk_damage[ci]` is true when chunk `ci` failed its payload
    /// checksum or lies beyond a truncated payload. All-false for RSH1
    /// archives and under [`Verify::None`] / [`Verify::HeadersOnly`].
    pub chunk_damage: Vec<bool>,
}

/// Serialize a chunked stream + codebook into the current (RSH2)
/// container format, including checksums.
pub fn serialize(stream: &ChunkedStream, book: &CanonicalCodebook, symbol_bytes: u8) -> Vec<u8> {
    let mut buf = header_bytes(MAGIC_V2, stream, book, symbol_bytes);
    for ci in 0..stream.num_chunks() {
        let span = chunk_byte_span(stream.chunk_bit_offsets[ci], stream.chunk_bit_lens[ci]);
        buf.put_u32_le(crc32(&stream.bytes[span]));
    }
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    buf.put_slice(&stream.bytes);
    buf.to_vec()
}

/// Serialize into the legacy RSH1 container (no checksums). Kept so the
/// compatibility path stays testable; new archives should use
/// [`serialize`].
pub fn serialize_v1(stream: &ChunkedStream, book: &CanonicalCodebook, symbol_bytes: u8) -> Vec<u8> {
    let mut buf = header_bytes(MAGIC_V1, stream, book, symbol_bytes);
    buf.put_slice(&stream.bytes);
    buf.to_vec()
}

/// The byte span of the payload a chunk's bits occupy.
fn chunk_byte_span(bit_offset: u64, bit_len: u64) -> Range<usize> {
    let start = (bit_offset / 8) as usize;
    let end = ((bit_offset + bit_len).div_ceil(8)) as usize;
    start..end.max(start)
}

/// Everything up to (not including) the checksum fields — shared between
/// both container versions.
fn header_bytes(
    magic: &[u8; 4],
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    symbol_bytes: u8,
) -> BytesMut {
    let mut buf = BytesMut::with_capacity(stream.bytes.len() + book.num_symbols() + 64);
    buf.put_slice(magic);
    buf.put_u8(symbol_bytes);
    buf.put_u8(stream.config.magnitude as u8);
    buf.put_u8(stream.config.reduction as u8);
    buf.put_u8(0);
    buf.put_u64_le(stream.num_symbols as u64);

    let lengths = book.lengths();
    buf.put_u32_le(lengths.len() as u32);
    for l in &lengths {
        debug_assert!(*l <= 64);
        buf.put_u8(*l as u8);
    }

    buf.put_u32_le(stream.chunk_bit_lens.len() as u32);
    for &l in &stream.chunk_bit_lens {
        buf.put_u64_le(l);
    }

    buf.put_u32_le(stream.outliers.num_units() as u32);
    for (idx, syms) in stream.outliers.iter() {
        buf.put_u64_le(idx);
        buf.put_u16_le(syms.len() as u16);
        for &s in syms {
            buf.put_u16_le(s);
        }
    }

    buf.put_u64_le(stream.total_bits);
    buf
}

/// Parse the container format back into a stream + codebook, verifying
/// fully and strictly (see [`deserialize_with`] for policy control).
pub fn deserialize(archive: &[u8]) -> Result<(ChunkedStream, CanonicalCodebook, u8)> {
    let p = deserialize_with(archive, &DecompressOptions::default())?;
    Ok((p.stream, p.book, p.symbol_bytes))
}

fn bad(msg: impl Into<String>) -> HuffError {
    HuffError::BadArchive(msg.into())
}

/// Parse the container under an explicit verification policy.
///
/// Structural damage (bad magic, truncated or inconsistent header) and —
/// unless `opts.verify` is [`Verify::None`] — a header checksum mismatch
/// are errors in every mode. Per-chunk payload checksums are checked
/// under [`Verify::Full`]: in strict mode the first mismatch is an
/// error; in best-effort mode failures are recorded in
/// [`Parsed::chunk_damage`] instead. A truncated *payload* is an error
/// in strict mode; in best-effort mode the missing tail chunks are
/// marked damaged.
pub fn deserialize_with(archive: &[u8], opts: &DecompressOptions) -> Result<Parsed> {
    let mut buf = Bytes::copy_from_slice(archive);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(bad(format!("truncated: need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    // Offset of the next unread byte within `archive`.
    let pos = |buf: &Bytes| archive.len() - buf.remaining();

    need(&buf, 16)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    let version: u8 = match &magic {
        m if m == MAGIC_V1 => 1,
        m if m == MAGIC_V2 => 2,
        _ => return Err(bad("bad magic")),
    };
    let symbol_bytes = buf.get_u8();
    let magnitude = u32::from(buf.get_u8());
    let reduction = u32::from(buf.get_u8());
    let _pad = buf.get_u8();
    if !(2..=24).contains(&magnitude) || reduction == 0 || reduction >= magnitude {
        return Err(bad(format!("bad config M={magnitude} r={reduction}")));
    }
    let num_symbols_u64 = buf.get_u64_le();
    let num_symbols: usize =
        num_symbols_u64.try_into().map_err(|_| bad("symbol count exceeds address space"))?;
    let config = MergeConfig::new(magnitude, reduction);

    need(&buf, 4)?;
    let cb_len = buf.get_u32_le() as usize;
    need(&buf, cb_len)?;
    // `need` bounds cb_len by the remaining buffer, so the allocation is
    // capped by the archive's own size.
    let mut lengths = Vec::with_capacity(cb_len);
    for _ in 0..cb_len {
        lengths.push(u32::from(buf.get_u8()));
    }
    let book =
        CanonicalCodebook::from_lengths(&lengths).map_err(|e| bad(format!("codebook: {e}")))?;

    need(&buf, 4)?;
    let n_chunks = buf.get_u32_le() as usize;
    let chunk_table_bytes =
        n_chunks.checked_mul(8).ok_or_else(|| bad("chunk table size overflow"))?;
    need(&buf, chunk_table_bytes)?;
    let expected_chunks = num_symbols.div_ceil(config.chunk_symbols());
    if n_chunks != expected_chunks {
        return Err(bad(format!("chunk count {n_chunks} inconsistent with {num_symbols} symbols")));
    }
    let mut chunk_bit_lens = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        chunk_bit_lens.push(buf.get_u64_le());
    }
    let mut chunk_bit_offsets = Vec::with_capacity(n_chunks);
    let mut acc = 0u64;
    for &l in &chunk_bit_lens {
        chunk_bit_offsets.push(acc);
        acc = acc.checked_add(l).ok_or_else(|| bad("chunk bit lengths overflow"))?;
    }

    need(&buf, 4)?;
    let n_outliers = buf.get_u32_le() as usize;
    let unit_syms = config.unit_symbols().max(1);
    let mut outliers = SparseOutliers::new();
    let mut last_idx: Option<u64> = None;
    for _ in 0..n_outliers {
        need(&buf, 10)?;
        let idx = buf.get_u64_le();
        if last_idx.is_some_and(|l| idx <= l) {
            return Err(bad("outlier units out of order"));
        }
        last_idx = Some(idx);
        let count = buf.get_u16_le() as usize;
        let unit_base = (idx as usize)
            .checked_mul(unit_syms)
            .filter(|&b| b < num_symbols)
            .ok_or_else(|| bad(format!("outlier unit {idx} beyond {num_symbols} symbols")))?;
        let expected = unit_syms.min(num_symbols - unit_base);
        if count != expected {
            return Err(bad(format!(
                "outlier unit {idx} stores {count} symbols, unit holds {expected}"
            )));
        }
        need(&buf, count.checked_mul(2).ok_or_else(|| bad("outlier size overflow"))?)?;
        let syms: Vec<u16> = (0..count).map(|_| buf.get_u16_le()).collect();
        outliers.push(idx, &syms);
    }

    need(&buf, 8)?;
    let total_bits = buf.get_u64_le();
    if total_bits != acc {
        return Err(bad(format!("payload length mismatch: header {total_bits}, chunks {acc}")));
    }

    // Version 2: chunk CRC table + header CRC, then the payload.
    let mut chunk_crcs: Option<Vec<u32>> = None;
    if version == 2 {
        let crc_table_bytes =
            n_chunks.checked_mul(4).ok_or_else(|| bad("checksum table size overflow"))?;
        need(&buf, crc_table_bytes + 4)?;
        let mut crcs = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            crcs.push(buf.get_u32_le());
        }
        let header_end = pos(&buf);
        let stored_header_crc = buf.get_u32_le();
        if opts.verify != Verify::None {
            let got = crc32(&archive[..header_end]);
            if got != stored_header_crc {
                return Err(HuffError::ChecksumMismatch {
                    section: Section::Header,
                    chunk: None,
                    expected: stored_header_crc,
                    got,
                });
            }
        }
        chunk_crcs = Some(crcs);
    }

    let payload_bytes = (total_bits as usize).div_ceil(8);
    let best_effort = opts.mode == RecoveryMode::BestEffort;
    if !best_effort {
        need(&buf, payload_bytes)?;
    }
    let avail = payload_bytes.min(buf.remaining());
    let mut bytes = buf.copy_to_bytes(avail).to_vec();
    let truncated = avail < payload_bytes;
    if truncated {
        bytes.resize(payload_bytes, 0);
    }

    // Per-chunk verification.
    let mut chunk_damage = vec![false; n_chunks];
    if version == 2 && opts.verify == Verify::Full {
        let crcs = chunk_crcs.as_ref().expect("v2 always has chunk crcs");
        for ci in 0..n_chunks {
            let span = chunk_byte_span(chunk_bit_offsets[ci], chunk_bit_lens[ci]);
            let damaged = span.end > avail || crc32(&bytes[span]) != crcs[ci];
            if damaged {
                if !best_effort {
                    let span = chunk_byte_span(chunk_bit_offsets[ci], chunk_bit_lens[ci]);
                    return Err(HuffError::ChecksumMismatch {
                        section: Section::Payload,
                        chunk: Some(ci as u32),
                        expected: crcs[ci],
                        got: crc32(&bytes[span]),
                    });
                }
                chunk_damage[ci] = true;
            }
        }
    } else if truncated {
        // Best-effort without chunk checksums: anything touching the
        // missing tail is damaged.
        for ci in 0..n_chunks {
            let span = chunk_byte_span(chunk_bit_offsets[ci], chunk_bit_lens[ci]);
            if span.end > avail {
                chunk_damage[ci] = true;
            }
        }
    }

    Ok(Parsed {
        stream: ChunkedStream {
            config,
            bytes,
            chunk_bit_lens,
            chunk_bit_offsets,
            total_bits,
            num_symbols,
            outliers,
        },
        book,
        symbol_bytes,
        version,
        chunk_damage,
    })
}

/// Map an archive's bytes to container sections.
///
/// Walks the structure without building a codebook or verifying
/// checksums; used by the fault-injection harness to aim faults at
/// specific sections. The returned ranges tile `[0, archive.len())` in
/// order. Fails on archives too malformed to walk.
pub fn layout(archive: &[u8]) -> Result<Vec<(Section, Range<usize>)>> {
    let mut buf = Bytes::copy_from_slice(archive);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(bad(format!("truncated: need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    let pos = |buf: &Bytes| archive.len() - buf.remaining();

    need(&buf, 16)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    let version: u8 = match &magic {
        m if m == MAGIC_V1 => 1,
        m if m == MAGIC_V2 => 2,
        _ => return Err(bad("bad magic")),
    };
    let mut sections = vec![(Section::Magic, 0..4)];
    buf.advance(12); // symbol_bytes, magnitude, reduction, pad, num_symbols
    sections.push((Section::Config, 4..16));

    let start = pos(&buf);
    need(&buf, 4)?;
    let cb_len = buf.get_u32_le() as usize;
    need(&buf, cb_len)?;
    buf.advance(cb_len);
    sections.push((Section::Codebook, start..pos(&buf)));

    let start = pos(&buf);
    need(&buf, 4)?;
    let n_chunks = buf.get_u32_le() as usize;
    let table = n_chunks.checked_mul(8).ok_or_else(|| bad("chunk table size overflow"))?;
    need(&buf, table)?;
    buf.advance(table);
    sections.push((Section::ChunkTable, start..pos(&buf)));

    let start = pos(&buf);
    need(&buf, 4)?;
    let n_outliers = buf.get_u32_le() as usize;
    for _ in 0..n_outliers {
        need(&buf, 10)?;
        buf.advance(8);
        let count = buf.get_u16_le() as usize;
        let n = count.checked_mul(2).ok_or_else(|| bad("outlier size overflow"))?;
        need(&buf, n)?;
        buf.advance(n);
    }
    sections.push((Section::Outliers, start..pos(&buf)));

    let start = pos(&buf);
    need(&buf, 8)?;
    buf.advance(8);
    sections.push((Section::TotalBits, start..pos(&buf)));

    if version == 2 {
        let start = pos(&buf);
        let table = n_chunks.checked_mul(4).ok_or_else(|| bad("checksum table size overflow"))?;
        need(&buf, table + 4)?;
        buf.advance(table + 4);
        sections.push((Section::Checksums, start..pos(&buf)));
    }

    sections.push((Section::Payload, pos(&buf)..archive.len()));
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
                (x % 256) as u16
            })
            .collect()
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let syms = data(30_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let back = decompress(&archive).unwrap();
        assert_eq!(back, syms);
    }

    #[test]
    fn archive_is_smaller_than_raw_for_skewed_data() {
        let syms: Vec<u16> = (0..100_000).map(|i| if i % 10 == 0 { 1u16 } else { 0 }).collect();
        let archive = compress(&syms, &CompressOptions::new(4)).unwrap();
        assert!(archive.len() < 100_000 / 4, "archive {} bytes", archive.len());
    }

    #[test]
    fn empty_input_roundtrip() {
        // A histogram over an empty input is empty — codebook construction
        // must fail cleanly.
        let err = compress(&[], &CompressOptions::new(16));
        assert!(matches!(err, Err(HuffError::EmptyHistogram)));
    }

    #[test]
    fn single_symbol_roundtrip() {
        let syms = vec![3u16; 1000];
        let archive = compress(&syms, &CompressOptions::new(16)).unwrap();
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn explicit_reduction_factor_respected() {
        let syms = data(10_000);
        let mut opts = CompressOptions::new(256);
        opts.reduction = Some(2);
        let archive = compress(&syms, &opts).unwrap();
        let (stream, _, _) = deserialize(&archive).unwrap();
        assert_eq!(stream.config.reduction, 2);
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn rejects_bad_magic() {
        let syms = data(100);
        let mut archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        archive[0] = b'X';
        assert!(matches!(decompress(&archive), Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let syms = data(5000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        // Every strict prefix must fail cleanly, never panic.
        for cut in [0, 3, 4, 10, 17, archive.len() / 2, archive.len() - 1] {
            assert!(decompress(&archive[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_corrupt_config() {
        let syms = data(100);
        let mut archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        archive[6] = 99; // reduction byte
        assert!(matches!(decompress(&archive), Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn widen_word_strategy_roundtrip() {
        let syms = data(20_000);
        let mut opts = CompressOptions::new(256);
        opts.strategy = BreakingStrategy::WidenWord;
        let archive = compress(&syms, &opts).unwrap();
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn header_records_symbol_width() {
        let syms = data(1000);
        let mut opts = CompressOptions::new(256);
        opts.symbol_bytes = 1;
        let archive = compress(&syms, &opts).unwrap();
        let (_, _, sb) = deserialize(&archive).unwrap();
        assert_eq!(sb, 1);
    }

    #[test]
    fn writes_v2_magic_and_reads_v1() {
        let syms = data(4000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        assert_eq!(&archive[..4], MAGIC_V2);

        let (stream, book, sb) = deserialize(&archive).unwrap();
        let legacy = serialize_v1(&stream, &book, sb);
        assert_eq!(&legacy[..4], MAGIC_V1);
        assert_eq!(decompress(&legacy).unwrap(), syms);
    }

    #[test]
    fn payload_flip_fails_strict_with_typed_error() {
        let syms = data(20_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[payload.start + payload.len() / 2] ^= 0x10;
        match decompress(&corrupt) {
            Err(HuffError::ChecksumMismatch {
                section: Section::Payload, chunk: Some(_), ..
            }) => {}
            other => panic!("expected payload checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn payload_flip_recovers_best_effort() {
        let syms = data(20_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[payload.start + payload.len() / 2] ^= 0x10;

        let opts = DecompressOptions::best_effort();
        let rec = decompress_with(&corrupt, &opts).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert!(!rec.report.is_clean());
        assert!(rec.report.symbols_lost > 0);
        // Outside the damaged ranges, every symbol is intact.
        let mut lost = vec![false; syms.len()];
        for &(s, e) in &rec.report.damaged_ranges {
            lost[s..e].iter_mut().for_each(|b| *b = true);
        }
        for i in 0..syms.len() {
            if lost[i] {
                assert_eq!(rec.symbols[i], opts.sentinel, "index {i}");
            } else {
                assert_eq!(rec.symbols[i], syms[i], "index {i}");
            }
        }
    }

    #[test]
    fn header_flip_is_fatal_even_best_effort() {
        let syms = data(5000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, cb) = sections.iter().find(|(s, _)| *s == Section::Codebook).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[cb.start + 5] ^= 0x01;
        let r = decompress_with(&corrupt, &DecompressOptions::best_effort());
        assert!(r.is_err());
    }

    #[test]
    fn verify_reports_damaged_chunks_without_decoding() {
        let syms = data(40_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        assert!(verify(&archive).unwrap().is_clean());

        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[payload.start + 3] ^= 0x80;
        let report = verify(&corrupt).unwrap();
        assert!(!report.is_clean());
        assert!(report.damaged_chunks.contains(&0));
    }

    #[test]
    fn verify_none_skips_checksums() {
        let syms = data(20_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        // Flip a padding-adjacent bit that still decodes: CRC would catch
        // it, Verify::None must not.
        corrupt[payload.start] ^= 0x01;
        let opts = DecompressOptions { verify: Verify::None, ..Default::default() };
        // May decode to wrong symbols or hit a corrupt stream — but it
        // must not be a checksum error.
        match decompress_with(&corrupt, &opts) {
            Ok(_) => {}
            Err(HuffError::ChecksumMismatch { .. }) => panic!("Verify::None ran checksums"),
            Err(_) => {}
        }
    }

    #[test]
    fn layout_tiles_the_archive() {
        let syms = data(10_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let mut cursor = 0;
        for (_, r) in &sections {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, archive.len());
        assert!(sections.iter().any(|(s, _)| *s == Section::Checksums));
    }

    #[test]
    fn truncated_payload_best_effort_recovers_prefix() {
        let syms = data(50_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        // Keep only the first half of the payload.
        let cut = payload.start + payload.len() / 2;
        let rec = decompress_with(&archive[..cut], &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert!(!rec.report.is_clean());
        // Some prefix must survive: chunk 0 is within the first half.
        assert!(!rec.report.damaged_chunks.contains(&0));
        assert!(decompress(&archive[..cut]).is_err(), "strict must reject truncation");
    }
}
