//! Self-contained compressed container.
//!
//! A downstream user wants `compress(data) -> bytes -> decompress`, not a
//! pile of kernels; this module is that API. The container stores only the
//! per-symbol codeword *lengths* — canonical codes are reconstructed
//! deterministically on decode ([`CanonicalCodebook::from_lengths`]), which
//! is one of the practical payoffs of canonization the paper highlights.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "RSH1" | symbol_bytes u8 | magnitude u8 | reduction u8 | pad u8
//! num_symbols u64 | codebook_len u32 | lengths u8 × codebook_len
//! num_chunks u32 | chunk_bit_lens u64 × num_chunks
//! outlier_units u32 | { unit_index u64, count u16, symbols u16 × count }*
//! total_bits u64 | payload bytes
//! ```

use crate::codebook::{self, CanonicalCodebook};
use crate::decode;
use crate::encode::{self, BreakingStrategy, ChunkedStream, MergeConfig};
use crate::error::{HuffError, Result};
use crate::histogram;
use crate::sparse::SparseOutliers;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"RSH1";

/// Options for [`compress`].
#[derive(Debug, Clone, Copy)]
pub struct CompressOptions {
    /// Number of symbols the histogram spans (e.g. 1024 quantization bins,
    /// 256 for byte data).
    pub num_symbols: usize,
    /// Chunk magnitude `M`.
    pub magnitude: u32,
    /// Reduction factor; `None` applies the Fig. 3 rule.
    pub reduction: Option<u32>,
    /// Breaking-point strategy.
    pub strategy: BreakingStrategy,
    /// Native symbol width recorded in the header (1 or 2 bytes).
    pub symbol_bytes: u8,
}

impl CompressOptions {
    /// Defaults for 2-byte symbols over `num_symbols` bins.
    pub fn new(num_symbols: usize) -> Self {
        CompressOptions {
            num_symbols,
            magnitude: 10,
            reduction: None,
            strategy: BreakingStrategy::SparseSidecar,
            symbol_bytes: 2,
        }
    }
}

/// Compress `symbols` into a self-contained archive.
pub fn compress(symbols: &[u16], opts: &CompressOptions) -> Result<Vec<u8>> {
    let freqs = histogram::parallel_cpu::histogram(symbols, opts.num_symbols, rayon::current_num_threads());
    let book = codebook::parallel(&freqs, 16)?;
    let config = match opts.reduction {
        Some(r) => MergeConfig::new(opts.magnitude, r),
        None => MergeConfig::auto::<u32>(opts.magnitude, &freqs, &book),
    };
    let stream = encode::reduce_shuffle::encode(symbols, &book, config, opts.strategy)?;
    Ok(serialize(&stream, &book, opts.symbol_bytes))
}

/// Decompress an archive produced by [`compress`].
pub fn decompress(archive: &[u8]) -> Result<Vec<u16>> {
    let (stream, book, _symbol_bytes) = deserialize(archive)?;
    decode::chunked::decode(&stream, &book)
}

/// Serialize a chunked stream + codebook into the container format.
pub fn serialize(stream: &ChunkedStream, book: &CanonicalCodebook, symbol_bytes: u8) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(stream.bytes.len() + book.num_symbols() + 64);
    buf.put_slice(MAGIC);
    buf.put_u8(symbol_bytes);
    buf.put_u8(stream.config.magnitude as u8);
    buf.put_u8(stream.config.reduction as u8);
    buf.put_u8(0);
    buf.put_u64_le(stream.num_symbols as u64);

    let lengths = book.lengths();
    buf.put_u32_le(lengths.len() as u32);
    for l in &lengths {
        debug_assert!(*l <= 64);
        buf.put_u8(*l as u8);
    }

    buf.put_u32_le(stream.chunk_bit_lens.len() as u32);
    for &l in &stream.chunk_bit_lens {
        buf.put_u64_le(l);
    }

    buf.put_u32_le(stream.outliers.num_units() as u32);
    for (idx, syms) in stream.outliers.iter() {
        buf.put_u64_le(idx);
        buf.put_u16_le(syms.len() as u16);
        for &s in syms {
            buf.put_u16_le(s);
        }
    }

    buf.put_u64_le(stream.total_bits);
    buf.put_slice(&stream.bytes);
    buf.to_vec()
}

/// Parse the container format back into a stream + codebook.
pub fn deserialize(archive: &[u8]) -> Result<(ChunkedStream, CanonicalCodebook, u8)> {
    let mut buf = Bytes::copy_from_slice(archive);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(HuffError::BadArchive(format!("truncated: need {n} more bytes")))
        } else {
            Ok(())
        }
    };

    need(&buf, 16)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(HuffError::BadArchive("bad magic".into()));
    }
    let symbol_bytes = buf.get_u8();
    let magnitude = u32::from(buf.get_u8());
    let reduction = u32::from(buf.get_u8());
    let _pad = buf.get_u8();
    if magnitude < 2 || magnitude > 24 || reduction == 0 || reduction >= magnitude {
        return Err(HuffError::BadArchive(format!("bad config M={magnitude} r={reduction}")));
    }
    let num_symbols = buf.get_u64_le() as usize;

    need(&buf, 4)?;
    let cb_len = buf.get_u32_le() as usize;
    need(&buf, cb_len)?;
    let mut lengths = Vec::with_capacity(cb_len);
    for _ in 0..cb_len {
        lengths.push(u32::from(buf.get_u8()));
    }
    let book = CanonicalCodebook::from_lengths(&lengths)
        .map_err(|e| HuffError::BadArchive(format!("codebook: {e}")))?;

    need(&buf, 4)?;
    let n_chunks = buf.get_u32_le() as usize;
    need(&buf, n_chunks * 8)?;
    let mut chunk_bit_lens = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        chunk_bit_lens.push(buf.get_u64_le());
    }
    let mut chunk_bit_offsets = Vec::with_capacity(n_chunks);
    let mut acc = 0u64;
    for &l in &chunk_bit_lens {
        chunk_bit_offsets.push(acc);
        acc += l;
    }

    need(&buf, 4)?;
    let n_outliers = buf.get_u32_le() as usize;
    let mut outliers = SparseOutliers::new();
    let mut last_idx: Option<u64> = None;
    for _ in 0..n_outliers {
        need(&buf, 10)?;
        let idx = buf.get_u64_le();
        if last_idx.is_some_and(|l| idx <= l) {
            return Err(HuffError::BadArchive("outlier units out of order".into()));
        }
        last_idx = Some(idx);
        let count = buf.get_u16_le() as usize;
        need(&buf, count * 2)?;
        let syms: Vec<u16> = (0..count).map(|_| buf.get_u16_le()).collect();
        outliers.push(idx, &syms);
    }

    need(&buf, 8)?;
    let total_bits = buf.get_u64_le();
    if total_bits != acc {
        return Err(HuffError::BadArchive(format!(
            "payload length mismatch: header {total_bits}, chunks {acc}"
        )));
    }
    let payload_bytes = (total_bits as usize).div_ceil(8);
    need(&buf, payload_bytes)?;
    let bytes = buf.copy_to_bytes(payload_bytes).to_vec();

    let config = MergeConfig::new(magnitude, reduction);
    let expected_chunks = num_symbols.div_ceil(config.chunk_symbols());
    if n_chunks != expected_chunks {
        return Err(HuffError::BadArchive(format!(
            "chunk count {n_chunks} inconsistent with {num_symbols} symbols"
        )));
    }

    Ok((
        ChunkedStream {
            config,
            bytes,
            chunk_bit_lens,
            chunk_bit_offsets,
            total_bits,
            num_symbols,
            outliers,
        },
        book,
        symbol_bytes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
                (x % 256) as u16
            })
            .collect()
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let syms = data(30_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let back = decompress(&archive).unwrap();
        assert_eq!(back, syms);
    }

    #[test]
    fn archive_is_smaller_than_raw_for_skewed_data() {
        let syms: Vec<u16> = (0..100_000).map(|i| if i % 10 == 0 { 1u16 } else { 0 }).collect();
        let archive = compress(&syms, &CompressOptions::new(4)).unwrap();
        assert!(archive.len() < 100_000 / 4, "archive {} bytes", archive.len());
    }

    #[test]
    fn empty_input_roundtrip() {
        // A histogram over an empty input is empty — codebook construction
        // must fail cleanly.
        let err = compress(&[], &CompressOptions::new(16));
        assert!(matches!(err, Err(HuffError::EmptyHistogram)));
    }

    #[test]
    fn single_symbol_roundtrip() {
        let syms = vec![3u16; 1000];
        let archive = compress(&syms, &CompressOptions::new(16)).unwrap();
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn explicit_reduction_factor_respected() {
        let syms = data(10_000);
        let mut opts = CompressOptions::new(256);
        opts.reduction = Some(2);
        let archive = compress(&syms, &opts).unwrap();
        let (stream, _, _) = deserialize(&archive).unwrap();
        assert_eq!(stream.config.reduction, 2);
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn rejects_bad_magic() {
        let syms = data(100);
        let mut archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        archive[0] = b'X';
        assert!(matches!(decompress(&archive), Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let syms = data(5000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        // Every strict prefix must fail cleanly, never panic.
        for cut in [0, 3, 4, 10, 17, archive.len() / 2, archive.len() - 1] {
            assert!(decompress(&archive[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_corrupt_config() {
        let syms = data(100);
        let mut archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        archive[6] = 99; // reduction byte
        assert!(matches!(decompress(&archive), Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn widen_word_strategy_roundtrip() {
        let syms = data(20_000);
        let mut opts = CompressOptions::new(256);
        opts.strategy = BreakingStrategy::WidenWord;
        let archive = compress(&syms, &opts).unwrap();
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn header_records_symbol_width() {
        let syms = data(1000);
        let mut opts = CompressOptions::new(256);
        opts.symbol_bytes = 1;
        let archive = compress(&syms, &opts).unwrap();
        let (_, _, sb) = deserialize(&archive).unwrap();
        assert_eq!(sb, 1);
    }
}
