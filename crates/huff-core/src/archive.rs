//! Self-contained compressed container.
//!
//! A downstream user wants `compress(data) -> bytes -> decompress`, not a
//! pile of kernels; this module is that API. The container stores only the
//! per-symbol codeword *lengths* — canonical codes are reconstructed
//! deterministically on decode ([`CanonicalCodebook::from_lengths`]), which
//! is one of the practical payoffs of canonization the paper highlights.
//!
//! Current layout, version 2 (little-endian):
//!
//! ```text
//! magic "RSH2" | symbol_bytes u8 | magnitude u8 | reduction u8 | flags u8
//! num_symbols u64 | codebook_len u32 | lengths u8 × codebook_len
//! num_chunks u32 | chunk_bit_lens u64 × num_chunks
//! outlier_units u32 | { unit_index u64, count u16, symbols u16 × count }*
//! total_bits u64
//! chunk_crcs u32 × num_chunks   CRC32 of each chunk's payload byte span
//! header_crc u32                CRC32 of every byte preceding this field
//! payload bytes
//! seek index trailer            optional (flags bit 0; FORMAT.md §10)
//! ```
//!
//! A chunk's *payload byte span* is `floor(off/8) .. ceil((off+len)/8)` of
//! the payload, where `off`/`len` are its bit offset and bit length — the
//! bytes a decoder must read to decode the chunk (a zero-length chunk has
//! an explicitly empty span and a CRC of `crc32(b"") == 0`). Adjacent
//! chunks share a boundary byte, so one damaged byte can (conservatively)
//! fail two chunk checksums. The header CRC covers everything before it,
//! including the chunk CRC table: header damage is always fatal, because
//! the codebook and chunk offsets are required to decode anything.
//!
//! The byte at offset 7 is a *flags* field (checksummed with the rest of
//! the header). Bit 0 set means a [`crate::seek::ChunkIndex`] trailer
//! follows the payload, giving [`decode_range`] O(1) chunk location;
//! unknown bits are reserved and ignored. Readers that predate the
//! trailer — and any reader that finds it damaged — simply stop at the
//! payload's computed end, so the section is fail-open by construction.
//!
//! Version 1 (`RSH1`, the original format) is identical minus the two
//! checksum fields and the trailer. [`deserialize`] reads both versions;
//! [`serialize`] writes version 2; [`serialize_v1`] is kept for
//! compatibility testing and interop with older readers.

use crate::codebook::{self, CanonicalCodebook};
use crate::decode;
use crate::encode::{self, BreakingStrategy, ChunkedStream, MergeConfig};
use crate::error::{HuffError, Result};
use crate::histogram;
use crate::integrity::{
    crc32, DecompressOptions, RangeDecode, Recovered, RecoveryMode, RecoveryReport, Section, Verify,
};
use crate::seek::ChunkIndex;
use crate::sparse::SparseOutliers;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::ops::Range;

const MAGIC_V1: &[u8; 4] = b"RSH1";
const MAGIC_V2: &[u8; 4] = b"RSH2";

/// Header flags bit (byte 7): a seek-index trailer follows the payload.
pub const FLAG_SEEK_INDEX: u8 = 1;

/// Options for [`compress`].
#[derive(Debug, Clone, Copy)]
pub struct CompressOptions {
    /// Number of symbols the histogram spans (e.g. 1024 quantization bins,
    /// 256 for byte data).
    pub num_symbols: usize,
    /// Chunk magnitude `M`.
    pub magnitude: u32,
    /// Reduction factor; `None` applies the Fig. 3 rule.
    pub reduction: Option<u32>,
    /// Breaking-point strategy.
    pub strategy: BreakingStrategy,
    /// Native symbol width recorded in the header (1 or 2 bytes).
    pub symbol_bytes: u8,
}

impl CompressOptions {
    /// Defaults for 2-byte symbols over `num_symbols` bins.
    pub fn new(num_symbols: usize) -> Self {
        CompressOptions {
            num_symbols,
            magnitude: 10,
            reduction: None,
            strategy: BreakingStrategy::SparseSidecar,
            symbol_bytes: 2,
        }
    }
}

/// Compress `symbols` into a self-contained archive.
///
/// The empty input is a first-class archive (zero chunks, an empty
/// codebook, an empty payload) rather than an error: range reads and
/// frame shards of size zero must roundtrip like anything else.
pub fn compress(symbols: &[u16], opts: &CompressOptions) -> Result<Vec<u8>> {
    if symbols.is_empty() {
        let config = MergeConfig::new(opts.magnitude, opts.reduction.unwrap_or(1).max(1));
        let stream = ChunkedStream {
            config,
            bytes: Vec::new(),
            chunk_bit_lens: Vec::new(),
            chunk_bit_offsets: Vec::new(),
            total_bits: 0,
            num_symbols: 0,
            outliers: SparseOutliers::new(),
        };
        let packed = serialize(&stream, &CanonicalCodebook::empty(), opts.symbol_bytes)?;
        crate::metrics::registry::global().record_compress(0, packed.len() as u64, 1.0, 0);
        return Ok(packed);
    }
    let freqs =
        histogram::parallel_cpu::histogram(symbols, opts.num_symbols, rayon::current_num_threads());
    let book = codebook::parallel(&freqs, 16)?;
    let config = match opts.reduction {
        Some(r) => MergeConfig::new(opts.magnitude, r),
        None => MergeConfig::auto::<u32>(opts.magnitude, &freqs, &book),
    };
    let stream = encode::reduce_shuffle::encode(symbols, &book, config, opts.strategy)?;
    let packed = serialize(&stream, &book, opts.symbol_bytes)?;
    {
        let bytes_in = symbols.len() as u64 * u64::from(opts.symbol_bytes);
        let ratio = if packed.is_empty() { 1.0 } else { bytes_in as f64 / packed.len() as f64 };
        crate::metrics::registry::global().record_compress(
            bytes_in,
            packed.len() as u64,
            ratio,
            stream.num_chunks(),
        );
    }
    Ok(packed)
}

/// Decompress an archive produced by [`compress`].
///
/// Equivalent to [`decompress_with`] under the default
/// [`DecompressOptions`]: full verification, strict mode.
pub fn decompress(archive: &[u8]) -> Result<Vec<u16>> {
    Ok(decompress_with(archive, &DecompressOptions::default())?.symbols)
}

/// Decompress under an explicit verification and recovery policy.
///
/// In [`RecoveryMode::Strict`] the first failed check aborts with a typed
/// error; the returned report is clean. In [`RecoveryMode::BestEffort`]
/// every chunk whose checksum passes (and whose decode succeeds) is
/// recovered, damaged regions are filled with `opts.sentinel`, and the
/// report lists what was lost. Header damage is fatal in both modes.
///
/// Multi-shard frames ([`crate::frame`], magic `RSHM`) are dispatched to
/// the frame decoder, and store-raw containers ([`crate::tune`], magic
/// `RSHR`) to the raw decoder, so this is the single entry point for all
/// three formats.
pub fn decompress_with(archive: &[u8], opts: &DecompressOptions) -> Result<Recovered> {
    if crate::frame::is_frame(archive) {
        return crate::frame::decompress_with(archive, opts);
    }
    if crate::tune::is_raw(archive) {
        return crate::tune::decompress_raw_with(archive, opts);
    }
    let parsed = deserialize_with(archive, opts)?;
    let recovered = match opts.mode {
        RecoveryMode::Strict => {
            let symbols = decode::decode_stream(&parsed.stream, &parsed.book, opts.decoder)?;
            let report = RecoveryReport::clean(parsed.stream.num_chunks());
            Recovered { symbols, report }
        }
        RecoveryMode::BestEffort => {
            let (symbols, report) = decode::decode_stream_best_effort(
                &parsed.stream,
                &parsed.book,
                &parsed.chunk_damage,
                opts.sentinel,
                opts.decoder,
            );
            Recovered { symbols, report }
        }
    };
    crate::metrics::registry::global().record_decompress(
        archive.len() as u64,
        recovered.symbols.len() as u64 * u64::from(parsed.symbol_bytes.max(1)),
        recovered.report.total_chunks,
        recovered.report.damaged_chunks.len(),
    );
    Ok(recovered)
}

/// Check an archive's checksums without decoding the payload.
///
/// Fails with a typed error when the archive is structurally invalid or
/// its header checksum does not match. Otherwise returns a report whose
/// `damaged_chunks` lists every chunk with a failing payload checksum
/// (with the symbol ranges that would be lost to best-effort recovery).
/// RSH1 archives carry no checksums, so they verify clean whenever they
/// parse.
///
/// ```
/// use huff_core::archive::{compress, layout, verify, CompressOptions};
/// use huff_core::integrity::Section;
///
/// let data: Vec<u16> = (0..10_000).map(|i| (i % 50) as u16).collect();
/// let packed = compress(&data, &CompressOptions::new(64)).unwrap();
/// assert!(verify(&packed).unwrap().is_clean());
///
/// // Flip one payload bit: verify localizes the damage to one chunk.
/// let sections = layout(&packed).unwrap();
/// let payload = &sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().1;
/// let mut damaged = packed.clone();
/// damaged[payload.end - 1] ^= 0x10;
/// let report = verify(&damaged).unwrap();
/// assert_eq!(report.damaged_chunks.len(), 1);
/// ```
pub fn verify(archive: &[u8]) -> Result<RecoveryReport> {
    crate::metrics::registry::global().record_verify();
    if crate::frame::is_frame(archive) {
        return crate::frame::verify(archive);
    }
    if crate::tune::is_raw(archive) {
        return crate::tune::verify_raw(archive);
    }
    let opts = DecompressOptions { mode: RecoveryMode::BestEffort, ..Default::default() };
    let parsed = deserialize_with(archive, &opts)?;
    Ok(decode::chunked::damage_report(&parsed.stream, &parsed.chunk_damage))
}

/// A fully parsed archive plus per-chunk verification results.
#[derive(Debug)]
pub struct Parsed {
    /// The chunked payload and its metadata.
    pub stream: ChunkedStream,
    /// The reconstructed canonical codebook.
    pub book: CanonicalCodebook,
    /// Native symbol width recorded in the header.
    pub symbol_bytes: u8,
    /// Container version (1 or 2).
    pub version: u8,
    /// `chunk_damage[ci]` is true when chunk `ci` failed its payload
    /// checksum or lies beyond a truncated payload. All-false for RSH1
    /// archives and under [`Verify::None`] / [`Verify::HeadersOnly`].
    pub chunk_damage: Vec<bool>,
}

/// Serialize a chunked stream + codebook into the current (RSH2)
/// container format, including checksums and the seek-index trailer.
///
/// Errors when a count field overflows its serialized width — a
/// structured [`HuffError::BadArchive`], never a silent `as` truncation.
pub fn serialize(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    symbol_bytes: u8,
) -> Result<Vec<u8>> {
    let index = ChunkIndex::build(&stream.chunk_bit_lens, stream.total_bits)?;
    let mut buf = header_bytes(MAGIC_V2, stream, book, symbol_bytes, FLAG_SEEK_INDEX)?;
    for ci in 0..stream.num_chunks() {
        let span = chunk_byte_span(stream.chunk_bit_offsets[ci], stream.chunk_bit_lens[ci]);
        buf.put_u32_le(crc32(&stream.bytes[span]));
    }
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    buf.put_slice(&stream.bytes);
    index.write_to(&mut buf)?;
    Ok(buf.to_vec())
}

/// Serialize into the legacy RSH1 container (no checksums, no seek
/// index). Kept so the compatibility path stays testable; new archives
/// should use [`serialize`].
pub fn serialize_v1(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    symbol_bytes: u8,
) -> Result<Vec<u8>> {
    let mut buf = header_bytes(MAGIC_V1, stream, book, symbol_bytes, 0)?;
    buf.put_slice(&stream.bytes);
    Ok(buf.to_vec())
}

/// The byte span of the payload a chunk's bits occupy. A chunk with no
/// bits occupies no bytes: its span is explicitly empty (`start..start`)
/// even when its offset lands mid-byte, so its CRC never covers a byte
/// owned entirely by a neighbor.
fn chunk_byte_span(bit_offset: u64, bit_len: u64) -> Range<usize> {
    let start = (bit_offset / 8) as usize;
    if bit_len == 0 {
        return start..start;
    }
    let end = ((bit_offset + bit_len).div_ceil(8)) as usize;
    start..end
}

fn count_u32(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| bad(format!("{n} {what} exceed the format's u32 count")))
}

fn count_u16(n: usize, what: &str) -> Result<u16> {
    u16::try_from(n).map_err(|_| bad(format!("{n} {what} exceed the format's u16 count")))
}

/// Everything up to (not including) the checksum fields — shared between
/// both container versions.
fn header_bytes(
    magic: &[u8; 4],
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    symbol_bytes: u8,
    flags: u8,
) -> Result<BytesMut> {
    let mut buf = BytesMut::with_capacity(stream.bytes.len() + book.num_symbols() + 64);
    buf.put_slice(magic);
    buf.put_u8(symbol_bytes);
    buf.put_u8(stream.config.magnitude as u8);
    buf.put_u8(stream.config.reduction as u8);
    buf.put_u8(flags);
    buf.put_u64_le(stream.num_symbols as u64);

    let lengths = book.lengths();
    buf.put_u32_le(count_u32(lengths.len(), "codebook entries")?);
    for l in &lengths {
        debug_assert!(*l <= 64);
        buf.put_u8(*l as u8);
    }

    buf.put_u32_le(count_u32(stream.chunk_bit_lens.len(), "chunks")?);
    for &l in &stream.chunk_bit_lens {
        buf.put_u64_le(l);
    }

    buf.put_u32_le(count_u32(stream.outliers.num_units(), "outlier units")?);
    for (idx, syms) in stream.outliers.iter() {
        buf.put_u64_le(idx);
        buf.put_u16_le(count_u16(syms.len(), "outlier unit symbols")?);
        for &s in syms {
            buf.put_u16_le(s);
        }
    }

    buf.put_u64_le(stream.total_bits);
    Ok(buf)
}

/// Parse the container format back into a stream + codebook, verifying
/// fully and strictly (see [`deserialize_with`] for policy control).
pub fn deserialize(archive: &[u8]) -> Result<(ChunkedStream, CanonicalCodebook, u8)> {
    let p = deserialize_with(archive, &DecompressOptions::default())?;
    Ok((p.stream, p.book, p.symbol_bytes))
}

fn bad(msg: impl Into<String>) -> HuffError {
    HuffError::BadArchive(msg.into())
}

/// Parse the container under an explicit verification policy.
///
/// Structural damage (bad magic, truncated or inconsistent header) and —
/// unless `opts.verify` is [`Verify::None`] — a header checksum mismatch
/// are errors in every mode. Per-chunk payload checksums are checked
/// under [`Verify::Full`]: in strict mode the first mismatch is an
/// error; in best-effort mode failures are recorded in
/// [`Parsed::chunk_damage`] instead. A truncated *payload* is an error
/// in strict mode; in best-effort mode the missing tail chunks are
/// marked damaged.
pub fn deserialize_with(archive: &[u8], opts: &DecompressOptions) -> Result<Parsed> {
    let mut buf = Bytes::copy_from_slice(archive);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(bad(format!("truncated: need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    // Offset of the next unread byte within `archive`.
    let pos = |buf: &Bytes| archive.len() - buf.remaining();

    need(&buf, 16)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    let version: u8 = match &magic {
        m if m == MAGIC_V1 => 1,
        m if m == MAGIC_V2 => 2,
        _ => return Err(bad("bad magic")),
    };
    let symbol_bytes = buf.get_u8();
    let magnitude = u32::from(buf.get_u8());
    let reduction = u32::from(buf.get_u8());
    let _flags = buf.get_u8();
    if !(2..=24).contains(&magnitude) || reduction == 0 || reduction >= magnitude {
        return Err(bad(format!("bad config M={magnitude} r={reduction}")));
    }
    let num_symbols_u64 = buf.get_u64_le();
    let num_symbols: usize =
        num_symbols_u64.try_into().map_err(|_| bad("symbol count exceeds address space"))?;
    let config = MergeConfig::new(magnitude, reduction);

    need(&buf, 4)?;
    let cb_len = buf.get_u32_le() as usize;
    need(&buf, cb_len)?;
    // `need` bounds cb_len by the remaining buffer, so the allocation is
    // capped by the archive's own size.
    let mut lengths = Vec::with_capacity(cb_len);
    for _ in 0..cb_len {
        lengths.push(u32::from(buf.get_u8()));
    }
    // The empty input's archive stores no codebook at all; a missing
    // codebook with symbols present is still structural damage.
    let book = if cb_len == 0 && num_symbols == 0 {
        CanonicalCodebook::empty()
    } else {
        CanonicalCodebook::from_lengths(&lengths).map_err(|e| bad(format!("codebook: {e}")))?
    };

    need(&buf, 4)?;
    let n_chunks = buf.get_u32_le() as usize;
    let chunk_table_bytes =
        n_chunks.checked_mul(8).ok_or_else(|| bad("chunk table size overflow"))?;
    need(&buf, chunk_table_bytes)?;
    let expected_chunks = num_symbols.div_ceil(config.chunk_symbols());
    if n_chunks != expected_chunks {
        return Err(bad(format!("chunk count {n_chunks} inconsistent with {num_symbols} symbols")));
    }
    let mut chunk_bit_lens = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        chunk_bit_lens.push(buf.get_u64_le());
    }
    let mut chunk_bit_offsets = Vec::with_capacity(n_chunks);
    let mut acc = 0u64;
    for &l in &chunk_bit_lens {
        chunk_bit_offsets.push(acc);
        acc = acc.checked_add(l).ok_or_else(|| bad("chunk bit lengths overflow"))?;
    }

    need(&buf, 4)?;
    let n_outliers = buf.get_u32_le() as usize;
    let unit_syms = config.unit_symbols().max(1);
    let mut outliers = SparseOutliers::new();
    let mut last_idx: Option<u64> = None;
    for _ in 0..n_outliers {
        need(&buf, 10)?;
        let idx = buf.get_u64_le();
        if last_idx.is_some_and(|l| idx <= l) {
            return Err(bad("outlier units out of order"));
        }
        last_idx = Some(idx);
        let count = buf.get_u16_le() as usize;
        let unit_base = (idx as usize)
            .checked_mul(unit_syms)
            .filter(|&b| b < num_symbols)
            .ok_or_else(|| bad(format!("outlier unit {idx} beyond {num_symbols} symbols")))?;
        let expected = unit_syms.min(num_symbols - unit_base);
        if count != expected {
            return Err(bad(format!(
                "outlier unit {idx} stores {count} symbols, unit holds {expected}"
            )));
        }
        need(&buf, count.checked_mul(2).ok_or_else(|| bad("outlier size overflow"))?)?;
        let syms: Vec<u16> = (0..count).map(|_| buf.get_u16_le()).collect();
        outliers.push(idx, &syms);
    }

    need(&buf, 8)?;
    let total_bits = buf.get_u64_le();
    if total_bits != acc {
        return Err(bad(format!("payload length mismatch: header {total_bits}, chunks {acc}")));
    }

    // Version 2: chunk CRC table + header CRC, then the payload.
    let mut chunk_crcs: Option<Vec<u32>> = None;
    if version == 2 {
        let crc_table_bytes =
            n_chunks.checked_mul(4).ok_or_else(|| bad("checksum table size overflow"))?;
        need(&buf, crc_table_bytes + 4)?;
        let mut crcs = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            crcs.push(buf.get_u32_le());
        }
        let header_end = pos(&buf);
        let stored_header_crc = buf.get_u32_le();
        if opts.verify != Verify::None {
            let got = crc32(&archive[..header_end]);
            if got != stored_header_crc {
                return Err(HuffError::ChecksumMismatch {
                    section: Section::Header,
                    chunk: None,
                    expected: stored_header_crc,
                    got,
                });
            }
        }
        chunk_crcs = Some(crcs);
    }

    let payload_bytes = (total_bits as usize).div_ceil(8);
    let best_effort = opts.mode == RecoveryMode::BestEffort;
    if !best_effort {
        need(&buf, payload_bytes)?;
    }
    let avail = payload_bytes.min(buf.remaining());
    let mut bytes = buf.copy_to_bytes(avail).to_vec();
    let truncated = avail < payload_bytes;
    if truncated {
        bytes.resize(payload_bytes, 0);
    }

    // Per-chunk verification.
    let mut chunk_damage = vec![false; n_chunks];
    if version == 2 && opts.verify == Verify::Full {
        let crcs = chunk_crcs.as_ref().expect("v2 always has chunk crcs");
        for ci in 0..n_chunks {
            let span = chunk_byte_span(chunk_bit_offsets[ci], chunk_bit_lens[ci]);
            let damaged = span.end > avail || crc32(&bytes[span]) != crcs[ci];
            if damaged {
                if !best_effort {
                    let span = chunk_byte_span(chunk_bit_offsets[ci], chunk_bit_lens[ci]);
                    return Err(HuffError::ChecksumMismatch {
                        section: Section::Payload,
                        chunk: Some(ci as u32),
                        expected: crcs[ci],
                        got: crc32(&bytes[span]),
                    });
                }
                chunk_damage[ci] = true;
            }
        }
    } else if truncated {
        // Best-effort without chunk checksums: anything touching the
        // missing tail is damaged.
        for ci in 0..n_chunks {
            let span = chunk_byte_span(chunk_bit_offsets[ci], chunk_bit_lens[ci]);
            if span.end > avail {
                chunk_damage[ci] = true;
            }
        }
    }

    Ok(Parsed {
        stream: ChunkedStream {
            config,
            bytes,
            chunk_bit_lens,
            chunk_bit_offsets,
            total_bits,
            num_symbols,
            outliers,
        },
        book,
        symbol_bytes,
        version,
        chunk_damage,
    })
}

/// Map an archive's bytes to container sections.
///
/// Walks the structure without building a codebook or verifying
/// checksums; used by the fault-injection harness to aim faults at
/// specific sections. The returned ranges tile `[0, archive.len())` in
/// order. Fails on archives too malformed to walk.
pub fn layout(archive: &[u8]) -> Result<Vec<(Section, Range<usize>)>> {
    let mut buf = Bytes::copy_from_slice(archive);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(bad(format!("truncated: need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    let pos = |buf: &Bytes| archive.len() - buf.remaining();

    need(&buf, 16)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    let version: u8 = match &magic {
        m if m == MAGIC_V1 => 1,
        m if m == MAGIC_V2 => 2,
        _ => return Err(bad("bad magic")),
    };
    let mut sections = vec![(Section::Magic, 0..4)];
    buf.advance(12); // symbol_bytes, magnitude, reduction, pad, num_symbols
    sections.push((Section::Config, 4..16));

    let start = pos(&buf);
    need(&buf, 4)?;
    let cb_len = buf.get_u32_le() as usize;
    need(&buf, cb_len)?;
    buf.advance(cb_len);
    sections.push((Section::Codebook, start..pos(&buf)));

    let start = pos(&buf);
    need(&buf, 4)?;
    let n_chunks = buf.get_u32_le() as usize;
    let table = n_chunks.checked_mul(8).ok_or_else(|| bad("chunk table size overflow"))?;
    need(&buf, table)?;
    buf.advance(table);
    sections.push((Section::ChunkTable, start..pos(&buf)));

    let start = pos(&buf);
    need(&buf, 4)?;
    let n_outliers = buf.get_u32_le() as usize;
    for _ in 0..n_outliers {
        need(&buf, 10)?;
        buf.advance(8);
        let count = buf.get_u16_le() as usize;
        let n = count.checked_mul(2).ok_or_else(|| bad("outlier size overflow"))?;
        need(&buf, n)?;
        buf.advance(n);
    }
    sections.push((Section::Outliers, start..pos(&buf)));

    let start = pos(&buf);
    need(&buf, 8)?;
    let total_bits = buf.get_u64_le();
    sections.push((Section::TotalBits, start..pos(&buf)));

    if version == 2 {
        let start = pos(&buf);
        let table = n_chunks.checked_mul(4).ok_or_else(|| bad("checksum table size overflow"))?;
        need(&buf, table + 4)?;
        buf.advance(table + 4);
        sections.push((Section::Checksums, start..pos(&buf)));
    }

    // The payload's extent is computed from total_bits; anything after it
    // is the optional seek-index trailer (flags bit 0, version 2 only).
    let payload_start = pos(&buf);
    let payload_end = payload_start
        .saturating_add((total_bits as usize).div_ceil(8))
        .min(archive.len())
        .max(payload_start);
    let flags = if version == 2 { archive[7] } else { 0 };
    if flags & FLAG_SEEK_INDEX != 0 && payload_end < archive.len() {
        sections.push((Section::Payload, payload_start..payload_end));
        sections.push((Section::SeekIndex, payload_end..archive.len()));
    } else {
        sections.push((Section::Payload, payload_start..archive.len()));
    }
    Ok(sections)
}

// ---------------------------------------------------------------------------
// Random-access range decode
// ---------------------------------------------------------------------------

/// Chunk count from a minimal header peek (magic through the count
/// field) — no codebook build, no chunk-table scan. The frame range
/// decoder uses this to map shard-local chunk indices to frame-global
/// ones without parsing untouched shards.
pub fn chunk_count(archive: &[u8]) -> Result<usize> {
    if archive.len() < 20 || (&archive[..4] != MAGIC_V1 && &archive[..4] != MAGIC_V2) {
        return Err(bad("bad magic"));
    }
    let cb_len = u32::from_le_bytes(archive[16..20].try_into().unwrap()) as usize;
    let at = 20usize.checked_add(cb_len).ok_or_else(|| bad("codebook size overflow"))?;
    let end = at.checked_add(4).filter(|&e| e <= archive.len());
    let end = end.ok_or_else(|| bad("truncated: need chunk count"))?;
    Ok(u32::from_le_bytes(archive[at..end].try_into().unwrap()) as usize)
}

/// A parsed header with *positions* instead of materialized tables: the
/// chunk table and CRC table stay in the archive bytes so a range decode
/// reads only the words it needs.
struct HeaderView {
    version: u8,
    symbol_bytes: u8,
    flags: u8,
    config: MergeConfig,
    num_symbols: usize,
    book: CanonicalCodebook,
    n_chunks: usize,
    /// Byte range of `chunk_bit_lens` within the archive.
    chunk_table: Range<usize>,
    outliers: SparseOutliers,
    total_bits: u64,
    /// Byte range of the per-chunk CRC table (version 2).
    crc_table: Option<Range<usize>>,
    /// Where the payload starts; its nominal end is
    /// `start + total_bits.div_ceil(8)` (the archive may be shorter).
    payload_start: usize,
}

impl HeaderView {
    fn payload_bytes(&self) -> usize {
        (self.total_bits as usize).div_ceil(8)
    }

    /// Payload bytes actually present in the archive.
    fn payload_avail(&self, archive: &[u8]) -> usize {
        archive.len().saturating_sub(self.payload_start).min(self.payload_bytes())
    }

    fn chunk_bit_len(&self, archive: &[u8], i: usize) -> u64 {
        let at = self.chunk_table.start + 8 * i;
        u64::from_le_bytes(archive[at..at + 8].try_into().unwrap())
    }

    fn chunk_crc(&self, archive: &[u8], i: usize) -> u32 {
        let t = self.crc_table.as_ref().expect("v2 always has a crc table");
        let at = t.start + 4 * i;
        u32::from_le_bytes(archive[at..at + 4].try_into().unwrap())
    }
}

/// Walk the header exactly like [`deserialize_with`] but without copying
/// the payload, materializing the chunk table, or checking per-chunk
/// payload CRCs. The header CRC is still verified (unless
/// [`Verify::None`]) — header damage stays fatal on every path.
fn parse_header(archive: &[u8], verify: Verify) -> Result<HeaderView> {
    let mut buf = Bytes::copy_from_slice(archive);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(bad(format!("truncated: need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    let pos = |buf: &Bytes| archive.len() - buf.remaining();

    need(&buf, 16)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    let version: u8 = match &magic {
        m if m == MAGIC_V1 => 1,
        m if m == MAGIC_V2 => 2,
        _ => return Err(bad("bad magic")),
    };
    let symbol_bytes = buf.get_u8();
    let magnitude = u32::from(buf.get_u8());
    let reduction = u32::from(buf.get_u8());
    let flags = buf.get_u8();
    if !(2..=24).contains(&magnitude) || reduction == 0 || reduction >= magnitude {
        return Err(bad(format!("bad config M={magnitude} r={reduction}")));
    }
    let num_symbols: usize =
        buf.get_u64_le().try_into().map_err(|_| bad("symbol count exceeds address space"))?;
    let config = MergeConfig::new(magnitude, reduction);

    need(&buf, 4)?;
    let cb_len = buf.get_u32_le() as usize;
    need(&buf, cb_len)?;
    let mut lengths = Vec::with_capacity(cb_len);
    for _ in 0..cb_len {
        lengths.push(u32::from(buf.get_u8()));
    }
    let book = if cb_len == 0 && num_symbols == 0 {
        CanonicalCodebook::empty()
    } else {
        CanonicalCodebook::from_lengths(&lengths).map_err(|e| bad(format!("codebook: {e}")))?
    };

    need(&buf, 4)?;
    let n_chunks = buf.get_u32_le() as usize;
    let table_bytes = n_chunks.checked_mul(8).ok_or_else(|| bad("chunk table size overflow"))?;
    need(&buf, table_bytes)?;
    if n_chunks != num_symbols.div_ceil(config.chunk_symbols()) {
        return Err(bad(format!("chunk count {n_chunks} inconsistent with {num_symbols} symbols")));
    }
    let chunk_table = pos(&buf)..pos(&buf) + table_bytes;
    buf.advance(table_bytes);

    need(&buf, 4)?;
    let n_outliers = buf.get_u32_le() as usize;
    let unit_syms = config.unit_symbols().max(1);
    let mut outliers = SparseOutliers::new();
    let mut last_idx: Option<u64> = None;
    for _ in 0..n_outliers {
        need(&buf, 10)?;
        let idx = buf.get_u64_le();
        if last_idx.is_some_and(|l| idx <= l) {
            return Err(bad("outlier units out of order"));
        }
        last_idx = Some(idx);
        let count = buf.get_u16_le() as usize;
        let unit_base = (idx as usize)
            .checked_mul(unit_syms)
            .filter(|&b| b < num_symbols)
            .ok_or_else(|| bad(format!("outlier unit {idx} beyond {num_symbols} symbols")))?;
        let expected = unit_syms.min(num_symbols - unit_base);
        if count != expected {
            return Err(bad(format!(
                "outlier unit {idx} stores {count} symbols, unit holds {expected}"
            )));
        }
        need(&buf, count.checked_mul(2).ok_or_else(|| bad("outlier size overflow"))?)?;
        let syms: Vec<u16> = (0..count).map(|_| buf.get_u16_le()).collect();
        outliers.push(idx, &syms);
    }

    need(&buf, 8)?;
    let total_bits = buf.get_u64_le();

    let mut crc_table = None;
    if version == 2 {
        let crc_bytes =
            n_chunks.checked_mul(4).ok_or_else(|| bad("checksum table size overflow"))?;
        need(&buf, crc_bytes + 4)?;
        crc_table = Some(pos(&buf)..pos(&buf) + crc_bytes);
        buf.advance(crc_bytes);
        let header_end = pos(&buf);
        let stored = buf.get_u32_le();
        if verify != Verify::None {
            let got = crc32(&archive[..header_end]);
            if got != stored {
                return Err(HuffError::ChecksumMismatch {
                    section: Section::Header,
                    chunk: None,
                    expected: stored,
                    got,
                });
            }
        }
    }

    Ok(HeaderView {
        version,
        symbol_bytes,
        flags,
        config,
        num_symbols,
        book,
        n_chunks,
        chunk_table,
        outliers,
        total_bits,
        crc_table,
        payload_start: pos(&buf),
    })
}

/// Load and validate the seek-index trailer; `None` means "no usable
/// index" (absent flag, truncated archive, CRC failure, or disagreement
/// with the header) and the caller falls back to the prefix scan.
fn load_index(archive: &[u8], hdr: &HeaderView) -> Option<ChunkIndex> {
    if hdr.version != 2 || hdr.flags & FLAG_SEEK_INDEX == 0 {
        return None;
    }
    let trailer_start = hdr.payload_start.checked_add(hdr.payload_bytes())?;
    if trailer_start >= archive.len() {
        return None;
    }
    let idx = ChunkIndex::parse(&archive[trailer_start..])?;
    (idx.num_chunks() == hdr.n_chunks as u64 && idx.total_bits() == hdr.total_bits).then_some(idx)
}

/// The decode plan for one byte range: a rebased [`ChunkedStream`]
/// covering exactly the chunks the range touches, plus the bookkeeping
/// to map the window's output back to global coordinates.
///
/// Produced by [`range_window`]; consumed by [`decode_range`] on the
/// host and by `decode::gpu::decode_range_on_gpu` on the modeled device
/// (which charges the probe traffic to the cost model). [`RangeWindow::finish`]
/// turns the window's decoded symbols into the final [`RangeDecode`].
#[derive(Debug)]
pub struct RangeWindow {
    /// The covering chunks as a self-contained stream: offsets rebased
    /// to the window's first payload byte, outlier units rebased to the
    /// window's first unit.
    pub stream: ChunkedStream,
    /// The reconstructed codebook.
    pub book: CanonicalCodebook,
    /// Native symbol width from the header.
    pub symbol_bytes: u8,
    /// First covering chunk (global index).
    pub chunk_lo: usize,
    /// One past the last covering chunk (global index).
    pub chunk_hi: usize,
    /// Total chunks in the archive.
    pub total_chunks: usize,
    /// u64-word probes spent locating the window's chunk offsets.
    pub index_probes: u64,
    /// True when the offsets came from the seek index rather than the
    /// chunk-table prefix scan.
    pub index_used: bool,
    /// Per-window-chunk CRC damage (all false in strict mode, which
    /// errors instead).
    pub damage: Vec<bool>,
    /// The requested byte range, relative to the window's decoded output.
    pub local_bytes: Range<usize>,
}

impl RangeWindow {
    /// Map the window's decoded symbols to the requested bytes and shift
    /// the (window-local) report into global coordinates.
    pub fn finish(self, symbols: &[u16], mut report: RecoveryReport) -> RangeDecode {
        let sb = usize::from(self.symbol_bytes.max(1));
        let sym_base = self.chunk_lo * self.stream.config.chunk_symbols();
        report.total_chunks = self.total_chunks;
        for c in &mut report.damaged_chunks {
            *c += self.chunk_lo;
        }
        for r in &mut report.damaged_ranges {
            r.0 += sym_base;
            r.1 += sym_base;
        }
        let mut bytes = Vec::with_capacity(symbols.len() * sb);
        for &s in symbols {
            bytes.extend_from_slice(&u64::from(s).to_le_bytes()[..sb]);
        }
        let lo = self.local_bytes.start.min(bytes.len());
        let hi = self.local_bytes.end.clamp(lo, bytes.len());
        bytes.drain(hi..);
        bytes.drain(..lo);
        RangeDecode {
            bytes,
            report,
            chunks_touched: self.chunk_hi - self.chunk_lo,
            total_chunks: self.total_chunks,
            index_probes: self.index_probes,
            index_used: self.index_used,
        }
    }
}

/// Plan a range decode over a plain RSH1/RSH2 archive: locate the
/// covering chunks (seek index when present and valid, chunk-table
/// prefix scan otherwise), verify only their payload CRCs, and build the
/// rebased window stream. `range` is in *decoded output bytes* (symbols
/// serialized little-endian at the header's symbol width); it is clamped
/// to the output's extent, and an inverted range is an error.
pub fn range_window(
    archive: &[u8],
    range: Range<u64>,
    opts: &DecompressOptions,
) -> Result<RangeWindow> {
    if range.start > range.end {
        return Err(bad(format!("byte range {}..{} is inverted", range.start, range.end)));
    }
    let hdr = parse_header(archive, opts.verify)?;
    let sb = u64::from(hdr.symbol_bytes.max(1));
    let total_bytes = hdr.num_symbols as u64 * sb;
    let lo = range.start.min(total_bytes);
    let hi = range.end.min(total_bytes);
    let chunk_syms = hdr.config.chunk_symbols() as u64;

    // Covering chunk range; an empty byte range touches no chunks.
    let (c0, c1) = if lo == hi {
        (0, 0)
    } else {
        let sym_lo = lo / sb;
        let sym_hi = hi.div_ceil(sb).min(hdr.num_symbols as u64);
        ((sym_lo / chunk_syms) as usize, (sym_hi.div_ceil(chunk_syms) as usize).min(hdr.n_chunks))
    };
    let span = c1 - c0;

    // Absolute bit offsets off[c0..=c1]: O(1) probes per boundary with
    // the index, a prefix scan of the table without it. An index whose
    // offsets are not monotone within the payload is treated as absent
    // (fail-open), never trusted.
    let mut probes = 0u64;
    let mut index_used = false;
    let mut offs: Vec<u64> = Vec::with_capacity(span + 1);
    if let Some(idx) = load_index(archive, &hdr) {
        let mut p = 0u64;
        let cand: Vec<u64> = (0..=span).map(|k| idx.offset((c0 + k) as u64, &mut p)).collect();
        let monotone = cand.windows(2).all(|w| w[0] <= w[1]);
        if monotone && cand.last().is_none_or(|&e| e <= hdr.total_bits) {
            offs = cand;
            probes += p;
            index_used = true;
        }
    }
    if !index_used {
        let mut acc = 0u64;
        for i in 0..c1 {
            if i >= c0 {
                offs.push(acc);
            }
            acc = acc
                .checked_add(hdr.chunk_bit_len(archive, i))
                .ok_or_else(|| bad("chunk bit lengths overflow"))?;
            probes += 1;
        }
        offs.push(acc);
        if acc > hdr.total_bits {
            return Err(bad(format!(
                "covering chunks end at bit {acc}, past the payload's {}",
                hdr.total_bits
            )));
        }
    }

    // Copy the covering payload bytes, zero-padding anything truncated
    // away (strict mode requires them present).
    let best_effort = opts.mode == RecoveryMode::BestEffort;
    let avail = hdr.payload_avail(archive);
    let w_start = (offs[0] / 8) as usize;
    let w_end = (offs[span].div_ceil(8)) as usize;
    if !best_effort && w_end > avail {
        return Err(bad(format!("truncated: need {} more payload bytes", w_end - avail)));
    }
    let src_lo = hdr.payload_start + w_start.min(avail);
    let src_hi = hdr.payload_start + w_end.min(avail);
    let mut bytes = archive[src_lo..src_hi].to_vec();
    bytes.resize(w_end - w_start, 0);

    // Verify only the covering chunks' CRCs.
    let mut damage = vec![false; span];
    if hdr.version == 2 && opts.verify == Verify::Full {
        for k in 0..span {
            let ci = c0 + k;
            let s = chunk_byte_span(offs[k], offs[k + 1] - offs[k]);
            let local = s.start - w_start..s.end - w_start;
            let got = crc32(&bytes[local]);
            if s.end > avail || got != hdr.chunk_crc(archive, ci) {
                if !best_effort {
                    return Err(HuffError::ChecksumMismatch {
                        section: Section::Payload,
                        chunk: Some(ci as u32),
                        expected: hdr.chunk_crc(archive, ci),
                        got,
                    });
                }
                damage[k] = true;
            }
        }
    } else if best_effort && w_end > avail {
        for k in 0..span {
            let s = chunk_byte_span(offs[k], offs[k + 1] - offs[k]);
            if s.end > avail {
                damage[k] = true;
            }
        }
    }

    // Rebase chunk offsets, symbol counts, and outlier units into the
    // window's coordinate system.
    let base_bits = w_start as u64 * 8;
    let chunk_bit_offsets: Vec<u64> = offs[..span].iter().map(|&o| o - base_bits).collect();
    let chunk_bit_lens: Vec<u64> = offs.windows(2).map(|w| w[1] - w[0]).collect();
    let num_symbols_w = if span == 0 {
        0
    } else {
        (hdr.num_symbols - c0 * chunk_syms as usize).min(span * chunk_syms as usize)
    };
    let upc = hdr.config.units_per_chunk() as u64;
    let unit_lo = c0 as u64 * upc;
    let unit_hi = c1 as u64 * upc;
    let mut outliers = SparseOutliers::new();
    for (u, syms) in hdr.outliers.iter() {
        if (unit_lo..unit_hi).contains(&u) {
            outliers.push(u - unit_lo, syms);
        }
    }

    let sym_base_bytes = c0 as u64 * chunk_syms * sb;
    Ok(RangeWindow {
        stream: ChunkedStream {
            config: hdr.config,
            bytes,
            chunk_bit_lens,
            chunk_bit_offsets,
            total_bits: offs[span] - base_bits,
            num_symbols: num_symbols_w,
            outliers,
        },
        book: hdr.book,
        symbol_bytes: hdr.symbol_bytes,
        chunk_lo: c0,
        chunk_hi: c1,
        total_chunks: hdr.n_chunks,
        index_probes: probes,
        index_used,
        damage,
        local_bytes: (lo - sym_base_bytes) as usize..(hi - sym_base_bytes) as usize,
    })
}

/// Decode only the chunks covering `range` (in decoded output bytes) and
/// return exactly those bytes.
///
/// The single entry point for all three container formats: RSHM frames
/// dispatch per covering shard, RSHR raw containers slice the stored
/// payload directly, and plain archives decode a [`range_window`]. The
/// range is clamped to the decoded output's extent — `lo..u64::MAX` reads
/// "from lo to the end" — and strict/best-effort semantics mirror
/// [`decompress_with`], restricted to the touched chunks.
///
/// ```
/// use huff_core::archive::{compress, decode_range, CompressOptions};
/// use huff_core::integrity::DecompressOptions;
///
/// let data: Vec<u16> = (0..60_000).map(|i| (i % 251) as u16).collect();
/// let packed = compress(&data, &CompressOptions::new(256)).unwrap();
/// let r = decode_range(&packed, 70_000..70_010, &DecompressOptions::default()).unwrap();
/// assert_eq!(r.bytes.len(), 10);
/// assert_eq!(r.bytes[0], data[35_000] as u8); // byte 70_000 = symbol 35_000, LE low byte
/// assert!(r.chunks_touched < r.total_chunks);
/// assert!(r.index_used);
/// ```
pub fn decode_range(
    archive: &[u8],
    range: Range<u64>,
    opts: &DecompressOptions,
) -> Result<RangeDecode> {
    if crate::frame::is_frame(archive) {
        return crate::frame::decode_range(archive, range, opts);
    }
    if crate::tune::is_raw(archive) {
        return crate::tune::raw_range(archive, range, opts);
    }
    let w = range_window(archive, range, opts)?;
    let out = match opts.mode {
        RecoveryMode::Strict => {
            let symbols = decode::decode_stream(&w.stream, &w.book, opts.decoder)?;
            let report = RecoveryReport::clean(w.chunk_hi - w.chunk_lo);
            w.finish(&symbols, report)
        }
        RecoveryMode::BestEffort => {
            let (symbols, report) = decode::decode_stream_best_effort(
                &w.stream,
                &w.book,
                &w.damage,
                opts.sentinel,
                opts.decoder,
            );
            w.finish(&symbols, report)
        }
    };
    crate::metrics::registry::global().record_range_decode(
        out.bytes.len() as u64,
        out.chunks_touched,
        out.total_chunks,
        out.index_probes,
        out.index_used,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
                (x % 256) as u16
            })
            .collect()
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let syms = data(30_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let back = decompress(&archive).unwrap();
        assert_eq!(back, syms);
    }

    #[test]
    fn archive_is_smaller_than_raw_for_skewed_data() {
        let syms: Vec<u16> = (0..100_000).map(|i| if i % 10 == 0 { 1u16 } else { 0 }).collect();
        let archive = compress(&syms, &CompressOptions::new(4)).unwrap();
        assert!(archive.len() < 100_000 / 4, "archive {} bytes", archive.len());
    }

    #[test]
    fn empty_input_roundtrip() {
        // An empty input compresses to a valid empty archive: zero
        // symbols, zero chunks, an empty codebook, an empty CRC table —
        // and every read path agrees.
        let archive = compress(&[], &CompressOptions::new(16)).unwrap();
        assert_eq!(&archive[..4], MAGIC_V2);
        assert_eq!(decompress(&archive).unwrap(), Vec::<u16>::new());
        assert!(verify(&archive).unwrap().is_clean());
        let rec = decompress_with(&archive, &DecompressOptions::best_effort()).unwrap();
        assert!(rec.symbols.is_empty());
        assert!(rec.report.is_clean());
        assert_eq!(rec.report.total_chunks, 0);
        // Every decoder backend returns the same nothing.
        for d in
            [decode::DecoderKind::Serial, decode::DecoderKind::Chunked, decode::DecoderKind::Lut]
        {
            let opts = DecompressOptions::default().with_decoder(d);
            assert!(decompress_with(&archive, &opts).unwrap().symbols.is_empty());
        }
        // Range reads of an empty archive are empty, never an error.
        let r = decode_range(&archive, 0..100, &DecompressOptions::default()).unwrap();
        assert!(r.bytes.is_empty());
        assert_eq!(r.chunks_touched, 0);
        assert_eq!(r.total_chunks, 0);
    }

    #[test]
    fn zero_length_chunk_span_is_empty_not_one_byte() {
        // A zero-bit chunk spans no bytes; the old `end.max(start)` code
        // path conflated "empty" with "one byte when bit-aligned".
        assert_eq!(chunk_byte_span(16, 0), 2..2);
        assert_eq!(chunk_byte_span(17, 0), 2..2);
        assert_eq!(chunk_byte_span(16, 1), 2..3);
        assert_eq!(chunk_byte_span(15, 2), 1..3);
    }

    #[test]
    fn single_symbol_roundtrip() {
        let syms = vec![3u16; 1000];
        let archive = compress(&syms, &CompressOptions::new(16)).unwrap();
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn explicit_reduction_factor_respected() {
        let syms = data(10_000);
        let mut opts = CompressOptions::new(256);
        opts.reduction = Some(2);
        let archive = compress(&syms, &opts).unwrap();
        let (stream, _, _) = deserialize(&archive).unwrap();
        assert_eq!(stream.config.reduction, 2);
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn rejects_bad_magic() {
        let syms = data(100);
        let mut archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        archive[0] = b'X';
        assert!(matches!(decompress(&archive), Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let syms = data(5000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        // Every strict prefix ending before the payload does must fail
        // cleanly, never panic. (Prefixes that only lose the fail-open
        // seek-index trailer still decode; see the seek-index tests.)
        for cut in [0, 3, 4, 10, 17, archive.len() / 2, payload.end - 1] {
            assert!(decompress(&archive[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_corrupt_config() {
        let syms = data(100);
        let mut archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        archive[6] = 99; // reduction byte
        assert!(matches!(decompress(&archive), Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn widen_word_strategy_roundtrip() {
        let syms = data(20_000);
        let mut opts = CompressOptions::new(256);
        opts.strategy = BreakingStrategy::WidenWord;
        let archive = compress(&syms, &opts).unwrap();
        assert_eq!(decompress(&archive).unwrap(), syms);
    }

    #[test]
    fn header_records_symbol_width() {
        let syms = data(1000);
        let mut opts = CompressOptions::new(256);
        opts.symbol_bytes = 1;
        let archive = compress(&syms, &opts).unwrap();
        let (_, _, sb) = deserialize(&archive).unwrap();
        assert_eq!(sb, 1);
    }

    #[test]
    fn writes_v2_magic_and_reads_v1() {
        let syms = data(4000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        assert_eq!(&archive[..4], MAGIC_V2);

        let (stream, book, sb) = deserialize(&archive).unwrap();
        let legacy = serialize_v1(&stream, &book, sb).unwrap();
        assert_eq!(&legacy[..4], MAGIC_V1);
        assert_eq!(decompress(&legacy).unwrap(), syms);
    }

    #[test]
    fn payload_flip_fails_strict_with_typed_error() {
        let syms = data(20_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[payload.start + payload.len() / 2] ^= 0x10;
        match decompress(&corrupt) {
            Err(HuffError::ChecksumMismatch {
                section: Section::Payload, chunk: Some(_), ..
            }) => {}
            other => panic!("expected payload checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn payload_flip_recovers_best_effort() {
        let syms = data(20_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[payload.start + payload.len() / 2] ^= 0x10;

        let opts = DecompressOptions::best_effort();
        let rec = decompress_with(&corrupt, &opts).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert!(!rec.report.is_clean());
        assert!(rec.report.symbols_lost > 0);
        // Outside the damaged ranges, every symbol is intact.
        let mut lost = vec![false; syms.len()];
        for &(s, e) in &rec.report.damaged_ranges {
            lost[s..e].iter_mut().for_each(|b| *b = true);
        }
        for i in 0..syms.len() {
            if lost[i] {
                assert_eq!(rec.symbols[i], opts.sentinel, "index {i}");
            } else {
                assert_eq!(rec.symbols[i], syms[i], "index {i}");
            }
        }
    }

    #[test]
    fn header_flip_is_fatal_even_best_effort() {
        let syms = data(5000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, cb) = sections.iter().find(|(s, _)| *s == Section::Codebook).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[cb.start + 5] ^= 0x01;
        let r = decompress_with(&corrupt, &DecompressOptions::best_effort());
        assert!(r.is_err());
    }

    #[test]
    fn verify_reports_damaged_chunks_without_decoding() {
        let syms = data(40_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        assert!(verify(&archive).unwrap().is_clean());

        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        corrupt[payload.start + 3] ^= 0x80;
        let report = verify(&corrupt).unwrap();
        assert!(!report.is_clean());
        assert!(report.damaged_chunks.contains(&0));
    }

    #[test]
    fn verify_none_skips_checksums() {
        let syms = data(20_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        let mut corrupt = archive.clone();
        // Flip a padding-adjacent bit that still decodes: CRC would catch
        // it, Verify::None must not.
        corrupt[payload.start] ^= 0x01;
        let opts = DecompressOptions { verify: Verify::None, ..Default::default() };
        // May decode to wrong symbols or hit a corrupt stream — but it
        // must not be a checksum error.
        match decompress_with(&corrupt, &opts) {
            Ok(_) => {}
            Err(HuffError::ChecksumMismatch { .. }) => panic!("Verify::None ran checksums"),
            Err(_) => {}
        }
    }

    #[test]
    fn layout_tiles_the_archive() {
        let syms = data(10_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let mut cursor = 0;
        for (_, r) in &sections {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, archive.len());
        assert!(sections.iter().any(|(s, _)| *s == Section::Checksums));
        // Fresh archives carry the seek-index trailer as its own section.
        let (_, idx) = sections.iter().find(|(s, _)| *s == Section::SeekIndex).unwrap();
        assert!(!idx.is_empty());
    }

    fn bytes_of(syms: &[u16], sb: usize) -> Vec<u8> {
        syms.iter().flat_map(|&s| u64::from(s).to_le_bytes()[..sb].to_vec()).collect()
    }

    #[test]
    fn decode_range_matches_slice_of_full_decode() {
        let syms = data(60_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let full = bytes_of(&syms, 2);
        for d in
            [decode::DecoderKind::Serial, decode::DecoderKind::Chunked, decode::DecoderKind::Lut]
        {
            let opts = DecompressOptions::default().with_decoder(d);
            // In-chunk, chunk-straddling, odd (mid-symbol) endpoints, the
            // very tail, past-the-end clamping, and the empty range.
            for (a, b) in [
                (0, 10),
                (511, 1025),
                (60_000, 61_001),
                (119_990, 200_000),
                (777, 777),
                (0, 120_000),
            ] {
                let r = decode_range(&archive, a..b, &opts).unwrap();
                let (a, b) = (a.min(120_000) as usize, b.min(120_000) as usize);
                assert_eq!(r.bytes, &full[a..b], "{a}..{b} via {}", d.name());
                assert!(r.report.is_clean());
            }
        }
        let r = decode_range(&archive, 1000..1010, &DecompressOptions::default()).unwrap();
        assert!(r.index_used, "v2 archives carry a usable index");
        assert!(r.chunks_touched < r.total_chunks);
        assert!(r.index_probes > 0);
        // Inverted bounds are a structured error, not a silent empty slice.
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 10..5;
        assert!(decode_range(&archive, inverted, &DecompressOptions::default()).is_err());
    }

    #[test]
    fn corrupt_seek_index_falls_open_to_prefix_scan() {
        let syms = data(60_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, idx) = sections.iter().find(|(s, _)| *s == Section::SeekIndex).unwrap().clone();

        let baseline =
            decode_range(&archive, 30_000..30_200, &DecompressOptions::default()).unwrap();
        assert!(baseline.index_used);

        // Flip one byte anywhere in the trailer: decode_range must return
        // identical bytes through the chunk-table scan, and full decodes
        // must not notice the trailer at all.
        for at in [idx.start, idx.start + 7, idx.start + idx.len() / 2, idx.end - 1] {
            let mut corrupt = archive.clone();
            corrupt[at] ^= 0x40;
            let r = decode_range(&corrupt, 30_000..30_200, &DecompressOptions::default()).unwrap();
            assert_eq!(r.bytes, baseline.bytes, "flip at {at}");
            assert!(!r.index_used, "flip at {at} must disable the index");
            assert_eq!(decompress(&corrupt).unwrap(), syms, "flip at {at}");
            assert!(verify(&corrupt).unwrap().is_clean(), "flip at {at}");
        }

        // Truncating the trailer entirely is equally survivable.
        let r = decode_range(&archive[..idx.start], 30_000..30_200, &DecompressOptions::default())
            .unwrap();
        assert_eq!(r.bytes, baseline.bytes);
        assert!(!r.index_used);
    }

    #[test]
    fn v1_archives_range_decode_via_scan() {
        let syms = data(20_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let (stream, book, sb) = deserialize(&archive).unwrap();
        let legacy = serialize_v1(&stream, &book, sb).unwrap();
        let full = bytes_of(&syms, 2);
        let r = decode_range(&legacy, 10_000..10_300, &DecompressOptions::default()).unwrap();
        assert_eq!(r.bytes, &full[10_000..10_300]);
        assert!(!r.index_used, "v1 has no index; scan must serve the range");
        assert!(r.index_probes > 0, "the scan's table reads are still accounted");
    }

    #[test]
    fn decode_range_checks_only_covering_chunks() {
        let syms = data(60_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();

        // Damage the payload near the end; a range at the start must still
        // verify and decode cleanly (its covering chunks are intact)...
        let mut corrupt = archive.clone();
        corrupt[payload.end - 3] ^= 0x20;
        let full = bytes_of(&syms, 2);
        let r = decode_range(&corrupt, 0..500, &DecompressOptions::default()).unwrap();
        assert_eq!(r.bytes, &full[0..500]);
        assert!(r.report.is_clean());

        // ...while a range over the damaged tail fails strict with the
        // typed error and recovers best-effort with sentinel fill.
        let tail = 119_000..120_000;
        match decode_range(&corrupt, tail.clone(), &DecompressOptions::default()) {
            Err(HuffError::ChecksumMismatch {
                section: Section::Payload, chunk: Some(_), ..
            }) => {}
            other => panic!("expected chunk checksum mismatch, got {other:?}"),
        }
        let opts = DecompressOptions::best_effort().with_sentinel(0xEEEE);
        let r = decode_range(&corrupt, tail, &opts).unwrap();
        assert_eq!(r.bytes.len(), 1000);
        assert!(!r.report.is_clean());
        assert!(r.report.damaged_chunks.iter().all(|&c| c >= r.total_chunks - 2));
    }

    #[test]
    fn truncated_payload_best_effort_recovers_prefix() {
        let syms = data(50_000);
        let archive = compress(&syms, &CompressOptions::new(256)).unwrap();
        let sections = layout(&archive).unwrap();
        let (_, payload) = sections.iter().find(|(s, _)| *s == Section::Payload).unwrap().clone();
        // Keep only the first half of the payload.
        let cut = payload.start + payload.len() / 2;
        let rec = decompress_with(&archive[..cut], &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert!(!rec.report.is_clean());
        // Some prefix must survive: chunk 0 is within the first half.
        assert!(!rec.report.damaged_chunks.contains(&0));
        assert!(decompress(&archive[..cut]).is_err(), "strict must reject truncation");
    }
}
