//! The kernel taxonomy registry — regenerates the paper's Table I.
//!
//! Every sub-procedure of the pipeline with its parallelization
//! granularity, data-thread mapping, coordination techniques and
//! synchronization scope.

use gpu_sim::{Granularity, KernelInfo, Mapping, SyncScope};

/// All kernels of the Huffman pipeline, in Table I's order.
pub fn kernel_table() -> Vec<KernelInfo> {
    use Granularity::*;
    vec![
        KernelInfo {
            stage: "histogram",
            kernel: "blockwise reduction",
            granularity: &[FineGrained],
            mapping: Mapping::ManyToOne,
            techniques: &["atomic write", "reduction"],
            sync: SyncScope::Block,
        },
        KernelInfo {
            stage: "histogram",
            kernel: "gridwise reduction",
            granularity: &[FineGrained],
            mapping: Mapping::ManyToOne,
            techniques: &["atomic write", "reduction"],
            sync: SyncScope::Device,
        },
        KernelInfo {
            stage: "build codebook",
            kernel: "get codeword lengths",
            granularity: &[CoarseGrained, FineGrained],
            mapping: Mapping::OneToOne,
            techniques: &["atomic write"],
            sync: SyncScope::Grid,
        },
        KernelInfo {
            stage: "build codebook",
            kernel: "get codewords",
            granularity: &[FineGrained],
            mapping: Mapping::OneToOne,
            techniques: &["atomic write"],
            sync: SyncScope::Grid,
        },
        KernelInfo {
            stage: "canonize",
            kernel: "get numl array",
            granularity: &[FineGrained],
            mapping: Mapping::OneToOne,
            techniques: &["atomic write", "prefix sum"],
            sync: SyncScope::Grid,
        },
        KernelInfo {
            stage: "canonize",
            kernel: "get first array (RAW)",
            granularity: &[Sequential],
            mapping: Mapping::ManyToOne,
            techniques: &[],
            sync: SyncScope::Grid,
        },
        KernelInfo {
            stage: "canonize",
            kernel: "canonization (RAW)",
            granularity: &[Sequential],
            mapping: Mapping::ManyToOne,
            techniques: &[],
            sync: SyncScope::Grid,
        },
        KernelInfo {
            stage: "canonize",
            kernel: "get reverse codebook",
            granularity: &[FineGrained],
            mapping: Mapping::NotApplicable,
            techniques: &[],
            sync: SyncScope::Device,
        },
        KernelInfo {
            stage: "Huffman enc.",
            kernel: "REDUCE-MERGE",
            granularity: &[CoarseGrained, FineGrained],
            mapping: Mapping::ManyToOne,
            techniques: &["reduction"],
            sync: SyncScope::Block,
        },
        KernelInfo {
            stage: "Huffman enc.",
            kernel: "SHUFFLE-MERGE",
            granularity: &[CoarseGrained, FineGrained],
            mapping: Mapping::OneToOne,
            techniques: &[],
            sync: SyncScope::Device,
        },
        KernelInfo {
            stage: "Huffman enc.",
            kernel: "get blockwise code len",
            granularity: &[CoarseGrained, FineGrained],
            mapping: Mapping::OneToOne,
            techniques: &["prefix sum"],
            sync: SyncScope::Grid,
        },
        KernelInfo {
            stage: "Huffman enc.",
            kernel: "coalescing copy",
            granularity: &[CoarseGrained, FineGrained],
            mapping: Mapping::OneToOne,
            techniques: &[],
            sync: SyncScope::Device,
        },
    ]
}

/// Render the taxonomy as fixed-width text rows (the `table1` binary).
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<24} {:<28} {:<12} {:<28} {}\n",
        "stage", "kernel", "granularity", "mapping", "techniques", "sync"
    ));
    for k in kernel_table() {
        out.push_str(&k.row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_kernels_registered() {
        assert_eq!(kernel_table().len(), 12);
    }

    #[test]
    fn stages_cover_pipeline() {
        let stages: std::collections::HashSet<&str> =
            kernel_table().iter().map(|k| k.stage).collect();
        for s in ["histogram", "build codebook", "canonize", "Huffman enc."] {
            assert!(stages.contains(s), "missing stage {s}");
        }
    }

    #[test]
    fn render_contains_key_kernels() {
        let t = render_table();
        assert!(t.contains("REDUCE-MERGE"));
        assert!(t.contains("SHUFFLE-MERGE"));
        assert!(t.contains("coalescing copy"));
        assert!(t.contains("sync device"));
    }

    #[test]
    fn only_raw_kernels_are_sequential() {
        for k in kernel_table() {
            let seq = k.granularity.contains(&gpu_sim::Granularity::Sequential);
            assert_eq!(seq, k.kernel.contains("RAW"), "{}", k.kernel);
        }
    }
}
