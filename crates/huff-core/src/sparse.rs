//! Dense-to-sparse storage for breaking units — the cuSPARSE substitute.
//!
//! A *breaking* unit is a run of `2^r` symbols whose merged codeword
//! exceeds the representative word width (Section IV-C). The paper filters
//! them out with a cheap reduction ("backtrace the breaking points ...
//! about 300 us") and stores them via a cuSPARSE dense-to-sparse
//! conversion. Here the sparse structure stores, per breaking unit, its
//! global unit index and its raw symbols; the decoder splices them back in
//! at unit boundaries.

use serde::{Deserialize, Serialize};

/// Sparse sidecar of breaking units.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseOutliers {
    /// Global unit indices (chunk-major), strictly ascending.
    indices: Vec<u64>,
    /// CSR-style offsets into `symbols`: unit `k`'s raw symbols are
    /// `symbols[offsets[k]..offsets[k+1]]`.
    offsets: Vec<u32>,
    /// Concatenated raw symbols of all breaking units.
    symbols: Vec<u16>,
}

impl SparseOutliers {
    /// An empty sidecar.
    pub fn new() -> Self {
        SparseOutliers { indices: Vec::new(), offsets: vec![0], symbols: Vec::new() }
    }

    /// Build from per-unit records `(global_unit_index, raw_symbols)`,
    /// which must arrive in ascending index order.
    pub fn from_units(units: Vec<(u64, Vec<u16>)>) -> Self {
        let mut out = SparseOutliers::new();
        for (idx, syms) in units {
            out.push(idx, &syms);
        }
        out
    }

    /// Append one breaking unit.
    ///
    /// # Panics
    /// Panics if `index` is not strictly greater than the last stored one.
    pub fn push(&mut self, index: u64, raw_symbols: &[u16]) {
        if let Some(&last) = self.indices.last() {
            assert!(index > last, "outlier units must be pushed in ascending order");
        }
        self.indices.push(index);
        self.symbols.extend_from_slice(raw_symbols);
        self.offsets.push(self.symbols.len() as u32);
    }

    /// Number of breaking units.
    pub fn num_units(&self) -> usize {
        self.indices.len()
    }

    /// Total raw symbols stored.
    pub fn total_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// True when no unit broke.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The raw symbols of the breaking unit with global index `index`, if
    /// present (binary search).
    pub fn lookup(&self, index: u64) -> Option<&[u16]> {
        let k = self.indices.binary_search(&index).ok()?;
        Some(&self.symbols[self.offsets[k] as usize..self.offsets[k + 1] as usize])
    }

    /// Iterate `(global_unit_index, symbols)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u16])> {
        self.indices.iter().enumerate().map(move |(k, &idx)| {
            (idx, &self.symbols[self.offsets[k] as usize..self.offsets[k + 1] as usize])
        })
    }

    /// Storage cost of the sidecar in bits (indices + offsets + raw
    /// symbols) — counted against the compression ratio.
    pub fn storage_bits(&self) -> u64 {
        (self.indices.len() as u64) * 64
            + (self.offsets.len() as u64) * 32
            + (self.symbols.len() as u64) * 16
    }

    /// Merge a list of per-chunk sidecars (ascending chunk order) into one.
    pub fn concat(parts: Vec<SparseOutliers>) -> Self {
        let mut out = SparseOutliers::new();
        for part in parts {
            for (idx, syms) in part.iter() {
                out.push(idx, syms);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = SparseOutliers::new();
        s.push(5, &[1, 2, 3]);
        s.push(9, &[4]);
        assert_eq!(s.lookup(5), Some(&[1u16, 2, 3][..]));
        assert_eq!(s.lookup(9), Some(&[4u16][..]));
        assert_eq!(s.lookup(7), None);
        assert_eq!(s.num_units(), 2);
        assert_eq!(s.total_symbols(), 4);
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn out_of_order_rejected() {
        let mut s = SparseOutliers::new();
        s.push(5, &[1]);
        s.push(5, &[2]);
    }

    #[test]
    fn empty_sidecar() {
        let s = SparseOutliers::new();
        assert!(s.is_empty());
        assert_eq!(s.lookup(0), None);
        assert_eq!(s.storage_bits(), 32); // the single base offset
    }

    #[test]
    fn from_units_and_iter() {
        let s = SparseOutliers::from_units(vec![(1, vec![7, 7]), (3, vec![8])]);
        let collected: Vec<(u64, Vec<u16>)> =
            s.iter().map(|(i, syms)| (i, syms.to_vec())).collect();
        assert_eq!(collected, vec![(1, vec![7, 7]), (3, vec![8])]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = SparseOutliers::from_units(vec![(1, vec![1])]);
        let b = SparseOutliers::from_units(vec![(4, vec![2]), (6, vec![3])]);
        let c = SparseOutliers::concat(vec![a, b]);
        assert_eq!(c.num_units(), 3);
        assert_eq!(c.lookup(4), Some(&[2u16][..]));
    }

    #[test]
    fn storage_bits_accounting() {
        let s = SparseOutliers::from_units(vec![(0, vec![1, 2])]);
        assert_eq!(s.storage_bits(), 64 + 2 * 32 + 2 * 16);
    }
}
