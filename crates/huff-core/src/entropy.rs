//! Entropy statistics and the reduction-factor decision rule (Fig. 3).
//!
//! The encoder's chunk configuration is `ReduceShuffleMerge<M, r>`: a chunk
//! of `2^M` symbols is reduced `r` times (each unit merges `2^r` codewords)
//! and shuffled `s = M - r` times. Section IV-C derives the "proper" `r`
//! from the average codeword bitwidth `β` and the representative word width
//! `ℓ_W`:
//!
//! ```text
//! ⌊log β⌋ + r + 1 = log ℓ_W
//! ```
//!
//! so that the `r`-times-merged codeword is expected to land in
//! `[ℓ_W/2, ℓ_W)` — maximal word utilization without (usually) breaking.

/// Shannon entropy of a frequency histogram, in bits per symbol.
pub fn shannon_entropy(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Frequency-weighted average codeword bitwidth for a histogram and its
/// per-symbol codeword lengths.
pub fn average_bitwidth(freqs: &[u64], lengths: &[u32]) -> f64 {
    assert_eq!(freqs.len(), lengths.len());
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: u64 = freqs.iter().zip(lengths).map(|(&f, &l)| f * u64::from(l)).sum();
    weighted as f64 / total as f64
}

/// Compression ratio (input bits / output bits) for 1 symbol = `symbol_bits`
/// raw bits encoded at `avg_bits` per symbol.
pub fn compression_ratio(symbol_bits: u32, avg_bits: f64) -> f64 {
    if avg_bits <= 0.0 {
        return f64::INFINITY;
    }
    f64::from(symbol_bits) / avg_bits
}

/// The paper's reduction-factor rule: choose `r` such that
/// `⌊log₂ β⌋ + r + 1 = log₂ ℓ_W`, clamped to `[1, magnitude - 1]` so at
/// least one shuffle iteration remains.
///
/// Worked examples from the paper: β = 2.3 bits with 32-bit words gives
/// r = 3 (merged length ≈ 18.4 bits); β = 1.0272 (Nyx-Quant) gives r = 4,
/// though the paper empirically prefers r = 3 (Table II) — callers may
/// override.
pub fn decide_reduction_factor(avg_bits: f64, word_bits: u32, magnitude: u32) -> u32 {
    assert!(word_bits.is_power_of_two() && word_bits >= 8);
    assert!(magnitude >= 2);
    let beta = avg_bits.max(1.0);
    let floor_log_beta = beta.log2().floor() as i64;
    let log_w = i64::from(word_bits.trailing_zeros());
    let r = log_w - floor_log_beta - 1;
    r.clamp(1, i64::from(magnitude) - 1) as u32
}

/// Expected merged bitwidth after `r` reduce iterations.
pub fn expected_merged_bits(avg_bits: f64, r: u32) -> f64 {
    avg_bits * f64::from(1u32 << r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform() {
        let e = shannon_entropy(&[10, 10, 10, 10]);
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_degenerate_is_zero() {
        assert_eq!(shannon_entropy(&[100, 0, 0]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_of_skewed() {
        // H(0.5, 0.25, 0.25) = 1.5 bits.
        let e = shannon_entropy(&[2, 1, 1]);
        assert!((e - 1.5).abs() < 1e-12);
    }

    #[test]
    fn average_bitwidth_weighted() {
        // Symbol 0 (freq 3, 1 bit), symbol 1 (freq 1, 2 bits): (3+2)/4.
        let avg = average_bitwidth(&[3, 1], &[1, 2]);
        assert!((avg - 1.25).abs() < 1e-12);
    }

    #[test]
    fn average_bitwidth_empty() {
        assert_eq!(average_bitwidth(&[], &[]), 0.0);
    }

    #[test]
    fn paper_example_beta_2_3_gives_r3() {
        // Section IV-C: "merging codewords with an average bitwidth of 2.3
        // bits for 3 times is expected to result in ... 18.4 bits".
        let r = decide_reduction_factor(2.3, 32, 12);
        assert_eq!(r, 3);
        let merged = expected_merged_bits(2.3, r);
        assert!((merged - 18.4).abs() < 1e-9);
        assert!((16.0..32.0).contains(&merged));
    }

    #[test]
    fn nyx_quant_beta_gives_r4() {
        // β = 1.0272 → floor(log2 β) = 0 → r = 5 - 0 - 1 = 4.
        assert_eq!(decide_reduction_factor(1.0272, 32, 12), 4);
    }

    #[test]
    fn enwik_beta_gives_r2() {
        // β ≈ 5.16 → floor(log2 β) = 2 → r = 5 - 2 - 1 = 2, matching the
        // "#REDUCE 2 (4x)" column of Table V for enwik8/enwik9.
        assert_eq!(decide_reduction_factor(5.1639, 32, 12), 2);
    }

    #[test]
    fn nci_beta_gives_r3() {
        // β ≈ 2.73 → r = 3, matching Table V's "3 (8x)" for nci.
        assert_eq!(decide_reduction_factor(2.7307, 32, 12), 3);
    }

    #[test]
    fn r_clamped_to_leave_a_shuffle() {
        // Tiny magnitude: r cannot consume the whole chunk.
        assert_eq!(decide_reduction_factor(1.0, 64, 3), 2);
        // Huge bitwidth: r at least 1.
        assert_eq!(decide_reduction_factor(31.0, 32, 12), 1);
    }

    #[test]
    fn merged_stays_in_word_window() {
        // The rule's guarantee: β·2^r ∈ [ℓ_W/2, ℓ_W) when no clamping and β ≥ 1.
        for beta in [1.0, 1.5, 2.0, 3.9, 4.0, 7.9, 8.0] {
            let r = decide_reduction_factor(beta, 32, 12);
            let merged = expected_merged_bits(beta, r);
            assert!(merged < 32.0 * 2.0, "beta={beta} merged={merged}");
            assert!(merged >= 8.0, "beta={beta} merged={merged}");
        }
    }

    #[test]
    fn compression_ratio_examples() {
        assert!((compression_ratio(8, 4.0) - 2.0).abs() < 1e-12);
        assert!(compression_ratio(16, 0.0).is_infinite());
    }
}
