//! Succinct seek index for O(1) random-access chunk location.
//!
//! The RSH2 chunk table stores per-chunk *bit lengths*, so locating chunk
//! *i*'s payload offset costs a prefix scan of `i` table words. That is
//! fine for a full decompress (the scan is paid once) but ruinous for the
//! serving scenario where a million clients each want one byte slice of a
//! large archive: every request would pay an O(chunks) scan before any
//! payload byte moves.
//!
//! This module packs the monotone offset sequence `off_0 = 0, off_1, …,
//! off_n = total_bits` (the trailing sentinel makes chunk lengths
//! recoverable by differencing) into an Elias–Fano encoding:
//!
//! - each value splits into `low_bits` low bits, packed little-endian
//!   into u64 words, and a high part;
//! - the high parts become a bit vector where value *i* sets bit
//!   `(off_i >> low_bits) + i` — unary-coded deltas, at most
//!   `(total_bits >> low_bits) + m` bits for `m = n + 1` values;
//! - every [`SELECT_SAMPLE`]-th set bit's absolute position is sampled,
//!   so `select1(i)` starts at most `SELECT_SAMPLE` set bits away and
//!   finishes with popcount scans inside u64 words.
//!
//! With `low_bits = ⌊log2(total_bits / m)⌋` the index costs about
//! `(low_bits + 2) / 8` bytes per chunk — a fraction of a percent of the
//! payload for the default 2¹⁰-symbol chunks — and `chunk_offset(i)` is
//! O(1) word probes: one sample, one or two high words, one or two low
//! words. The probe count is surfaced to callers so the GPU cost model
//! can charge the index traffic (see `decode::gpu`).
//!
//! On disk the index is an optional CRC'd trailer after the payload
//! (FORMAT.md §10). Readers are fail-open by contract: a missing,
//! truncated, or corrupt trailer degrades to the prefix scan, never to an
//! error.

use crate::error::{HuffError, Result};
use crate::integrity::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::ops::Range;

/// Magic prefix of the serialized trailer.
pub const INDEX_MAGIC: &[u8; 4] = b"RSIX";
/// Serialized trailer version.
pub const INDEX_VERSION: u8 = 1;
/// One absolute select sample is kept per this many set bits.
pub const SELECT_SAMPLE: u64 = 64;

/// Fixed bytes before the word arrays: magic(4) + version/sample/low/pad(4)
/// + num_chunks(8) + total_bits(8) + three word counts(12).
const FIXED_HEAD: usize = 36;
/// Trailing CRC32 over everything before it.
const TAIL_CRC: usize = 4;

fn bad(detail: &str) -> HuffError {
    HuffError::BadArchive(format!("seek index: {detail}"))
}

fn words_u32(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| bad(&format!("{what} word count {n} exceeds u32")))
}

fn set_bit(words: &mut [u64], pos: u64) {
    words[(pos / 64) as usize] |= 1u64 << (pos % 64);
}

/// An Elias–Fano index over a chunked stream's bit offsets.
///
/// Built from the chunk table by [`ChunkIndex::build`]; answers
/// [`ChunkIndex::offset`] and [`ChunkIndex::chunk_range`] in O(1) word
/// probes. Equality compares the full encoded content (used by the
/// serialization roundtrip tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIndex {
    num_chunks: u64,
    total_bits: u64,
    select_sample: u64,
    low_bits: u32,
    lows: Vec<u64>,
    high: Vec<u64>,
    samples: Vec<u64>,
}

impl ChunkIndex {
    /// Build the index from per-chunk bit lengths. `total_bits` must
    /// equal their sum (the archive header stores both; disagreement is
    /// a corrupt stream and reports as [`HuffError::BadArchive`]).
    pub fn build(chunk_bit_lens: &[u64], total_bits: u64) -> Result<Self> {
        let n = chunk_bit_lens.len() as u64;
        let m = n + 1;
        let mut sum = 0u64;
        for &len in chunk_bit_lens {
            sum = sum.checked_add(len).ok_or_else(|| bad("chunk offsets overflow u64"))?;
        }
        if sum != total_bits {
            return Err(bad(&format!("chunk lengths sum to {sum}, header says {total_bits}")));
        }

        let low_bits = (total_bits / m).checked_ilog2().unwrap_or(0);
        let low_words = ((m * u64::from(low_bits)) as usize).div_ceil(64);
        let high_bits = (total_bits >> low_bits) + m;
        let mut lows = vec![0u64; low_words];
        let mut high = vec![0u64; (high_bits as usize).div_ceil(64)];
        let mut samples = Vec::with_capacity((m as usize).div_ceil(SELECT_SAMPLE as usize));

        let mut off = 0u64;
        for i in 0..m {
            let pos = (off >> low_bits) + i;
            set_bit(&mut high, pos);
            if i % SELECT_SAMPLE == 0 {
                samples.push(pos);
            }
            Self::put_low(&mut lows, i, off, low_bits);
            if i < n {
                off += chunk_bit_lens[i as usize];
            }
        }

        Ok(ChunkIndex {
            num_chunks: n,
            total_bits,
            select_sample: SELECT_SAMPLE,
            low_bits,
            lows,
            high,
            samples,
        })
    }

    fn put_low(words: &mut [u64], i: u64, v: u64, l: u32) {
        if l == 0 {
            return;
        }
        let v = v & ((1u64 << l) - 1);
        let bit = i * u64::from(l);
        let w = (bit / 64) as usize;
        let sh = (bit % 64) as u32;
        words[w] |= v << sh;
        if sh + l > 64 {
            words[w + 1] |= v >> (64 - sh);
        }
    }

    fn get_low(&self, i: u64, probes: &mut u64) -> u64 {
        let l = self.low_bits;
        if l == 0 {
            return 0;
        }
        let bit = i * u64::from(l);
        let w = (bit / 64) as usize;
        let sh = (bit % 64) as u32;
        *probes += 1;
        let mut v = self.lows[w] >> sh;
        if sh + l > 64 {
            v |= self.lows[w + 1] << (64 - sh);
            *probes += 1;
        }
        v & ((1u64 << l) - 1)
    }

    /// Position of the `i`-th (0-based) set bit in the high vector:
    /// jump to the nearest preceding sample, then popcount-scan whole
    /// words, then locate the target bit inside the final word.
    fn select1(&self, i: u64, probes: &mut u64) -> u64 {
        let sample = self.samples[(i / self.select_sample) as usize];
        *probes += 1;
        // The sample is the position of set bit #⌊i/S⌋·S; `need` more set
        // bits (counting the sampled one) reach bit #i.
        let mut need = (i % self.select_sample) as u32 + 1;
        let mut w = (sample / 64) as usize;
        let mut word = self.high[w] & (u64::MAX << (sample % 64));
        *probes += 1;
        loop {
            let c = word.count_ones();
            if c >= need {
                let mut x = word;
                for _ in 1..need {
                    x &= x - 1;
                }
                return w as u64 * 64 + u64::from(x.trailing_zeros());
            }
            need -= c;
            w += 1;
            word = self.high[w];
            *probes += 1;
        }
    }

    /// Absolute bit offset of chunk `i`'s payload start, for
    /// `i ∈ 0..=num_chunks` (`i == num_chunks` returns `total_bits`, the
    /// sentinel). Increments `probes` once per u64 word the lookup
    /// touches — the unit the GPU cost model charges.
    pub fn offset(&self, i: u64, probes: &mut u64) -> u64 {
        assert!(i <= self.num_chunks, "chunk {i} out of range ({} chunks)", self.num_chunks);
        let p = self.select1(i, probes);
        ((p - i) << self.low_bits) | self.get_low(i, probes)
    }

    /// Bit range `offset(i)..offset(i + 1)` of chunk `i`'s payload.
    pub fn chunk_range(&self, i: u64, probes: &mut u64) -> Range<u64> {
        self.offset(i, probes)..self.offset(i + 1, probes)
    }

    /// Number of chunks the index covers.
    pub fn num_chunks(&self) -> u64 {
        self.num_chunks
    }

    /// Total payload bits (the sentinel value).
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Serialized trailer size in bytes.
    pub fn byte_len(&self) -> usize {
        FIXED_HEAD + 8 * (self.lows.len() + self.high.len() + self.samples.len()) + TAIL_CRC
    }

    /// Append the trailer (FORMAT.md §10) to `buf`:
    ///
    /// ```text
    /// magic "RSIX" | version u8 | select_sample u8 | low_bits u8 | pad u8
    /// num_chunks u64 | total_bits u64
    /// low_words u32 | high_words u32 | num_samples u32
    /// lows u64 × low_words | high u64 × high_words | samples u64 × num_samples
    /// index_crc u32        CRC32 of the trailer up to this field
    /// ```
    pub fn write_to(&self, buf: &mut BytesMut) -> Result<()> {
        let start = buf.len();
        buf.put_slice(INDEX_MAGIC);
        buf.put_u8(INDEX_VERSION);
        buf.put_u8(self.select_sample as u8);
        buf.put_u8(self.low_bits as u8);
        buf.put_u8(0);
        buf.put_u64_le(self.num_chunks);
        buf.put_u64_le(self.total_bits);
        buf.put_u32_le(words_u32(self.lows.len(), "low")?);
        buf.put_u32_le(words_u32(self.high.len(), "high")?);
        buf.put_u32_le(words_u32(self.samples.len(), "sample")?);
        for &w in self.lows.iter().chain(&self.high).chain(&self.samples) {
            buf.put_u64_le(w);
        }
        let crc = crc32(&buf[start..]);
        buf.put_u32_le(crc);
        Ok(())
    }

    /// Parse a trailer, tolerating trailing bytes beyond the encoded
    /// length. Returns `None` on any mismatch — wrong magic, version,
    /// truncation, CRC failure, or internally inconsistent geometry.
    /// Callers fall back to the chunk-table prefix scan (fail-open).
    pub fn parse(trailer: &[u8]) -> Option<Self> {
        if trailer.len() < FIXED_HEAD + TAIL_CRC || &trailer[..4] != INDEX_MAGIC {
            return None;
        }
        let mut buf = Bytes::copy_from_slice(&trailer[4..FIXED_HEAD]);
        let version = buf.get_u8();
        let select_sample = u64::from(buf.get_u8());
        let low_bits = u32::from(buf.get_u8());
        let _pad = buf.get_u8();
        let num_chunks = buf.get_u64_le();
        let total_bits = buf.get_u64_le();
        let low_words = buf.get_u32_le() as usize;
        let high_words = buf.get_u32_le() as usize;
        let num_samples = buf.get_u32_le() as usize;
        if version != INDEX_VERSION || select_sample == 0 || low_bits > 63 {
            return None;
        }

        let body = FIXED_HEAD + 8 * (low_words + high_words + num_samples);
        let need = body + TAIL_CRC;
        if trailer.len() < need {
            return None;
        }
        let stored = u32::from_le_bytes(trailer[body..need].try_into().ok()?);
        if crc32(&trailer[..body]) != stored {
            return None;
        }

        // Geometry must match what `build` would produce for this shape.
        let m = num_chunks.checked_add(1)?;
        let want_lows = ((m.checked_mul(u64::from(low_bits))?) as usize).div_ceil(64);
        let want_high = (((total_bits >> low_bits).checked_add(m)?) as usize).div_ceil(64);
        let want_samples = (m as usize).div_ceil(select_sample as usize);
        if low_words != want_lows || high_words != want_high || num_samples != want_samples {
            return None;
        }

        let mut words = trailer[FIXED_HEAD..body]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()));
        let lows: Vec<u64> = words.by_ref().take(low_words).collect();
        let high: Vec<u64> = words.by_ref().take(high_words).collect();
        let samples: Vec<u64> = words.collect();
        // Every sample must point inside the high vector, and the final
        // set bit (the sentinel) must exist; otherwise lookups would read
        // out of bounds.
        let high_bits = (high.len() * 64) as u64;
        if samples.iter().any(|&s| s >= high_bits) {
            return None;
        }
        let set: u64 = high.iter().map(|w| u64::from(w.count_ones())).sum();
        if set != m {
            return None;
        }
        Some(ChunkIndex { num_chunks, total_bits, select_sample, low_bits, lows, high, samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix_offsets(lens: &[u64]) -> Vec<u64> {
        let mut offs = Vec::with_capacity(lens.len() + 1);
        let mut acc = 0u64;
        offs.push(0);
        for &l in lens {
            acc += l;
            offs.push(acc);
        }
        offs
    }

    fn check_all(lens: &[u64]) {
        let total: u64 = lens.iter().sum();
        let idx = ChunkIndex::build(lens, total).unwrap();
        let offs = prefix_offsets(lens);
        let mut probes = 0u64;
        for (i, &want) in offs.iter().enumerate() {
            assert_eq!(idx.offset(i as u64, &mut probes), want, "offset {i} of {lens:?}");
        }
        assert!(probes >= offs.len() as u64);
        // O(1): a handful of word probes per lookup even at the tail.
        let mut tail = 0u64;
        idx.offset(lens.len() as u64, &mut tail);
        assert!(tail <= 8, "tail lookup took {tail} probes");
    }

    #[test]
    fn empty_stream_has_single_sentinel() {
        let idx = ChunkIndex::build(&[], 0).unwrap();
        let mut probes = 0;
        assert_eq!(idx.offset(0, &mut probes), 0);
        assert_eq!(idx.num_chunks(), 0);
    }

    #[test]
    fn offsets_match_prefix_scan() {
        check_all(&[5]);
        check_all(&[0, 0, 0]);
        check_all(&[8192; 7]);
        check_all(&[1, 0, 63, 64, 65, 0, 129, 7, 8000, 12]);
    }

    #[test]
    fn randomized_offsets_match_prefix_scan() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..50 {
            let n = (next() % 300) as usize + 1;
            let lens: Vec<u64> = (0..n)
                .map(|_| match next() % 4 {
                    0 => 0,
                    1 => next() % 17,
                    _ => next() % 20_000,
                })
                .collect();
            check_all(&lens);
            let _ = case;
        }
    }

    #[test]
    fn chunk_range_differs_offsets() {
        let lens = [100, 0, 250, 7];
        let idx = ChunkIndex::build(&lens, 357).unwrap();
        let mut probes = 0;
        assert_eq!(idx.chunk_range(0, &mut probes), 0..100);
        assert_eq!(idx.chunk_range(1, &mut probes), 100..100);
        assert_eq!(idx.chunk_range(2, &mut probes), 100..350);
        assert_eq!(idx.chunk_range(3, &mut probes), 350..357);
    }

    #[test]
    fn build_rejects_sum_mismatch() {
        assert!(ChunkIndex::build(&[10, 10], 21).is_err());
        assert!(ChunkIndex::build(&[u64::MAX, 1], u64::MAX).is_err());
    }

    #[test]
    fn serialization_roundtrips() {
        let lens: Vec<u64> = (0..200).map(|i| (i * 37) % 9000).collect();
        let total = lens.iter().sum();
        let idx = ChunkIndex::build(&lens, total).unwrap();
        let mut buf = BytesMut::new();
        idx.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), idx.byte_len());
        assert_eq!(ChunkIndex::parse(&buf).unwrap(), idx);
        // Trailing junk beyond the encoded length is tolerated.
        let mut longer = buf.to_vec();
        longer.extend_from_slice(b"????");
        assert_eq!(ChunkIndex::parse(&longer).unwrap(), idx);
    }

    #[test]
    fn parse_is_fail_open_on_damage() {
        let lens = [4000u64; 65];
        let idx = ChunkIndex::build(&lens, 4000 * 65).unwrap();
        let mut buf = BytesMut::new();
        idx.write_to(&mut buf).unwrap();
        let clean = buf.to_vec();
        assert!(ChunkIndex::parse(&clean).is_some());
        for pos in [0, 4, 9, FIXED_HEAD + 3, clean.len() - 2] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x40;
            assert!(ChunkIndex::parse(&bad).is_none(), "flip at {pos} accepted");
        }
        assert!(ChunkIndex::parse(&clean[..clean.len() - 1]).is_none());
        assert!(ChunkIndex::parse(&[]).is_none());
    }

    #[test]
    fn space_overhead_is_a_few_percent() {
        // Default geometry: 2^10-symbol chunks at ~4 bits/symbol average
        // is ~4096 bits (512 bytes) of payload per chunk.
        let lens = vec![4096u64; 4096];
        let total: u64 = lens.iter().sum();
        let idx = ChunkIndex::build(&lens, total).unwrap();
        let payload_bytes = (total as usize).div_ceil(8);
        let overhead = idx.byte_len() as f64 / payload_bytes as f64;
        assert!(overhead < 0.05, "index overhead {overhead:.4} >= 5%");
        // And in fact well under 1% at this geometry.
        assert!(overhead < 0.01, "index overhead {overhead:.4} >= 1%");
    }
}
