//! Coarse-grained chunked encoder — the cuSZ baseline (Section III-B).
//!
//! One thread per chunk, each serially writing its chunk's codewords into a
//! per-chunk region, then a gap-deflate pass concatenates the regions. On
//! the device this is "embarrassingly parallel" but ignores memory
//! coalescing: neighbouring threads write to far-apart chunk bases, so
//! every few-bit codeword append costs a full DRAM transaction — the
//! ~30 GB/s ceiling the paper measures for cuSZ on the V100.
//!
//! Functionally it produces the same chunked layout as the reduce-shuffle
//! encoder (with no breaking units — serial appends never break), so the
//! same chunked decoder applies.

use super::reduce_shuffle::{assemble, EncodedChunk};
use super::shuffle_merge::ShuffleStats;
use super::{ChunkedStream, MergeConfig};
use crate::codebook::CanonicalCodebook;
use crate::error::Result;
use rayon::prelude::*;

/// Encode `symbols` coarsely: thread-per-chunk serial appends, then the
/// standard coalescing pass.
pub fn encode(
    symbols: &[u16],
    book: &CanonicalCodebook,
    config: MergeConfig,
) -> Result<ChunkedStream> {
    let chunk_syms = config.chunk_symbols();
    let chunks: Vec<Result<EncodedChunk<'static>>> =
        symbols.par_chunks(chunk_syms.max(1)).map(|c| chunk_append(c, book)).collect();
    let chunks: Result<Vec<EncodedChunk<'static>>> = chunks.into_iter().collect();
    assemble(symbols.len(), &chunks?, config)
}

/// Serially append one chunk's codewords into left-aligned u32 cells.
/// Serial appends never break a word, so the chunk borrows nothing.
pub(crate) fn chunk_append(
    symbols: &[u16],
    book: &CanonicalCodebook,
) -> Result<EncodedChunk<'static>> {
    let mut words: Vec<u32> = Vec::with_capacity(symbols.len() / 2 + 2);
    let mut staged = 0u64; // output bits, left-aligned at bit 63
    let mut filled = 0u32; // valid staged bits (< 32 between symbols)
    let mut bit_len = 0u64;
    for &s in symbols {
        let code = book.code_checked(s)?;
        let bits = code.bits();
        let len = code.len();
        bit_len += u64::from(len);
        let mut rem = len;
        while rem > 0 {
            let room = 64 - filled;
            let take = rem.min(room);
            let field =
                if take == 64 { bits } else { (bits >> (rem - take)) & ((1u64 << take) - 1) };
            staged |= field << (room - take);
            filled += take;
            rem -= take;
            while filled >= 32 {
                words.push((staged >> 32) as u32);
                staged <<= 32;
                filled -= 32;
            }
        }
    }
    if filled > 0 {
        words.push((staged >> 32) as u32);
    }
    Ok(EncodedChunk { words, bit_len, breaking: Vec::new(), shuffle: ShuffleStats::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::decode;

    fn setup(n: usize) -> (CanonicalCodebook, Vec<u16>) {
        let freqs = [40u64, 30, 20, 10];
        let book = codebook::parallel(&freqs, 2).unwrap();
        let syms: Vec<u16> = (0..n).map(|i| ((i as u64).wrapping_mul(48271) % 4) as u16).collect();
        (book, syms)
    }

    #[test]
    fn matches_serial_bitstream() {
        let (book, syms) = setup(10_000);
        let coarse = encode(&syms, &book, MergeConfig::new(10, 3)).unwrap();
        let serial = super::super::serial::encode(&syms, &book).unwrap();
        assert_eq!(coarse.total_bits, serial.bit_len);
        assert_eq!(coarse.bytes, serial.bytes);
        assert!(coarse.outliers.is_empty());
    }

    #[test]
    fn roundtrips_through_chunked_decoder() {
        let (book, syms) = setup(3000);
        let stream = encode(&syms, &book, MergeConfig::new(8, 2)).unwrap();
        assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn long_codewords_handled() {
        // Deep codebook: codes up to 33 bits stress the staging split.
        let lengths: Vec<u32> = (1..=33).chain([33]).collect(); // complete code
        let book = crate::codebook::CanonicalCodebook::from_lengths(&lengths).unwrap();
        let syms: Vec<u16> = (0..200).map(|i| (i % 34) as u16).collect();
        let stream = encode(&syms, &book, MergeConfig::new(6, 1)).unwrap();
        let serial = super::super::serial::encode(&syms, &book).unwrap();
        assert_eq!(stream.bytes, serial.bytes);
    }

    #[test]
    fn empty_input() {
        let (book, _) = setup(0);
        let stream = encode(&[], &book, MergeConfig::default()).unwrap();
        assert_eq!(stream.total_bits, 0);
    }

    #[test]
    fn single_symbol_chunks() {
        let (book, syms) = setup(17);
        let stream = encode(&syms, &book, MergeConfig::new(2, 1)).unwrap();
        assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), syms);
        assert_eq!(stream.num_chunks(), 5); // ceil(17/4)
    }
}
