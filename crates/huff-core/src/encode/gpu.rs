//! The reduce-shuffle encoder on the simulated device.
//!
//! Kernel structure starts from Table I's "Huffman enc." block:
//!
//! * `enc_reduce_merge` — coarse+fine: each thread merges `2^r` codewords
//!   (codebook cached in shared memory), writing one merged unit per
//!   thread, coalesced;
//! * `enc_shuffle_merge` — `s` grid-synced iterations of batched word
//!   moves in global memory (warp divergence factor 2, Section IV-C-d);
//! * `enc_blockwise_len` — per-chunk code lengths + device-wide prefix sum;
//! * `enc_coalescing_copy` — the dense gather of chunk substreams;
//! * `enc_breaking_backtrace` — the reduction that locates breaking units
//!   plus the dense-to-sparse conversion (~300 us on the V100, Section V-B2).
//!
//! Under the default [`KernelPlan::fused`] the decomposition is tighter
//! (DESIGN.md § "Kernel fusion"): the `enc_blockwise_len` prefix sum runs
//! as a decoupled-lookback epilogue *inside* `enc_shuffle_merge`
//! ([`gpu_sim::prefix::single_pass_scan`] — no launch, no grid syncs), and
//! `enc_breaking_backtrace` emits its sparse sidecar via warp-aggregated
//! compaction (ballot + block-local scan + one coalesced segment write)
//! instead of per-unit random scatter. Either way the returned stream is
//! bit-identical — the plan only changes the modeled launch/traffic shape.
//!
//! `symbol_bytes` is the dataset's native symbol width (1 for the
//! byte-oriented corpora, 2 for quantization codes and k-mers) — it sets
//! the input-read traffic and is the basis for the GB/s figures the tables
//! report.

use super::reduce_shuffle::{assemble, encode_chunk, EncodedChunk};
use super::{BreakingStrategy, ChunkedStream, MergeConfig};
use crate::codebook::CanonicalCodebook;
use crate::error::Result;
use crate::plan::KernelPlan;
use gpu_sim::{Access, Gpu, GridDim};
use rayon::prelude::*;

/// Hardware grid-dimension ceiling shared by the encode kernels (same
/// clamp the decode side applies via its `DecodeLaunch` helper).
const MAX_BLOCKS: u64 = 1 << 20;

/// Shared launch-geometry helper for the chunk-parallel encode kernels.
///
/// Centralizes the grid clamp so a stream with more than 2^20 chunks loops
/// blocks over chunks instead of silently truncating the block count (the
/// old hand-built `GridDim::new((n_chunks as u32).min(1 << 20), 256)`
/// narrowed to u32 *before* clamping).
#[derive(Debug, Clone, Copy)]
struct EncodeLaunch {
    /// Chunks the stream actually holds (at least 1).
    n_chunks: u64,
    /// Grid blocks after the clamp.
    blocks: u64,
}

impl EncodeLaunch {
    fn new(n_chunks: u64) -> Self {
        let n_chunks = n_chunks.max(1);
        EncodeLaunch { n_chunks, blocks: n_chunks.min(MAX_BLOCKS) }
    }

    fn grid(&self) -> GridDim {
        GridDim::new(self.blocks as u32, 256)
    }

    /// Scalar-op overhead of the block loop: iterations beyond the first
    /// pay loop bookkeeping (index math, bounds check, chunk re-base).
    fn loop_ops(&self) -> u64 {
        8 * (self.n_chunks - self.blocks)
    }
}

/// Modeled per-kernel encode times, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuEncodeTimes {
    /// REDUCE-merge kernel (includes the codebook-lookup first merge).
    pub reduce: f64,
    /// SHUFFLE-merge kernel.
    pub shuffle: f64,
    /// Blockwise code length + prefix sum.
    pub blockwise_len: f64,
    /// Coalescing copy into the dense stream.
    pub coalesce: f64,
    /// Breaking-point backtrace + dense-to-sparse.
    pub breaking: f64,
    /// Sum of the above.
    pub total: f64,
}

/// Encode on the device under the default (fused) plan. See
/// [`encode_on_gpu_with_plan`].
pub fn encode_on_gpu(
    gpu: &Gpu,
    symbols: &[u16],
    symbol_bytes: u64,
    book: &CanonicalCodebook,
    config: MergeConfig,
    strategy: BreakingStrategy,
) -> Result<(ChunkedStream, GpuEncodeTimes)> {
    encode_on_gpu_with_plan(
        gpu,
        symbols,
        symbol_bytes,
        book,
        config,
        strategy,
        KernelPlan::default(),
    )
}

/// Encode on the device, charging modeled time to `gpu`'s clock. Returns
/// the stream (bit-identical to the host encoder's, for every plan) and
/// the per-kernel breakdown.
pub fn encode_on_gpu_with_plan(
    gpu: &Gpu,
    symbols: &[u16],
    symbol_bytes: u64,
    book: &CanonicalCodebook,
    config: MergeConfig,
    strategy: BreakingStrategy,
    plan: KernelPlan,
) -> Result<(ChunkedStream, GpuEncodeTimes)> {
    let chunk_syms = config.chunk_symbols();
    let n = symbols.len() as u64;
    let n_chunks = symbols.len().div_ceil(chunk_syms).max(1) as u64;
    let units = n.div_ceil(config.unit_symbols() as u64);
    let book_bytes = book.coded_symbols() as u64 * 8;
    // Each resident block stages the codebook in shared memory once; with
    // many more chunks than resident blocks the reloads hit L2, so the
    // DRAM cost is bounded by the resident-block count.
    let book_loads = n_chunks.min(u64::from(gpu.spec().sm_count) * 4);

    // --- Kernel 1: REDUCE-merge (fused functional work happens here) ----
    let launch = EncodeLaunch::new(n_chunks);
    let grid = launch.grid();
    let (chunks, reduce_cost) = gpu.launch_timed("enc_reduce_merge", grid, |scope| {
        let chunks: Vec<EncodedChunk<'_>> = symbols
            .par_chunks(chunk_syms.max(1))
            .map(|c| {
                let first = encode_chunk::<u32>(c, book, config);
                match strategy {
                    BreakingStrategy::SparseSidecar => first,
                    BreakingStrategy::WidenWord if first.breaking.is_empty() => first,
                    BreakingStrategy::WidenWord => encode_chunk::<u64>(c, book, config),
                }
            })
            .collect();
        let t = scope.traffic();
        t.read(Access::Coalesced, n, symbol_bytes); // input symbols
        t.read(Access::Coalesced, book_loads * book_bytes, 1); // codebook staging
        t.shared(n * 8); // per-symbol shared-memory codebook lookups
        t.write(Access::Coalesced, units, 4); // merged unit words
        t.write(Access::Coalesced, units, 1); // per-unit bit lengths (u8)
        t.ops(4 * n + launch.loop_ops());
        chunks
    });

    // --- Kernel 2: SHUFFLE-merge (+ fused length epilogue) ---------------
    let chunk_bits: Vec<u64> = chunks.iter().map(|c| c.bit_len).collect();
    let words_moved: u64 = chunks.iter().map(|c| c.shuffle.words_moved).sum();
    let iters = chunks.iter().map(|c| c.shuffle.iterations).max().unwrap_or(0);
    let (_, shuffle_cost) = gpu.launch_timed("enc_shuffle_merge", grid, |scope| {
        {
            let t = scope.traffic();
            t.read(Access::Coalesced, words_moved, 4);
            t.write(Access::Coalesced, words_moved, 4);
            // Group bit-length bookkeeping: each window reads its two group
            // lengths and writes the merged one; the total window count across
            // all iterations is one per unit.
            t.read(Access::Coalesced, 2 * units, 4);
            t.write(Access::Coalesced, units, 4);
            t.ops(6 * words_moved + launch.loop_ops());
            t.diverge(2.0); // Section IV-C-d: shuffle diverges at a factor of 2
            for _ in 0..iters {
                t.grid_sync();
            }
        }
        if plan.fused_len {
            // Epilogue: blocks already hold their chunks' final bit lengths
            // in shared memory, so the device-wide offsets resolve in a
            // decoupled-lookback single pass — no extra launch, no barrier.
            let (_offsets, _total) = gpu_sim::prefix::single_pass_scan(scope, &chunk_bits);
        }
    });

    // --- Kernel 3: blockwise code lengths + prefix sum (unfused only) ----
    let len_cost = if plan.fused_len {
        gpu_sim::CostBreakdown::default()
    } else {
        let (_, cost) =
            gpu.launch_timed("enc_blockwise_len", GridDim::cover(chunk_bits.len(), 256), |scope| {
                let (_offsets, _total) = gpu_sim::prefix::exclusive_scan(scope, &chunk_bits);
            });
        cost
    };

    // --- Kernel 4: coalescing copy --------------------------------------
    let total_bits: u64 = chunk_bits.iter().sum();
    let payload_bytes = total_bits.div_ceil(8);
    let (_, copy_cost) = gpu.launch_timed("enc_coalescing_copy", grid, |scope| {
        let t = scope.traffic();
        t.read(Access::Coalesced, payload_bytes, 1);
        t.write(Access::Coalesced, payload_bytes, 1);
        t.ops(payload_bytes.div_ceil(4) + launch.loop_ops());
    });

    // --- Kernel 5: breaking backtrace + dense-to-sparse ------------------
    let n_breaking: u64 = chunks.iter().map(|c| c.breaking.len() as u64).sum();
    let breaking_syms: u64 =
        chunks.iter().flat_map(|c| c.breaking.iter().map(|(_, s)| s.len() as u64)).sum();
    let (_, breaking_cost) =
        gpu.launch_timed("enc_breaking_backtrace", GridDim::cover(units as usize, 256), |scope| {
            let t = scope.traffic();
            t.read(Access::Coalesced, units, 1); // one-time read of unit lens (u8)
            t.read(Access::Coalesced, breaking_syms, 2); // raw symbols re-read
            if plan.compacted_backtrace {
                // Warp-aggregated compaction: a ballot finds each warp's
                // breaking units, a block-local scan packs them, one atomic
                // per contributing block reserves a segment of the sidecar,
                // and the segment lands as a single coalesced write. The
                // device-wide scan (and its barrier) disappears.
                let seg_blocks = units.div_ceil(256).min(n_breaking);
                t.shared(units * 4); // ballot + block-local scan workspace
                t.global_atomic(seg_blocks, seg_blocks / 64);
                t.write(Access::Coalesced, n_breaking, 8); // sparse indices
                t.write(Access::Coalesced, breaking_syms, 2); // raw symbols
                t.ops(units + 4 * n_breaking);
            } else {
                t.write(Access::Random, n_breaking, 8); // sparse indices
                t.write(Access::Random, breaking_syms, 2); // raw symbols
                t.ops(units);
                t.grid_sync();
            }
        });

    let stream = assemble(symbols.len(), &chunks, config)?;
    let times = GpuEncodeTimes {
        reduce: reduce_cost.total,
        shuffle: shuffle_cost.total,
        blockwise_len: len_cost.total,
        coalesce: copy_cost.total,
        breaking: breaking_cost.total,
        total: reduce_cost.total
            + shuffle_cost.total
            + len_cost.total
            + copy_cost.total
            + breaking_cost.total,
    };
    Ok((stream, times))
}

/// The cuSZ coarse baseline on the device: thread-per-chunk serial appends.
/// With a hundred thousand threads striding chunk-sized apart, neither the
/// reads nor the fragmented per-codeword appends coalesce — every access is
/// its own DRAM transaction, which is what pins cuSZ's encoder near
/// 10-30 GB/s (Section III-B; e.g. enwik9's 954 MB at one read + one write
/// sector per symbol is ~60 GB of traffic → ~11 GB/s on the V100, the
/// paper's measured figure).
pub fn coarse_encode_on_gpu(
    gpu: &Gpu,
    symbols: &[u16],
    symbol_bytes: u64,
    book: &CanonicalCodebook,
    config: MergeConfig,
) -> Result<(ChunkedStream, f64)> {
    let n = symbols.len() as u64;
    let n_chunks = symbols.len().div_ceil(config.chunk_symbols()).max(1) as u64;
    let launch = EncodeLaunch::new(n_chunks);
    let (stream, cost) = gpu.launch_timed("coarse_encode", launch.grid(), |scope| {
        let stream = super::coarse::encode(symbols, book, config);
        let t = scope.traffic();
        t.read(Access::Strided, n, symbol_bytes); // chunk-strided, cache-hostile
        t.write(Access::Strided, n, 4); // fragmented per-codeword appends
        t.ops(8 * n + launch.loop_ops());
        t.diverge(2.0); // variable-length appends diverge heavily
        stream
    });
    Ok((stream?, cost.total))
}

/// The Rahmani prefix-sum baseline on the device (Section III-B: the
/// 37 GB/s method).
pub fn prefix_sum_encode_on_gpu(
    gpu: &Gpu,
    symbols: &[u16],
    symbol_bytes: u64,
    book: &CanonicalCodebook,
) -> Result<(super::EncodedStream, f64)> {
    let n = symbols.len() as u64;
    let grid = GridDim::cover(symbols.len(), 256);
    let (out, cost) = gpu.launch_timed("prefix_sum_encode", grid, |scope| {
        let out = super::prefix_sum::encode(symbols, book);
        if let Ok((_, stats)) = &out {
            let t = scope.traffic();
            // Lengths pass.
            t.read(Access::Coalesced, n, symbol_bytes);
            t.shared(n * 8);
            t.write(Access::Coalesced, n, 4);
            // Scan over n lengths (3n element moves).
            t.read(Access::Coalesced, 3 * n, 4);
            t.write(Access::Coalesced, n, 8);
            // Concurrent scatter: every codeword write is a read-modify-
            // write of 1-2 words at a data-dependent bit offset. Atomics to
            // *distinct* addresses run at sector throughput (charged below);
            // true same-address collisions are only the word-boundary
            // overlaps between neighbouring codewords, a small fraction.
            t.global_atomic(stats.scatter_writes, stats.scatter_writes / 1024);
            t.read(Access::Random, stats.scatter_writes, 4);
            t.ops(8 * n);
            t.grid_sync();
            t.grid_sync();
        }
        out
    });
    let (stream, _) = out?;
    Ok((stream, cost.total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::decode;
    use gpu_sim::DeviceSpec;

    /// Nyx-Quant-like: 1024 symbols, avg ~1.03 bits.
    fn nyx_like(n: usize) -> (CanonicalCodebook, Vec<u16>) {
        let mut freqs = vec![1u64; 1024];
        freqs[512] = (n as u64 * 200).max(1024); // dominant quantization bin
        freqs[511] = (n as u64).max(512) / 8;
        freqs[513] = (n as u64).max(512) / 8;
        let book = codebook::parallel(&freqs, 8).unwrap();
        let syms: Vec<u16> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005) >> 33;
                match x % 100 {
                    0..=89 => 512u16,
                    90..=94 => 511,
                    95..=98 => 513,
                    _ => (x % 1024) as u16,
                }
            })
            .collect();
        (book, syms)
    }

    #[test]
    fn gpu_encode_matches_host_encode() {
        let (book, syms) = nyx_like(50_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let cfg = MergeConfig::new(10, 3);
        let (stream, times) =
            encode_on_gpu(&gpu, &syms, 2, &book, cfg, BreakingStrategy::SparseSidecar).unwrap();
        let host = super::super::reduce_shuffle::encode(
            &syms,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(stream.bytes, host.bytes);
        assert_eq!(stream.total_bits, host.total_bits);
        assert!(times.total > 0.0);
        assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn fused_default_charges_four_kernels() {
        // The fused-len plan folds enc_blockwise_len into the shuffle merge.
        let (book, syms) = nyx_like(10_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let _ = encode_on_gpu(
            &gpu,
            &syms,
            2,
            &book,
            MergeConfig::new(8, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(gpu.clock().launches(), 4);
        assert_eq!(gpu.elapsed_matching("enc_blockwise_len"), 0.0);
    }

    #[test]
    fn unfused_plan_charges_five_kernels() {
        let (book, syms) = nyx_like(10_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let _ = encode_on_gpu_with_plan(
            &gpu,
            &syms,
            2,
            &book,
            MergeConfig::new(8, 2),
            BreakingStrategy::SparseSidecar,
            KernelPlan::unfused(),
        )
        .unwrap();
        assert_eq!(gpu.clock().launches(), 5);
        assert!(gpu.elapsed_matching("enc_blockwise_len") > 0.0);
    }

    #[test]
    fn fused_and_unfused_streams_bit_identical() {
        let (book, syms) = nyx_like(40_000);
        let cfg = MergeConfig::new(9, 2);
        for strategy in [BreakingStrategy::SparseSidecar, BreakingStrategy::WidenWord] {
            let g1 = Gpu::new(DeviceSpec::test_part());
            let g2 = Gpu::new(DeviceSpec::test_part());
            let (fused, _) =
                encode_on_gpu_with_plan(&g1, &syms, 2, &book, cfg, strategy, KernelPlan::fused())
                    .unwrap();
            let (unfused, _) =
                encode_on_gpu_with_plan(&g2, &syms, 2, &book, cfg, strategy, KernelPlan::unfused())
                    .unwrap();
            assert_eq!(fused.bytes, unfused.bytes);
            assert_eq!(fused.total_bits, unfused.total_bits);
        }
    }

    #[test]
    fn fused_encode_is_not_slower() {
        let (book, syms) = nyx_like(4_000_000);
        let cfg = MergeConfig::new(10, 3);
        let g1 = Gpu::v100();
        let (_, fused) = encode_on_gpu_with_plan(
            &g1,
            &syms,
            2,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
            KernelPlan::fused(),
        )
        .unwrap();
        let g2 = Gpu::v100();
        let (_, unfused) = encode_on_gpu_with_plan(
            &g2,
            &syms,
            2,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
            KernelPlan::unfused(),
        )
        .unwrap();
        assert!(fused.total < unfused.total, "fused {} >= unfused {}", fused.total, unfused.total);
    }

    #[test]
    fn encode_launch_clamps_grid_and_loops_blocks() {
        let small = EncodeLaunch::new(1000);
        assert_eq!(small.blocks, 1000);
        assert_eq!(small.loop_ops(), 0);
        let big = EncodeLaunch::new(MAX_BLOCKS + 37);
        assert_eq!(big.blocks, MAX_BLOCKS);
        assert_eq!(big.grid().blocks, MAX_BLOCKS as u32);
        assert_eq!(big.loop_ops(), 8 * 37);
    }

    /// The in-repo tests run at megabyte scale where kernel-launch latency
    /// still matters; the full Table II/V comparison at the paper's
    /// 256 MB - 1.4 GB scale is produced by the release-mode bench harness.
    #[test]
    fn reduce_shuffle_beats_coarse_on_v100() {
        let (book, syms) = nyx_like(16_000_000);
        let cfg = MergeConfig::new(10, 3);
        let g1 = Gpu::v100();
        let (_, ours) =
            encode_on_gpu(&g1, &syms, 2, &book, cfg, BreakingStrategy::SparseSidecar).unwrap();
        let g2 = Gpu::v100();
        let (_, coarse_time) = coarse_encode_on_gpu(&g2, &syms, 2, &book, cfg).unwrap();
        let speedup = coarse_time / ours.total;
        assert!(
            speedup > 1.5,
            "speedup only {speedup:.2}x (ours {} vs coarse {})",
            ours.total,
            coarse_time
        );
    }

    #[test]
    fn reduce_shuffle_beats_prefix_sum_on_low_entropy() {
        let (book, syms) = nyx_like(4_000_000);
        let g1 = Gpu::v100();
        let (_, ours) = encode_on_gpu(
            &g1,
            &syms,
            2,
            &book,
            MergeConfig::new(10, 3),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let g2 = Gpu::v100();
        let (ps_stream, ps_time) = prefix_sum_encode_on_gpu(&g2, &syms, 2, &book).unwrap();
        assert!(ps_time > ours.total, "prefix-sum {ps_time} should lose to ours {}", ours.total);
        // Prefix-sum output is still correct.
        let dec = decode::canonical::decode(&ps_stream.bytes, ps_stream.bit_len, syms.len(), &book)
            .unwrap();
        assert_eq!(dec, syms);
    }

    #[test]
    fn v100_encode_throughput_band() {
        // Table V reports 314.6 GB/s for Nyx-Quant on the V100 at 256 MB;
        // at this test's 32 MB the launch latency still bites, so accept a
        // wide band and let the bench harness check the full-scale number.
        let (book, syms) = nyx_like(16_000_000);
        let gpu = Gpu::v100();
        let (_, t) = encode_on_gpu(
            &gpu,
            &syms,
            2,
            &book,
            MergeConfig::new(10, 3),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let gbps = gpu_sim::gbps((syms.len() * 2) as f64 / t.total);
        assert!(gbps > 50.0 && gbps < 900.0, "modeled {gbps:.1} GB/s");
    }

    #[test]
    fn throughput_improves_with_scale() {
        // Launch overhead amortizes: 16 MB should beat 2 MB in GB/s.
        let (book, syms) = nyx_like(8_000_000);
        let cfg = MergeConfig::new(10, 3);
        let g_small = Gpu::v100();
        let (_, t_small) = encode_on_gpu(
            &g_small,
            &syms[..1_000_000],
            2,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let g_big = Gpu::v100();
        let (_, t_big) =
            encode_on_gpu(&g_big, &syms, 2, &book, cfg, BreakingStrategy::SparseSidecar).unwrap();
        let small_gbps = 1_000_000.0 * 2.0 / t_small.total;
        let big_gbps = 8_000_000.0 * 2.0 / t_big.total;
        assert!(big_gbps > small_gbps, "{big_gbps} <= {small_gbps}");
    }

    #[test]
    fn empty_input_ok() {
        let (book, _) = nyx_like(16);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (stream, _) = encode_on_gpu(
            &gpu,
            &[],
            2,
            &book,
            MergeConfig::default(),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(stream.total_bits, 0);
    }
}
