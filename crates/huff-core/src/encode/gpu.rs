//! The reduce-shuffle encoder on the simulated device.
//!
//! Kernel structure matches Table I's "Huffman enc." block:
//!
//! * `enc_reduce_merge` — coarse+fine: each thread merges `2^r` codewords
//!   (codebook cached in shared memory), writing one merged unit per
//!   thread, coalesced;
//! * `enc_shuffle_merge` — `s` grid-synced iterations of batched word
//!   moves in global memory (warp divergence factor 2, Section IV-C-d);
//! * `enc_blockwise_len` — per-chunk code lengths + device-wide prefix sum;
//! * `enc_coalescing_copy` — the dense gather of chunk substreams;
//! * `enc_breaking_backtrace` — the reduction that locates breaking units
//!   plus the dense-to-sparse conversion (~300 us on the V100, Section V-B2).
//!
//! `symbol_bytes` is the dataset's native symbol width (1 for the
//! byte-oriented corpora, 2 for quantization codes and k-mers) — it sets
//! the input-read traffic and is the basis for the GB/s figures the tables
//! report.

use super::reduce_shuffle::{assemble, encode_chunk, EncodedChunk};
use super::{BreakingStrategy, ChunkedStream, MergeConfig};
use crate::codebook::CanonicalCodebook;
use crate::error::Result;
use gpu_sim::{Access, Gpu, GridDim};
use rayon::prelude::*;

/// Modeled per-kernel encode times, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuEncodeTimes {
    /// REDUCE-merge kernel (includes the codebook-lookup first merge).
    pub reduce: f64,
    /// SHUFFLE-merge kernel.
    pub shuffle: f64,
    /// Blockwise code length + prefix sum.
    pub blockwise_len: f64,
    /// Coalescing copy into the dense stream.
    pub coalesce: f64,
    /// Breaking-point backtrace + dense-to-sparse.
    pub breaking: f64,
    /// Sum of the above.
    pub total: f64,
}

/// Encode on the device, charging modeled time to `gpu`'s clock. Returns
/// the stream (bit-identical to the host encoder's) and the per-kernel
/// breakdown.
pub fn encode_on_gpu(
    gpu: &Gpu,
    symbols: &[u16],
    symbol_bytes: u64,
    book: &CanonicalCodebook,
    config: MergeConfig,
    strategy: BreakingStrategy,
) -> Result<(ChunkedStream, GpuEncodeTimes)> {
    let chunk_syms = config.chunk_symbols();
    let n = symbols.len() as u64;
    let n_chunks = symbols.len().div_ceil(chunk_syms).max(1) as u64;
    let units = n.div_ceil(config.unit_symbols() as u64);
    let book_bytes = book.coded_symbols() as u64 * 8;
    // Each resident block stages the codebook in shared memory once; with
    // many more chunks than resident blocks the reloads hit L2, so the
    // DRAM cost is bounded by the resident-block count.
    let book_loads = n_chunks.min(u64::from(gpu.spec().sm_count) * 4);

    // --- Kernel 1: REDUCE-merge (fused functional work happens here) ----
    let grid = GridDim::new((n_chunks as u32).min(1 << 20), 256);
    let (chunks, reduce_cost) = gpu.launch_timed("enc_reduce_merge", grid, |scope| {
        let chunks: Vec<EncodedChunk<'_>> = symbols
            .par_chunks(chunk_syms.max(1))
            .map(|c| {
                let first = encode_chunk::<u32>(c, book, config);
                match strategy {
                    BreakingStrategy::SparseSidecar => first,
                    BreakingStrategy::WidenWord if first.breaking.is_empty() => first,
                    BreakingStrategy::WidenWord => encode_chunk::<u64>(c, book, config),
                }
            })
            .collect();
        let t = scope.traffic();
        t.read(Access::Coalesced, n, symbol_bytes); // input symbols
        t.read(Access::Coalesced, book_loads * book_bytes, 1); // codebook staging
        t.shared(n * 8); // per-symbol shared-memory codebook lookups
        t.write(Access::Coalesced, units, 4); // merged unit words
        t.write(Access::Coalesced, units, 1); // per-unit bit lengths (u8)
        t.ops(4 * n);
        chunks
    });

    // --- Kernel 2: SHUFFLE-merge ----------------------------------------
    let words_moved: u64 = chunks.iter().map(|c| c.shuffle.words_moved).sum();
    let iters = chunks.iter().map(|c| c.shuffle.iterations).max().unwrap_or(0);
    let (_, shuffle_cost) = gpu.launch_timed("enc_shuffle_merge", grid, |scope| {
        let t = scope.traffic();
        t.read(Access::Coalesced, words_moved, 4);
        t.write(Access::Coalesced, words_moved, 4);
        // Group bit-length bookkeeping: each window reads its two group
        // lengths and writes the merged one; the total window count across
        // all iterations is one per unit.
        t.read(Access::Coalesced, 2 * units, 4);
        t.write(Access::Coalesced, units, 4);
        t.ops(6 * words_moved);
        t.diverge(2.0); // Section IV-C-d: shuffle diverges at a factor of 2
        for _ in 0..iters {
            t.grid_sync();
        }
    });

    // --- Kernel 3: blockwise code lengths + prefix sum -------------------
    let chunk_bits: Vec<u64> = chunks.iter().map(|c| c.bit_len).collect();
    let (_, len_cost) =
        gpu.launch_timed("enc_blockwise_len", GridDim::cover(chunk_bits.len(), 256), |scope| {
            let (_offsets, _total) = gpu_sim::prefix::exclusive_scan(scope, &chunk_bits);
        });

    // --- Kernel 4: coalescing copy --------------------------------------
    let total_bits: u64 = chunk_bits.iter().sum();
    let payload_bytes = total_bits.div_ceil(8);
    let (_, copy_cost) = gpu.launch_timed("enc_coalescing_copy", grid, |scope| {
        let t = scope.traffic();
        t.read(Access::Coalesced, payload_bytes, 1);
        t.write(Access::Coalesced, payload_bytes, 1);
        t.ops(payload_bytes.div_ceil(4));
    });

    // --- Kernel 5: breaking backtrace + dense-to-sparse ------------------
    let n_breaking: u64 = chunks.iter().map(|c| c.breaking.len() as u64).sum();
    let breaking_syms: u64 =
        chunks.iter().flat_map(|c| c.breaking.iter().map(|(_, s)| s.len() as u64)).sum();
    let (_, breaking_cost) =
        gpu.launch_timed("enc_breaking_backtrace", GridDim::cover(units as usize, 256), |scope| {
            let t = scope.traffic();
            t.read(Access::Coalesced, units, 1); // one-time read of unit lens (u8)
            t.write(Access::Random, n_breaking, 8); // sparse indices
            t.write(Access::Random, breaking_syms, 2); // raw symbols
            t.ops(units);
            t.grid_sync();
        });

    let stream = assemble(symbols.len(), &chunks, config)?;
    let times = GpuEncodeTimes {
        reduce: reduce_cost.total,
        shuffle: shuffle_cost.total,
        blockwise_len: len_cost.total,
        coalesce: copy_cost.total,
        breaking: breaking_cost.total,
        total: reduce_cost.total
            + shuffle_cost.total
            + len_cost.total
            + copy_cost.total
            + breaking_cost.total,
    };
    Ok((stream, times))
}

/// The cuSZ coarse baseline on the device: thread-per-chunk serial appends.
/// With a hundred thousand threads striding chunk-sized apart, neither the
/// reads nor the fragmented per-codeword appends coalesce — every access is
/// its own DRAM transaction, which is what pins cuSZ's encoder near
/// 10-30 GB/s (Section III-B; e.g. enwik9's 954 MB at one read + one write
/// sector per symbol is ~60 GB of traffic → ~11 GB/s on the V100, the
/// paper's measured figure).
pub fn coarse_encode_on_gpu(
    gpu: &Gpu,
    symbols: &[u16],
    symbol_bytes: u64,
    book: &CanonicalCodebook,
    config: MergeConfig,
) -> Result<(ChunkedStream, f64)> {
    let n = symbols.len() as u64;
    let n_chunks = symbols.len().div_ceil(config.chunk_symbols()).max(1) as u64;
    let grid = GridDim::new((n_chunks as u32).min(1 << 20), 256);
    let (stream, cost) = gpu.launch_timed("coarse_encode", grid, |scope| {
        let stream = super::coarse::encode(symbols, book, config);
        let t = scope.traffic();
        t.read(Access::Strided, n, symbol_bytes); // chunk-strided, cache-hostile
        t.write(Access::Strided, n, 4); // fragmented per-codeword appends
        t.ops(8 * n);
        t.diverge(2.0); // variable-length appends diverge heavily
        stream
    });
    Ok((stream?, cost.total))
}

/// The Rahmani prefix-sum baseline on the device (Section III-B: the
/// 37 GB/s method).
pub fn prefix_sum_encode_on_gpu(
    gpu: &Gpu,
    symbols: &[u16],
    symbol_bytes: u64,
    book: &CanonicalCodebook,
) -> Result<(super::EncodedStream, f64)> {
    let n = symbols.len() as u64;
    let grid = GridDim::cover(symbols.len(), 256);
    let (out, cost) = gpu.launch_timed("prefix_sum_encode", grid, |scope| {
        let out = super::prefix_sum::encode(symbols, book);
        if let Ok((_, stats)) = &out {
            let t = scope.traffic();
            // Lengths pass.
            t.read(Access::Coalesced, n, symbol_bytes);
            t.shared(n * 8);
            t.write(Access::Coalesced, n, 4);
            // Scan over n lengths (3n element moves).
            t.read(Access::Coalesced, 3 * n, 4);
            t.write(Access::Coalesced, n, 8);
            // Concurrent scatter: every codeword write is a read-modify-
            // write of 1-2 words at a data-dependent bit offset. Atomics to
            // *distinct* addresses run at sector throughput (charged below);
            // true same-address collisions are only the word-boundary
            // overlaps between neighbouring codewords, a small fraction.
            t.global_atomic(stats.scatter_writes, stats.scatter_writes / 1024);
            t.read(Access::Random, stats.scatter_writes, 4);
            t.ops(8 * n);
            t.grid_sync();
            t.grid_sync();
        }
        out
    });
    let (stream, _) = out?;
    Ok((stream, cost.total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::decode;
    use gpu_sim::DeviceSpec;

    /// Nyx-Quant-like: 1024 symbols, avg ~1.03 bits.
    fn nyx_like(n: usize) -> (CanonicalCodebook, Vec<u16>) {
        let mut freqs = vec![1u64; 1024];
        freqs[512] = (n as u64 * 200).max(1024); // dominant quantization bin
        freqs[511] = (n as u64).max(512) / 8;
        freqs[513] = (n as u64).max(512) / 8;
        let book = codebook::parallel(&freqs, 8).unwrap();
        let syms: Vec<u16> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005) >> 33;
                match x % 100 {
                    0..=89 => 512u16,
                    90..=94 => 511,
                    95..=98 => 513,
                    _ => (x % 1024) as u16,
                }
            })
            .collect();
        (book, syms)
    }

    #[test]
    fn gpu_encode_matches_host_encode() {
        let (book, syms) = nyx_like(50_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let cfg = MergeConfig::new(10, 3);
        let (stream, times) =
            encode_on_gpu(&gpu, &syms, 2, &book, cfg, BreakingStrategy::SparseSidecar).unwrap();
        let host = super::super::reduce_shuffle::encode(
            &syms,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(stream.bytes, host.bytes);
        assert_eq!(stream.total_bits, host.total_bits);
        assert!(times.total > 0.0);
        assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn five_encode_kernels_charged() {
        let (book, syms) = nyx_like(10_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let _ = encode_on_gpu(
            &gpu,
            &syms,
            2,
            &book,
            MergeConfig::new(8, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(gpu.clock().launches(), 5);
    }

    /// The in-repo tests run at megabyte scale where kernel-launch latency
    /// still matters; the full Table II/V comparison at the paper's
    /// 256 MB - 1.4 GB scale is produced by the release-mode bench harness.
    #[test]
    fn reduce_shuffle_beats_coarse_on_v100() {
        let (book, syms) = nyx_like(16_000_000);
        let cfg = MergeConfig::new(10, 3);
        let g1 = Gpu::v100();
        let (_, ours) =
            encode_on_gpu(&g1, &syms, 2, &book, cfg, BreakingStrategy::SparseSidecar).unwrap();
        let g2 = Gpu::v100();
        let (_, coarse_time) = coarse_encode_on_gpu(&g2, &syms, 2, &book, cfg).unwrap();
        let speedup = coarse_time / ours.total;
        assert!(
            speedup > 1.5,
            "speedup only {speedup:.2}x (ours {} vs coarse {})",
            ours.total,
            coarse_time
        );
    }

    #[test]
    fn reduce_shuffle_beats_prefix_sum_on_low_entropy() {
        let (book, syms) = nyx_like(4_000_000);
        let g1 = Gpu::v100();
        let (_, ours) = encode_on_gpu(
            &g1,
            &syms,
            2,
            &book,
            MergeConfig::new(10, 3),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let g2 = Gpu::v100();
        let (ps_stream, ps_time) = prefix_sum_encode_on_gpu(&g2, &syms, 2, &book).unwrap();
        assert!(ps_time > ours.total, "prefix-sum {ps_time} should lose to ours {}", ours.total);
        // Prefix-sum output is still correct.
        let dec = decode::canonical::decode(&ps_stream.bytes, ps_stream.bit_len, syms.len(), &book)
            .unwrap();
        assert_eq!(dec, syms);
    }

    #[test]
    fn v100_encode_throughput_band() {
        // Table V reports 314.6 GB/s for Nyx-Quant on the V100 at 256 MB;
        // at this test's 32 MB the launch latency still bites, so accept a
        // wide band and let the bench harness check the full-scale number.
        let (book, syms) = nyx_like(16_000_000);
        let gpu = Gpu::v100();
        let (_, t) = encode_on_gpu(
            &gpu,
            &syms,
            2,
            &book,
            MergeConfig::new(10, 3),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let gbps = gpu_sim::gbps((syms.len() * 2) as f64 / t.total);
        assert!(gbps > 50.0 && gbps < 900.0, "modeled {gbps:.1} GB/s");
    }

    #[test]
    fn throughput_improves_with_scale() {
        // Launch overhead amortizes: 16 MB should beat 2 MB in GB/s.
        let (book, syms) = nyx_like(8_000_000);
        let cfg = MergeConfig::new(10, 3);
        let g_small = Gpu::v100();
        let (_, t_small) = encode_on_gpu(
            &g_small,
            &syms[..1_000_000],
            2,
            &book,
            cfg,
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let g_big = Gpu::v100();
        let (_, t_big) =
            encode_on_gpu(&g_big, &syms, 2, &book, cfg, BreakingStrategy::SparseSidecar).unwrap();
        let small_gbps = 1_000_000.0 * 2.0 / t_small.total;
        let big_gbps = 8_000_000.0 * 2.0 / t_big.total;
        assert!(big_gbps > small_gbps, "{big_gbps} <= {small_gbps}");
    }

    #[test]
    fn empty_input_ok() {
        let (book, _) = nyx_like(16);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (stream, _) = encode_on_gpu(
            &gpu,
            &[],
            2,
            &book,
            MergeConfig::default(),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(stream.total_bits, 0);
    }
}
