//! REDUCE-merge (Section IV-C-a, Fig. 1).
//!
//! The first merge includes the codebook lookup; thereafter every two
//! codewords merge into one, `r` times in total, so one thread carries
//! `2^r` codewords — avoiding the thread-starvation of a naive halving
//! reduction when average codewords are only 1-2 bits wide. A unit whose
//! merged length exceeds the representative word width `W::BITS` is a
//! *breaking point*: it is filtered out (its slot becomes empty) and its
//! raw symbols are handed to the sparse sidecar.

use super::Word;
use crate::codebook::CanonicalCodebook;
use crate::codeword::Codeword;

/// One reduce unit's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit<W: Word> {
    /// Merged codeword: left-aligned bits in a word, plus the bit length.
    Merged {
        /// Bits left-aligned in the representative word.
        word: W,
        /// Number of valid bits (≤ `W::BITS`).
        len: u32,
    },
    /// The unit broke: merged length exceeded `W::BITS`.
    Breaking,
}

/// Reduce one unit of up to `2^r` symbols: look up each codeword and fold
/// with MERGE. Returns [`Unit::Breaking`] as soon as the accumulated length
/// exceeds the word width.
#[inline]
pub fn reduce_unit<W: Word>(symbols: &[u16], book: &CanonicalCodebook) -> Unit<W> {
    let mut acc = Codeword::EMPTY;
    for &s in symbols {
        let code = book.code(s);
        debug_assert!(!code.is_empty(), "symbol {s} has no codeword");
        match acc.merge(code) {
            Some(m) if m.len() <= W::BITS => acc = m,
            _ => return Unit::Breaking,
        }
    }
    // Left-align within the representative word.
    let word =
        if acc.is_empty() { W::ZERO } else { W::from_u64(acc.bits()) << (W::BITS - acc.len()) };
    Unit::Merged { word, len: acc.len() }
}

/// Reduce a whole chunk: `symbols` is one chunk (≤ `2^M` symbols),
/// partitioned into units of `2^r`. Returns the left-aligned words, the
/// per-unit bit lengths (0 for breaking units), and the local indices of
/// breaking units.
pub fn reduce_chunk<W: Word>(
    symbols: &[u16],
    book: &CanonicalCodebook,
    reduction: u32,
) -> (Vec<W>, Vec<u32>, Vec<u32>) {
    let unit_size = 1usize << reduction;
    let n_units = symbols.len().div_ceil(unit_size);
    let mut words = vec![W::ZERO; n_units];
    let mut lens = vec![0u32; n_units];
    let mut breaking = Vec::new();
    for (u, unit_syms) in symbols.chunks(unit_size).enumerate() {
        match reduce_unit::<W>(unit_syms, book) {
            Unit::Merged { word, len } => {
                words[u] = word;
                lens[u] = len;
            }
            Unit::Breaking => {
                breaking.push(u as u32);
            }
        }
    }
    (words, lens, breaking)
}

/// A human-readable trace of the 8-to-1 REDUCE-merge of Fig. 1: the state
/// of the codeword array after each of the `r` halving iterations.
pub fn trace_fig1(symbols: &[u16], book: &CanonicalCodebook) -> Vec<Vec<String>> {
    assert_eq!(symbols.len(), 8, "Fig. 1 shows an 8-to-1 reduction");
    let mut level: Vec<Codeword> = symbols.iter().map(|&s| book.code(s)).collect();
    let mut out = vec![level.iter().map(|c| c.to_bit_string()).collect::<Vec<_>>()];
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|p| p[0].merge(p[1]).expect("Fig. 1 trace assumes no breaking"))
            .collect();
        out.push(level.iter().map(|c| c.to_bit_string()).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;

    fn book() -> CanonicalCodebook {
        // 4 symbols, freqs 8,4,2,2 -> lengths 1,2,3,3.
        codebook::parallel(&[8, 4, 2, 2], 2).unwrap()
    }

    #[test]
    fn reduce_unit_concatenates_in_order() {
        let b = book();
        // Codes: 0:"0", 1:"10", 2 and 3: 3-bit.
        let expected = b.code(0).merge(b.code(1)).and_then(|m| m.merge(b.code(0))).unwrap();
        match reduce_unit::<u32>(&[0, 1, 0], &b) {
            Unit::Merged { word, len } => {
                assert_eq!(len, expected.len());
                assert_eq!(u64::from(word) >> (32 - len), expected.bits());
            }
            Unit::Breaking => panic!("should not break"),
        }
    }

    #[test]
    fn empty_unit_is_zero() {
        let b = book();
        assert_eq!(reduce_unit::<u32>(&[], &b), Unit::Merged { word: 0, len: 0 });
    }

    #[test]
    fn breaking_when_exceeding_word() {
        let b = book();
        // Twelve 3-bit codes = 36 bits > 32.
        let syms = vec![2u16; 12];
        assert_eq!(reduce_unit::<u32>(&syms, &b), Unit::Breaking);
        // But a u64 word holds them.
        assert!(matches!(reduce_unit::<u64>(&syms, &b), Unit::Merged { len: 36, .. }));
    }

    #[test]
    fn exact_word_fill_does_not_break() {
        let b = book();
        // 32 one-bit codes = exactly 32 bits.
        let syms = vec![0u16; 32];
        match reduce_unit::<u32>(&syms, &b) {
            Unit::Merged { word, len } => {
                assert_eq!(len, 32);
                assert_eq!(word, 0); // symbol 0's code is "0"
            }
            Unit::Breaking => panic!("exactly-full unit must not break"),
        }
    }

    #[test]
    fn reduce_chunk_partitions_and_flags() {
        let b = book();
        // Units of 4; second unit all 3-bit codes (12 bits, fine for u32);
        // third unit of 12 would break, but unit size caps at 4.
        let symbols = vec![0, 0, 0, 0, 2, 2, 2, 2, 1, 1];
        let (words, lens, breaking) = reduce_chunk::<u32>(&symbols, &b, 2);
        assert_eq!(words.len(), 3);
        assert_eq!(lens[0], 4);
        assert_eq!(lens[1], 12);
        assert_eq!(lens[2], 4); // partial tail unit: two 2-bit codes
        assert!(breaking.is_empty());
    }

    #[test]
    fn reduce_chunk_reports_breaking_units() {
        // A codebook with long codes: freqs force >8-bit codewords.
        let freqs: Vec<u64> = (0..64u64).map(|i| 1u64 << (i / 4)).collect();
        let b = codebook::parallel(&freqs, 4).unwrap();
        let long_sym = 0u16; // rarest symbol -> longest code
        assert!(b.code(long_sym).len() > 8);
        let symbols = vec![long_sym; 16]; // 2 units of 8 longest codes
        let (_, lens, breaking) = reduce_chunk::<u32>(&symbols, &b, 3);
        assert_eq!(breaking.len(), 2);
        assert!(lens.iter().all(|&l| l == 0));
    }

    #[test]
    fn words_are_left_aligned() {
        let b = book();
        if let Unit::Merged { word, len } = reduce_unit::<u32>(&[1], &b) {
            assert_eq!(len, 2);
            assert_eq!(word >> 30, 0b10);
            assert_eq!(word & 0x3FFF_FFFF, 0);
        } else {
            panic!();
        }
    }

    #[test]
    fn trace_fig1_shows_halving() {
        let b = book();
        let t = trace_fig1(&[0, 1, 0, 0, 1, 0, 0, 0], &b);
        assert_eq!(t.len(), 4); // 8, 4, 2, 1
        assert_eq!(t[0].len(), 8);
        assert_eq!(t[3].len(), 1);
        // Final merged string is the in-order concatenation.
        let expect: String =
            [0u16, 1, 0, 0, 1, 0, 0, 0].iter().map(|&s| b.code(s).to_bit_string()).collect();
        assert_eq!(t[3][0], expect);
    }
}
