//! Prefix-sum encoder — the Rahmani et al. baseline (Section III-B).
//!
//! A classical fine-grained scheme: (1) look up every symbol's codeword
//! length; (2) an exclusive parallel prefix sum over the lengths yields
//! every codeword's absolute bit offset; (3) all codewords are scattered
//! concurrently into the output words. Step 3 is `O(1)` depth on paper but
//! each few-bit codeword write touches one or two whole output words with
//! data-dependent alignment — the codeword-length-agnostic data movement
//! that caps this method at ~37 GB/s on the V100 for low-entropy data.
//!
//! The concurrent scatter is realized with atomic ORs (the hardware's CREW
//! behaviour the paper notes); the result is bit-identical to the serial
//! encoder.

use super::EncodedStream;
use crate::codebook::CanonicalCodebook;
use crate::error::Result;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Statistics for the GPU cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixSumStats {
    /// Symbols encoded.
    pub symbols: u64,
    /// Total scatter word-writes (each codeword touches 1-2 words).
    pub scatter_writes: u64,
    /// Output words.
    pub out_words: u64,
}

/// Encode via lengths → exclusive scan → concurrent scatter.
pub fn encode(
    symbols: &[u16],
    book: &CanonicalCodebook,
) -> Result<(EncodedStream, PrefixSumStats)> {
    // Phase 1: codeword lengths.
    let lens: Vec<Result<u32>> =
        symbols.par_iter().map(|&s| book.code_checked(s).map(|c| c.len())).collect();
    let lens: Result<Vec<u32>> = lens.into_iter().collect();
    let lens = lens?;

    // Phase 2: exclusive scan (bit offsets).
    let mut offsets = vec![0u64; symbols.len()];
    let mut acc = 0u64;
    for (o, &l) in offsets.iter_mut().zip(&lens) {
        *o = acc;
        acc += u64::from(l);
    }
    let total_bits = acc;

    // Phase 3: concurrent scatter with atomic OR into 32-bit cells.
    let n_words = (total_bits as usize).div_ceil(32);
    let words: Vec<AtomicU32> = (0..n_words).map(|_| AtomicU32::new(0)).collect();
    let scatter_writes: u64 = symbols
        .par_iter()
        .zip(offsets.par_iter())
        .map(|(&s, &off)| {
            let code = book.code(s);
            scatter_code(&words, off, code.bits(), code.len())
        })
        .sum();

    // Pack words (big-endian bit order) into bytes.
    let mut bytes = Vec::with_capacity(n_words * 4);
    for w in &words {
        bytes.extend_from_slice(&w.load(Ordering::Relaxed).to_be_bytes());
    }
    bytes.truncate((total_bits as usize).div_ceil(8));

    let stats =
        PrefixSumStats { symbols: symbols.len() as u64, scatter_writes, out_words: n_words as u64 };
    Ok((EncodedStream { bytes, bit_len: total_bits, num_symbols: symbols.len() }, stats))
}

/// OR `len` bits of `bits` into the stream at absolute bit offset `off`.
/// Returns the number of word-writes performed.
fn scatter_code(words: &[AtomicU32], off: u64, bits: u64, len: u32) -> u64 {
    let mut writes = 0u64;
    let mut rem = len;
    let mut pos = off;
    while rem > 0 {
        let word_idx = (pos / 32) as usize;
        let bit_in_word = (pos % 32) as u32;
        let room = 32 - bit_in_word;
        let take = rem.min(room);
        let field = ((bits >> (rem - take)) & ((1u64 << take) - 1)) as u32;
        words[word_idx].fetch_or(field << (room - take), Ordering::Relaxed);
        writes += 1;
        rem -= take;
        pos += u64::from(take);
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;

    fn setup(n: usize) -> (CanonicalCodebook, Vec<u16>) {
        let freqs = [60u64, 25, 10, 5];
        let book = codebook::parallel(&freqs, 2).unwrap();
        let syms: Vec<u16> =
            (0..n).map(|i| ((i as u64).wrapping_mul(2654435761) % 4) as u16).collect();
        (book, syms)
    }

    #[test]
    fn bit_identical_to_serial() {
        let (book, syms) = setup(20_000);
        let (stream, stats) = encode(&syms, &book).unwrap();
        let serial = super::super::serial::encode(&syms, &book).unwrap();
        assert_eq!(stream.bit_len, serial.bit_len);
        assert_eq!(stream.bytes, serial.bytes);
        assert!(stats.scatter_writes >= stats.symbols);
        assert_eq!(stats.out_words, stream.bit_len.div_ceil(32));
    }

    #[test]
    fn empty_input() {
        let (book, _) = setup(0);
        let (stream, stats) = encode(&[], &book).unwrap();
        assert_eq!(stream.bit_len, 0);
        assert!(stream.bytes.is_empty());
        assert_eq!(stats.scatter_writes, 0);
    }

    #[test]
    fn cross_word_codewords() {
        // Deep codes crossing word boundaries frequently.
        let lengths: Vec<u32> = (1..=20).chain([20]).collect();
        let book = crate::codebook::CanonicalCodebook::from_lengths(&lengths).unwrap();
        let syms: Vec<u16> = (0..500).map(|i| (i % 21) as u16).collect();
        let (stream, _) = encode(&syms, &book).unwrap();
        let serial = super::super::serial::encode(&syms, &book).unwrap();
        assert_eq!(stream.bytes, serial.bytes);
    }

    #[test]
    fn scatter_write_amplification_grows_with_entropy() {
        // Longer average codewords straddle more word boundaries.
        let (book_low, syms_low) = setup(10_000);
        let (_, s_low) = encode(&syms_low, &book_low).unwrap();
        let lengths: Vec<u32> = (1..=20).chain([20]).collect();
        let book_hi = crate::codebook::CanonicalCodebook::from_lengths(&lengths).unwrap();
        let syms_hi: Vec<u16> = (0..10_000).map(|i| (i % 21) as u16).collect();
        let (_, s_hi) = encode(&syms_hi, &book_hi).unwrap();
        let amp_low = s_low.scatter_writes as f64 / s_low.symbols as f64;
        let amp_hi = s_hi.scatter_writes as f64 / s_hi.symbols as f64;
        assert!(amp_hi > amp_low, "low {amp_low} hi {amp_hi}");
    }

    #[test]
    fn rejects_uncoded_symbol() {
        let book = codebook::parallel(&[1, 0, 1], 2).unwrap();
        assert!(encode(&[1], &book).is_err());
    }
}
