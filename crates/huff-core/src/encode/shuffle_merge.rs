//! SHUFFLE-merge (Section IV-C-b, Fig. 2).
//!
//! After REDUCE-merge a chunk holds `n = 2^s` typed data cells (words),
//! each containing one merged codeword left-aligned, plus a bit-length per
//! cell. SHUFFLE-merge performs `s` iterations; in iteration `i`, adjacent
//! groups of `2^(i-1)` words merge pairwise: the right group's bits are
//! appended immediately after the left group's last bit with a two-step
//! batch move — for each right-group word, the leading `ℓ◦` bits first
//! fill the left group's residual bits, and the trailing `ℓ•` bits land in
//! the next cell. The process is contention-free (each destination word is
//! written by the threads of exactly one right group) and finishes with a
//! dense bitstream inside the same `2^s`-cell span.

use super::Word;

/// Merge the right half of a `span`-word window onto its left half.
///
/// * `words[..]` is the window; the left group's bits occupy `left_bits`
///   starting at word 0, the right group's `right_bits` start at word
///   `span/2`.
/// * Returns the merged bit length (`left_bits + right_bits`).
#[inline]
pub fn merge_window<W: Word>(words: &mut [W], left_bits: u32, right_bits: u32) -> u32 {
    let span = words.len();
    debug_assert!(span.is_power_of_two() && span >= 2);
    let half = span / 2;
    let w = W::BITS;
    debug_assert!(left_bits as usize <= half * w as usize);
    debug_assert!(right_bits as usize <= half * w as usize);

    if right_bits == 0 {
        return left_bits;
    }

    let dst0 = (left_bits / w) as usize;
    let off = left_bits % w; // ℓ• of the left group's last cell
    let r_words = (right_bits as usize).div_ceil(w as usize);

    if off == 0 {
        // Aligned: plain word moves (dst <= src, ascending copy is safe).
        for j in 0..r_words {
            words[dst0 + j] = words[half + j];
        }
    } else {
        for j in 0..r_words {
            let src = words[half + j];
            // Step 1: leading bits fill the residual of the current cell.
            words[dst0 + j] |= src >> off;
            // Step 2: trailing bits go into the next cell. When the next
            // cell would fall outside the window, the spilled bits are
            // beyond `right_bits` and therefore zero.
            if dst0 + j + 1 < span {
                words[dst0 + j + 1] = src << (w - off);
            }
        }
    }

    let total = left_bits + right_bits;
    // Zero the now-stale cells past the merged payload so later
    // iterations' `|=` operations see clean zeros.
    let end_word = (total as usize).div_ceil(w as usize);
    for cell in words.iter_mut().take(half + r_words).skip(end_word) {
        *cell = W::ZERO;
    }
    // Clear any slack bits in the (possibly partial) last payload word that
    // step 2 may have spilled beyond `total`.
    let tail = total % w;
    if tail != 0 && end_word >= 1 {
        let keep_mask_shift = w - tail;
        let cellv = words[end_word - 1];
        words[end_word - 1] = (cellv >> keep_mask_shift) << keep_mask_shift;
    }
    total
}

/// Statistics of one chunk's shuffle, consumed by the GPU cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Iterations performed (`s`).
    pub iterations: u32,
    /// Total words moved across all iterations (read+write pairs).
    pub words_moved: u64,
}

/// Run all `s` shuffle iterations over a chunk of `2^s` cells with
/// per-cell bit lengths `lens` (breaking units contribute 0). Returns the
/// chunk's dense payload bit length and the shuffle statistics; on return
/// `words` holds the dense bitstream left-aligned at word 0.
pub fn shuffle_chunk<W: Word>(words: &mut [W], lens: &[u32]) -> (u64, ShuffleStats) {
    let n = words.len();
    assert!(n.is_power_of_two(), "chunk must hold a power-of-two cell count");
    assert_eq!(lens.len(), n);
    let mut group_bits: Vec<u32> = lens.to_vec();
    let mut stats = ShuffleStats::default();

    let mut span = 2usize;
    while span <= n {
        stats.iterations += 1;
        let groups = n / span;
        for g in 0..groups {
            let window = &mut words[g * span..(g + 1) * span];
            let left = group_bits[2 * g];
            let right = group_bits[2 * g + 1];
            stats.words_moved += u64::from(right.div_ceil(W::BITS));
            let merged = merge_window(window, left, right);
            group_bits[g] = merged;
        }
        group_bits.truncate(groups);
        span *= 2;
    }
    (u64::from(group_bits[0]), stats)
}

/// Render the Fig. 2 two-step batch move as a trace: the window's words in
/// binary before and after one merge.
pub fn trace_fig2(left_bits_str: &str, right_bits_str: &str) -> Vec<String> {
    fn pack(bits: &str) -> (Vec<u32>, u32) {
        let len = bits.len() as u32;
        let n_words = (bits.len()).div_ceil(32).max(1);
        let mut words = vec![0u32; n_words];
        for (i, c) in bits.chars().enumerate() {
            if c == '1' {
                words[i / 32] |= 1 << (31 - (i % 32));
            }
        }
        (words, len)
    }
    let (lw, ll) = pack(left_bits_str);
    let (rw, rl) = pack(right_bits_str);
    let half = lw.len().max(rw.len()).next_power_of_two();
    let mut window = vec![0u32; 2 * half];
    window[..lw.len()].copy_from_slice(&lw);
    window[half..half + rw.len()].copy_from_slice(&rw);

    let mut out = vec![format!("before: {:?}", dump(&window, half * 64))];
    let merged = merge_window(&mut window, ll, rl);
    out.push(format!("after : {:?} ({merged} bits)", dump(&window, merged as usize)));
    out
}

fn dump(words: &[u32], bits: usize) -> String {
    let mut s = String::new();
    for (i, w) in words.iter().enumerate() {
        for b in 0..32 {
            if i * 32 + b >= bits {
                return s;
            }
            s.push(if (w >> (31 - b)) & 1 == 1 { '1' } else { '0' });
        }
        s.push('|');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: extract `bits` bits starting at the window's origin as a
    /// string.
    fn bits_of<W: Word>(words: &[W], bits: u64) -> String {
        let mut s = String::with_capacity(bits as usize);
        for i in 0..bits {
            let word = words[(i / u64::from(W::BITS)) as usize];
            let bit = (word.to_u64() >> (u64::from(W::BITS) - 1 - (i % u64::from(W::BITS)))) & 1;
            s.push(if bit == 1 { '1' } else { '0' });
        }
        s
    }

    fn left_aligned_u32(bits: &str) -> (Vec<u32>, u32) {
        let mut w = vec![0u32; bits.len().div_ceil(32).max(1)];
        for (i, c) in bits.chars().enumerate() {
            if c == '1' {
                w[i / 32] |= 1 << (31 - (i % 32));
            }
        }
        (w, bits.len() as u32)
    }

    fn run_window(left: &str, right: &str, span: usize) -> String {
        let (lw, ll) = left_aligned_u32(left);
        let (rw, rl) = left_aligned_u32(right);
        let half = span / 2;
        let mut window = vec![0u32; span];
        window[..lw.len()].copy_from_slice(&lw);
        window[half..half + rw.len()].copy_from_slice(&rw);
        let total = merge_window(&mut window, ll, rl);
        assert_eq!(total as usize, left.len() + right.len());
        bits_of(&window, u64::from(total))
    }

    #[test]
    fn unaligned_append_small() {
        assert_eq!(run_window("101", "11", 2), "10111");
        assert_eq!(run_window("1", "0110", 2), "10110");
        assert_eq!(run_window("", "0110", 2), "0110");
        assert_eq!(run_window("0110", "", 2), "0110");
    }

    #[test]
    fn append_across_word_boundary() {
        // 30 + 5 bits: spill into second word.
        let left = "10".repeat(15); // 30 bits
        let right = "11011";
        let merged = run_window(&left, right, 2);
        assert_eq!(merged, format!("{left}{right}"));
    }

    #[test]
    fn aligned_append_exact_word() {
        let left = "1".repeat(32);
        let right = "01".repeat(8); // 16 bits
        let merged = run_window(&left, &right, 4);
        assert_eq!(merged, format!("{left}{right}"));
    }

    #[test]
    fn multi_word_right_group() {
        let left = "110";
        let right: String = (0..70).map(|i| if (i * 7) % 3 == 0 { '1' } else { '0' }).collect(); // 70 bits
        let merged = run_window(left, &right, 8);
        assert_eq!(merged, format!("{left}{right}"));
    }

    #[test]
    fn full_window_merge() {
        // Both halves completely full.
        let left = "10".repeat(32); // 64 bits = 2 words
        let right = "01".repeat(32);
        let merged = run_window(&left, &right, 4);
        assert_eq!(merged, format!("{left}{right}"));
    }

    #[test]
    fn shuffle_chunk_produces_concatenation() {
        // 8 cells with assorted lengths; expect in-order concatenation.
        let pieces = ["101", "", "1", "0011", "11111", "0", "10", ""];
        let mut words = vec![0u32; 8];
        let mut lens = [0u32; 8];
        for (i, p) in pieces.iter().enumerate() {
            let (w, l) = left_aligned_u32(p);
            words[i] = w[0];
            lens[i] = l;
        }
        let (total, stats) = shuffle_chunk(&mut words, &lens);
        let expect: String = pieces.concat();
        assert_eq!(total, expect.len() as u64);
        assert_eq!(bits_of(&words, total), expect);
        assert_eq!(stats.iterations, 3);
    }

    #[test]
    fn shuffle_chunk_u64_words() {
        let pieces = ["1011", "110", "", "1"];
        let mut words = vec![0u64; 4];
        let mut lens = [0u32; 4];
        for (i, p) in pieces.iter().enumerate() {
            let mut w = 0u64;
            for (j, c) in p.chars().enumerate() {
                if c == '1' {
                    w |= 1 << (63 - j);
                }
            }
            words[i] = w;
            lens[i] = p.len() as u32;
        }
        let (total, _) = shuffle_chunk(&mut words, &lens);
        assert_eq!(bits_of(&words, total), pieces.concat());
    }

    #[test]
    fn shuffle_chunk_all_empty() {
        let mut words = vec![0u32; 4];
        let (total, _) = shuffle_chunk(&mut words, &[0, 0, 0, 0]);
        assert_eq!(total, 0);
    }

    #[test]
    fn shuffle_chunk_single_cell_full() {
        let mut words = vec![u32::MAX, 0];
        let (total, _) = shuffle_chunk(&mut words, &[32, 0]);
        assert_eq!(total, 32);
        assert_eq!(words[0], u32::MAX);
    }

    #[test]
    fn dense_packing_randomized() {
        // Pseudo-random lengths in [0, 32]; verify dense concatenation for
        // a realistic 128-cell chunk.
        let mut state = 12345u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let n = 128usize;
        let mut words = vec![0u32; n];
        let mut lens = vec![0u32; n];
        let mut expect = String::new();
        for i in 0..n {
            let l = (rand() % 33) as u32;
            let payload = rand() & ((1u64 << l.max(1)) - 1);
            let payload = if l == 0 { 0 } else { payload & ((1u64 << l) - 1) };
            lens[i] = l;
            if l > 0 {
                words[i] = (payload as u32) << (32 - l);
                for b in 0..l {
                    expect.push(if (payload >> (l - 1 - b)) & 1 == 1 { '1' } else { '0' });
                }
            }
        }
        let (total, stats) = shuffle_chunk(&mut words, &lens);
        assert_eq!(total as usize, expect.len());
        assert_eq!(bits_of(&words, total), expect);
        assert_eq!(stats.iterations, 7);
        assert!(stats.words_moved > 0);
    }

    #[test]
    fn trace_fig2_produces_before_after() {
        let t = trace_fig2("1010110", "1100");
        assert_eq!(t.len(), 2);
        assert!(t[1].contains("11 bits"));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_chunk_rejected() {
        let mut words = vec![0u32; 3];
        let _ = shuffle_chunk(&mut words, &[0, 0, 0]);
    }
}
