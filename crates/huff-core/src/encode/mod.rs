//! Stage 4 of the pipeline: encoding.
//!
//! Implementations:
//! * [`serial`] — single-thread bitstream append (the SZ CPU baseline);
//! * [`multithread`] — chunked multicore CPU encoder (Table VI);
//! * [`coarse`] — cuSZ-style coarse-grained GPU encoder (thread-per-chunk,
//!   non-coalesced — the baseline "ours" beats in Table V);
//! * [`prefix_sum`] — Rahmani et al.'s prefix-sum GPU encoder
//!   (Section III-B's 37 GB/s baseline);
//! * [`reduce_shuffle`] — the paper's contribution:
//!   `ReduceShuffleMerge<M, r>` built from [`reduce_merge`] and
//!   [`shuffle_merge`], with breaking-point handling;
//! * [`gpu`] — the device-launched pipeline charging modeled time.

pub mod coarse;
pub mod gpu;
pub mod multithread;
pub mod prefix_sum;
pub mod reduce_merge;
pub mod reduce_shuffle;
pub mod serial;
pub mod shuffle_merge;

use crate::codebook::CanonicalCodebook;
use crate::entropy;

pub use reduce_shuffle::BreakingStrategy;
use serde::{Deserialize, Serialize};

/// A representative word for the merge phases: the typed data cell whose
/// width bounds a merged codeword before it *breaks*. The paper uses
/// `uint32_t`; `u64` is the wider-word ablation flagged as future work.
pub trait Word:
    Copy
    + Default
    + Send
    + Sync
    + Eq
    + std::fmt::Debug
    + std::ops::BitOr<Output = Self>
    + std::ops::BitOrAssign
    + std::ops::Shl<u32, Output = Self>
    + std::ops::Shr<u32, Output = Self>
{
    /// Width in bits.
    const BITS: u32;
    /// The zero word.
    const ZERO: Self;
    /// Truncating conversion from the low bits of a `u64`.
    fn from_u64(v: u64) -> Self;
    /// Widening conversion.
    fn to_u64(self) -> u64;
}

impl Word for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;
    #[inline]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
    #[inline]
    fn to_u64(self) -> u64 {
        u64::from(self)
    }
}

impl Word for u64 {
    const BITS: u32 = 64;
    const ZERO: Self = 0;
    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }
    #[inline]
    fn to_u64(self) -> u64 {
        self
    }
}

/// Configuration of the `ReduceShuffleMerge<M, r>` encoding kernel
/// (Section IV-C interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeConfig {
    /// Chunk magnitude `M`: `2^M` symbols per chunk.
    pub magnitude: u32,
    /// Reduction factor `r`: each thread merges `2^r` codewords; `s = M-r`
    /// shuffle iterations follow.
    pub reduction: u32,
}

impl MergeConfig {
    /// The paper's preferred configuration for its evaluation: `M = 10`,
    /// `r` chosen per dataset (Table II picks `M=10, r=3` for Nyx-Quant).
    pub fn new(magnitude: u32, reduction: u32) -> Self {
        assert!((2..=24).contains(&magnitude), "magnitude out of range");
        assert!(
            reduction >= 1 && reduction < magnitude,
            "reduction factor must leave at least one shuffle iteration"
        );
        MergeConfig { magnitude, reduction }
    }

    /// Pick `r` automatically from the histogram (the Fig. 3 rule) for a
    /// given word width.
    pub fn auto<W: Word>(magnitude: u32, freqs: &[u64], book: &CanonicalCodebook) -> Self {
        let avg = book.average_bitwidth(freqs);
        let r = entropy::decide_reduction_factor(avg, W::BITS, magnitude);
        MergeConfig::new(magnitude, r)
    }

    /// Symbols per chunk (`N = 2^M`).
    pub fn chunk_symbols(&self) -> usize {
        1usize << self.magnitude
    }

    /// Symbols per reduce unit (`2^r`).
    pub fn unit_symbols(&self) -> usize {
        1usize << self.reduction
    }

    /// Reduce units per chunk (`n = 2^s`).
    pub fn units_per_chunk(&self) -> usize {
        1usize << (self.magnitude - self.reduction)
    }

    /// Shuffle iterations (`s = M - r`).
    pub fn shuffle_iters(&self) -> u32 {
        self.magnitude - self.reduction
    }
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig::new(10, 3)
    }
}

/// A dense encoded bitstream (serial/multithread/prefix-sum encoders).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedStream {
    /// Bit-packed payload, MSB-first.
    pub bytes: Vec<u8>,
    /// Exact payload length in bits.
    pub bit_len: u64,
    /// Number of encoded symbols.
    pub num_symbols: usize,
}

impl EncodedStream {
    /// Compression ratio vs `symbol_bits`-wide raw symbols.
    pub fn compression_ratio(&self, symbol_bits: u32) -> f64 {
        if self.bit_len == 0 {
            return f64::INFINITY;
        }
        (self.num_symbols as f64 * f64::from(symbol_bits)) / self.bit_len as f64
    }
}

/// The chunked output of the reduce-shuffle (and coarse) encoders:
/// per-chunk dense substreams coalesced into one bit-packed payload, plus
/// the breaking-unit sidecar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkedStream {
    /// The merge configuration the stream was produced with.
    pub config: MergeConfig,
    /// Bit-packed payload (all chunks, bit-contiguous).
    pub bytes: Vec<u8>,
    /// Per-chunk payload bit lengths ("get blockwise code len").
    pub chunk_bit_lens: Vec<u64>,
    /// Exclusive prefix sum of `chunk_bit_lens` — each chunk's bit offset.
    pub chunk_bit_offsets: Vec<u64>,
    /// Total payload bits.
    pub total_bits: u64,
    /// Number of encoded symbols (outlier symbols included).
    pub num_symbols: usize,
    /// Breaking units, stored out-of-band (dense-to-sparse).
    pub outliers: crate::sparse::SparseOutliers,
}

impl ChunkedStream {
    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunk_bit_lens.len()
    }

    /// Fraction of input symbols belonging to breaking units ("breaking" in
    /// Table II/V).
    pub fn breaking_fraction(&self) -> f64 {
        if self.num_symbols == 0 {
            return 0.0;
        }
        self.outliers.total_symbols() as f64 / self.num_symbols as f64
    }

    /// Compression ratio vs `symbol_bits`-wide raw symbols, counting the
    /// outlier sidecar against the output size.
    pub fn compression_ratio(&self, symbol_bits: u32) -> f64 {
        let out_bits =
            self.total_bits + self.outliers.storage_bits() + 64 * self.chunk_bit_lens.len() as u64;
        if out_bits == 0 {
            return f64::INFINITY;
        }
        (self.num_symbols as f64 * f64::from(symbol_bits)) / out_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_config_arithmetic() {
        let c = MergeConfig::new(10, 3);
        assert_eq!(c.chunk_symbols(), 1024);
        assert_eq!(c.unit_symbols(), 8);
        assert_eq!(c.units_per_chunk(), 128);
        assert_eq!(c.shuffle_iters(), 7);
    }

    #[test]
    fn default_is_paper_choice() {
        let c = MergeConfig::default();
        assert_eq!((c.magnitude, c.reduction), (10, 3));
    }

    #[test]
    #[should_panic(expected = "at least one shuffle")]
    fn reduction_must_leave_shuffle() {
        let _ = MergeConfig::new(4, 4);
    }

    #[test]
    fn word_trait_widths() {
        assert_eq!(<u32 as Word>::BITS, 32);
        assert_eq!(<u64 as Word>::BITS, 64);
        assert_eq!(u32::from_u64(0x1_0000_0005), 5);
        assert_eq!(5u32.to_u64(), 5);
    }

    #[test]
    fn encoded_stream_ratio() {
        let s = EncodedStream { bytes: vec![0; 13], bit_len: 100, num_symbols: 50 };
        assert!((s.compression_ratio(8) - 4.0).abs() < 1e-12);
    }
}
