//! Serial CPU encoder — the SZ baseline.
//!
//! One pass, one thread: look up each symbol's codeword and append it to a
//! dense MSB-first bitstream.

use super::EncodedStream;
use crate::bitstream::BitWriter;
use crate::codebook::CanonicalCodebook;
use crate::error::Result;

/// Encode `symbols` serially into a dense bitstream.
pub fn encode(symbols: &[u16], book: &CanonicalCodebook) -> Result<EncodedStream> {
    let mut w = BitWriter::with_capacity_bits(symbols.len() * 4);
    for &s in symbols {
        let code = book.code_checked(s)?;
        w.push_code(code);
    }
    let (bytes, bit_len) = w.finish();
    Ok(EncodedStream { bytes, bit_len, num_symbols: symbols.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::error::HuffError;

    #[test]
    fn encodes_known_pattern() {
        // freqs 8,4,2,2 -> lengths 1,2,3,3; same-length codes are assigned
        // in ascending-symbol order: 0:"0", 1:"10", 2:"110", 3:"111".
        let b = codebook::parallel(&[8, 4, 2, 2], 2).unwrap();
        assert_eq!(b.code(2).to_bit_string(), "110");
        assert_eq!(b.code(3).to_bit_string(), "111");
        let s = encode(&[0, 1, 2, 3, 0], &b).unwrap();
        assert_eq!(s.bit_len, 1 + 2 + 3 + 3 + 1);
        // "0" "10" "110" "111" "0" -> 0101 1011 | 10 padded.
        assert_eq!(s.bytes, vec![0b0101_1011, 0b1000_0000]);
    }

    #[test]
    fn empty_input() {
        let b = codebook::parallel(&[1, 1], 2).unwrap();
        let s = encode(&[], &b).unwrap();
        assert_eq!(s.bit_len, 0);
        assert!(s.bytes.is_empty());
        assert!(s.compression_ratio(8).is_infinite());
    }

    #[test]
    fn rejects_uncoded_symbol() {
        let b = codebook::parallel(&[1, 0, 1], 2).unwrap();
        assert!(matches!(encode(&[1], &b), Err(HuffError::MissingCodeword(1))));
    }

    #[test]
    fn rejects_out_of_range_symbol() {
        let b = codebook::parallel(&[1, 1], 2).unwrap();
        assert!(matches!(encode(&[5], &b), Err(HuffError::SymbolOutOfRange { .. })));
    }

    #[test]
    fn bit_len_equals_weighted_sum() {
        let freqs = [10u64, 20, 30, 40];
        let b = codebook::parallel(&freqs, 2).unwrap();
        let data: Vec<u16> = freqs
            .iter()
            .enumerate()
            .flat_map(|(s, &f)| std::iter::repeat_n(s as u16, f as usize))
            .collect();
        let s = encode(&data, &b).unwrap();
        let expect: u64 =
            freqs.iter().enumerate().map(|(sym, &f)| f * u64::from(b.code(sym as u16).len())).sum();
        assert_eq!(s.bit_len, expect);
    }
}
