//! Multithreaded CPU encoder (Table VI).
//!
//! Coarse-grained chunking, the way the paper's OpenMP encoder (and SZ's
//! OpenMP mode) works: each worker serially encodes a contiguous chunk into
//! its own buffer; buffers are then concatenated with bit-precise appends.
//! The output is *bit-identical* to the serial encoder's.

use super::EncodedStream;
use crate::bitstream::BitWriter;
use crate::codebook::CanonicalCodebook;
use crate::error::Result;
use rayon::prelude::*;

/// Encode with up to `threads` workers over `chunk_symbols`-sized chunks.
pub fn encode(
    symbols: &[u16],
    book: &CanonicalCodebook,
    threads: usize,
    chunk_symbols: usize,
) -> Result<EncodedStream> {
    let threads = threads.max(1);
    if threads == 1 || symbols.len() <= chunk_symbols {
        return super::serial::encode(symbols, book);
    }
    let parts: Vec<Result<BitWriter>> = symbols
        .par_chunks(chunk_symbols.max(1))
        .map(|chunk| {
            let mut w = BitWriter::with_capacity_bits(chunk.len() * 4);
            for &s in chunk {
                w.push_code(book.code_checked(s)?);
            }
            Ok(w)
        })
        .collect();

    let mut out = BitWriter::with_capacity_bits(symbols.len() * 4);
    for part in parts {
        out.append(&part?);
    }
    let (bytes, bit_len) = out.finish();
    Ok(EncodedStream { bytes, bit_len, num_symbols: symbols.len() })
}

/// Run [`encode`] inside a dedicated pool of exactly `threads` workers —
/// the Table VI core sweep.
pub fn encode_with_pool(
    symbols: &[u16],
    book: &CanonicalCodebook,
    threads: usize,
    chunk_symbols: usize,
) -> Result<EncodedStream> {
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(threads.max(1)).build().expect("thread pool");
    pool.install(|| encode(symbols, book, threads, chunk_symbols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;

    fn setup(n: usize) -> (CanonicalCodebook, Vec<u16>) {
        let freqs = [50u64, 25, 13, 12];
        let book = codebook::parallel(&freqs, 2).unwrap();
        let syms: Vec<u16> =
            (0..n).map(|i| ((i as u64).wrapping_mul(2654435761) % 4) as u16).collect();
        (book, syms)
    }

    #[test]
    fn bit_identical_to_serial() {
        let (book, syms) = setup(50_000);
        let serial = super::super::serial::encode(&syms, &book).unwrap();
        for threads in [2, 4, 8] {
            let mt = encode(&syms, &book, threads, 4096).unwrap();
            assert_eq!(mt.bit_len, serial.bit_len, "threads={threads}");
            assert_eq!(mt.bytes, serial.bytes, "threads={threads}");
        }
    }

    #[test]
    fn odd_chunk_sizes() {
        let (book, syms) = setup(10_001);
        let serial = super::super::serial::encode(&syms, &book).unwrap();
        for chunk in [1000, 1023, 3333] {
            let mt = encode(&syms, &book, 4, chunk).unwrap();
            assert_eq!(mt.bytes, serial.bytes, "chunk={chunk}");
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let (book, syms) = setup(1000);
        let a = encode(&syms, &book, 1, 128).unwrap();
        let b = super::super::serial::encode(&syms, &book).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_propagates_from_worker() {
        let book = codebook::parallel(&[1, 1], 2).unwrap();
        let syms = vec![0u16; 10_000].into_iter().chain([9u16]).collect::<Vec<_>>();
        assert!(encode(&syms, &book, 4, 1024).is_err());
    }

    #[test]
    fn pooled_agrees() {
        let (book, syms) = setup(20_000);
        let a = encode(&syms, &book, 4, 2048).unwrap();
        let b = encode_with_pool(&syms, &book, 4, 2048).unwrap();
        assert_eq!(a, b);
    }
}
