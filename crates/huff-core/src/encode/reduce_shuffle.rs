//! The complete `ReduceShuffleMerge<M, r>` encoder (Section IV-C-c).
//!
//! Per chunk of `N = 2^M` symbols: REDUCE-merge folds `2^r` codewords per
//! unit (breaking units are filtered into the sparse sidecar), SHUFFLE-merge
//! densifies the `2^s` units into a contiguous bitstream, and the
//! coalescing-copy stage concatenates chunk substreams at bit offsets
//! computed by a prefix sum over the blockwise code lengths.
//!
//! Breaking-point strategies (the paper's future work is the second):
//! * [`BreakingStrategy::SparseSidecar`] — the paper's approach: filter the
//!   unit out (it contributes zero bits) and store its raw symbols
//!   out-of-band via dense-to-sparse conversion.
//! * [`BreakingStrategy::WidenWord`] — re-encode the *whole chunk* with a
//!   64-bit representative word, halving the reduce parallelism for that
//!   chunk but keeping every codeword in-band.

use super::reduce_merge::reduce_chunk;
use super::shuffle_merge::{shuffle_chunk, ShuffleStats};
use super::{ChunkedStream, MergeConfig, Word};
use crate::bitstream::BitWriter;
use crate::codebook::CanonicalCodebook;
use crate::error::Result;
use crate::sparse::SparseOutliers;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How to handle units whose merged codeword exceeds the word width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BreakingStrategy {
    /// Filter breaking units out and store raw symbols sparsely (paper).
    #[default]
    SparseSidecar,
    /// Re-encode affected chunks with a 64-bit word (future-work ablation).
    WidenWord,
}

/// One encoded chunk before coalescing.
///
/// Borrows the input: breaking units reference their raw symbols in place
/// rather than cloning them (the backtrace kernel touches every unit, so a
/// per-unit allocation here was measurable on low-entropy inputs).
#[derive(Debug, Clone)]
pub struct EncodedChunk<'a> {
    /// Dense payload words (u32), left-aligned.
    pub words: Vec<u32>,
    /// Payload bits.
    pub bit_len: u64,
    /// Local breaking-unit indices with their raw symbols, borrowed from
    /// the chunk's input slice.
    pub breaking: Vec<(u32, &'a [u16])>,
    /// Shuffle statistics (for the cost model).
    pub shuffle: ShuffleStats,
}

/// Encode one chunk with word type `W`. `symbols.len() <= 2^M`.
pub fn encode_chunk<'a, W: Word>(
    symbols: &'a [u16],
    book: &CanonicalCodebook,
    config: MergeConfig,
) -> EncodedChunk<'a> {
    let (words_w, mut lens, breaking_idx) = reduce_chunk::<W>(symbols, book, config.reduction);
    // Pad the unit arrays to the power-of-two cell count SHUFFLE needs.
    let cells = words_w.len().next_power_of_two().max(2);
    let mut words = vec![W::ZERO; cells];
    words[..words_w.len()].copy_from_slice(&words_w);
    lens.resize(cells, 0);

    let (bit_len, shuffle) = shuffle_chunk::<W>(&mut words, &lens);

    // Repack into u32 payload cells regardless of W (the coalescing stage
    // and the decoder work on a single layout).
    let words32: Vec<u32> = if W::BITS == 32 {
        words.iter().map(|w| w.to_u64() as u32).collect()
    } else {
        words
            .iter()
            .flat_map(|w| {
                let v = w.to_u64();
                [(v >> 32) as u32, v as u32]
            })
            .collect()
    };

    let unit_size = config.unit_symbols();
    let breaking = breaking_idx
        .into_iter()
        .map(|u| {
            let lo = u as usize * unit_size;
            let hi = (lo + unit_size).min(symbols.len());
            (u, &symbols[lo..hi])
        })
        .collect();

    EncodedChunk { words: words32, bit_len, breaking, shuffle }
}

/// Encode `symbols` into a [`ChunkedStream`] using the reduce-shuffle
/// scheme. Chunks are processed in parallel (each maps to a thread block on
/// the device); the final coalescing pass concatenates them at bit offsets.
pub fn encode(
    symbols: &[u16],
    book: &CanonicalCodebook,
    config: MergeConfig,
    strategy: BreakingStrategy,
) -> Result<ChunkedStream> {
    let chunk_syms = config.chunk_symbols();
    let chunks: Vec<EncodedChunk<'_>> = symbols
        .par_chunks(chunk_syms.max(1))
        .map(|c| {
            let first = encode_chunk::<u32>(c, book, config);
            match strategy {
                BreakingStrategy::SparseSidecar => first,
                BreakingStrategy::WidenWord if first.breaking.is_empty() => first,
                BreakingStrategy::WidenWord => encode_chunk::<u64>(c, book, config),
            }
        })
        .collect();

    assemble(symbols.len(), &chunks, config)
}

/// Coalesce per-chunk payloads into the final stream ("get blockwise code
/// len" → prefix sum → "coalescing copy" in Table I).
pub fn assemble(
    num_symbols: usize,
    chunks: &[EncodedChunk<'_>],
    config: MergeConfig,
) -> Result<ChunkedStream> {
    let chunk_bit_lens: Vec<u64> = chunks.iter().map(|c| c.bit_len).collect();
    let mut chunk_bit_offsets = Vec::with_capacity(chunks.len());
    let mut acc = 0u64;
    for &l in &chunk_bit_lens {
        chunk_bit_offsets.push(acc);
        acc += l;
    }
    let total_bits = acc;

    let mut writer = BitWriter::with_capacity_bits(total_bits as usize);
    for c in chunks {
        let mut remaining = c.bit_len;
        for &w in &c.words {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(32) as u32;
            writer.push_bits(u64::from(w) >> (32 - take), take);
            remaining -= u64::from(take);
        }
    }
    let (bytes, written) = writer.finish();
    debug_assert_eq!(written, total_bits);

    let units_per_chunk = config.units_per_chunk() as u64;
    let mut outliers = SparseOutliers::new();
    for (ci, c) in chunks.iter().enumerate() {
        for (u, syms) in &c.breaking {
            outliers.push(ci as u64 * units_per_chunk + u64::from(*u), syms);
        }
    }

    Ok(ChunkedStream {
        config,
        bytes,
        chunk_bit_lens,
        chunk_bit_offsets,
        total_bits,
        num_symbols,
        outliers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::decode;

    fn book4() -> CanonicalCodebook {
        codebook::parallel(&[8, 4, 2, 2], 2).unwrap()
    }

    fn symbols(n: usize) -> Vec<u16> {
        // Distribution roughly matching the codebook's freqs 8:4:2:2.
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2654435761) % 16;
                match x {
                    0..=7 => 0u16,
                    8..=11 => 1,
                    12..=13 => 2,
                    _ => 3,
                }
            })
            .collect()
    }

    #[test]
    fn stream_bits_match_serial_concatenation() {
        let b = book4();
        let syms = symbols(5000);
        let stream =
            encode(&syms, &b, MergeConfig::new(8, 2), BreakingStrategy::SparseSidecar).unwrap();
        assert!(stream.outliers.is_empty());
        // Serial reference: concatenate every codeword.
        let serial = super::super::serial::encode(&syms, &b).unwrap();
        assert_eq!(stream.total_bits, serial.bit_len);
        assert_eq!(stream.bytes, serial.bytes);
    }

    #[test]
    fn roundtrip_via_chunked_decoder() {
        let b = book4();
        let syms = symbols(3000);
        for (m, r) in [(8, 2), (10, 3), (6, 1), (10, 4)] {
            let stream =
                encode(&syms, &b, MergeConfig::new(m, r), BreakingStrategy::SparseSidecar).unwrap();
            let decoded = decode::chunked::decode(&stream, &b).unwrap();
            assert_eq!(decoded, syms, "M={m} r={r}");
        }
    }

    #[test]
    fn partial_tail_chunk_roundtrips() {
        let b = book4();
        for n in [1usize, 7, 255, 256, 257, 1023] {
            let syms = symbols(n);
            let stream =
                encode(&syms, &b, MergeConfig::new(8, 2), BreakingStrategy::SparseSidecar).unwrap();
            let decoded = decode::chunked::decode(&stream, &b).unwrap();
            assert_eq!(decoded, syms, "n={n}");
        }
    }

    #[test]
    fn empty_input() {
        let b = book4();
        let stream =
            encode(&[], &b, MergeConfig::default(), BreakingStrategy::SparseSidecar).unwrap();
        assert_eq!(stream.total_bits, 0);
        assert_eq!(stream.num_chunks(), 0);
        let decoded = decode::chunked::decode(&stream, &b).unwrap();
        assert!(decoded.is_empty());
    }

    fn skewed_book() -> (CanonicalCodebook, Vec<u16>) {
        // Codeword lengths 1..12 (complete code): a burst of four 12-bit
        // codes inside a 16-symbol unit gives 4*12 + 12*1 = 60 bits —
        // breaking a u32 word but fitting a u64 one.
        let lengths = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 12];
        let book = CanonicalCodebook::from_lengths(&lengths).unwrap();
        let syms: Vec<u16> = (0..4096usize).map(|i| if i % 512 < 4 { 12u16 } else { 0 }).collect();
        (book, syms)
    }

    #[test]
    fn breaking_units_roundtrip_via_sidecar() {
        let (book, syms) = skewed_book();
        assert_eq!(book.code(12).len(), 12);
        let stream =
            encode(&syms, &book, MergeConfig::new(8, 4), BreakingStrategy::SparseSidecar).unwrap();
        assert!(!stream.outliers.is_empty(), "expected breaking units");
        assert!(stream.breaking_fraction() > 0.0);
        let decoded = decode::chunked::decode(&stream, &book).unwrap();
        assert_eq!(decoded, syms);
    }

    #[test]
    fn widen_word_strategy_avoids_sidecar() {
        let (book, syms) = skewed_book();
        let stream =
            encode(&syms, &book, MergeConfig::new(8, 4), BreakingStrategy::WidenWord).unwrap();
        assert!(stream.outliers.is_empty(), "wide word should absorb breaking units");
        let decoded = decode::chunked::decode(&stream, &book).unwrap();
        assert_eq!(decoded, syms);
    }

    #[test]
    fn compression_ratio_reflects_entropy() {
        let b = book4();
        let syms = symbols(100_000);
        let stream =
            encode(&syms, &b, MergeConfig::default(), BreakingStrategy::SparseSidecar).unwrap();
        let cr = stream.compression_ratio(16);
        // avg bits = 8/16*1 + 4/16*2 + 4/16*3 = 1.75 → ratio vs 16-bit raw ≈ 9.1.
        assert!(cr > 7.0 && cr < 10.0, "ratio {cr}");
    }

    #[test]
    fn offsets_are_prefix_sums() {
        let b = book4();
        let syms = symbols(4096);
        let stream =
            encode(&syms, &b, MergeConfig::new(8, 2), BreakingStrategy::SparseSidecar).unwrap();
        let mut acc = 0;
        for (off, len) in stream.chunk_bit_offsets.iter().zip(&stream.chunk_bit_lens) {
            assert_eq!(*off, acc);
            acc += len;
        }
        assert_eq!(acc, stream.total_bits);
    }
}
