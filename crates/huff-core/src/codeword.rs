//! Packed variable-length codewords and the MERGE operator.
//!
//! A [`Codeword`] is up to 64 bits, stored right-aligned (the last bit of
//! the code is the least-significant bit of `bits`). The paper's encoding
//! stage is built on one operator (Section IV-C):
//!
//! ```text
//! MERGE((a,l)_2k, (a,l)_2k+1) = (a_2k ⊕ a_2k+1, l_2k + l_2k+1)
//! ```
//!
//! where `⊕` concatenates the right operand's bits after the left's. The
//! operator is associative but **not commutative** — encoded symbols must
//! keep their original order.

use crate::error::{HuffError, Result};
use serde::{Deserialize, Serialize};

/// Maximum representable codeword (or merged-codeword) length in bits.
pub const MAX_CODE_BITS: u32 = 64;

/// A prefix-code codeword (or a merged run of codewords), right-aligned in
/// a `u64`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Codeword {
    bits: u64,
    len: u32,
}

impl Codeword {
    /// The empty codeword (identity of MERGE).
    pub const EMPTY: Codeword = Codeword { bits: 0, len: 0 };

    /// A codeword from right-aligned bits and a length.
    ///
    /// # Panics
    /// Panics if `len > 64` or if `bits` has set bits above `len`.
    pub fn new(bits: u64, len: u32) -> Self {
        assert!(len <= MAX_CODE_BITS, "codeword length {len} > {MAX_CODE_BITS}");
        if len < 64 {
            assert!(bits >> len == 0, "bits 0x{bits:x} wider than declared length {len}");
        }
        Codeword { bits, len }
    }

    /// Fallible constructor for lengths that may exceed the representable
    /// maximum (pathological skewed histograms).
    pub fn try_new(bits: u64, len: u32) -> Result<Self> {
        if len > MAX_CODE_BITS {
            return Err(HuffError::CodewordTooLong { len, max: MAX_CODE_BITS });
        }
        Ok(Codeword::new(bits, len))
    }

    /// Right-aligned bit pattern.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Length in bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True for the zero-length codeword.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The MERGE operator: concatenate `rhs` after `self`. Returns `None`
    /// if the result would exceed 64 bits — the *breaking* condition the
    /// encoder must handle out-of-band.
    #[inline]
    pub fn merge(&self, rhs: Codeword) -> Option<Codeword> {
        let len = self.len + rhs.len;
        if len > MAX_CODE_BITS {
            return None;
        }
        // Shift by 64 is UB-adjacent; rhs.len == 64 implies self is empty.
        let bits = if rhs.len == 64 { rhs.bits } else { (self.bits << rhs.len) | rhs.bits };
        Some(Codeword { bits, len })
    }

    /// The first (most significant) bit, if any.
    pub fn leading_bit(&self) -> Option<bool> {
        if self.len == 0 {
            None
        } else {
            Some((self.bits >> (self.len - 1)) & 1 == 1)
        }
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Codeword) -> bool {
        if self.len > other.len {
            return false;
        }
        if self.len == 0 {
            return true;
        }
        (other.bits >> (other.len - self.len)) == self.bits
    }

    /// Render MSB-first as a `0`/`1` string (for traces and tests).
    pub fn to_bit_string(&self) -> String {
        (0..self.len).rev().map(|i| if (self.bits >> i) & 1 == 1 { '1' } else { '0' }).collect()
    }

    /// Parse an MSB-first `0`/`1` string.
    pub fn from_bit_string(s: &str) -> Self {
        let mut bits = 0u64;
        let mut len = 0u32;
        for c in s.chars() {
            match c {
                '0' => {
                    bits <<= 1;
                    len += 1;
                }
                '1' => {
                    bits = (bits << 1) | 1;
                    len += 1;
                }
                _ => panic!("invalid bit character {c:?}"),
            }
        }
        Codeword::new(bits, len)
    }
}

impl std::fmt::Display for Codeword {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

/// Fold a slice of codewords with MERGE, preserving order. Returns `None`
/// on overflow (breaking).
pub fn merge_all(codes: &[Codeword]) -> Option<Codeword> {
    let mut acc = Codeword::EMPTY;
    for &c in codes {
        acc = acc.merge(c)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let c = Codeword::new(0b101, 3);
        assert_eq!(c.bits(), 5);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(Codeword::EMPTY.is_empty());
    }

    #[test]
    #[should_panic(expected = "wider than declared length")]
    fn overwide_bits_panic() {
        let _ = Codeword::new(0b100, 2);
    }

    #[test]
    fn try_new_rejects_long() {
        assert!(matches!(
            Codeword::try_new(0, 65),
            Err(HuffError::CodewordTooLong { len: 65, .. })
        ));
        assert!(Codeword::try_new(u64::MAX, 64).is_ok());
    }

    #[test]
    fn merge_concatenates_in_order() {
        let a = Codeword::from_bit_string("10");
        let b = Codeword::from_bit_string("011");
        let m = a.merge(b).unwrap();
        assert_eq!(m.to_bit_string(), "10011");
        // Not commutative.
        let m2 = b.merge(a).unwrap();
        assert_eq!(m2.to_bit_string(), "01110");
        assert_ne!(m, m2);
    }

    #[test]
    fn merge_identity() {
        let a = Codeword::from_bit_string("110");
        assert_eq!(a.merge(Codeword::EMPTY).unwrap(), a);
        assert_eq!(Codeword::EMPTY.merge(a).unwrap(), a);
    }

    #[test]
    fn merge_overflow_is_breaking() {
        let a = Codeword::new(u64::MAX >> 2, 62);
        let b = Codeword::new(0b111, 3);
        assert!(a.merge(b).is_none());
        assert!(a.merge(Codeword::new(0b11, 2)).is_some());
    }

    #[test]
    fn merge_full_width_rhs() {
        let b = Codeword::new(u64::MAX, 64);
        assert_eq!(Codeword::EMPTY.merge(b).unwrap(), b);
    }

    #[test]
    fn merge_all_folds_in_order() {
        let codes: Vec<Codeword> =
            ["1", "01", "001", "11"].iter().map(|s| Codeword::from_bit_string(s)).collect();
        let m = merge_all(&codes).unwrap();
        assert_eq!(m.to_bit_string(), "10100111");
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn merge_all_detects_break() {
        let codes = vec![Codeword::new(0, 33); 2];
        assert!(merge_all(&codes).is_none());
    }

    #[test]
    fn prefix_relation() {
        let a = Codeword::from_bit_string("10");
        let b = Codeword::from_bit_string("101");
        let c = Codeword::from_bit_string("11");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(!c.is_prefix_of(&b));
        assert!(Codeword::EMPTY.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
    }

    #[test]
    fn leading_bit() {
        assert_eq!(Codeword::from_bit_string("10").leading_bit(), Some(true));
        assert_eq!(Codeword::from_bit_string("01").leading_bit(), Some(false));
        assert_eq!(Codeword::EMPTY.leading_bit(), None);
    }

    #[test]
    fn bit_string_roundtrip() {
        for s in ["", "0", "1", "0101100111000", "1111111111111111"] {
            assert_eq!(Codeword::from_bit_string(s).to_bit_string(), s);
        }
    }

    #[test]
    fn display_matches_bit_string() {
        let c = Codeword::from_bit_string("1010");
        assert_eq!(format!("{c}"), "1010");
    }

    #[test]
    fn merge_associativity() {
        let a = Codeword::from_bit_string("1");
        let b = Codeword::from_bit_string("00");
        let c = Codeword::from_bit_string("110");
        let ab_c = a.merge(b).unwrap().merge(c).unwrap();
        let a_bc = a.merge(b.merge(c).unwrap()).unwrap();
        assert_eq!(ab_c, a_bc);
    }
}
