//! End-to-end device pipelines — the units Table V compares.
//!
//! "Ours": Gómez-Luna histogram → sort + GenerateCL + GenerateCW →
//! reduce-shuffle encode. "cuSZ": same histogram → serial-on-device
//! codebook + canonize → coarse encode. Both charge modeled time to the
//! device clock and return a per-stage breakdown plus the (bit-exact)
//! compressed stream.

use crate::archive;
use crate::codebook::{self, CanonicalCodebook};
use crate::encode::{self, BreakingStrategy, ChunkedStream, MergeConfig};
use crate::entropy;
use crate::error::{HuffError, Result};
use crate::histogram;
use crate::integrity::{DecompressOptions, Recovered};
use crate::plan::KernelPlan;
use gpu_sim::Gpu;

/// Which pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// The paper's encoder: parallel codebook + reduce-shuffle merge.
    ReduceShuffle,
    /// The cuSZ baseline: serial-on-device codebook + coarse encode.
    CuszCoarse,
    /// The Rahmani baseline: parallel codebook + prefix-sum encode.
    PrefixSum,
}

/// Per-stage modeled times (seconds) of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    /// Histogramming.
    pub histogram: f64,
    /// Codebook construction (incl. sort / canonize as applicable).
    pub codebook: f64,
    /// Encoding (all encode kernels).
    pub encode: f64,
}

impl StageTimes {
    /// Total pipeline time.
    pub fn total(&self) -> f64 {
        self.histogram + self.codebook + self.encode
    }
}

/// Kernel-record boundaries of one pipeline run on the device clock.
///
/// `gpu.clock().records()[base..after_histogram]` are the histogram
/// kernels, `[after_histogram..after_codebook]` the codebook kernels, and
/// `[after_codebook..after_encode]` the encode kernels. The profiler
/// ([`crate::metrics`]) uses these spans to attribute every trace event to
/// a stage; summing `cost.total` over a span reproduces the corresponding
/// [`StageTimes`] entry exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSpans {
    /// Launch count on the device before the pipeline started.
    pub base: usize,
    /// Launch count after the histogram stage.
    pub after_histogram: usize,
    /// Launch count after the codebook stage.
    pub after_codebook: usize,
    /// Launch count after the encode stage.
    pub after_encode: usize,
}

impl StageSpans {
    /// Record-index range of the histogram kernels.
    pub fn histogram(&self) -> std::ops::Range<usize> {
        self.base..self.after_histogram
    }

    /// Record-index range of the codebook kernels.
    pub fn codebook(&self) -> std::ops::Range<usize> {
        self.after_histogram..self.after_codebook
    }

    /// Record-index range of the encode kernels.
    pub fn encode(&self) -> std::ops::Range<usize> {
        self.after_codebook..self.after_encode
    }
}

/// Everything a table row needs about one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Which pipeline ran.
    pub kind: PipelineKind,
    /// Per-stage modeled times.
    pub times: StageTimes,
    /// Input size in bytes (native symbol width).
    pub input_bytes: u64,
    /// Frequency-weighted average codeword bitwidth.
    pub avg_bits: f64,
    /// Reduction factor used (0 for non-merging encoders).
    pub reduction: u32,
    /// Fraction of symbols in breaking units.
    pub breaking_fraction: f64,
    /// Compression ratio achieved (vs native width).
    pub compression_ratio: f64,
    /// Kernel-record boundaries of this run on the device clock.
    pub spans: StageSpans,
    /// Kernel-fusion plan the run executed under.
    pub plan: KernelPlan,
}

impl PipelineReport {
    /// Histogram throughput in GB/s over the native input size.
    pub fn hist_gbps(&self) -> f64 {
        gpu_sim::gbps(self.input_bytes as f64 / self.times.histogram)
    }

    /// Encode throughput in GB/s.
    pub fn encode_gbps(&self) -> f64 {
        gpu_sim::gbps(self.input_bytes as f64 / self.times.encode)
    }

    /// Overall throughput in GB/s.
    pub fn overall_gbps(&self) -> f64 {
        gpu_sim::gbps(self.input_bytes as f64 / self.times.total())
    }
}

/// Run a full encode pipeline on the device.
///
/// * `symbol_bytes` — native symbol width (1 for byte corpora, 2 for
///   quantization codes / k-mers); sets the traffic and GB/s basis.
/// * `num_symbols` — histogram size (codebook span).
/// * `reduction` — explicit `r`, or `None` for the Fig. 3 rule.
///
/// The returned [`PipelineReport`] carries per-stage modeled times plus the
/// kernel-record [`StageSpans`] on the device clock, so every launch can be
/// attributed to a stage after the fact:
///
/// ```
/// use gpu_sim::{DeviceSpec, Gpu};
/// use huff_core::pipeline::{self, PipelineKind};
///
/// let gpu = Gpu::new(DeviceSpec::test_part());
/// let data: Vec<u16> = (0..20_000).map(|i| (i % 256) as u16).collect();
/// let (stream, book, report) =
///     pipeline::run(&gpu, &data, 2, 256, 10, None, PipelineKind::ReduceShuffle).unwrap();
///
/// // The stream decodes back to the input, bit-exactly.
/// assert_eq!(huff_core::decode::chunked::decode(&stream, &book).unwrap(), data);
///
/// // Per-kernel costs over a stage's span sum to that stage's time.
/// let clock = gpu.clock();
/// let hist: f64 = clock.records()[report.spans.histogram()]
///     .iter()
///     .map(|r| r.cost.total)
///     .sum();
/// assert!((hist - report.times.histogram).abs() < 1e-12);
/// ```
pub fn run(
    gpu: &Gpu,
    data: &[u16],
    symbol_bytes: u64,
    num_symbols: usize,
    magnitude: u32,
    reduction: Option<u32>,
    kind: PipelineKind,
) -> Result<(ChunkedStream, CanonicalCodebook, PipelineReport)> {
    run_with_plan(
        gpu,
        data,
        symbol_bytes,
        num_symbols,
        magnitude,
        reduction,
        kind,
        KernelPlan::default(),
    )
}

/// [`run`] under an explicit [`KernelPlan`]. The stream, codebook and
/// archive bytes are identical for every plan — only the modeled launch
/// count and per-kernel traffic differ (DESIGN.md § "Kernel fusion").
#[allow(clippy::too_many_arguments)]
pub fn run_with_plan(
    gpu: &Gpu,
    data: &[u16],
    symbol_bytes: u64,
    num_symbols: usize,
    magnitude: u32,
    reduction: Option<u32>,
    kind: PipelineKind,
    plan: KernelPlan,
) -> Result<(ChunkedStream, CanonicalCodebook, PipelineReport)> {
    let base = gpu.launches();
    let base_elapsed = gpu.elapsed();

    // Stage 1: histogram.
    let freqs = histogram::gpu::histogram_with_plan(gpu, data, num_symbols, symbol_bytes, plan);
    let after_histogram = gpu.launches();
    let hist_time = gpu.elapsed() - base_elapsed;

    // Stage 2: codebook.
    let before_codebook = gpu.elapsed();
    let book = match kind {
        PipelineKind::ReduceShuffle | PipelineKind::PrefixSum => {
            codebook::gpu::parallel_on_gpu(gpu, &freqs)?.0
        }
        PipelineKind::CuszCoarse => codebook::gpu::serial_on_gpu(gpu, &freqs)?.0,
    };
    let after_codebook = gpu.launches();
    let codebook_time = gpu.elapsed() - before_codebook;

    let avg_bits = book.average_bitwidth(&freqs);
    let r = reduction.unwrap_or_else(|| entropy::decide_reduction_factor(avg_bits, 32, magnitude));
    let config = MergeConfig::new(magnitude, r);

    // Stage 3: encode.
    let before_encode = gpu.elapsed();
    let (stream, breaking_fraction, compression_ratio, used_r) = match kind {
        PipelineKind::ReduceShuffle => {
            let (stream, _) = encode::gpu::encode_on_gpu_with_plan(
                gpu,
                data,
                symbol_bytes,
                &book,
                config,
                BreakingStrategy::SparseSidecar,
                plan,
            )?;
            let bf = stream.breaking_fraction();
            let cr = stream.compression_ratio(symbol_bytes as u32 * 8);
            (stream, bf, cr, r)
        }
        PipelineKind::CuszCoarse => {
            let (stream, _) =
                encode::gpu::coarse_encode_on_gpu(gpu, data, symbol_bytes, &book, config)?;
            let bf = 0.0;
            let cr = stream.compression_ratio(symbol_bytes as u32 * 8);
            (stream, bf, cr, 0)
        }
        PipelineKind::PrefixSum => {
            let (flat, _) = encode::gpu::prefix_sum_encode_on_gpu(gpu, data, symbol_bytes, &book)?;
            let cr = flat.compression_ratio(symbol_bytes as u32 * 8);
            // Re-wrap as a single-chunk stream for a uniform return type.
            let stream = ChunkedStream {
                config,
                chunk_bit_lens: vec![flat.bit_len],
                chunk_bit_offsets: vec![0],
                total_bits: flat.bit_len,
                bytes: flat.bytes,
                num_symbols: flat.num_symbols,
                outliers: crate::sparse::SparseOutliers::new(),
            };
            (stream, 0.0, cr, 0)
        }
    };
    let after_encode = gpu.launches();
    let encode_time = gpu.elapsed() - before_encode;

    let report = PipelineReport {
        kind,
        times: StageTimes { histogram: hist_time, codebook: codebook_time, encode: encode_time },
        input_bytes: data.len() as u64 * symbol_bytes,
        avg_bits,
        reduction: used_r,
        breaking_fraction,
        compression_ratio,
        spans: StageSpans { base, after_histogram, after_codebook, after_encode },
        plan,
    };
    {
        let mut reg = crate::metrics::registry::global();
        reg.record_stage_seconds("histogram", hist_time);
        reg.record_stage_seconds("codebook", codebook_time);
        reg.record_stage_seconds("encode", encode_time);
    }
    Ok((stream, book, report))
}

/// Run a full encode pipeline and package the result as a checksummed
/// RSH2 archive (see [`crate::archive`]).
///
/// [`PipelineKind::PrefixSum`] streams are a single flat bitstream with
/// no chunk addressing, so they have no archive form and are rejected.
#[allow(clippy::too_many_arguments)]
pub fn run_to_archive(
    gpu: &Gpu,
    data: &[u16],
    symbol_bytes: u64,
    num_symbols: usize,
    magnitude: u32,
    reduction: Option<u32>,
    kind: PipelineKind,
) -> Result<(Vec<u8>, PipelineReport)> {
    if kind == PipelineKind::PrefixSum {
        return Err(HuffError::BadArchive(
            "prefix-sum streams are not chunk-addressable; no archive form".into(),
        ));
    }
    let (stream, book, report) =
        run(gpu, data, symbol_bytes, num_symbols, magnitude, reduction, kind)?;
    Ok((archive::serialize(&stream, &book, symbol_bytes as u8)?, report))
}

/// Decode an archive produced by [`run_to_archive`] (or
/// [`crate::archive::compress`]) under an explicit verification and
/// recovery policy — the decompress side of the pipeline. The payload
/// decoder backend is `opts.decoder`
/// ([`DecoderKind`](crate::decode::DecoderKind)); all backends are
/// bit-exact, so the choice only affects modeled device time.
pub fn decode_archive(archive_bytes: &[u8], opts: &DecompressOptions) -> Result<Recovered> {
    archive::decompress_with(archive_bytes, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;
    use gpu_sim::DeviceSpec;

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 38;
                (x % 512) as u16
            })
            .collect()
    }

    #[test]
    fn ours_pipeline_roundtrips() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(50_000);
        let (stream, book, report) =
            run(&gpu, &syms, 2, 512, 10, None, PipelineKind::ReduceShuffle).unwrap();
        assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), syms);
        assert!(report.times.histogram > 0.0);
        assert!(report.times.codebook > 0.0);
        assert!(report.times.encode > 0.0);
        assert!(report.compression_ratio > 1.0);
        assert!(report.avg_bits > 0.0 && report.avg_bits < 16.0);
    }

    #[test]
    fn cusz_pipeline_roundtrips() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(20_000);
        let (stream, book, report) =
            run(&gpu, &syms, 2, 512, 10, None, PipelineKind::CuszCoarse).unwrap();
        assert_eq!(decode::chunked::decode(&stream, &book).unwrap(), syms);
        assert_eq!(report.reduction, 0);
    }

    #[test]
    fn prefix_sum_pipeline_roundtrips() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(20_000);
        let (stream, book, _) =
            run(&gpu, &syms, 2, 512, 10, None, PipelineKind::PrefixSum).unwrap();
        let dec =
            decode::canonical::decode(&stream.bytes, stream.total_bits, stream.num_symbols, &book)
                .unwrap();
        assert_eq!(dec, syms);
    }

    #[test]
    fn ours_beats_cusz_overall_on_v100() {
        let syms = data(8_000_000);
        let g1 = Gpu::v100();
        let (_, _, ours) =
            run(&g1, &syms, 2, 512, 10, Some(3), PipelineKind::ReduceShuffle).unwrap();
        let g2 = Gpu::v100();
        let (_, _, cusz) = run(&g2, &syms, 2, 512, 10, None, PipelineKind::CuszCoarse).unwrap();
        assert!(
            ours.times.total() < cusz.times.total(),
            "ours {} vs cusz {}",
            ours.times.total(),
            cusz.times.total()
        );
        assert!(ours.overall_gbps() > cusz.overall_gbps());
    }

    #[test]
    fn archive_pipeline_roundtrips_with_verification() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(30_000);
        let (packed, report) =
            run_to_archive(&gpu, &syms, 2, 512, 10, None, PipelineKind::ReduceShuffle).unwrap();
        assert!(report.compression_ratio > 1.0);
        let rec = decode_archive(&packed, &DecompressOptions::default()).unwrap();
        assert_eq!(rec.symbols, syms);
        assert!(rec.report.is_clean());
    }

    #[test]
    fn every_decoder_backend_roundtrips_the_archive() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(30_000);
        let (packed, _) =
            run_to_archive(&gpu, &syms, 2, 512, 10, None, PipelineKind::ReduceShuffle).unwrap();
        for decoder in
            [decode::DecoderKind::Serial, decode::DecoderKind::Chunked, decode::DecoderKind::Lut]
        {
            let opts = DecompressOptions::default().with_decoder(decoder);
            let rec = decode_archive(&packed, &opts).unwrap();
            assert_eq!(rec.symbols, syms, "{}", decoder.name());
            assert!(rec.report.is_clean());
        }
    }

    #[test]
    fn prefix_sum_has_no_archive_form() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(5_000);
        let r = run_to_archive(&gpu, &syms, 2, 512, 10, None, PipelineKind::PrefixSum);
        assert!(matches!(r, Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn stage_spans_partition_the_clock_and_sum_to_stage_times() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        // Pre-existing launches must not confuse the spans.
        gpu.launch("warmup", gpu_sim::GridDim::new(1, 32), |_| {});
        let syms = data(30_000);
        let (_, _, report) =
            run(&gpu, &syms, 2, 512, 10, None, PipelineKind::ReduceShuffle).unwrap();
        let clock = gpu.clock();
        let recs = clock.records();
        assert_eq!(report.spans.base, 1);
        assert_eq!(report.spans.after_encode, recs.len());
        assert!(report.spans.base < report.spans.after_histogram);
        assert!(report.spans.after_histogram < report.spans.after_codebook);
        assert!(report.spans.after_codebook < report.spans.after_encode);
        let sum = |r: std::ops::Range<usize>| recs[r].iter().map(|k| k.cost.total).sum::<f64>();
        assert!((sum(report.spans.histogram()) - report.times.histogram).abs() < 1e-12);
        assert!((sum(report.spans.codebook()) - report.times.codebook).abs() < 1e-12);
        assert!((sum(report.spans.encode()) - report.times.encode).abs() < 1e-12);
    }

    #[test]
    fn plans_produce_identical_streams_with_different_launch_counts() {
        let syms = data(40_000);
        let g1 = Gpu::new(DeviceSpec::test_part());
        let (fused_stream, _, fused_report) = run_with_plan(
            &g1,
            &syms,
            2,
            512,
            10,
            None,
            PipelineKind::ReduceShuffle,
            KernelPlan::fused(),
        )
        .unwrap();
        let g2 = Gpu::new(DeviceSpec::test_part());
        let (unfused_stream, _, unfused_report) = run_with_plan(
            &g2,
            &syms,
            2,
            512,
            10,
            None,
            PipelineKind::ReduceShuffle,
            KernelPlan::unfused(),
        )
        .unwrap();
        assert_eq!(fused_stream.bytes, unfused_stream.bytes);
        assert_eq!(fused_report.plan, KernelPlan::fused());
        assert_eq!(unfused_report.plan, KernelPlan::unfused());
        // Fusion removes the gridwise-reduce and blockwise-len launches.
        assert_eq!(g2.launches() - g1.launches(), 2);
    }

    #[test]
    fn explicit_reduction_respected() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(10_000);
        let (stream, _, report) =
            run(&gpu, &syms, 2, 512, 10, Some(2), PipelineKind::ReduceShuffle).unwrap();
        assert_eq!(report.reduction, 2);
        assert_eq!(stream.config.reduction, 2);
    }
}
