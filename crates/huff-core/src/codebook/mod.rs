//! Stage 2/3 of the pipeline: two-phase canonical codebook construction.
//!
//! The central type is [`CanonicalCodebook`]: per-symbol canonical
//! codewords plus the `First`/`Entry` metadata enabling treeless decoding
//! (Section IV-B2). Construction paths:
//!
//! * [`parallel`] — sort by frequency, [`generate_cl()`], [`generate_cw()`]
//!   (the paper's contribution; the GPU pipeline wraps this with traffic
//!   accounting in [`gpu`]);
//! * [`serial`] — heap-based tree + canonize (the cuSZ/SZ baseline);
//! * [`multithread`] — the cache-friendly multithreaded CPU builder
//!   (Table IV).

pub mod generate_cl;
pub mod generate_cw;
pub mod gpu;
pub mod merge_path;
pub mod multithread;
pub mod serial;

use crate::codeword::Codeword;
use crate::error::{HuffError, Result};
use serde::{Deserialize, Serialize};

pub use generate_cl::{generate_cl, ClStats};
pub use generate_cw::{generate_cw, CwOutput};

/// A canonical Huffman codebook: the forward map (symbol → codeword) and
/// the reverse-decoding metadata (`First`/`Entry`/`Count` arrays plus the
/// symbol permutation in canonical order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanonicalCodebook {
    codes: Vec<Codeword>,
    max_len: u32,
    first: Vec<u64>,
    entry: Vec<u32>,
    count: Vec<u32>,
    rev: Vec<u16>,
}

impl CanonicalCodebook {
    /// Build from per-symbol codeword lengths (0 = symbol absent). This is
    /// the *reference* constructor: it sorts symbols by `(length, symbol)`
    /// and assigns canonical codes serially. The parallel pipeline
    /// ([`parallel`]) produces an equivalent codebook via
    /// GenerateCL/GenerateCW.
    pub fn from_lengths(lengths: &[u32]) -> Result<Self> {
        // A structured error, not an assert: this is reachable from
        // archive deserialization, where `lengths.len()` is an untrusted
        // header field.
        if lengths.len() > 1 << 16 {
            return Err(HuffError::SymbolOutOfRange {
                symbol: lengths.len() - 1,
                codebook: 1 << 16,
            });
        }
        let mut order: Vec<u16> =
            (0..lengths.len()).filter(|&s| lengths[s] > 0).map(|s| s as u16).collect();
        if order.is_empty() {
            return Err(HuffError::EmptyHistogram);
        }
        order.sort_unstable_by_key(|&s| (lengths[s as usize], s));

        // Lengths in descending order feed generate_cw's contract.
        let cl_desc: Vec<u32> = order.iter().rev().map(|&s| lengths[s as usize]).collect();
        let cw = generate_cw(&cl_desc)?;
        Self::assemble(lengths.len(), &order, cw)
    }

    /// The codebook of the empty input: no symbols, no codewords. Only
    /// an archive with `num_symbols == 0` may carry it — every decode
    /// over it is the empty decode, so the `First`/`Entry` metadata is
    /// vacuously absent.
    pub fn empty() -> Self {
        CanonicalCodebook {
            codes: Vec::new(),
            max_len: 0,
            first: Vec::new(),
            entry: Vec::new(),
            count: Vec::new(),
            rev: Vec::new(),
        }
    }

    /// Assemble a codebook from a canonical-order symbol permutation
    /// (ascending code length) and the GenerateCW output.
    pub(crate) fn assemble(num_symbols: usize, asc_symbols: &[u16], cw: CwOutput) -> Result<Self> {
        debug_assert_eq!(asc_symbols.len(), cw.codes.len());
        let mut codes = vec![Codeword::EMPTY; num_symbols];
        for (&sym, &code) in asc_symbols.iter().zip(&cw.codes) {
            codes[sym as usize] = code;
        }
        Ok(CanonicalCodebook {
            codes,
            max_len: cw.max_len,
            first: cw.first,
            entry: cw.entry,
            count: cw.count,
            rev: asc_symbols.to_vec(),
        })
    }

    /// The codeword for `symbol` ([`Codeword::EMPTY`] if absent).
    #[inline]
    pub fn code(&self, symbol: u16) -> Codeword {
        self.codes[symbol as usize]
    }

    /// Checked lookup: errors on out-of-range or absent symbols.
    pub fn code_checked(&self, symbol: u16) -> Result<Codeword> {
        let c = self.codes.get(symbol as usize).ok_or(HuffError::SymbolOutOfRange {
            symbol: symbol as usize,
            codebook: self.codes.len(),
        })?;
        if c.is_empty() {
            return Err(HuffError::MissingCodeword(symbol as usize));
        }
        Ok(*c)
    }

    /// Forward table (symbol-indexed).
    pub fn codes(&self) -> &[Codeword] {
        &self.codes
    }

    /// Number of symbols the codebook spans (including absent ones).
    pub fn num_symbols(&self) -> usize {
        self.codes.len()
    }

    /// Number of symbols that actually have codewords.
    pub fn coded_symbols(&self) -> usize {
        self.rev.len()
    }

    /// Longest codeword length `H`.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// `First` array: numeric first codeword per length.
    pub fn first(&self) -> &[u64] {
        &self.first
    }

    /// `Entry` array: codewords shorter than each length.
    pub fn entry(&self) -> &[u32] {
        &self.entry
    }

    /// Codeword count per length.
    pub fn count(&self) -> &[u32] {
        &self.count
    }

    /// The reverse codebook: symbols in canonical (ascending code) order.
    pub fn reverse(&self) -> &[u16] {
        &self.rev
    }

    /// Per-symbol codeword lengths (0 = absent) — sufficient to
    /// reconstruct the whole codebook, which is how archives store it.
    pub fn lengths(&self) -> Vec<u32> {
        self.codes.iter().map(|c| c.len()).collect()
    }

    /// Frequency-weighted average codeword length for a histogram.
    pub fn average_bitwidth(&self, freqs: &[u64]) -> f64 {
        crate::entropy::average_bitwidth(freqs, &self.lengths())
    }

    /// Build a multi-bit decode table over the next `min(max_len(),
    /// max_bits)` stream bits: one probe yields a symbol plus its consumed
    /// length, with a slow-path marker for longer codewords. This is the
    /// decoder-side payoff of canonization — the table derives entirely
    /// from the `First`/`Entry`/`Count` arrays (see [`crate::decode::lut`]).
    pub fn decode_lut(&self, max_bits: u32) -> crate::decode::lut::DecodeLut {
        crate::decode::lut::DecodeLut::build(self, max_bits)
    }

    /// Decode a single symbol from a bit-accessor: `next_bit` yields
    /// successive stream bits. Core of the treeless canonical decoder.
    #[inline]
    pub fn decode_symbol(&self, mut next_bit: impl FnMut() -> Result<bool>) -> Result<u16> {
        let mut v = 0u64;
        for l in 1..=self.max_len {
            v = (v << 1) | u64::from(next_bit()?);
            let li = l as usize;
            let cnt = u64::from(self.count[li]);
            if cnt > 0 && v >= self.first[li] && v - self.first[li] < cnt {
                let idx = self.entry[li] as usize + (v - self.first[li]) as usize;
                return Ok(self.rev[idx]);
            }
        }
        Err(HuffError::CorruptStream("no codeword matches"))
    }
}

/// Build a canonical codebook from a histogram via the **parallel**
/// two-phase algorithm (sort → GenerateCL → GenerateCW). Symbols with zero
/// frequency get no codeword.
///
/// Same-length codes are assigned in ascending-*symbol* order (not the
/// frequency-sort order GenerateCL produces): this makes the codebook a
/// pure function of its length array, so archives can store lengths alone
/// and [`CanonicalCodebook::from_lengths`] reproduces the exact codes.
pub fn parallel(freqs: &[u64], partitions: usize) -> Result<CanonicalCodebook> {
    let (lengths, _, _) = parallel_lengths(freqs, partitions)?;
    CanonicalCodebook::from_lengths(&lengths)
}

/// Output of [`parallel_lengths`]: per-symbol codeword lengths (0 for
/// absent symbols), the sorted `(freq, symbol)` pairs, and CL stats.
pub type LengthsOutput = (Vec<u32>, Vec<(u64, u16)>, ClStats);

/// The GenerateCL phase alone: per-symbol optimal codeword lengths (0 for
/// absent symbols), plus the sorted `(freq, symbol)` pairs and CL stats.
pub fn parallel_lengths(freqs: &[u64], partitions: usize) -> Result<LengthsOutput> {
    let mut pairs: Vec<(u64, u16)> =
        freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(s, &f)| (f, s as u16)).collect();
    if pairs.is_empty() {
        return Err(HuffError::EmptyHistogram);
    }
    pairs.sort_unstable();
    let sorted_freqs: Vec<u64> = pairs.iter().map(|&(f, _)| f).collect();
    let (cl, stats) = generate_cl(&sorted_freqs, partitions);
    let mut lengths = vec![0u32; freqs.len()];
    for (i, &(_, s)) in pairs.iter().enumerate() {
        lengths[s as usize] = cl[i];
    }
    Ok((lengths, pairs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;

    fn assert_valid(book: &CanonicalCodebook, freqs: &[u64]) {
        // Prefix-freeness over coded symbols.
        let coded: Vec<Codeword> = book.codes().iter().filter(|c| !c.is_empty()).copied().collect();
        for (i, a) in coded.iter().enumerate() {
            for (j, b) in coded.iter().enumerate() {
                if i != j {
                    assert!(!a.is_prefix_of(b), "{a} prefixes {b}");
                }
            }
        }
        // Optimality: weighted length equals the serial reference.
        let ref_lens = tree::codeword_lengths(freqs).unwrap();
        assert_eq!(
            tree::weighted_length(freqs, &book.lengths()),
            tree::weighted_length(freqs, &ref_lens),
        );
        // Reverse codebook is a permutation of coded symbols.
        assert_eq!(book.reverse().len(), coded.len());
    }

    #[test]
    fn parallel_builds_optimal_prefix_free_codebook() {
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let book = parallel(&freqs, 4).unwrap();
        assert_valid(&book, &freqs);
        // Most frequent symbol has the shortest code.
        assert_eq!(book.code(5).len(), 1);
    }

    #[test]
    fn from_lengths_matches_tree_lengths() {
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let lens = tree::codeword_lengths(&freqs).unwrap();
        let book = CanonicalCodebook::from_lengths(&lens).unwrap();
        assert_valid(&book, &freqs);
        assert_eq!(book.lengths(), lens);
    }

    #[test]
    fn absent_symbols_have_empty_codes() {
        let freqs = [10u64, 0, 20, 0];
        let book = parallel(&freqs, 2).unwrap();
        assert!(book.code(1).is_empty());
        assert!(book.code(3).is_empty());
        assert!(!book.code(0).is_empty());
        assert!(matches!(book.code_checked(1), Err(HuffError::MissingCodeword(1))));
        assert_eq!(book.coded_symbols(), 2);
        assert_eq!(book.num_symbols(), 4);
    }

    #[test]
    fn out_of_range_symbol_checked() {
        let book = parallel(&[1, 1], 2).unwrap();
        assert!(matches!(
            book.code_checked(9),
            Err(HuffError::SymbolOutOfRange { symbol: 9, codebook: 2 })
        ));
    }

    #[test]
    fn empty_histogram_rejected() {
        assert!(matches!(parallel(&[0, 0], 2), Err(HuffError::EmptyHistogram)));
        assert!(matches!(CanonicalCodebook::from_lengths(&[0, 0]), Err(HuffError::EmptyHistogram)));
    }

    #[test]
    fn oversized_symbol_space_rejected_not_panicking() {
        // Reachable from archive deserialization with a hostile
        // codebook-length field: must be a structured error.
        let lengths = vec![1u32; (1 << 16) + 1];
        assert!(matches!(
            CanonicalCodebook::from_lengths(&lengths),
            Err(HuffError::SymbolOutOfRange { codebook: 65536, .. })
        ));
    }

    #[test]
    fn single_symbol_codebook() {
        let book = parallel(&[0, 7, 0], 2).unwrap();
        assert_eq!(book.code(1).len(), 1);
        assert_eq!(book.max_len(), 1);
    }

    #[test]
    fn decode_symbol_roundtrip_via_bits() {
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let book = parallel(&freqs, 4).unwrap();
        for sym in 0..6u16 {
            let code = book.code(sym);
            let mut pos = 0;
            let decoded = book
                .decode_symbol(|| {
                    let bit = (code.bits() >> (code.len() - 1 - pos)) & 1 == 1;
                    pos += 1;
                    Ok(bit)
                })
                .unwrap();
            assert_eq!(decoded, sym, "code {code}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        // A codebook with max_len 3; feed bits that never match by
        // exhausting max_len... all-prefix-free complete codes always match
        // within H bits, so use from_lengths with an *incomplete* code.
        let book = CanonicalCodebook::from_lengths(&[2, 2, 2]).unwrap(); // Kraft 3/4 < 1
        let bits = [true, true]; // "11" is unassigned (codes are 00,01,10)
        let mut it = bits.iter();
        let r = book.decode_symbol(|| Ok(*it.next().unwrap()));
        assert!(r.is_err());
    }

    #[test]
    fn lengths_roundtrip_reconstruction() {
        let freqs: Vec<u64> = (1..=100).map(|i| i * 7 % 97 + 1).collect();
        let book = parallel(&freqs, 8).unwrap();
        let rebuilt = CanonicalCodebook::from_lengths(&book.lengths()).unwrap();
        // Same lengths, same metadata arrays; code assignment may permute
        // within a level only if symbol order differs — from_lengths sorts
        // by (len, symbol), parallel by (len via freq, freq order). Totals
        // must agree.
        assert_eq!(book.lengths(), rebuilt.lengths());
        assert_eq!(book.first(), rebuilt.first());
        assert_eq!(book.entry(), rebuilt.entry());
        assert_eq!(book.count(), rebuilt.count());
    }

    #[test]
    fn average_bitwidth_matches_entropy_bound() {
        let freqs: Vec<u64> = vec![1000, 500, 250, 125, 125];
        let book = parallel(&freqs, 4).unwrap();
        let avg = book.average_bitwidth(&freqs);
        let h = crate::entropy::shannon_entropy(&freqs);
        assert!(avg >= h - 1e-9, "avg {avg} below entropy {h}");
        assert!(avg < h + 1.0, "avg {avg} exceeds entropy+1 {h}");
    }

    #[test]
    fn large_codebook_65536_style() {
        // SZ-style: 4096 symbols with two-sided-geometric-ish frequencies.
        let freqs: Vec<u64> = (0..4096u64)
            .map(|i| {
                let d = (i as i64 - 2048).unsigned_abs();
                10_000_000u64 >> (d / 64).min(20)
            })
            .map(|f| f.max(1))
            .collect();
        let book = parallel(&freqs, 16).unwrap();
        assert_valid(&book, &freqs);
        assert!(book.max_len() <= 40);
    }
}
