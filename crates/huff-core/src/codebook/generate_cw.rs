//! `GenerateCW` — canonical codeword assignment (Algorithm 1, second
//! phase) with `First`/`Entry` decoding metadata generated inline.
//!
//! Input: the codeword lengths produced by `GenerateCL`, which arrive
//! sorted by *ascending frequency* — i.e. non-increasing length. The phase
//! begins with `PARREVERSE(CL)` so lengths are non-decreasing, then sweeps
//! a pointer `CDPI` over the length levels: all codewords of the current
//! length `CCL` are assigned in one parallel region, the first codeword of
//! the next level is derived by the canonical recurrence
//! `FCW' = (FCW + count) · 2^(CL diff)`, and the `First`/`Entry` arrays are
//! recorded per level — `O(H)` time with one thread per symbol on PRAM.
//!
//! One deliberate deviation from the paper: Algorithm 1 assigns codes in
//! decreasing numeric order within a level and bit-inverts them afterwards
//! (lines 38/47) because its symbols arrive most-frequent-first. After our
//! `PARREVERSE` the ascending assignment directly yields the same canonical
//! code family (shorter codes numerically precede the prefixes of longer
//! ones), so no inversion pass is needed; the resulting `First`/`Entry`
//! metadata is identical.

use crate::codeword::{Codeword, MAX_CODE_BITS};
use crate::error::{HuffError, Result};

/// Output of the codeword-generation phase, in ascending-length order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CwOutput {
    /// Codeword per position of the (reversed, i.e. ascending-length)
    /// input.
    pub codes: Vec<Codeword>,
    /// `first[l]`: numeric value of the first codeword of length `l`
    /// (`u64::MAX` for lengths with no codewords).
    pub first: Vec<u64>,
    /// `entry[l]`: number of codewords strictly shorter than `l`.
    pub entry: Vec<u32>,
    /// `count[l]`: number of codewords of length `l`.
    pub count: Vec<u32>,
    /// Longest codeword length `H`.
    pub max_len: u32,
    /// Number of length levels processed (outer-loop iterations — the
    /// `O(H)` quantity).
    pub levels: u32,
}

/// Assign canonical codewords for lengths sorted non-increasing (the
/// GenerateCL output order). Returns codes in *ascending-length* order:
/// `codes[i]` corresponds to input position `n - 1 - i`.
pub fn generate_cw(cl_desc: &[u32]) -> Result<CwOutput> {
    let n = cl_desc.len();
    assert!(n > 0, "GenerateCW requires at least one codeword length");
    assert!(cl_desc.windows(2).all(|w| w[0] >= w[1]), "GenerateCL output must be non-increasing");

    // PARREVERSE(CL): ascending lengths.
    let cl: Vec<u32> = cl_desc.iter().rev().copied().collect();
    let max_len = *cl.last().expect("nonempty");
    if max_len > MAX_CODE_BITS {
        return Err(HuffError::CodewordTooLong { len: max_len, max: MAX_CODE_BITS });
    }

    let h = max_len as usize;
    let mut first = vec![u64::MAX; h + 1];
    let mut entry = vec![0u32; h + 2];
    let mut count = vec![0u32; h + 1];
    let mut codes = vec![Codeword::EMPTY; n];

    let mut ccl = cl[0]; // current codeword length
    let mut fcw = 0u64; // first codeword of the current level
    let mut cdpi = 0usize; // current position
    let mut levels = 0u32;

    while cdpi < n {
        levels += 1;
        // newCDPI: first index whose length exceeds CCL (the paper finds it
        // with a parallel ATOMICMIN; lengths are sorted, so it is a
        // partition point).
        let new_cdpi = cdpi + cl[cdpi..].partition_point(|&l| l == ccl);
        let level_count = (new_cdpi - cdpi) as u32;

        // Capacity check: level must fit under the canonical recurrence.
        if ccl < 64 && fcw + u64::from(level_count) > (1u64 << ccl) {
            return Err(HuffError::CorruptStream("length sequence violates Kraft inequality"));
        }

        // Assign this level's codewords in parallel (concurrently in the
        // paper; the region is tiny, so a host loop suffices).
        for (k, code) in codes[cdpi..new_cdpi].iter_mut().enumerate() {
            *code = Codeword::new(fcw + k as u64, ccl);
        }

        // Record decoding metadata for this level.
        first[ccl as usize] = fcw;
        count[ccl as usize] = level_count;
        entry[ccl as usize + 1] = entry[ccl as usize] + level_count;

        if new_cdpi < n {
            let next_len = cl[new_cdpi];
            // Intermediate (empty) levels inherit the running entry count.
            for l in (ccl + 1)..next_len {
                entry[l as usize + 1] = entry[ccl as usize + 1];
            }
            let cl_diff = next_len - ccl;
            fcw = (fcw + u64::from(level_count)) << cl_diff;
            ccl = next_len;
        }
        cdpi = new_cdpi;
    }

    // Fill entry[] gaps below the first level.
    let min_len = cl[0] as usize;
    for l in 0..min_len {
        entry[l + 1] = 0;
    }

    Ok(CwOutput { codes, first, entry, count, max_len, levels })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_prefix_free(codes: &[Codeword]) {
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert!(!a.is_prefix_of(b), "{a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn textbook_lengths() {
        // Lengths (desc): 3,3,2,1 — canonical codes asc: 0, 10, 110, 111.
        let out = generate_cw(&[3, 3, 2, 1]).unwrap();
        let strs: Vec<String> = out.codes.iter().map(|c| c.to_bit_string()).collect();
        assert_eq!(strs, vec!["0", "10", "110", "111"]);
        assert_eq!(out.max_len, 3);
        assert_eq!(out.levels, 3);
        assert_prefix_free(&out.codes);
    }

    #[test]
    fn first_entry_metadata() {
        let out = generate_cw(&[3, 3, 2, 1]).unwrap();
        assert_eq!(out.first[1], 0); // "0"
        assert_eq!(out.first[2], 0b10);
        assert_eq!(out.first[3], 0b110);
        assert_eq!(out.count[1], 1);
        assert_eq!(out.count[2], 1);
        assert_eq!(out.count[3], 2);
        assert_eq!(out.entry[1], 0);
        assert_eq!(out.entry[2], 1);
        assert_eq!(out.entry[3], 2);
        assert_eq!(out.entry[4], 4);
    }

    #[test]
    fn uniform_lengths_single_level() {
        let out = generate_cw(&[3; 8]).unwrap();
        assert_eq!(out.levels, 1);
        let values: Vec<u64> = out.codes.iter().map(|c| c.bits()).collect();
        assert_eq!(values, (0..8).collect::<Vec<u64>>());
        assert_prefix_free(&out.codes);
    }

    #[test]
    fn single_code() {
        let out = generate_cw(&[1]).unwrap();
        assert_eq!(out.codes[0], Codeword::new(0, 1));
    }

    #[test]
    fn skipped_levels() {
        // Lengths 1 and 3 only (valid: 0, 100, 101, 110 — Kraft 1/2+3/8 ≤ 1).
        let out = generate_cw(&[3, 3, 3, 1]).unwrap();
        let strs: Vec<String> = out.codes.iter().map(|c| c.to_bit_string()).collect();
        assert_eq!(strs, vec!["0", "100", "101", "110"]);
        assert_eq!(out.count[2], 0);
        assert_eq!(out.first[2], u64::MAX);
        assert_eq!(out.entry[2], 1);
        assert_eq!(out.entry[3], 1);
    }

    #[test]
    fn canonical_monotonicity() {
        // The canonical property: for codes a (shorter) and b (longer), the
        // leading |a| bits of b are numerically > a... i.e. shorter codes
        // order before longer ones as binary fractions.
        let out = generate_cw(&[4, 4, 3, 2, 1]).unwrap();
        for w in out.codes.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Compare as left-aligned 64-bit fractions.
            let fa = a.bits() << (64 - a.len());
            let fb = b.bits() << (64 - b.len());
            assert!(fa < fb, "{a} !< {b}");
        }
        assert_prefix_free(&out.codes);
    }

    #[test]
    fn kraft_violation_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(generate_cw(&[1, 1, 1]).is_err());
    }

    #[test]
    fn overlong_rejected() {
        assert!(matches!(generate_cw(&[65, 1]), Err(HuffError::CodewordTooLong { len: 65, .. })));
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn unsorted_input_rejected() {
        let _ = generate_cw(&[1, 3]);
    }

    #[test]
    fn complete_code_fills_space() {
        // A complete Huffman code's last codeword is all-ones.
        let out = generate_cw(&[3, 3, 2, 2, 2]).unwrap();
        let last = out.codes.last().unwrap();
        assert_eq!(last.bits(), (1u64 << last.len()) - 1);
    }
}
