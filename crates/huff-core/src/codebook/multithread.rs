//! Multithreaded CPU codebook construction (Table IV).
//!
//! The paper implements an OpenMP multithread construction and observes:
//! (1) even single-threaded it can beat SZ's serial heap construction
//! because it uses cache-friendly flat arrays instead of pointer-chasing
//! trees and priority queues; (2) with ~10³-symbol codebooks, extra threads
//! *hurt* (threading overhead exceeds the work); (3) ≥32768 symbols are
//! needed before multithreading wins.
//!
//! This implementation mirrors that design: a two-queue `O(n)` array-based
//! meld (after a parallel sort) followed by a parallel depth computation
//! over the parent array by pointer doubling.

use rayon::prelude::*;

/// Per-symbol codeword lengths (0 = absent) computed with up to `threads`
/// workers inside a dedicated pool.
pub fn codeword_lengths(freqs: &[u64], threads: usize) -> crate::error::Result<Vec<u32>> {
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(threads.max(1)).build().expect("thread pool");
    pool.install(|| codeword_lengths_in_pool(freqs, threads))
}

/// Same as [`codeword_lengths`] but runs in the ambient rayon pool.
pub fn codeword_lengths_in_pool(freqs: &[u64], threads: usize) -> crate::error::Result<Vec<u32>> {
    let mut pairs: Vec<(u64, u32)> =
        freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(s, &f)| (f, s as u32)).collect();
    if pairs.is_empty() {
        return Err(crate::error::HuffError::EmptyHistogram);
    }
    let n = pairs.len();
    let mut lengths = vec![0u32; freqs.len()];
    if n == 1 {
        lengths[pairs[0].1 as usize] = 1;
        return Ok(lengths);
    }

    // Parallel sort (threads > 1) or serial sort — the knee Table IV shows.
    if threads > 1 && n > 8192 {
        pairs.par_sort_unstable();
    } else {
        pairs.sort_unstable();
    }

    // Two-queue O(n) meld over flat arrays. Node ids: leaves 0..n,
    // internals n..2n-1. parent[] is the only output we need.
    let total_nodes = 2 * n - 1;
    let mut parent = vec![u32::MAX; total_nodes];
    let mut inode_freq = vec![0u64; n - 1];
    let (mut leaf_head, mut inode_head, mut inode_tail) = (0usize, 0usize, 0usize);
    let leaf_freq = |i: usize| pairs[i].0;

    let take_smallest = |leaf_head: &mut usize,
                         inode_head: &mut usize,
                         inode_tail: usize,
                         inode_freq: &[u64]|
     -> usize {
        let leaf_ok = *leaf_head < n;
        let inode_ok = *inode_head < inode_tail;
        debug_assert!(leaf_ok || inode_ok);
        // Tie-break: leaf first (creation order, matches the heap reference).
        if leaf_ok && (!inode_ok || leaf_freq(*leaf_head) <= inode_freq[*inode_head]) {
            let id = *leaf_head;
            *leaf_head += 1;
            id
        } else {
            let id = n + *inode_head;
            *inode_head += 1;
            id
        }
    };

    for k in 0..n - 1 {
        let a = take_smallest(&mut leaf_head, &mut inode_head, inode_tail, &inode_freq);
        let b = take_smallest(&mut leaf_head, &mut inode_head, inode_tail, &inode_freq);
        let fa = if a < n { pairs[a].0 } else { inode_freq[a - n] };
        let fb = if b < n { pairs[b].0 } else { inode_freq[b - n] };
        let new_id = (n + k) as u32;
        parent[a] = new_id;
        parent[b] = new_id;
        inode_freq[k] = fa + fb;
        inode_tail = k + 1;
    }
    // Root: id 2n-2, parent stays MAX.

    // Depth computation: a reverse sweep over the parent array. The sweep
    // is O(n) with a short dependency chain per node — parallelizing it
    // with pointer doubling costs O(n log n) work and only pays on PRAM
    // (see [`pointer_doubling_depths`]); the multicore win here comes from
    // the parallel sort above, which is exactly the knee Table IV shows.
    let mut depth = vec![0u32; total_nodes];
    for id in (0..total_nodes - 1).rev() {
        depth[id] = depth[parent[id] as usize] + 1;
    }
    let depths = depth;

    for (i, &(_, sym)) in pairs.iter().enumerate() {
        lengths[sym as usize] = depths[i].max(1);
    }
    Ok(lengths)
}

/// Parallel depth-from-parent via pointer doubling: `O(log n)` rounds of
/// `jump[i] = jump[jump[i]]`, accumulating distances. This is the
/// PRAM-style formulation — `O(n log n)` work, `O(log n)` depth. On real
/// CPUs the extra work loses to the `O(n)` sweep (measured in the
/// `codebook` bench's `pram_pointer_doubling` ablation), which is why
/// [`codeword_lengths`] doesn't use it; it is exercised and verified here
/// for algorithmic completeness.
pub fn pointer_doubling_depths(parent: &[u32]) -> Vec<u32> {
    let total = parent.len();
    let root = (total - 1) as u32;
    let mut jump: Vec<u32> = parent.iter().map(|&p| if p == u32::MAX { root } else { p }).collect();
    let mut dist: Vec<u32> = parent.iter().map(|&p| u32::from(p != u32::MAX)).collect();
    // ceil(log2(total)) rounds suffice.
    let rounds = usize::BITS - total.leading_zeros();
    for _ in 0..rounds {
        let (next_jump, next_dist): (Vec<u32>, Vec<u32>) = jump
            .par_iter()
            .zip(dist.par_iter())
            .map(|(&j, &d)| {
                let jj = jump[j as usize];
                let dd = d + dist[j as usize];
                (jj, dd)
            })
            .unzip();
        jump = next_jump;
        dist = next_dist;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;

    fn check(freqs: &[u64], threads: usize) {
        let mt = codeword_lengths(freqs, threads).unwrap();
        let reference = tree::codeword_lengths(freqs).unwrap();
        assert_eq!(
            tree::weighted_length(freqs, &mt),
            tree::weighted_length(freqs, &reference),
            "threads={threads} freqs={freqs:?}"
        );
        assert_eq!(tree::kraft_sum(&mt), 1u128 << 64);
    }

    #[test]
    fn single_thread_matches_reference() {
        check(&[1, 1, 2, 4], 1);
        check(&[5, 9, 12, 13, 16, 45], 1);
    }

    #[test]
    fn multi_thread_matches_reference_small() {
        check(&[1, 1, 2, 4], 4);
        check(&[7; 32], 4);
    }

    #[test]
    fn multi_thread_matches_reference_large() {
        // Above the 8192 parallel threshold: exercises par_sort + pointer
        // doubling.
        let freqs: Vec<u64> = (0..20_000u64).map(|i| (i * 48271) % 5000 + 1).collect();
        check(&freqs, 8);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let freqs: Vec<u64> = (0..10_000u64).map(|i| i % 701 + 1).collect();
        let a = codeword_lengths(&freqs, 1).unwrap();
        let b = codeword_lengths(&freqs, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pointer_doubling_matches_sequential_sweep() {
        // A bamboo chain and a random tree both verify against the sweep.
        let chain: Vec<u32> = (0..100u32).map(|i| if i == 99 { u32::MAX } else { i + 1 }).collect();
        let pd = pointer_doubling_depths(&chain);
        for (i, &d) in pd.iter().enumerate() {
            assert_eq!(d as usize, 99 - i);
        }
        // Parent array from an actual Huffman build (parents have larger
        // ids, root is last).
        let mut parent = vec![u32::MAX; 2 * 500 - 1];
        let mut state = 17u64;
        for (id, p) in parent.iter_mut().enumerate().take(2 * 500 - 2) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lo = id as u32 + 1;
            let hi = (2 * 500 - 2) as u32;
            *p = lo + ((state >> 33) as u32 % (hi - lo + 1).max(1));
        }
        let pd = pointer_doubling_depths(&parent);
        let mut sweep = vec![0u32; parent.len()];
        for id in (0..parent.len() - 1).rev() {
            sweep[id] = sweep[parent[id] as usize] + 1;
        }
        assert_eq!(pd, sweep);
    }

    #[test]
    fn zero_frequencies_excluded() {
        let lens = codeword_lengths(&[4, 0, 4, 0, 2], 2).unwrap();
        assert_eq!(lens[1], 0);
        assert_eq!(lens[3], 0);
        assert!(lens[0] > 0);
    }

    #[test]
    fn single_symbol() {
        let lens = codeword_lengths(&[0, 3], 2).unwrap();
        assert_eq!(lens, vec![0, 1]);
    }

    #[test]
    fn empty_errors() {
        assert!(codeword_lengths(&[0, 0], 2).is_err());
    }

    #[test]
    fn synthetic_normal_histogram_65536() {
        // Table IV's largest case: a synthetic normal histogram with 65536
        // symbols (scaled down to keep the test fast but structurally
        // identical).
        let n = 65536usize;
        let freqs: Vec<u64> = (0..n)
            .map(|i| {
                let x = (i as f64 - n as f64 / 2.0) / (n as f64 / 8.0);
                ((-0.5 * x * x).exp() * 1e6) as u64 + 1
            })
            .collect();
        check(&freqs, 4);
    }
}
