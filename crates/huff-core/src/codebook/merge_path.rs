//! GPU Merge Path (Green, McColl, Bader) — partitioned parallel merge.
//!
//! `GenerateCL`'s PARMERGE step merges the selected leaf nodes with the
//! internal-node queue, both sorted by ascending frequency. The paper
//! customizes Merge Path for its structure-of-arrays node representation
//! and fuses it into the GenerateCL kernel (to avoid a 60 us kernel
//! launch), using a number of partitions proportional to the SM count; each
//! partition then merges serially. Practical complexity
//! `O(n/p + log n)`.

use rayon::prelude::*;

/// Find the Merge Path partition point for `diag`: the split `(i, j)` with
/// `i + j = diag` such that merging `a[..i]` and `b[..j]` yields the first
/// `diag` outputs. Binary search along the cross-diagonal.
pub fn diagonal_split<T: Ord>(a: &[T], b: &[T], diag: usize) -> (usize, usize) {
    debug_assert!(diag <= a.len() + b.len());
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = diag - i;
        // Stable merge taking from `a` first on ties: a[i] goes before b[j]
        // when a[i] <= b[j].
        if i < a.len() && j > 0 && a[i] < b[j - 1] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    (lo, diag - lo)
}

/// Serial stable merge of two sorted slices into `out` (ties take from `a`
/// first). Helper for each Merge Path partition.
fn serial_merge<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Statistics of one parallel merge, for the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Total elements merged.
    pub elements: usize,
    /// Partitions used.
    pub partitions: usize,
    /// Binary-search steps across all partition searches.
    pub search_steps: usize,
}

/// Merge two sorted slices with Merge Path over `partitions` partitions.
/// Stable: ties take from `a` first. Returns the merged vector and stats.
pub fn par_merge<T: Ord + Copy + Send + Sync>(
    a: &[T],
    b: &[T],
    partitions: usize,
) -> (Vec<T>, MergeStats) {
    let total = a.len() + b.len();
    if total == 0 {
        return (Vec::new(), MergeStats { elements: 0, partitions: 0, search_steps: 0 });
    }
    let partitions = partitions.clamp(1, total);
    let seed = a.first().or(b.first()).copied().expect("total > 0");
    let mut out = vec![seed; total];

    // Compute the diagonal splits, then fill disjoint output chunks in
    // parallel — each partition merges its slice serially, as on the GPU.
    let chunk = total.div_ceil(partitions);
    let splits: Vec<(usize, usize)> =
        (0..=partitions).map(|p| diagonal_split(a, b, (p * chunk).min(total))).collect();
    let search_steps = (partitions + 1) * (total.max(2).ilog2() as usize + 1);

    let mut out_slices: Vec<(usize, &mut [T])> = Vec::with_capacity(partitions);
    let mut rest: &mut [T] = &mut out;
    for p in 0..partitions {
        let (i0, j0) = splits[p];
        let (i1, j1) = splits[p + 1];
        let len = (i1 - i0) + (j1 - j0);
        let (head, tail) = rest.split_at_mut(len);
        out_slices.push((p, head));
        rest = tail;
    }
    out_slices.into_par_iter().for_each(|(p, slot)| {
        let (i0, j0) = splits[p];
        let (i1, j1) = splits[p + 1];
        serial_merge(&a[i0..i1], &b[j0..j1], slot);
    });

    (out, MergeStats { elements: total, partitions, search_steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_merge(a: &[u64], b: &[u64], partitions: usize) {
        let (m, stats) = par_merge(a, b, partitions);
        let mut expect: Vec<u64> = a.iter().chain(b).copied().collect();
        expect.sort_unstable();
        assert_eq!(m, expect, "a={a:?} b={b:?} p={partitions}");
        assert_eq!(stats.elements, a.len() + b.len());
    }

    #[test]
    fn merges_basic() {
        check_merge(&[1, 3, 5], &[2, 4, 6], 2);
        check_merge(&[1, 2, 3], &[4, 5, 6], 3);
        check_merge(&[4, 5, 6], &[1, 2, 3], 2);
    }

    #[test]
    fn empty_sides() {
        check_merge(&[], &[1, 2], 4);
        check_merge(&[1, 2], &[], 4);
        check_merge(&[], &[], 1);
    }

    #[test]
    fn duplicate_keys() {
        check_merge(&[1, 1, 2, 2], &[1, 2, 2, 3], 3);
    }

    #[test]
    fn stability_ties_take_left_first() {
        // Tag elements so we can observe stability: (key, origin).
        let a = [(1u64, 0u8), (2, 0)];
        let b = [(1u64, 1u8), (2, 1)];
        let (m, _) = par_merge(&a, &b, 2);
        assert_eq!(m, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn large_random_against_sort() {
        let a: Vec<u64> = {
            let mut v: Vec<u64> = (0..5000).map(|i| (i * 48271) % 10_000).collect();
            v.sort_unstable();
            v
        };
        let b: Vec<u64> = {
            let mut v: Vec<u64> = (0..3000).map(|i| (i * 16807) % 10_000).collect();
            v.sort_unstable();
            v
        };
        for p in [1, 7, 64] {
            check_merge(&a, &b, p);
        }
    }

    #[test]
    fn diagonal_split_extremes() {
        let a = [1u64, 3, 5];
        let b = [2u64, 4];
        assert_eq!(diagonal_split(&a, &b, 0), (0, 0));
        assert_eq!(diagonal_split(&a, &b, 5), (3, 2));
        let (i, j) = diagonal_split(&a, &b, 2);
        assert_eq!(i + j, 2);
    }

    #[test]
    fn partitions_clamped() {
        let (m, stats) = par_merge(&[1u64], &[2u64], 100);
        assert_eq!(m, vec![1, 2]);
        assert!(stats.partitions <= 2);
    }
}
