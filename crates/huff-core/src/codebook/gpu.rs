//! Codebook construction on the simulated device.
//!
//! Two paths, matching Table III:
//!
//! * [`parallel_on_gpu`] — "Ours": Thrust-style sort, then the
//!   `GenerateCL` and `GenerateCW` kernels, each launched once and
//!   internally grid-synced (Cooperative Groups), with canonization folded
//!   into `GenerateCW`.
//! * [`serial_on_gpu`] — "cuSZ (serial)": the serial heap construction run
//!   on a single device thread (latency-bound — the motivation experiment
//!   of Section II-C), followed by the partially-parallelized canonization
//!   kernel.

use super::generate_cl::generate_cl;
use super::generate_cw::generate_cw;
use super::CanonicalCodebook;
use crate::error::{HuffError, Result};
use gpu_sim::{Access, Gpu, GridDim};

/// Modeled per-phase times (seconds) of the parallel construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ParallelCodebookTimes {
    /// Histogram sort (Thrust stand-in).
    pub sort: f64,
    /// GenerateCL kernel.
    pub generate_cl: f64,
    /// GenerateCW kernel (canonization folded in).
    pub generate_cw: f64,
    /// Sum of the above.
    pub total: f64,
}

/// Modeled per-phase times (seconds) of the serial baseline on the device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SerialCodebookTimes {
    /// Single-thread tree + base-codebook construction.
    pub gen_codebook: f64,
    /// Canonization kernel.
    pub canonize: f64,
    /// Sum of the above.
    pub total: f64,
}

/// Build the canonical codebook with the paper's parallel two-phase
/// algorithm on the device, charging modeled time to `gpu`'s clock.
pub fn parallel_on_gpu(
    gpu: &Gpu,
    freqs: &[u64],
) -> Result<(CanonicalCodebook, ParallelCodebookTimes)> {
    let mut pairs: Vec<(u64, u16)> =
        freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(s, &f)| (f, s as u16)).collect();
    if pairs.is_empty() {
        return Err(HuffError::EmptyHistogram);
    }
    let n = pairs.len();
    let partitions = gpu.spec().sm_count as usize;

    // --- Sort kernel (Thrust) -----------------------------------------
    let (_, sort_cost) = gpu.launch_timed("codebook_sort", GridDim::cover(n, 256), |scope| {
        gpu_sim::sort::sort_pairs_by_key(scope, &mut pairs);
    });
    let sorted_freqs: Vec<u64> = pairs.iter().map(|&(f, _)| f).collect();

    // --- GenerateCL kernel ---------------------------------------------
    let ((cl, _stats), cl_cost) =
        gpu.launch_timed("generate_cl", GridDim::cover(n, 256), |scope| {
            let out = generate_cl(&sorted_freqs, partitions);
            let stats = out.1.clone();
            // Per-round regions: NewNodeFromSmallestTwo, leaf selection,
            // PARMERGE (partition + merge), MELD, UPDATELEAFNODE.
            let t = scope.traffic();
            for _ in 0..5 * stats.rounds {
                t.grid_sync();
            }
            // Structure-of-arrays node records: 16 B (freq + leader/aux).
            t.read(Access::Coalesced, stats.selection_scans, 16);
            t.read(Access::Coalesced, stats.merged_elements, 16);
            t.write(Access::Coalesced, stats.merged_elements, 16);
            t.write(Access::Coalesced, stats.melds, 24);
            t.read(Access::Coalesced, stats.leaf_updates, 12);
            t.write(Access::Coalesced, stats.leaf_updates / 2, 12);
            t.read(Access::Random, stats.search_steps, 8);
            t.ops(
                stats.selection_scans
                    + 2 * stats.merged_elements
                    + stats.melds
                    + 2 * stats.leaf_updates
                    + stats.search_steps,
            );
            // Atomic max on copy.size per selected leaf.
            t.global_atomic(stats.selection_scans / 4, stats.rounds);
            out
        });

    // Map lengths back to symbols and fix the within-level order to
    // ascending symbol, so the codebook matches `codebook::parallel` and is
    // reproducible from lengths alone.
    let mut lengths = vec![0u32; freqs.len()];
    for (i, &(_, s)) in pairs.iter().enumerate() {
        lengths[s as usize] = cl[i];
    }
    let mut order: Vec<u16> =
        (0..freqs.len()).filter(|&s| lengths[s] > 0).map(|s| s as u16).collect();
    order.sort_unstable_by_key(|&s| (lengths[s as usize], s));
    let cl_desc: Vec<u32> = order.iter().rev().map(|&s| lengths[s as usize]).collect();

    // --- GenerateCW kernel (canonization folded in) ----------------------
    let (cw, cw_cost) = gpu.launch_timed("generate_cw", GridDim::cover(n, 256), |scope| {
        let cw = generate_cw(&cl_desc)?;
        let t = scope.traffic();
        // PARREVERSE + per-level regions (assign, metadata) + final
        // reverse-codebook write.
        t.grid_sync();
        for _ in 0..2 * cw.levels {
            t.grid_sync();
        }
        t.read(Access::Coalesced, n as u64, 4);
        t.write(Access::Coalesced, n as u64, 12);
        t.write(Access::Coalesced, n as u64, 2); // reverse codebook
        t.ops(3 * n as u64 + u64::from(cw.levels));
        // ATOMICMIN per level boundary search.
        t.global_atomic(u64::from(cw.levels) * 32, u64::from(cw.levels));
        Ok::<_, HuffError>(cw)
    });
    let cw = cw?;
    let book = CanonicalCodebook::assemble(freqs.len(), &order, cw)?;

    let times = ParallelCodebookTimes {
        sort: sort_cost.total,
        generate_cl: cl_cost.total,
        generate_cw: cw_cost.total,
        total: sort_cost.total + cl_cost.total + cw_cost.total,
    };
    Ok((book, times))
}

/// Build the codebook with the *serial* algorithm on one device thread,
/// then canonize with the partially-parallelized canonization kernel — the
/// cuSZ baseline ("GEN. CODEBOOK" + "CANONIZE" in Table III).
pub fn serial_on_gpu(gpu: &Gpu, freqs: &[u64]) -> Result<(CanonicalCodebook, SerialCodebookTimes)> {
    let n = freqs.iter().filter(|&&f| f > 0).count() as u64;
    if n == 0 {
        return Err(HuffError::EmptyHistogram);
    }

    // Serial heap construction on one thread: every heap operation is a
    // chain of dependent global-memory accesses. Calibrated from the
    // access pattern of a binary-heap build-and-drain: ~1.6 dependent
    // accesses per element-level.
    let log_n = (n.max(2) as f64).log2();
    let dependent_accesses = (1.6 * n as f64 * log_n) as u64;
    let (base, gen_cost) = gpu.launch_timed("serial_gen_codebook", GridDim::new(1, 1), |scope| {
        scope.sequential(dependent_accesses, || super::serial::base_codebook(freqs))
    });
    let base = base?;

    // Canonization kernel: parallel scan + serial loose radix sort (RAW
    // dependency) + parallel reverse-codebook build (Section IV-B2; ~200 us
    // for 1024 codewords on the V100).
    let (canonize_out, canon_cost) =
        gpu.launch_timed("canonize", GridDim::cover(base.len(), 256), |scope| {
            let out = super::serial::canonize(&base);
            if let Ok((_, stats)) = &out {
                let t = scope.traffic();
                t.read(Access::Coalesced, stats.scan_ops, 8);
                t.global_atomic(stats.scan_ops / 8, 8);
                t.write(Access::Coalesced, stats.reverse_ops, 4);
                t.ops(stats.scan_ops + stats.reverse_ops);
                t.grid_sync();
                t.grid_sync();
                // The serial RAW radix chain: dependent accesses, partially
                // cached (≈0.4 global round trips per element).
                scope.traffic().sequential((stats.radix_ops as f64 * 0.4) as u64);
            }
            out
        });
    let (book, _stats) = canonize_out?;

    let times = SerialCodebookTimes {
        gen_codebook: gen_cost.total,
        canonize: canon_cost.total,
        total: gen_cost.total + canon_cost.total,
    };
    Ok((book, times))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;
    use gpu_sim::DeviceSpec;

    fn random_freqs(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i.wrapping_mul(6364136223846793005) >> 33) % 100_000 + 1).collect()
    }

    #[test]
    fn parallel_gpu_codebook_is_optimal() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let freqs = random_freqs(512);
        let (book, times) = parallel_on_gpu(&gpu, &freqs).unwrap();
        let reference = tree::codeword_lengths(&freqs).unwrap();
        assert_eq!(
            tree::weighted_length(&freqs, &book.lengths()),
            tree::weighted_length(&freqs, &reference)
        );
        assert!(times.generate_cl > 0.0);
        assert!(times.generate_cw > 0.0);
        assert!((times.total - (times.sort + times.generate_cl + times.generate_cw)).abs() < 1e-12);
    }

    #[test]
    fn serial_gpu_matches_parallel_totals() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let freqs = random_freqs(256);
        let (sbook, st) = serial_on_gpu(&gpu, &freqs).unwrap();
        let (pbook, _) = parallel_on_gpu(&gpu, &freqs).unwrap();
        assert_eq!(
            tree::weighted_length(&freqs, &sbook.lengths()),
            tree::weighted_length(&freqs, &pbook.lengths())
        );
        assert!(st.gen_codebook > 0.0);
        assert!(st.canonize > 0.0);
    }

    #[test]
    fn v100_parallel_time_in_paper_band_1024() {
        // Table III, Ours/V100, 1024 symbols: total 0.544 ms. Accept a
        // generous band — the shape (sub-millisecond, dominated by round
        // syncs) is what matters.
        let gpu = Gpu::v100();
        let freqs = random_freqs(1024);
        let (_, t) = parallel_on_gpu(&gpu, &freqs).unwrap();
        assert!(t.total > 0.1e-3 && t.total < 3.0e-3, "modeled {} s", t.total);
    }

    #[test]
    fn v100_serial_time_in_paper_band_8192() {
        // Table III, cuSZ/V100, 8192 symbols: ~59 ms gen + 1.4 ms canonize.
        let gpu = Gpu::v100();
        let freqs = random_freqs(8192);
        let (_, t) = serial_on_gpu(&gpu, &freqs).unwrap();
        assert!(t.gen_codebook > 20.0e-3 && t.gen_codebook < 200.0e-3, "gen {}", t.gen_codebook);
        assert!(t.canonize > 0.2e-3 && t.canonize < 5.0e-3, "canonize {}", t.canonize);
    }

    #[test]
    fn parallel_beats_serial_on_gpu_at_every_size() {
        // The headline of Table III: the parallel construction wins on the
        // GPU for all tested sizes, with the gap growing with n.
        let mut speedups = Vec::new();
        for n in [256usize, 1024, 4096] {
            let freqs = random_freqs(n);
            let g1 = Gpu::v100();
            let (_, ts) = serial_on_gpu(&g1, &freqs).unwrap();
            let g2 = Gpu::v100();
            let (_, tp) = parallel_on_gpu(&g2, &freqs).unwrap();
            assert!(ts.total > tp.total, "n={n}: serial {} <= parallel {}", ts.total, tp.total);
            speedups.push(ts.total / tp.total);
        }
        assert!(speedups.windows(2).all(|w| w[1] > w[0]), "speedup not growing: {speedups:?}");
    }

    #[test]
    fn empty_histogram_rejected() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        assert!(parallel_on_gpu(&gpu, &[0, 0]).is_err());
        assert!(serial_on_gpu(&gpu, &[0]).is_err());
    }
}
