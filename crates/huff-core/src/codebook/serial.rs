//! Serial codebook construction + standalone canonization — the cuSZ/SZ
//! baseline path of Table III ("GEN. CODEBOOK" + "CANONIZE").
//!
//! The baseline builds a Huffman *tree* serially, derives a base (tree)
//! codebook, and then runs a separate canonization pass producing the
//! canonical codebook and reverse codebook. The paper's contribution folds
//! canonization into GenerateCW; this module preserves the two-step
//! structure so the baseline's cost can be measured.

use super::CanonicalCodebook;
use crate::codeword::Codeword;
use crate::error::Result;
use crate::tree;

/// Statistics of a canonization pass (Section IV-B2's three phases).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CanonizeStats {
    /// Work of the linear scan of the base codebook (fine-grained with
    /// atomics on the GPU).
    pub scan_ops: u64,
    /// Work of the loose radix sort by bitwidth (intrinsically serial —
    /// RAW dependency).
    pub radix_ops: u64,
    /// Work of building the reverse codebook (fine-grained).
    pub reverse_ops: u64,
}

/// Build the base (tree-derived, non-canonical) codebook serially.
pub fn base_codebook(freqs: &[u64]) -> Result<Vec<Codeword>> {
    tree::tree_codebook(freqs)
}

/// Canonize a base codebook: keep every symbol's bitwidth, reassign bit
/// patterns canonically, and build the reverse codebook. Returns the
/// canonical codebook and the pass statistics.
pub fn canonize(base: &[Codeword]) -> Result<(CanonicalCodebook, CanonizeStats)> {
    // Phase 1: linear scan — collect bitwidths.
    let lengths: Vec<u32> = base.iter().map(|c| c.len()).collect();
    let coded = lengths.iter().filter(|&&l| l > 0).count() as u64;
    // Phase 2: loose radix sort by bitwidth (serial RAW chain): counting
    // sort over lengths.
    // Phase 3: reverse codebook construction.
    let book = CanonicalCodebook::from_lengths(&lengths)?;
    let stats = CanonizeStats {
        scan_ops: base.len() as u64,
        radix_ops: base.len() as u64 + u64::from(book.max_len()),
        reverse_ops: coded,
    };
    Ok((book, stats))
}

/// Full serial path: tree construction + canonization.
pub fn build(freqs: &[u64]) -> Result<CanonicalCodebook> {
    let base = base_codebook(freqs)?;
    let (book, _) = canonize(&base)?;
    Ok(book)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_build_matches_parallel_totals() {
        let freqs: Vec<u64> = (1..=500u64).map(|i| i.wrapping_mul(2654435761) % 1000 + 1).collect();
        let serial = build(&freqs).unwrap();
        let par = super::super::parallel(&freqs, 8).unwrap();
        assert_eq!(
            tree::weighted_length(&freqs, &serial.lengths()),
            tree::weighted_length(&freqs, &par.lengths())
        );
    }

    #[test]
    fn canonize_preserves_bitwidths() {
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let base = base_codebook(&freqs).unwrap();
        let (canon, stats) = canonize(&base).unwrap();
        for (b, c) in base.iter().zip(canon.codes()) {
            assert_eq!(b.len(), c.len(), "bitwidth changed during canonization");
        }
        assert_eq!(stats.scan_ops, 6);
        assert!(stats.reverse_ops == 6);
    }

    #[test]
    fn canonical_codes_differ_from_base_in_general() {
        // Canonization reassigns patterns; at least the metadata exists.
        let freqs = [1u64, 2, 4, 8, 16, 32];
        let base = base_codebook(&freqs).unwrap();
        let (canon, _) = canonize(&base).unwrap();
        assert!(canon.max_len() > 0);
        assert_eq!(canon.reverse().len(), 6);
    }

    #[test]
    fn compression_ratio_identical_to_base() {
        // Section IV-B2: canonical codebook maintains exactly the same
        // compression ratio as the base codebook.
        let freqs: Vec<u64> = vec![100, 50, 25, 12, 6, 3, 2, 1];
        let base = base_codebook(&freqs).unwrap();
        let (canon, _) = canonize(&base).unwrap();
        let base_bits: u64 = freqs.iter().zip(&base).map(|(&f, c)| f * u64::from(c.len())).sum();
        let canon_bits: u64 =
            freqs.iter().zip(canon.codes()).map(|(&f, c)| f * u64::from(c.len())).sum();
        assert_eq!(base_bits, canon_bits);
    }
}
