//! `GenerateCL` — parallel codeword-length construction (Algorithm 1,
//! first phase), after Ostadzadeh et al.
//!
//! Input: the histogram sorted by ascending frequency. Output: the Huffman
//! codeword length of each (sorted-position) symbol. The construction
//! proceeds in rounds; each round:
//!
//! 1. melds the two smallest live nodes into a new internal node `t`
//!    (`NewNodeFromSmallestTwo`);
//! 2. selects, in parallel, every remaining *leaf* whose frequency is below
//!    `t.freq` (all remaining *internal* nodes qualify automatically: the
//!    two-queue property guarantees internal nodes are created with
//!    non-decreasing frequencies, so every live internal node except `t`
//!    has frequency ≤ `t.freq`);
//! 3. merges the selected leaves with the internal queue via
//!    [Merge Path](super::merge_path) (`PARMERGE`) — both inputs sorted
//!    ascending, trailing element dropped if the count is odd;
//! 4. melds adjacent pairs of the merged sequence in parallel (`MELD`),
//!    appending the new internal nodes in order (their sums are ≥ `t.freq`,
//!    so the internal queue stays sorted);
//! 5. updates every leaf's codeword length and leader pointer in parallel
//!    (`UPDATELEAFNODE`): a leaf whose leader was melded this round gets
//!    `CL += 1` and a new topmost leader.
//!
//! The PRAM complexity is `O(H · log log (n/H))`; the Merge-Path
//! realization makes it `O(n/p + log n)` per round in practice
//! (Section IV-B1).

use super::merge_path::{par_merge, MergeStats};
use rayon::prelude::*;
use std::collections::VecDeque;

/// A node reference in the merged eligible sequence: either a leaf (by
/// sorted position) or an internal node (by id). Ordering: frequency
/// ascending, leaves before internals on ties (matching the serial heap's
/// creation-order tie-break), then index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Elem {
    freq: u64,
    /// 0 = leaf, 1 = internal — leaves sort first on frequency ties.
    kind: u8,
    idx: u32,
}

/// Execution statistics of one GenerateCL run, consumed by the GPU cost
/// model (every round is a handful of grid-synced parallel regions).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClStats {
    /// Rounds of the outer while loop.
    pub rounds: u64,
    /// Total elements passed through PARMERGE.
    pub merged_elements: u64,
    /// Total MELD operations.
    pub melds: u64,
    /// Total leaf-update scans (rounds × n).
    pub leaf_updates: u64,
    /// Total leaf-selection scans.
    pub selection_scans: u64,
    /// Merge Path partition binary-search steps.
    pub search_steps: u64,
}

/// Compute Huffman codeword lengths for frequencies sorted ascending.
///
/// `partitions` is the Merge-Path partition count (the paper uses a number
/// of thread blocks proportional to the SM count). Returns one length per
/// input position plus run statistics.
///
/// # Panics
/// Panics if `sorted_freqs` is unsorted, empty, or contains zeros (callers
/// strip absent symbols first).
pub fn generate_cl(sorted_freqs: &[u64], partitions: usize) -> (Vec<u32>, ClStats) {
    let n = sorted_freqs.len();
    assert!(n > 0, "GenerateCL requires at least one symbol");
    assert!(sorted_freqs.windows(2).all(|w| w[0] <= w[1]), "frequencies must be sorted ascending");
    assert!(sorted_freqs.iter().all(|&f| f > 0), "zero frequencies must be stripped");

    let mut stats = ClStats::default();
    let mut cl = vec![0u32; n];
    if n == 1 {
        cl[0] = 1;
        return (cl, stats);
    }

    // leader[i]: id of leaf i's topmost internal ancestor, or NONE.
    const NONE: u32 = u32::MAX;
    let mut leader = vec![NONE; n];
    // parent_of[id]: id of the internal node `id` was melded into, or NONE.
    let mut parent_of: Vec<u32> = Vec::new();
    let mut inode_freq: Vec<u64> = Vec::new();

    // Live internal nodes, ascending frequency (two-queue invariant).
    let mut inodes: VecDeque<u32> = VecDeque::new();
    // Next unconsumed leaf (leaves are consumed in sorted order).
    let mut c = 0usize;

    // Meld two elements into a fresh internal node, wiring leaders/parents.
    let meld = |x: Elem,
                y: Elem,
                leader: &mut [u32],
                parent_of: &mut Vec<u32>,
                inode_freq: &mut Vec<u64>|
     -> u32 {
        let id = {
            let id = parent_of.len() as u32;
            parent_of.push(NONE);
            inode_freq.push(x.freq + y.freq);
            id
        };
        for e in [x, y] {
            if e.kind == 0 {
                leader[e.idx as usize] = id;
            } else {
                parent_of[e.idx as usize] = id;
            }
        }
        id
    };

    while c < n || inodes.len() > 1 {
        stats.rounds += 1;

        // --- 1. NewNodeFromSmallestTwo -------------------------------
        let mut candidates: Vec<Elem> = Vec::with_capacity(4);
        if c < n {
            candidates.push(Elem { freq: sorted_freqs[c], kind: 0, idx: c as u32 });
        }
        if c + 1 < n {
            candidates.push(Elem { freq: sorted_freqs[c + 1], kind: 0, idx: (c + 1) as u32 });
        }
        for &id in inodes.iter().take(2) {
            candidates.push(Elem { freq: inode_freq[id as usize], kind: 1, idx: id });
        }
        candidates.sort_unstable();
        debug_assert!(candidates.len() >= 2, "loop invariant guarantees two live nodes");
        let (s1, s2) = (candidates[0], candidates[1]);
        for e in [s1, s2] {
            if e.kind == 0 {
                c += 1;
            } else {
                let front = inodes.pop_front().expect("internal candidate from queue");
                debug_assert_eq!(front, e.idx);
            }
        }
        let t_freq = s1.freq + s2.freq;
        let t_id = meld(s1, s2, &mut leader, &mut parent_of, &mut inode_freq);

        // --- 2. Select eligible leaves (freq < t.freq) ----------------
        // Leaves are sorted, so the selection is a prefix of [c..n).
        stats.selection_scans += (n - c) as u64;
        let copy_end = sorted_freqs[c..].partition_point(|&f| f < t_freq) + c;
        let copy: Vec<Elem> =
            (c..copy_end).map(|i| Elem { freq: sorted_freqs[i], kind: 0, idx: i as u32 }).collect();

        // --- 3. PARMERGE with the internal queue (excluding t) --------
        let internals: Vec<Elem> = inodes
            .iter()
            .map(|&id| Elem { freq: inode_freq[id as usize], kind: 1, idx: id })
            .collect();
        let (mut eligible, mstats): (Vec<Elem>, MergeStats) =
            par_merge(&copy, &internals, partitions);
        stats.merged_elements += mstats.elements as u64;
        stats.search_steps += mstats.search_steps as u64;

        // Parity: MELD pairs everything, so drop the largest element when
        // odd. A dropped leaf stays unconsumed; a dropped internal stays in
        // the queue (it is the queue's back, preserving sortedness).
        let dropped = if eligible.len() % 2 == 1 { eligible.pop() } else { None };
        let consumed_leaves = eligible.iter().filter(|e| e.kind == 0).count();
        c += consumed_leaves;
        // All merged internals leave the queue; push back a dropped one.
        let melded_internals = eligible.iter().filter(|e| e.kind == 1).count();
        for _ in 0..melded_internals + usize::from(matches!(dropped, Some(d) if d.kind == 1)) {
            inodes.pop_front();
        }
        inodes.push_back(t_id);
        if let Some(d) = dropped {
            if d.kind == 1 {
                // Dropped internal: re-queue *before* t? Its frequency is
                // ≤ t.freq, so it belongs in front of t.
                let t = inodes.pop_back().expect("t just pushed");
                inodes.push_back(d.idx);
                inodes.push_back(t);
            }
        }

        // --- 4. MELD adjacent pairs in parallel -----------------------
        for pair in eligible.chunks_exact(2) {
            stats.melds += 1;
            let id = meld(pair[0], pair[1], &mut leader, &mut parent_of, &mut inode_freq);
            inodes.push_back(id);
        }

        // --- 5. UPDATELEAFNODE: bump CL for re-parented leaves --------
        stats.leaf_updates += n as u64;
        let parent_snapshot = &parent_of;
        cl.par_iter_mut().zip(leader.par_iter_mut()).for_each(|(cl_i, leader_i)| {
            if *leader_i == NONE {
                return;
            }
            if *cl_i == 0 {
                // Leaf consumed this round: depth 1 under its new parent.
                *cl_i = 1;
            }
            // Follow the (≤ 1-step per round, loop for safety) parent chain.
            while parent_snapshot[*leader_i as usize] != NONE {
                *leader_i = parent_snapshot[*leader_i as usize];
                *cl_i += 1;
            }
        });
    }

    (cl, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;

    /// Sorted-order lengths from the serial reference, for comparison.
    fn reference_sorted_lengths(sorted_freqs: &[u64]) -> Vec<u32> {
        tree::codeword_lengths(sorted_freqs).expect("nonempty")
    }

    fn check_optimal(sorted_freqs: &[u64]) {
        let (cl, _) = generate_cl(sorted_freqs, 4);
        let reference = reference_sorted_lengths(sorted_freqs);
        // Huffman lengths are not unique under ties, but the weighted total
        // and the Kraft equality are invariant.
        let ours = tree::weighted_length(sorted_freqs, &cl);
        let theirs = tree::weighted_length(sorted_freqs, &reference);
        assert_eq!(ours, theirs, "suboptimal lengths {cl:?} vs {reference:?} for {sorted_freqs:?}");
        assert_eq!(tree::kraft_sum(&cl), 1u128 << 64, "Kraft violated: {cl:?}");
    }

    #[test]
    fn textbook_example() {
        let (cl, _) = generate_cl(&[1, 1, 2, 4], 2);
        assert_eq!(cl, vec![3, 3, 2, 1]);
    }

    #[test]
    fn two_symbols() {
        let (cl, _) = generate_cl(&[3, 7], 2);
        assert_eq!(cl, vec![1, 1]);
    }

    #[test]
    fn single_symbol_convention() {
        let (cl, _) = generate_cl(&[42], 2);
        assert_eq!(cl, vec![1]);
    }

    #[test]
    fn uniform_power_of_two() {
        let (cl, _) = generate_cl(&[7; 16], 4);
        assert!(cl.iter().all(|&l| l == 4), "{cl:?}");
    }

    #[test]
    fn fibonacci_deep_tree() {
        let freqs = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89];
        check_optimal(&freqs);
        let (cl, _) = generate_cl(&freqs, 4);
        assert_eq!(*cl.iter().max().unwrap(), 10);
    }

    #[test]
    fn equal_frequencies_many() {
        check_optimal(&[5; 100]);
        check_optimal(&[1; 3]);
        check_optimal(&[1; 7]);
    }

    #[test]
    fn optimality_on_pseudorandom_inputs() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for trial in 0..40 {
            let n = 2 + (trial * 37) % 300;
            let mut freqs: Vec<u64> = (0..n)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) % 10_000 + 1
                })
                .collect();
            freqs.sort_unstable();
            check_optimal(&freqs);
        }
    }

    #[test]
    fn geometric_like_distribution() {
        // Shape typical of quantization codes: one dominant symbol.
        let mut freqs = vec![1u64, 2, 4, 8, 16, 32, 64, 128, 100_000];
        freqs.sort_unstable();
        check_optimal(&freqs);
    }

    #[test]
    fn lengths_nonincreasing_in_frequency() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let (cl, _) = generate_cl(&freqs, 8);
        // Sorted ascending by frequency => lengths non-increasing.
        assert!(cl.windows(2).all(|w| w[0] >= w[1]), "{cl:?}");
    }

    #[test]
    fn stats_populated() {
        let (_, stats) = generate_cl(&[1, 2, 3, 4, 5, 6, 7, 8], 2);
        assert!(stats.rounds > 0);
        assert!(stats.leaf_updates >= stats.rounds * 8);
        assert!(stats.melds > 0);
    }

    #[test]
    fn partition_count_does_not_change_result() {
        let freqs: Vec<u64> = (1..200u64).collect();
        let (a, _) = generate_cl(&freqs, 1);
        let (b, _) = generate_cl(&freqs, 13);
        let (c, _) = generate_cl(&freqs, 128);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_input_rejected() {
        let _ = generate_cl(&[5, 1], 2);
    }

    #[test]
    #[should_panic(expected = "zero frequencies")]
    fn zero_frequency_rejected() {
        let _ = generate_cl(&[0, 1], 2);
    }
}
