//! Deterministic fault injection for archive robustness testing.
//!
//! The integrity subsystem ([`crate::integrity`]) makes promises — strict
//! mode never accepts a damaged archive, best-effort mode recovers
//! exactly the undamaged chunks, and nothing ever panics. Promises need
//! an adversary: this module provides one, as a small deterministic fault
//! model the `fault_injection` test suite sweeps over every container
//! section (via [`crate::archive::layout`]). It lives in the library
//! rather than a test file so CLI tests and downstream users can reuse
//! the same fault model.
//!
//! Everything here is deterministic: the same archive and the same fault
//! always produce the same corrupted bytes.

use std::ops::Range;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR one bit: `bytes[offset] ^= 1 << bit`.
    BitFlip {
        /// Byte offset into the archive.
        offset: usize,
        /// Bit index, 0–7.
        bit: u8,
    },
    /// Swap the bytes at two offsets.
    ByteSwap {
        /// First offset.
        a: usize,
        /// Second offset.
        b: usize,
    },
    /// Truncate the archive to `len` bytes.
    Truncate {
        /// New length.
        len: usize,
    },
}

/// Apply `fault` to `bytes` in place.
///
/// Returns `true` when the bytes actually changed — a swap of two equal
/// bytes, an out-of-range offset, or a truncation at or past the current
/// length are no-ops, and a sweep must not assert "detects corruption"
/// on an archive that was never corrupted.
pub fn apply(bytes: &mut Vec<u8>, fault: &Fault) -> bool {
    match *fault {
        Fault::BitFlip { offset, bit } => {
            if offset >= bytes.len() || bit > 7 {
                return false;
            }
            bytes[offset] ^= 1 << bit;
            true
        }
        Fault::ByteSwap { a, b } => {
            if a >= bytes.len() || b >= bytes.len() || bytes[a] == bytes[b] {
                return false;
            }
            bytes.swap(a, b);
            true
        }
        Fault::Truncate { len } => {
            if len >= bytes.len() {
                return false;
            }
            bytes.truncate(len);
            true
        }
    }
}

/// A representative deterministic fault set for one archive section.
///
/// Covers: single-bit flips (low, middle, high bit) at the section's
/// first, middle and last bytes; a byte swap across the section; and
/// truncations at the section start and middle. Empty sections yield no
/// faults.
pub fn sweep(section: &Range<usize>) -> Vec<Fault> {
    if section.is_empty() {
        return Vec::new();
    }
    let first = section.start;
    let last = section.end - 1;
    let mid = section.start + section.len() / 2;
    let mut faults = vec![
        Fault::BitFlip { offset: first, bit: 0 },
        Fault::BitFlip { offset: mid, bit: 3 },
        Fault::BitFlip { offset: last, bit: 7 },
        Fault::Truncate { len: first },
        Fault::Truncate { len: mid },
    ];
    if section.len() >= 2 {
        faults.push(Fault::ByteSwap { a: first, b: last });
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip_round_trips() {
        let mut b = vec![0u8; 4];
        assert!(apply(&mut b, &Fault::BitFlip { offset: 2, bit: 5 }));
        assert_eq!(b, [0, 0, 0x20, 0]);
        assert!(apply(&mut b, &Fault::BitFlip { offset: 2, bit: 5 }));
        assert_eq!(b, [0, 0, 0, 0]);
    }

    #[test]
    fn out_of_range_faults_are_noops() {
        let mut b = vec![1u8, 2, 3];
        assert!(!apply(&mut b, &Fault::BitFlip { offset: 3, bit: 0 }));
        assert!(!apply(&mut b, &Fault::ByteSwap { a: 0, b: 9 }));
        assert!(!apply(&mut b, &Fault::Truncate { len: 3 }));
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    fn equal_byte_swap_reports_unchanged() {
        let mut b = vec![7u8, 7];
        assert!(!apply(&mut b, &Fault::ByteSwap { a: 0, b: 1 }));
    }

    #[test]
    fn truncate_shortens() {
        let mut b = vec![1u8, 2, 3, 4];
        assert!(apply(&mut b, &Fault::Truncate { len: 1 }));
        assert_eq!(b, [1]);
    }

    #[test]
    fn sweep_covers_section() {
        let faults = sweep(&(10..20));
        assert!(faults.len() >= 6);
        for f in &faults {
            match *f {
                Fault::BitFlip { offset, .. } => assert!((10..20).contains(&offset)),
                Fault::ByteSwap { a, b } => {
                    assert!((10..20).contains(&a) && (10..20).contains(&b))
                }
                Fault::Truncate { len } => assert!((10..20).contains(&len)),
            }
        }
        assert!(sweep(&(5..5)).is_empty());
    }
}
