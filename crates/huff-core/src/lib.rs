//! # huff-core — reduce-shuffle GPU Huffman encoding
//!
//! A full reimplementation of the system described in *"Revisiting Huffman
//! Coding: Toward Extreme Performance on Modern GPU Architectures"*
//! (Tian et al., IPDPS 2021): a four-stage Huffman **encoder** designed for
//! massive fine-grained parallelism —
//!
//! 1. **histogramming** ([`histogram`]) — Gómez-Luna replicated
//!    shared-memory histograms;
//! 2. **codebook construction** ([`codebook`]) — the two-phase parallel
//!    canonical construction (`GenerateCL`/`GenerateCW` after Ostadzadeh et
//!    al., with Merge-Path `PARMERGE`), scaling to the large codebooks
//!    (1024-65536 symbols) that error-bounded lossy compressors and k-mer
//!    pipelines need;
//! 3. **canonization** — folded into `GenerateCW`, producing the
//!    `First`/`Entry` metadata for treeless decoding;
//! 4. **encoding** ([`encode`]) — the novel `ReduceShuffleMerge<M, r>`
//!    scheme: merge `2^r` codewords per thread (REDUCE), then densify by
//!    `s = M - r` contention-free batched moves (SHUFFLE), with breaking
//!    units stored sparsely ([`sparse`]).
//!
//! Baselines from the paper's evaluation are included: the serial and
//! multithreaded CPU encoders, cuSZ's coarse-grained GPU encoder, and the
//! Rahmani prefix-sum GPU encoder. [`decode`] provides treeless canonical,
//! tree-walking, and parallel chunked decoders; [`archive`] wraps
//! everything into a `compress`/`decompress` container with CRC32
//! integrity checking and best-effort chunk recovery ([`integrity`],
//! exercised by the deterministic fault model in [`testing`]).
//!
//! "GPU" here is the [`gpu_sim`] substrate: all transformations are
//! bit-exact host computations; device *time* is modeled from the memory
//! traffic each kernel reports (see that crate's docs and DESIGN.md).
//!
//! ```
//! use huff_core::archive::{compress, decompress, CompressOptions};
//!
//! let data: Vec<u16> = (0..10_000).map(|i| (i % 7) as u16).collect();
//! let packed = compress(&data, &CompressOptions::new(256)).unwrap();
//! assert!(packed.len() < data.len()); // 7 symbols compress well below 2 B each
//! assert_eq!(decompress(&packed).unwrap(), data);
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod batch;
pub mod bitstream;
pub mod codebook;
pub mod codeword;
pub mod decode;
pub mod encode;
pub mod entropy;
pub mod error;
pub mod frame;
pub mod histogram;
pub mod integrity;
pub mod kernels;
pub mod metrics;
pub mod pipeline;
pub mod plan;
pub mod seek;
pub mod serve;
pub mod slo;
pub mod sparse;
pub mod testing;
pub mod tree;
pub mod tune;

pub use batch::{compress_batched, BatchOptions, BatchReport};
pub use codebook::{parallel as build_codebook, CanonicalCodebook};
pub use codeword::Codeword;
pub use decode::DecoderKind;
pub use encode::{BreakingStrategy, ChunkedStream, EncodedStream, MergeConfig};
pub use error::{HuffError, Result};
pub use integrity::{
    DecompressOptions, RangeDecode, Recovered, RecoveryMode, RecoveryReport, Section, Verify,
};
pub use metrics::{PipelineProfile, StageMetrics, TRACE_SCHEMA};
pub use plan::KernelPlan;
pub use seek::ChunkIndex;
pub use serve::{ChaosConfig, Engine, EngineConfig, Outcome, Request, ServeReport};
pub use slo::{Objective, SloReport, SloStatus, SLO_SCHEMA};
pub use tune::{Decision, Dispatch, Signature, TuneCache, Tuner};
