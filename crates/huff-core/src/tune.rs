//! Adaptive autotuner: histogram signature → modeled sweep → dispatch
//! decision, with an on-disk tuning cache.
//!
//! The paper picks its reduction factor from the input's histogram
//! (Fig. 3's rule) and PR 4 modeled the LUT-vs-bit-serial decoder
//! crossover at ~3 average bits — but until this module every knob
//! (`r`, shards, streams, [`DecoderKind`]) was a fixed CLI default. The
//! autotuner closes the loop:
//!
//! 1. **Signature** ([`Signature`]) — a compact, quantized description of
//!    the input's symbol statistics: coded symbol count, average/maximum
//!    codeword bitwidth, Shannon entropy, incompressibility ratio and a
//!    power-of-two size class. Quantization makes the signature a stable
//!    cache key: two inputs with the same statistics tune identically.
//! 2. **Modeled sweep** ([`plan`]) — candidate reduction factors
//!    (Fig. 3's `r` ± 1), shard counts and stream counts are scored with
//!    the existing analytic cost model ([`gpu_sim::cost::estimate`]) on
//!    the target [`DeviceSpec`]; the decoder is chosen by the same
//!    ledger comparison that located the ~3-avg-bit crossover. The fixed
//!    CLI default geometry is always in the candidate set and wins ties
//!    (a 10 % hysteresis), so an autotuned run never models slower than
//!    the default it replaces.
//! 3. **Dispatch early exits** — incompressible inputs (expected output
//!    ≥ [`STORE_RAW_THRESHOLD`] of raw) skip the encoder entirely and
//!    are stored in the tiny `RSHR` raw container ([`store_raw`]); tiny
//!    inputs (below [`SMALL_INPUT_SYMBOLS`]) are not worth a single
//!    kernel launch and run the CPU-serial path.
//! 4. **Tuning cache** ([`TuneCache`], file schema
//!    [`TUNE_CACHE_SCHEMA`] = `rsh-tune-v1`) — decisions are persisted
//!    keyed by signature + device name, so a serving process warms up:
//!    the first request models the sweep, later requests hit the cache.
//!    The reader contract (FORMAT.md §9) is fail-open: unknown versions,
//!    checksum mismatches and truncated entries fall back to modeling,
//!    never fail the request.
//!
//! Byte-identity is by construction: [`compress_with_decision`] is the
//! single compress entry point for both the autotuned path and a caller
//! passing the same parameters explicitly, so `--autotune` changes which
//! parameters run, never what bytes they produce.
//!
//! ```
//! use huff_core::tune::{Tuner, Dispatch};
//! use gpu_sim::DeviceSpec;
//!
//! let data: Vec<u16> = (0..20_000).map(|i| (i % 37) as u16).collect();
//! let mut tuner = Tuner::new(DeviceSpec::v100());
//! let (bytes, decision, hit) = tuner.compress(&data, 64, 2).unwrap();
//! assert!(!hit, "first call models the sweep");
//! assert_eq!(decision.dispatch, Dispatch::Gpu);
//! assert_eq!(huff_core::archive::decompress(&bytes).unwrap(), data);
//! // Same statistics → cache hit, identical decision, identical bytes.
//! let (bytes2, decision2, hit2) = tuner.compress(&data, 64, 2).unwrap();
//! assert!(hit2);
//! assert_eq!(decision, decision2);
//! assert_eq!(bytes, bytes2);
//! ```

use crate::archive::{self, CompressOptions};
use crate::batch::{self, BatchOptions};
use crate::codebook;
use crate::decode::DecoderKind;
use crate::encode::BreakingStrategy;
use crate::entropy;
use crate::error::{HuffError, Result};
use crate::histogram;
use crate::integrity::{
    crc32, DecompressOptions, RangeDecode, Recovered, RecoveryMode, RecoveryReport, Verify,
};
use crate::plan::KernelPlan;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gpu_sim::cost;
use gpu_sim::{Access, DeviceSpec, KernelRecord, StreamSchedule, Traffic};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Version tag of the on-disk tuning-cache schema (FORMAT.md §9).
pub const TUNE_CACHE_SCHEMA: &str = "rsh-tune-v1";

/// Store-raw early exit: when the expected compressed size is at least
/// this fraction of the raw input, Huffman coding cannot pay for its own
/// pipeline and the input is stored in the `RSHR` raw container.
pub const STORE_RAW_THRESHOLD: f64 = 0.95;

/// Small-input early exit: inputs below this many symbols are not worth
/// a single kernel launch (one V100 launch is ~60 µs; compressing 4 Ki
/// symbols serially on the host is modeled faster) and run CPU-serial.
pub const SMALL_INPUT_SYMBOLS: u64 = 4096;

/// Modeled single-thread CPU encode throughput, input bytes per second.
/// Follows the paper's serial CPU encoder baseline (Table III narrative:
/// hundreds of MB/s); used only to model the [`Dispatch::CpuSerial`]
/// service time — the host work itself is real and bit-exact.
pub const CPU_SERIAL_BYTES_PER_SEC: f64 = 0.35e9;

/// Modeled host-side cost of one full candidate sweep ([`plan`]). A
/// serving engine charges this once per cache miss and never on a hit —
/// the observable "warm-up" the tuning cache buys.
pub const MODEL_SWEEP_SECONDS: f64 = 250.0e-6;

/// Keep the fixed default geometry unless a candidate models at least
/// this much faster (fractional win). The tuner's synthetic per-shard
/// ledgers track the real pipeline's replayed makespan to roughly ±15%
/// (DESIGN.md § "Tuning policy" tabulates the calibration), so a
/// deviation is only trusted when the modeled win clears that error
/// band — this is what makes the "autotuned never loses to the default"
/// contract hold near ties.
const GEOMETRY_HYSTERESIS: f64 = 0.20;

/// Shard-count candidates for the geometry sweep.
const SHARD_CANDIDATES: [u32; 5] = [1, 2, 4, 8, 16];

/// Stream-count candidates for the geometry sweep.
const STREAM_CANDIDATES: [u32; 3] = [1, 2, 4];

/// A shard below this many symbols pays more in per-shard fixed cost
/// (codebook + launches) than it can win back in overlap; candidates
/// that would shard finer are skipped.
const MIN_SHARD_SYMBOLS: u64 = 4096;

/// Chunk magnitude the tuner plans for (the library-wide default `M`).
const MAGNITUDE: u32 = 10;

// ---------------------------------------------------------------------------
// Signature
// ---------------------------------------------------------------------------

/// A compact, quantized description of an input's symbol statistics —
/// the cache key (together with the device name) and the sole input to
/// [`plan`].
///
/// Fields are quantized (centibits, permille, power-of-two size class)
/// so that inputs with indistinguishable statistics map to the same key
/// and the cache actually hits; the exact definition is documented in
/// DESIGN.md § "Tuning policy".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Signature {
    /// Symbols with nonzero frequency (the coded alphabet size).
    pub coded_symbols: u32,
    /// Frequency-weighted average codeword bitwidth, in centibits
    /// (`round(β × 100)`).
    pub avg_centibits: u32,
    /// Longest codeword in the canonical codebook, bits.
    pub max_bits: u32,
    /// Shannon entropy of the histogram, in centibits.
    pub entropy_centibits: u32,
    /// Incompressibility ratio in permille: expected output bits per raw
    /// input bit, `round(β / (8 × symbol_bytes) × 1000)`.
    pub ratio_permille: u32,
    /// `floor(log2(n))` of the input length in symbols.
    pub size_class: u32,
    /// Native symbol width (1 or 2 bytes).
    pub symbol_bytes: u8,
}

impl Signature {
    /// Derive a signature from a histogram and its codeword lengths.
    pub fn from_stats(freqs: &[u64], lengths: &[u32], input_len: usize, symbol_bytes: u8) -> Self {
        let avg = entropy::average_bitwidth(freqs, lengths);
        let ent = entropy::shannon_entropy(freqs);
        let raw_bits = f64::from(symbol_bytes) * 8.0;
        Signature {
            coded_symbols: freqs.iter().filter(|&&f| f > 0).count() as u32,
            avg_centibits: (avg * 100.0).round() as u32,
            max_bits: freqs
                .iter()
                .zip(lengths)
                .filter(|(&f, _)| f > 0)
                .map(|(_, &l)| l)
                .max()
                .unwrap_or(0),
            entropy_centibits: (ent * 100.0).round() as u32,
            ratio_permille: (avg / raw_bits * 1000.0).round() as u32,
            size_class: (input_len.max(1) as f64).log2().floor() as u32,
            symbol_bytes,
        }
    }

    /// Measure an input: real histogram + canonical codebook, then
    /// [`Signature::from_stats`]. This is the same statistics pass the
    /// compressor runs, so the signature describes exactly the codebook
    /// the encode would use.
    pub fn measure(symbols: &[u16], num_symbols: usize, symbol_bytes: u8) -> Result<Self> {
        let freqs =
            histogram::parallel_cpu::histogram(symbols, num_symbols, rayon::current_num_threads());
        let book = codebook::parallel(&freqs, 16)?;
        Ok(Signature::from_stats(&freqs, &book.lengths(), symbols.len(), symbol_bytes))
    }

    /// Average codeword bitwidth `β`, bits.
    pub fn avg_bits(&self) -> f64 {
        f64::from(self.avg_centibits) / 100.0
    }

    /// Expected output bits per raw input bit (≥ ~1.0 means the input is
    /// effectively incompressible).
    pub fn incompressibility(&self) -> f64 {
        f64::from(self.ratio_permille) / 1000.0
    }

    /// The representative input length of this size class, symbols
    /// (`2^size_class`, the bucket's lower bound). [`plan`] models the
    /// sweep at this length so every input in the class shares one
    /// decision.
    pub fn representative_symbols(&self) -> u64 {
        1u64 << self.size_class.min(62)
    }
}

// ---------------------------------------------------------------------------
// Decision
// ---------------------------------------------------------------------------

/// Which execution path serves the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// The batched GPU pipeline ([`crate::batch`]): the normal path.
    Gpu,
    /// Single-threaded host compress ([`crate::archive::compress`]) —
    /// inputs too small to amortize a kernel launch.
    CpuSerial,
    /// The `RSHR` raw container ([`store_raw`]) — incompressible inputs.
    StoreRaw,
}

impl Dispatch {
    /// Stable lowercase name (metrics label, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Gpu => "gpu",
            Dispatch::CpuSerial => "cpu_serial",
            Dispatch::StoreRaw => "store_raw",
        }
    }

    fn code(self) -> u8 {
        match self {
            Dispatch::Gpu => 0,
            Dispatch::CpuSerial => 1,
            Dispatch::StoreRaw => 2,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Dispatch::Gpu),
            1 => Some(Dispatch::CpuSerial),
            2 => Some(Dispatch::StoreRaw),
            _ => None,
        }
    }
}

/// The tuner's answer for one signature + device: everything
/// [`compress_with_decision`] needs to run the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Execution path.
    pub dispatch: Dispatch,
    /// Reduction factor `r` (0 for [`Dispatch::StoreRaw`], where no
    /// merge runs).
    pub reduction: u32,
    /// Shards the input is split into ([`Dispatch::Gpu`] only; 1
    /// otherwise).
    pub shards: u32,
    /// Streams per device ([`Dispatch::Gpu`] only; 1 otherwise).
    pub streams: u32,
    /// Recommended decode backend for the produced container.
    pub decoder: DecoderKind,
    /// Kernel-fusion plan the modeled sweep chose ([`Dispatch::Gpu`]
    /// only; the default plan otherwise).
    pub plan: KernelPlan,
    /// Modeled service time of this decision, nanoseconds (quantized so
    /// cache round-trips are exact).
    pub modeled_nanos: u64,
}

impl Decision {
    /// Modeled service time, seconds.
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled_nanos as f64 * 1e-9
    }
}

fn decoder_code(k: DecoderKind) -> u8 {
    match k {
        DecoderKind::Serial => 0,
        DecoderKind::Chunked => 1,
        DecoderKind::Lut => 2,
    }
}

fn decoder_from_code(c: u8) -> Option<DecoderKind> {
    match c {
        0 => Some(DecoderKind::Serial),
        1 => Some(DecoderKind::Chunked),
        2 => Some(DecoderKind::Lut),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The modeled sweep
// ---------------------------------------------------------------------------

/// Wrap a priced [`Traffic`] ledger as a replayable [`KernelRecord`].
/// `elems` sizes the launch grid (256 threads × 4 elements per thread),
/// which in turn sets the kernel's occupancy weight in the stream
/// scheduler's contention factor — a shard pass over few elements claims
/// a small slice of bandwidth, a device-filling pass claims it all.
fn pass_record(
    spec: &DeviceSpec,
    name: &str,
    traffic: Traffic,
    elems: u64,
    launch: bool,
) -> KernelRecord {
    let cost = cost::estimate(spec, &traffic, launch);
    let blocks = u32::try_from(elems.max(1).div_ceil(1024)).unwrap_or(u32::MAX);
    KernelRecord {
        seq: 0,
        name: name.into(),
        blocks,
        threads_per_block: 256,
        stream: 0,
        contention: 1.0,
        start: 0.0,
        end: cost.total,
        cost,
        traffic,
        trace: String::new(),
    }
}

/// Modeled kernel records of one shard's compress pipeline (histogram →
/// codebook → reduce → shuffle passes → sidecar), built from synthetic
/// [`Traffic`] ledgers and priced by [`gpu_sim::cost::estimate`]. The
/// ledger shapes mirror the real kernels' (DESIGN.md § "Tuning policy"
/// documents each term); absolute accuracy matters less than ranking
/// candidates consistently with the pipeline the bench sweeps measure.
fn shard_pipeline_passes(
    sig: &Signature,
    spec: &DeviceSpec,
    r: u32,
    shard_symbols: u64,
    plan: KernelPlan,
) -> Vec<KernelRecord> {
    let m = shard_symbols.max(1);
    let sym_b = u64::from(sig.symbol_bytes);
    let k = u64::from(sig.coded_symbols.max(2));
    let depth = u64::from(sig.max_bits.max(1));
    let hist_blocks = u64::from(spec.sm_count) * 8;
    let mut passes = Vec::new();

    // Histogram, blockwise: stream the shard into privatized
    // shared-memory bins; conflicts rise with skew. Under the fused plan
    // the blocks (half as many, striding twice the data each) commit
    // their replicas straight into the global histogram as coalesced
    // atomic RMW, absorbing the gridwise fold into the same pass.
    let mut hist = Traffic::new();
    hist.read(Access::Coalesced, m, sym_b);
    hist.shared_atomic(m, m / 64);
    hist.ops(2 * m);
    if plan.fused_histogram {
        let committing = hist_blocks / 2;
        hist.global_atomic_coalesced(committing * k, 4, committing);
        hist.ops(committing * k);
        passes.push(pass_record(spec, "tune_hist_fused", hist, hist_blocks * 1024, true));
    } else {
        passes.push(pass_record(spec, "tune_hist_block", hist, hist_blocks * 1024, true));

        // Histogram, gridwise: fold the per-block partial histograms.
        let mut grid = Traffic::new();
        grid.read(Access::Coalesced, hist_blocks * k, 8);
        grid.write(Access::Coalesced, k, 8);
        grid.ops(hist_blocks * k);
        passes.push(pass_record(spec, "tune_hist_grid", grid, k, true));
    }

    // Codebook sort: tiny key-value sort over the alphabet.
    let mut sort = Traffic::new();
    sort.grid_sync();
    sort.ops(4 * k);
    passes.push(pass_record(spec, "tune_book_sort", sort, 1, true));

    // GenerateCL: one meld round per tree level, five grid-sync'd regions
    // per round — the sync chain scales with the *code depth*, not the
    // alphabet, which is why a skewed alphabet (deep tree) pays more here
    // than a wide flat one.
    let mut cl = Traffic::new();
    for _ in 0..5 * depth {
        cl.grid_sync();
    }
    cl.ops(16 * k * depth);
    passes.push(pass_record(spec, "tune_book_cl", cl, 1, true));

    // GenerateCW + canonize: one sync'd pass per code level plus fixup.
    let mut cw = Traffic::new();
    for _ in 0..2 + (8 * depth) / 5 {
        cw.grid_sync();
    }
    cw.ops(6 * k);
    passes.push(pass_record(spec, "tune_book_cw", cw, 1, true));

    // Reduce-merge: codeword lookup from shared, 2^r-way merge per unit.
    let units = (m >> r.min(20)).max(1);
    let mut reduce = Traffic::new();
    reduce.read(Access::Coalesced, m, 4);
    reduce.write(Access::Coalesced, units, 4);
    reduce.ops(6 * m);
    passes.push(pass_record(spec, "tune_reduce", reduce, m, true));

    // Shuffle-merge: one kernel, s = M - r sync'd densify levels over the
    // units (shared-resident; global traffic once per level). The fused
    // plan appends the chunk-length scan as a decoupled-lookback epilogue
    // (no extra launch, no extra syncs).
    let levels = u64::from(MAGNITUDE.saturating_sub(r).max(1));
    let mut shuf = Traffic::new();
    for _ in 0..levels {
        shuf.grid_sync();
    }
    shuf.read(Access::Coalesced, units * levels, 2);
    shuf.write(Access::Coalesced, units * levels, 2);
    shuf.ops(3 * units * levels);
    if plan.fused_len {
        shuf.ops(2 * units);
        passes.push(pass_record(spec, "tune_shuffle", shuf, m, true));
    } else {
        passes.push(pass_record(spec, "tune_shuffle", shuf, m, true));

        // Chunk-length scan as its own launch.
        let mut lens = Traffic::new();
        lens.grid_sync();
        lens.grid_sync();
        lens.ops(2 * units);
        passes.push(pass_record(spec, "tune_chunk_len", lens, units, true));
    }

    let payload_bytes = ((m as f64 * sig.avg_bits() / 8.0).max(1.0)) as u64;
    let mut copy = Traffic::new();
    copy.read(Access::Coalesced, payload_bytes, 1);
    copy.write(Access::Coalesced, payload_bytes, 1);
    copy.ops(payload_bytes / 4);
    passes.push(pass_record(spec, "tune_copy", copy, m, true));

    // Breaking backtrace: units whose r-times-merged codeword overflows
    // the 32-bit word go to the sparse sidecar (strided scatter of the
    // raw symbols). The expected merged width β·2^r prices the risk: no
    // penalty until ~24 bits, certain breaking at ≥ 32 (Fig. 3's window).
    let merged = entropy::expected_merged_bits(sig.avg_bits(), r);
    let break_frac = ((merged - 24.0) / 8.0).clamp(0.0, 1.0);
    let broken = (break_frac * units as f64) as u64;
    let mut side = Traffic::new();
    if plan.compacted_backtrace {
        // Warp-aggregated compaction: coalesced segment writes, no
        // device-wide barrier.
        if broken > 0 {
            side.write(Access::Coalesced, broken << r.min(20), 2);
            side.ops(4 * (broken << r.min(20)));
            side.diverge(2.0);
        }
    } else {
        side.grid_sync();
        if broken > 0 {
            side.write(Access::Strided, broken << r.min(20), 2);
            side.ops(4 * (broken << r.min(20)));
            side.diverge(2.0);
        }
    }
    passes.push(pass_record(spec, "tune_breaking", side, (broken << r.min(20)).max(1), true));
    passes
}

/// Modeled makespan of `shards` shard pipelines overlapped across
/// `streams` streams of one device — replayed through the *same*
/// [`StreamSchedule`] the batch engine uses (shard `k` on stream
/// `k % streams`, FIFO per stream), so the tuner inherits the scheduler's
/// bandwidth-contention model verbatim: memory-bound passes on concurrent
/// streams share one DRAM interface and gain nothing from overlap, while
/// launch/latency/sync-bound passes (codebook construction, short shuffle
/// tails) overlap almost for free. Keeping one scheduler for both the
/// tuner and the batch engine is what makes the autotuned-never-loses
/// contract hold: a geometry only looks faster here if the engine's own
/// replay would also find it faster.
pub fn geometry_seconds(
    sig: &Signature,
    spec: &DeviceSpec,
    r: u32,
    shards: u32,
    streams: u32,
    plan: KernelPlan,
) -> f64 {
    let n = sig.representative_symbols();
    let per_shard = n.div_ceil(u64::from(shards)).max(1);
    let mut sched = StreamSchedule::new(spec.clone(), streams.max(1) as usize);
    for k in 0..shards {
        let stream = (k % streams.max(1)) as usize;
        sched.enqueue_all(stream, shard_pipeline_passes(sig, spec, r, per_shard, plan));
    }
    sched.run().makespan
}

/// Pick the decode backend for a signature by the same ledger comparison
/// that located the ~3-avg-bit LUT crossover (the
/// `per_bit_vs_per_symbol_decode_shapes_cross_over` recipe in
/// `gpu_sim::cost`): a bit-serial chunked kernel's compute term scales
/// with payload *bits*, the LUT pipeline's with *symbols* plus a
/// sync-pass launch. Returns [`DecoderKind::Lut`] when the LUT pipeline
/// models faster, else [`DecoderKind::Chunked`].
pub fn choose_decoder(sig: &Signature, spec: &DeviceSpec) -> DecoderKind {
    let n = sig.representative_symbols();
    let bits = (n as f64 * sig.avg_bits()) as u64;

    let mut serial = Traffic::new();
    serial.read(Access::Coalesced, bits / 8, 1);
    serial.write(Access::Coalesced, n, 2);
    serial.ops(6 * bits);
    serial.diverge(2.0);
    let bit_serial = cost::estimate(spec, &serial, true).total;

    let mut sync = Traffic::new();
    sync.read(Access::Strided, bits / 256, 32);
    sync.ops(5 * 2 * n);
    sync.diverge(2.0);
    let mut dec = Traffic::new();
    dec.read(Access::Coalesced, bits / 8, 1);
    dec.write(Access::Coalesced, n, 2);
    dec.ops(8 * n);
    dec.diverge(1.2);
    let lut = cost::estimate(spec, &sync, true).total + cost::estimate(spec, &dec, true).total;

    if lut < bit_serial {
        DecoderKind::Lut
    } else {
        DecoderKind::Chunked
    }
}

/// Model the candidate sweep for one signature on one device and return
/// the decision. Pure and deterministic: the same signature and device
/// always plan the same decision, which is what makes the cache sound.
///
/// The sweep, in order (DESIGN.md § "Tuning policy" walks a worked
/// example through each step):
///
/// 1. incompressibility ≥ [`STORE_RAW_THRESHOLD`] → [`Dispatch::StoreRaw`];
/// 2. size class below [`SMALL_INPUT_SYMBOLS`] → [`Dispatch::CpuSerial`]
///    with Fig. 3's `r`;
/// 3. otherwise score `r ∈ {r₀−1, r₀, r₀+1}` (Fig. 3's `r₀`, clamped) ×
///    shards `{1, 2, 4, 8, 16}` × streams `{1, 2, 4}` with the cost model,
///    keep the fixed default geometry unless a candidate wins by more
///    than the hysteresis margin, and pick the decoder with
///    [`choose_decoder`].
pub fn plan(sig: &Signature, spec: &DeviceSpec) -> Decision {
    let n = sig.representative_symbols();

    // 1. Incompressible: store raw — a modeled device-side memcpy.
    if sig.incompressibility() >= STORE_RAW_THRESHOLD {
        let bytes = n * u64::from(sig.symbol_bytes);
        let mut copy = Traffic::new();
        copy.read(Access::Coalesced, bytes, 1);
        copy.write(Access::Coalesced, bytes, 1);
        let secs = cost::estimate(spec, &copy, true).total;
        return Decision {
            dispatch: Dispatch::StoreRaw,
            reduction: 0,
            shards: 1,
            streams: 1,
            decoder: DecoderKind::Serial,
            plan: KernelPlan::default(),
            modeled_nanos: (secs * 1e9) as u64,
        };
    }

    let r0 = entropy::decide_reduction_factor(sig.avg_bits(), 32, MAGNITUDE);

    // 2. Tiny: the host beats a single kernel launch.
    if n < SMALL_INPUT_SYMBOLS {
        let bytes = n * u64::from(sig.symbol_bytes);
        let secs = bytes as f64 / CPU_SERIAL_BYTES_PER_SEC;
        return Decision {
            dispatch: Dispatch::CpuSerial,
            reduction: r0,
            shards: 1,
            streams: 1,
            decoder: DecoderKind::Serial,
            plan: KernelPlan::default(),
            modeled_nanos: (secs * 1e9) as u64,
        };
    }

    // 3. Geometry × plan sweep. The fixed CLI default — Fig. 3's r,
    // 4 Mi-symbol shards, 2 streams, fused kernels (BatchOptions::new) —
    // anchors the comparison.
    let default_shards = u32::try_from(n.div_ceil(1 << 22))
        .unwrap_or(u32::MAX)
        .clamp(1, *SHARD_CANDIDATES.last().unwrap());
    let default = (r0, default_shards, 2u32, KernelPlan::default());
    let default_secs = geometry_seconds(sig, spec, r0, default_shards, 2, KernelPlan::default());

    let mut best = default;
    let mut best_secs = default_secs;
    for dr in [-1i64, 0, 1] {
        let r = (i64::from(r0) + dr).clamp(1, i64::from(MAGNITUDE) - 1) as u32;
        for &shards in &SHARD_CANDIDATES {
            if u64::from(shards) > 1 && n / u64::from(shards) < MIN_SHARD_SYMBOLS {
                continue;
            }
            for &streams in &STREAM_CANDIDATES {
                for plan in [KernelPlan::fused(), KernelPlan::unfused()] {
                    let secs = geometry_seconds(sig, spec, r, shards, streams, plan);
                    if secs < best_secs {
                        best = (r, shards, streams, plan);
                        best_secs = secs;
                    }
                }
            }
        }
    }
    // Hysteresis: deviate from the default only on a clear modeled win.
    let (r, shards, streams, plan, secs) = if best_secs < default_secs * (1.0 - GEOMETRY_HYSTERESIS)
    {
        (best.0, best.1, best.2, best.3, best_secs)
    } else {
        (default.0, default.1, default.2, default.3, default_secs)
    };

    Decision {
        dispatch: Dispatch::Gpu,
        reduction: r,
        shards,
        streams,
        decoder: choose_decoder(sig, spec),
        plan,
        modeled_nanos: (secs * 1e9) as u64,
    }
}

// ---------------------------------------------------------------------------
// Executing a decision
// ---------------------------------------------------------------------------

/// Compress `symbols` exactly as `decision` prescribes. This is the
/// single entry point shared by the autotuned path and a caller passing
/// the same parameters explicitly, so the two are bit-identical by
/// construction:
///
/// - [`Dispatch::StoreRaw`] → [`store_raw`];
/// - [`Dispatch::CpuSerial`] → [`crate::archive::compress`] with
///   `reduction = Some(decision.reduction)` (a bare `RSH2` archive, what
///   the CLI produces without batch flags);
/// - [`Dispatch::Gpu`] → [`crate::batch::compress_batched`] with
///   `shard_symbols = ceil(n / shards)` and `streams` on `devices` (an
///   `RSHM` frame, what `--shards N --streams S` produces).
pub fn compress_with_decision(
    symbols: &[u16],
    num_symbols: usize,
    symbol_bytes: u8,
    decision: &Decision,
    devices: &[DeviceSpec],
) -> Result<Vec<u8>> {
    match decision.dispatch {
        Dispatch::StoreRaw => store_raw(symbols, symbol_bytes),
        Dispatch::CpuSerial => {
            let opts = CompressOptions {
                num_symbols,
                magnitude: MAGNITUDE,
                reduction: Some(decision.reduction.max(1)),
                strategy: BreakingStrategy::SparseSidecar,
                symbol_bytes,
            };
            archive::compress(symbols, &opts)
        }
        Dispatch::Gpu => {
            let mut opts = BatchOptions::new(num_symbols);
            opts.shard_symbols = symbols.len().div_ceil(decision.shards.max(1) as usize).max(1);
            opts.streams = decision.streams.max(1) as usize;
            opts.devices = devices.to_vec();
            opts.reduction = Some(decision.reduction.max(1));
            opts.symbol_bytes = symbol_bytes;
            opts.plan = decision.plan;
            let (frame, _) = batch::compress_batched(symbols, &opts)?;
            Ok(frame)
        }
    }
}

// ---------------------------------------------------------------------------
// The RSHR store-raw container
// ---------------------------------------------------------------------------

const RAW_MAGIC: &[u8; 4] = b"RSHR";
const RAW_VERSION: u8 = 1;
const RAW_HEADER_LEN: usize = 24;

/// True when `bytes` starts with the `RSHR` store-raw magic.
pub fn is_raw(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == RAW_MAGIC
}

/// Store `symbols` uncompressed in the `RSHR` raw container (the
/// [`Dispatch::StoreRaw`] output; layout in FORMAT.md §9):
///
/// ```text
/// magic "RSHR" | version u8 | symbol_bytes u8 | pad u16
/// num_symbols u64 | payload_crc u32 | header_crc u32
/// payload   num_symbols × symbol_bytes little-endian bytes
/// ```
///
/// With `symbol_bytes == 1` every symbol must fit a byte.
pub fn store_raw(symbols: &[u16], symbol_bytes: u8) -> Result<Vec<u8>> {
    if symbol_bytes != 1 && symbol_bytes != 2 {
        return Err(HuffError::BadArchive(format!("raw container: symbol_bytes {symbol_bytes}")));
    }
    let mut payload = Vec::with_capacity(symbols.len() * symbol_bytes as usize);
    for &s in symbols {
        if symbol_bytes == 1 {
            if s > 0xFF {
                return Err(HuffError::SymbolOutOfRange { symbol: usize::from(s), codebook: 256 });
            }
            payload.push(s as u8);
        } else {
            payload.extend_from_slice(&s.to_le_bytes());
        }
    }
    let mut buf = BytesMut::with_capacity(RAW_HEADER_LEN + payload.len());
    buf.put_slice(RAW_MAGIC);
    buf.put_u8(RAW_VERSION);
    buf.put_u8(symbol_bytes);
    buf.put_u16_le(0);
    buf.put_u64_le(symbols.len() as u64);
    buf.put_u32_le(crc32(&payload));
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    buf.put_slice(&payload);
    Ok(buf.to_vec())
}

/// Parse and checksum an `RSHR` header, returning
/// `(symbol_bytes, num_symbols)`. Header damage is fatal, mirroring the
/// RSH2/RSHM rule.
pub fn raw_info(bytes: &[u8]) -> Result<(u8, u64)> {
    let bad = |m: &str| HuffError::BadArchive(format!("raw container: {m}"));
    if bytes.len() < RAW_HEADER_LEN {
        return Err(bad("truncated header"));
    }
    if !is_raw(bytes) {
        return Err(bad("bad magic"));
    }
    let mut buf = Bytes::copy_from_slice(&bytes[4..RAW_HEADER_LEN]);
    let version = buf.get_u8();
    if version != RAW_VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    let symbol_bytes = buf.get_u8();
    if symbol_bytes != 1 && symbol_bytes != 2 {
        return Err(bad(&format!("symbol_bytes {symbol_bytes}")));
    }
    let _pad = buf.get_u16_le();
    let num_symbols = buf.get_u64_le();
    let _payload_crc = buf.get_u32_le();
    let stored = buf.get_u32_le();
    let got = crc32(&bytes[..RAW_HEADER_LEN - 4]);
    if got != stored {
        return Err(HuffError::ChecksumMismatch {
            section: crate::integrity::Section::Header,
            chunk: None,
            expected: stored,
            got,
        });
    }
    Ok((symbol_bytes, num_symbols))
}

/// Decode an `RSHR` container under the usual verification and recovery
/// policy. Strict mode requires the payload complete and its checksum
/// passing; best-effort mode recovers the available prefix and
/// sentinel-fills the rest, reporting the loss as one opaque damaged
/// chunk (the container has no finer structure).
pub fn decompress_raw_with(bytes: &[u8], opts: &DecompressOptions) -> Result<Recovered> {
    let (symbol_bytes, num_symbols) = raw_info(bytes)?;
    let n: usize = num_symbols
        .try_into()
        .map_err(|_| HuffError::BadArchive("raw container: count exceeds address space".into()))?;
    let want = n * symbol_bytes as usize;
    let payload = &bytes[RAW_HEADER_LEN.min(bytes.len())..];
    let avail = payload.len().min(want);
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());

    let crc_ok = avail == want && crc32(&payload[..want]) == stored_crc;
    let complete = match opts.verify {
        Verify::None | Verify::HeadersOnly => avail == want,
        Verify::Full => crc_ok,
    };
    if !complete && opts.mode == RecoveryMode::Strict {
        if avail < want {
            return Err(HuffError::BadArchive("raw container: truncated payload".into()));
        }
        return Err(HuffError::ChecksumMismatch {
            section: crate::integrity::Section::Payload,
            chunk: Some(0),
            expected: stored_crc,
            got: crc32(&payload[..want]),
        });
    }

    let whole = avail / symbol_bytes as usize;
    let decode = |i: usize| -> u16 {
        if symbol_bytes == 1 {
            u16::from(payload[i])
        } else {
            u16::from_le_bytes([payload[2 * i], payload[2 * i + 1]])
        }
    };
    let mut symbols: Vec<u16> = (0..whole.min(n)).map(decode).collect();
    let mut report = RecoveryReport::clean(1);
    if !complete {
        // Best-effort: a CRC failure without truncation cannot localize
        // damage (one checksum spans the payload), so only the length is
        // trustworthy; truncation keeps the intact prefix.
        let keep = if avail < want { symbols.len() } else { 0 };
        symbols.truncate(keep);
        symbols.resize(n, opts.sentinel);
        report.damaged_chunks.push(0);
        report.damaged_ranges.push((keep, n));
        report.symbols_lost = n - keep;
    }
    crate::metrics::registry::global().record_decompress(
        bytes.len() as u64,
        symbols.len() as u64 * u64::from(symbol_bytes),
        1,
        report.damaged_chunks.len(),
    );
    Ok(Recovered { symbols, report })
}

/// Range-read an `RSHR` container. The stored payload *is* the decoded
/// output (symbols at their native width, little-endian), so a range
/// read is a bounds-checked slice — the raw container's analogue of the
/// seek index. `range` is clamped to the payload's extent; under
/// [`Verify::Full`] the payload checksum is still verified first
/// (the container has no finer-grained checksums to verify per range).
pub fn raw_range(
    bytes: &[u8],
    range: std::ops::Range<u64>,
    opts: &DecompressOptions,
) -> Result<RangeDecode> {
    if range.start > range.end {
        return Err(HuffError::BadArchive(format!(
            "raw container: byte range {}..{} is inverted",
            range.start, range.end
        )));
    }
    let (symbol_bytes, num_symbols) = raw_info(bytes)?;
    let n: usize = num_symbols
        .try_into()
        .map_err(|_| HuffError::BadArchive("raw container: count exceeds address space".into()))?;
    let want = n * symbol_bytes as usize;
    let lo = (range.start.min(want as u64)) as usize;
    let hi = (range.end.min(want as u64)) as usize;
    let payload = &bytes[RAW_HEADER_LEN.min(bytes.len())..];
    let avail = payload.len().min(want);
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());

    let crc_ok = avail == want && crc32(&payload[..want]) == stored_crc;
    let complete = match opts.verify {
        Verify::None | Verify::HeadersOnly => avail == want,
        Verify::Full => crc_ok,
    };
    let mut report = RecoveryReport::clean(1);
    let out: Vec<u8> = if complete {
        payload[lo..hi].to_vec()
    } else if opts.mode == RecoveryMode::Strict {
        if avail < want {
            return Err(HuffError::BadArchive("raw container: truncated payload".into()));
        }
        return Err(HuffError::ChecksumMismatch {
            section: crate::integrity::Section::Payload,
            chunk: Some(0),
            expected: stored_crc,
            got: crc32(&payload[..want]),
        });
    } else {
        // Best-effort mirrors decompress_raw_with: a truncation keeps the
        // intact whole-symbol prefix, an unlocalizable CRC failure keeps
        // nothing; the rest reads as sentinel bytes.
        let keep_syms = if avail < want { avail / symbol_bytes as usize } else { 0 };
        let keep_bytes = keep_syms * symbol_bytes as usize;
        let sentinel = opts.sentinel.to_le_bytes();
        report.damaged_chunks.push(0);
        report.damaged_ranges.push((keep_syms, n));
        report.symbols_lost = n - keep_syms;
        (lo..hi)
            .map(|p| if p < keep_bytes { payload[p] } else { sentinel[p % symbol_bytes as usize] })
            .collect()
    };
    let touched = usize::from(hi > lo);
    crate::metrics::registry::global().record_range_decode(out.len() as u64, touched, 1, 0, false);
    Ok(RangeDecode {
        bytes: out,
        report,
        chunks_touched: touched,
        total_chunks: 1,
        index_probes: 0,
        index_used: false,
    })
}

/// Check an `RSHR` container's checksums without materializing symbols.
pub fn verify_raw(bytes: &[u8]) -> Result<RecoveryReport> {
    let (symbol_bytes, num_symbols) = raw_info(bytes)?;
    let want = num_symbols as usize * symbol_bytes as usize;
    let payload = &bytes[RAW_HEADER_LEN.min(bytes.len())..];
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let mut report = RecoveryReport::clean(1);
    if payload.len() < want || crc32(&payload[..want]) != stored_crc {
        let keep = (payload.len().min(want)) / symbol_bytes as usize;
        let keep = if payload.len() < want { keep } else { 0 };
        report.damaged_chunks.push(0);
        report.damaged_ranges.push((keep, num_symbols as usize));
        report.symbols_lost = num_symbols as usize - keep;
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// The on-disk tuning cache
// ---------------------------------------------------------------------------

const CACHE_MAGIC: &[u8; 4] = b"RSHT";
const CACHE_VERSION: u8 = 1;

/// A cache entry's key: device name + quantized signature.
pub type CacheKey = (String, Signature);

/// The persisted decision store (`rsh-tune-v1`, FORMAT.md §9).
///
/// The reader is fail-open by contract: a missing file, foreign magic,
/// unknown version, header-checksum mismatch, corrupt entry or truncated
/// tail all degrade to "fewer cached entries" — a lookup miss models the
/// sweep again; nothing ever fails a request because the cache was bad.
#[derive(Debug, Clone, Default)]
pub struct TuneCache {
    path: Option<PathBuf>,
    entries: BTreeMap<CacheKey, Decision>,
}

impl TuneCache {
    /// An empty in-memory cache (never persisted).
    pub fn in_memory() -> Self {
        TuneCache::default()
    }

    /// Load a cache from `path`, tolerating every corruption class per
    /// the reader contract. The returned cache saves back to the same
    /// path.
    pub fn load(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let entries = match std::fs::read(&path) {
            Ok(bytes) => parse_cache(&bytes),
            Err(_) => BTreeMap::new(),
        };
        TuneCache { path: Some(path), entries }
    }

    /// The backing path, if this cache persists.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no decisions are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the decision for a device + signature.
    pub fn lookup(&self, device: &str, sig: &Signature) -> Option<Decision> {
        self.entries.get(&(device.to_string(), *sig)).copied()
    }

    /// Insert (or replace) a decision.
    pub fn insert(&mut self, device: &str, sig: Signature, decision: Decision) {
        self.entries.insert((device.to_string(), sig), decision);
    }

    /// Persist to the backing path (temp file + rename, so a crashed
    /// writer leaves the previous cache intact). No-op for in-memory
    /// caches. Callers treat errors as advisory — a cache that cannot be
    /// written only costs future warm-ups.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else { return Ok(()) };
        let bytes = render_cache(&self.entries);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)
    }
}

fn render_cache(entries: &BTreeMap<CacheKey, Decision>) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(CACHE_MAGIC);
    buf.put_u8(CACHE_VERSION);
    buf.put_slice(&[0u8; 3]);
    buf.put_u32_le(entries.len() as u32);
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    for ((device, sig), d) in entries {
        let mut e = BytesMut::new();
        let name = device.as_bytes();
        e.put_u8(name.len().min(255) as u8);
        e.put_slice(&name[..name.len().min(255)]);
        e.put_u32_le(sig.coded_symbols);
        e.put_u32_le(sig.avg_centibits);
        e.put_u32_le(sig.max_bits);
        e.put_u32_le(sig.entropy_centibits);
        e.put_u32_le(sig.ratio_permille);
        e.put_u32_le(sig.size_class);
        e.put_u8(sig.symbol_bytes);
        e.put_u8(d.dispatch.code());
        e.put_u8(d.reduction.min(255) as u8);
        e.put_u16_le(d.shards.min(65_535) as u16);
        e.put_u8(d.streams.min(255) as u8);
        e.put_u8(decoder_code(d.decoder));
        e.put_u64_le(d.modeled_nanos);
        e.put_u8(d.plan.code());
        let entry_crc = crc32(&e);
        buf.put_u16_le(e.len() as u16);
        buf.put_slice(&e);
        buf.put_u32_le(entry_crc);
    }
    buf.to_vec()
}

fn parse_cache(bytes: &[u8]) -> BTreeMap<CacheKey, Decision> {
    let mut out = BTreeMap::new();
    // Header: magic, version, pad, count, CRC over everything before it.
    if bytes.len() < 16 || &bytes[..4] != CACHE_MAGIC || bytes[4] != CACHE_VERSION {
        return out;
    }
    let stored = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if crc32(&bytes[..12]) != stored {
        return out;
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let mut buf = Bytes::copy_from_slice(&bytes[16..]);
    for _ in 0..count {
        if buf.remaining() < 2 {
            break;
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len + 4 {
            break;
        }
        let entry = buf.copy_to_bytes(len);
        let stored = buf.get_u32_le();
        if crc32(&entry) != stored {
            continue; // corrupt entry: skip, keep reading
        }
        if let Some((key, decision)) = parse_entry(&entry) {
            out.insert(key, decision);
        }
    }
    out
}

fn parse_entry(entry: &[u8]) -> Option<(CacheKey, Decision)> {
    let mut b = Bytes::copy_from_slice(entry);
    if b.remaining() < 1 {
        return None;
    }
    let name_len = b.get_u8() as usize;
    // Entries written before the plan byte existed come up short here and
    // are skipped (fail-open: the signature just re-models on next use).
    if b.remaining() < name_len + 6 * 4 + 1 + 1 + 1 + 2 + 1 + 1 + 8 + 1 {
        return None;
    }
    let name = String::from_utf8(b.copy_to_bytes(name_len).to_vec()).ok()?;
    let sig = Signature {
        coded_symbols: b.get_u32_le(),
        avg_centibits: b.get_u32_le(),
        max_bits: b.get_u32_le(),
        entropy_centibits: b.get_u32_le(),
        ratio_permille: b.get_u32_le(),
        size_class: b.get_u32_le(),
        symbol_bytes: b.get_u8(),
    };
    let decision = Decision {
        dispatch: Dispatch::from_code(b.get_u8())?,
        reduction: u32::from(b.get_u8()),
        shards: u32::from(b.get_u16_le()),
        streams: u32::from(b.get_u8()),
        decoder: decoder_from_code(b.get_u8())?,
        modeled_nanos: b.get_u64_le(),
        plan: KernelPlan::from_code(b.get_u8())?,
    };
    Some(((name, sig), decision))
}

// ---------------------------------------------------------------------------
// Tuner
// ---------------------------------------------------------------------------

/// The adaptive autotuner: measures signatures, consults the cache,
/// models the sweep on misses and persists what it learns.
///
/// Hit/miss/sweep counters are public so callers (the serve engine, the
/// bench harness, tests) can assert cache behavior; every lookup is also
/// recorded in the global metrics registry
/// (`rsh_tune_lookups_total{result=...}`,
/// `rsh_tune_decisions_total{dispatch=...}`).
#[derive(Debug, Clone)]
pub struct Tuner {
    device: DeviceSpec,
    cache: TuneCache,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to model the sweep.
    pub misses: u64,
    /// Full candidate sweeps modeled (== misses; kept separate so a
    /// future partial-reuse policy stays observable).
    pub modeled_sweeps: u64,
}

impl Tuner {
    /// A tuner for `device` with an in-memory cache.
    pub fn new(device: DeviceSpec) -> Self {
        Tuner { device, cache: TuneCache::in_memory(), hits: 0, misses: 0, modeled_sweeps: 0 }
    }

    /// A tuner whose cache loads from and persists to `path`.
    pub fn with_cache_path(device: DeviceSpec, path: impl AsRef<Path>) -> Self {
        Tuner { device, cache: TuneCache::load(path), hits: 0, misses: 0, modeled_sweeps: 0 }
    }

    /// The device decisions are modeled for.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The underlying cache.
    pub fn cache(&self) -> &TuneCache {
        &self.cache
    }

    /// Measure `symbols`, consult the cache, and return the decision
    /// plus whether it was a cache hit. On a miss the modeled decision
    /// is inserted and the cache persisted (best-effort).
    pub fn decide(
        &mut self,
        symbols: &[u16],
        num_symbols: usize,
        symbol_bytes: u8,
    ) -> Result<(Signature, Decision, bool)> {
        let sig = Signature::measure(symbols, num_symbols, symbol_bytes)?;
        if let Some(d) = self.cache.lookup(self.device.name, &sig) {
            self.hits += 1;
            let mut reg = crate::metrics::registry::global();
            reg.record_tune_lookup(true);
            reg.record_tune_decision(d.dispatch.name());
            return Ok((sig, d, true));
        }
        self.misses += 1;
        self.modeled_sweeps += 1;
        let d = plan(&sig, &self.device);
        self.cache.insert(self.device.name, sig, d);
        let _ = self.cache.save();
        let mut reg = crate::metrics::registry::global();
        reg.record_tune_lookup(false);
        reg.record_tune_decision(d.dispatch.name());
        Ok((sig, d, false))
    }

    /// [`decide`](Tuner::decide) then [`compress_with_decision`] on this
    /// tuner's device. Returns the container bytes, the decision, and
    /// whether the decision came from the cache.
    pub fn compress(
        &mut self,
        symbols: &[u16],
        num_symbols: usize,
        symbol_bytes: u8,
    ) -> Result<(Vec<u8>, Decision, bool)> {
        let (_, decision, hit) = self.decide(symbols, num_symbols, symbol_bytes)?;
        let devices = [self.device.clone()];
        let bytes =
            compress_with_decision(symbols, num_symbols, symbol_bytes, &decision, &devices)?;
        Ok((bytes, decision, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::decompress;

    fn skewed(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
                (x % 64) as u16
            })
            .collect()
    }

    fn incompressible(n: usize) -> Vec<u16> {
        // Uniform over 256 byte values: avg bits ≈ 8 ≈ the raw width.
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 24;
                (x % 256) as u16
            })
            .collect()
    }

    #[test]
    fn signature_is_quantized_and_stable() {
        let data = skewed(50_000);
        let a = Signature::measure(&data, 64, 2).unwrap();
        let b = Signature::measure(&data, 64, 2).unwrap();
        assert_eq!(a, b);
        assert!(a.coded_symbols <= 64);
        assert!(a.avg_bits() > 0.0 && a.avg_bits() < 16.0);
        assert_eq!(a.size_class, 15); // 50_000 ∈ [2^15, 2^16)
    }

    #[test]
    fn incompressible_input_stores_raw() {
        let data = incompressible(1 << 15);
        let sig = Signature::measure(&data, 256, 1).unwrap();
        assert!(sig.incompressibility() >= STORE_RAW_THRESHOLD, "{}", sig.incompressibility());
        let d = plan(&sig, &DeviceSpec::v100());
        assert_eq!(d.dispatch, Dispatch::StoreRaw);
    }

    #[test]
    fn tiny_input_runs_cpu_serial() {
        let data = skewed(1000);
        let sig = Signature::measure(&data, 64, 2).unwrap();
        let d = plan(&sig, &DeviceSpec::v100());
        assert_eq!(d.dispatch, Dispatch::CpuSerial);
        assert!(d.reduction >= 1);
    }

    #[test]
    fn normal_input_dispatches_gpu_with_fig3_family_r() {
        let data = skewed(1 << 18);
        let sig = Signature::measure(&data, 64, 2).unwrap();
        let r0 = entropy::decide_reduction_factor(sig.avg_bits(), 32, 10);
        let d = plan(&sig, &DeviceSpec::v100());
        assert_eq!(d.dispatch, Dispatch::Gpu);
        assert!((i64::from(d.reduction) - i64::from(r0)).abs() <= 1, "r={} r0={r0}", d.reduction);
        assert!(d.shards >= 1 && d.streams >= 1);
    }

    #[test]
    fn plan_is_deterministic() {
        let data = skewed(1 << 17);
        let sig = Signature::measure(&data, 64, 2).unwrap();
        let a = plan(&sig, &DeviceSpec::v100());
        let b = plan(&sig, &DeviceSpec::v100());
        assert_eq!(a, b);
    }

    #[test]
    fn decoder_choice_crosses_over_with_avg_bits() {
        // High-entropy text (β ≈ 5.2): LUT wins. Near-1-bit codes: the
        // extra sync launch loses to bit-serial chunked.
        let spec = DeviceSpec::v100();
        let mut hi = Signature::measure(&skewed(4 << 20), 64, 2).unwrap();
        hi.avg_centibits = 520;
        assert_eq!(choose_decoder(&hi, &spec), DecoderKind::Lut);
        let mut lo = hi;
        lo.avg_centibits = 103;
        assert_eq!(choose_decoder(&lo, &spec), DecoderKind::Chunked);
    }

    #[test]
    fn store_raw_roundtrips_both_widths() {
        let data = skewed(5000);
        for sb in [1u8, 2u8] {
            let raw = store_raw(&data, sb).unwrap();
            assert!(is_raw(&raw));
            let (w, n) = raw_info(&raw).unwrap();
            assert_eq!((w, n), (sb, 5000));
            let rec = decompress_raw_with(&raw, &DecompressOptions::default()).unwrap();
            assert_eq!(rec.symbols, data);
            assert!(rec.report.is_clean());
            assert!(verify_raw(&raw).unwrap().is_clean());
        }
    }

    #[test]
    fn store_raw_rejects_wide_symbols_at_one_byte() {
        assert!(store_raw(&[300u16], 1).is_err());
    }

    #[test]
    fn raw_payload_flip_fails_strict_recovers_best_effort() {
        let data = skewed(4000);
        let mut raw = store_raw(&data, 2).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        assert!(matches!(
            decompress_raw_with(&raw, &DecompressOptions::default()),
            Err(HuffError::ChecksumMismatch { .. })
        ));
        let rec = decompress_raw_with(&raw, &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.symbols.len(), data.len());
        assert!(!rec.report.is_clean());
        assert!(!verify_raw(&raw).unwrap().is_clean());
    }

    #[test]
    fn raw_truncation_keeps_prefix_best_effort() {
        let data = skewed(4000);
        let raw = store_raw(&data, 2).unwrap();
        let cut = RAW_HEADER_LEN + 1000;
        assert!(decompress_raw_with(&raw[..cut], &DecompressOptions::default()).is_err());
        let opts = DecompressOptions::best_effort().with_sentinel(0xBEEF);
        let rec = decompress_raw_with(&raw[..cut], &opts).unwrap();
        assert_eq!(rec.symbols.len(), data.len());
        assert_eq!(&rec.symbols[..500], &data[..500]);
        assert!(rec.symbols[500..].iter().all(|&s| s == 0xBEEF));
        assert_eq!(rec.report.symbols_lost, 3500);
    }

    #[test]
    fn raw_header_flip_is_fatal() {
        let data = skewed(100);
        let mut raw = store_raw(&data, 2).unwrap();
        raw[9] ^= 0x01; // num_symbols field
        assert!(decompress_raw_with(&raw, &DecompressOptions::best_effort()).is_err());
    }

    #[test]
    fn cache_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("rsh-tune-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.rsht");
        let _ = std::fs::remove_file(&path);

        let sig = Signature::measure(&skewed(1 << 16), 64, 2).unwrap();
        let d = plan(&sig, &DeviceSpec::v100());
        let mut cache = TuneCache::load(&path);
        cache.insert("V100", sig, d);
        cache.save().unwrap();

        let reloaded = TuneCache::load(&path);
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.lookup("V100", &sig), Some(d));
        assert_eq!(reloaded.lookup("RTX 5000", &sig), None, "device is part of the key");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_cache_degrades_to_modeling_never_errors() {
        let dir = std::env::temp_dir().join("rsh-tune-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.rsht");

        let sig = Signature::measure(&skewed(1 << 16), 64, 2).unwrap();
        let sig2 = Signature::measure(&skewed(1 << 17), 64, 2).unwrap();
        let d = plan(&sig, &DeviceSpec::v100());
        let mut cache = TuneCache::load(&path);
        cache.insert("V100", sig, d);
        cache.insert("V100", sig2, plan(&sig2, &DeviceSpec::v100()));
        cache.save().unwrap();
        let healthy = std::fs::read(&path).unwrap();

        // Foreign magic → empty, not an error.
        let mut bad = healthy.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(TuneCache::load(&path).is_empty());

        // Unknown version → empty.
        let mut bad = healthy.clone();
        bad[4] = 9;
        std::fs::write(&path, &bad).unwrap();
        assert!(TuneCache::load(&path).is_empty());

        // Header CRC mismatch → empty.
        let mut bad = healthy.clone();
        bad[13] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        assert!(TuneCache::load(&path).is_empty());

        // One corrupt entry body → that entry skipped, the other kept.
        let mut bad = healthy.clone();
        bad[16 + 2 + 3] ^= 0x20; // inside the first entry's body
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(TuneCache::load(&path).len(), 1);

        // Truncated tail → the complete prefix survives.
        std::fs::write(&path, &healthy[..healthy.len() - 5]).unwrap();
        assert_eq!(TuneCache::load(&path).len(), 1);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tuner_hits_cache_on_second_call_with_identical_bytes() {
        let data = skewed(60_000);
        let mut tuner = Tuner::new(DeviceSpec::v100());
        let (a, da, hit_a) = tuner.compress(&data, 64, 2).unwrap();
        let (b, db, hit_b) = tuner.compress(&data, 64, 2).unwrap();
        assert!(!hit_a && hit_b);
        assert_eq!(tuner.hits, 1);
        assert_eq!(tuner.misses, 1);
        assert_eq!(tuner.modeled_sweeps, 1, "hit must not model the sweep");
        assert_eq!(da, db);
        assert_eq!(a, b);
        assert_eq!(decompress(&a).unwrap(), data);
    }

    #[test]
    fn autotuned_equals_explicit_parameters() {
        let data = skewed(120_000);
        let mut tuner = Tuner::new(DeviceSpec::v100());
        let (auto_bytes, d, _) = tuner.compress(&data, 64, 2).unwrap();
        let explicit = compress_with_decision(&data, 64, 2, &d, &[DeviceSpec::v100()]).unwrap();
        assert_eq!(auto_bytes, explicit);
    }

    #[test]
    fn all_dispatch_paths_roundtrip_through_archive_entry_point() {
        let v100 = [DeviceSpec::v100()];
        // StoreRaw
        let data = incompressible(1 << 14);
        let d = Decision {
            dispatch: Dispatch::StoreRaw,
            reduction: 0,
            shards: 1,
            streams: 1,
            decoder: DecoderKind::Serial,
            plan: KernelPlan::default(),
            modeled_nanos: 0,
        };
        let raw = compress_with_decision(&data, 256, 1, &d, &v100).unwrap();
        assert_eq!(archive::decompress(&raw).unwrap(), data);
        // CpuSerial
        let small = skewed(2000);
        let d = Decision { dispatch: Dispatch::CpuSerial, reduction: 3, ..d };
        let bytes = compress_with_decision(&small, 64, 2, &d, &v100).unwrap();
        assert_eq!(archive::decompress(&bytes).unwrap(), small);
        // Gpu
        let big = skewed(80_000);
        let d = Decision {
            dispatch: Dispatch::Gpu,
            reduction: 3,
            shards: 4,
            streams: 2,
            decoder: DecoderKind::Lut,
            plan: KernelPlan::default(),
            modeled_nanos: 0,
        };
        let frame = compress_with_decision(&big, 64, 2, &d, &v100).unwrap();
        assert!(crate::frame::is_frame(&frame));
        assert_eq!(archive::decompress(&frame).unwrap(), big);
    }

    #[test]
    fn autotuned_never_models_slower_than_default_geometry() {
        // The hysteresis contract: plan() only deviates from the fixed
        // default geometry on a clear modeled win.
        for n_log2 in [14u32, 17, 20, 23] {
            let data = skewed(1 << n_log2.min(20)); // stats only need shape
            let mut sig = Signature::measure(&data, 64, 2).unwrap();
            sig.size_class = n_log2;
            if sig.incompressibility() >= STORE_RAW_THRESHOLD
                || sig.representative_symbols() < SMALL_INPUT_SYMBOLS
            {
                continue;
            }
            let spec = DeviceSpec::v100();
            let d = plan(&sig, &spec);
            let r0 = entropy::decide_reduction_factor(sig.avg_bits(), 32, 10);
            let default_shards =
                u32::try_from(sig.representative_symbols().div_ceil(1 << 22)).unwrap().clamp(1, 16);
            let default_secs =
                geometry_seconds(&sig, &spec, r0, default_shards, 2, KernelPlan::default());
            let chosen = geometry_seconds(&sig, &spec, d.reduction, d.shards, d.streams, d.plan);
            assert!(
                chosen <= default_secs * (1.0 + 1e-9),
                "size 2^{n_log2}: chosen {chosen} vs default {default_secs}"
            );
        }
    }
}
