//! Fault-tolerant serving engine over the batched pipeline.
//!
//! [`Engine`] multiplexes concurrent compress/decompress requests onto
//! the multi-stream batch pipeline ([`crate::batch`]) under the same
//! record-then-replay discipline as the rest of the repo: every byte of
//! host work is real and bit-exact, while *time* — queue wait, service,
//! retry backoff — is modeled deterministically in virtual seconds.
//! Concurrency is therefore simulated, not threaded: requests are
//! submitted in arrival order and the engine replays what a fleet of
//! `workers` pipeline lanes fronted by one bounded admission queue would
//! have done, the same way [`gpu_sim::StreamSchedule`] replays a
//! multi-stream device.
//!
//! The fault-tolerance contract (chaos-tested in `tests/serve_chaos.rs`):
//!
//! - **Admission control.** A bounded queue of depth
//!   [`EngineConfig::queue_capacity`]; requests arriving past it are shed
//!   immediately with a structured [`Outcome::Shed`], never queued
//!   unboundedly. Queue wait is a first-class cost term (see
//!   DESIGN.md § "Serving engine: the queue-wait cost term"), reported
//!   per request and aggregated in the metrics registry.
//! - **Deadlines with cancellation.** A request whose queue wait alone
//!   exceeds its deadline is cancelled before consuming any worker time;
//!   one that finishes past its deadline is a deadline miss even though
//!   the work ran.
//! - **Retry with exponential backoff.** Injected transient faults fail
//!   an attempt; the engine retries after `backoff_base · 2^attempt`
//!   modeled seconds, up to [`EngineConfig::max_retries`].
//! - **Quarantine and rescheduling.** Simulated device loss during a
//!   compress request quarantines in-flight shards and replays them on
//!   the surviving devices ([`crate::batch::compress_batched_with_faults`]);
//!   the frame bytes stay bit-identical to a healthy run.
//! - **Graceful decoder degradation.** Decompress requests walk the
//!   ladder LUT → chunked → serial (strict, fully verified) and finally
//!   best-effort recovery; every rung is bit-exact, so degradation costs
//!   modeled time and — only in the best-effort rung — sentinel-filled
//!   ranges that are precisely reported, never silently wrong bytes.
//!
//! Every request carries a trace ID. Completions, counters and the
//! `rsh-trace-v1` export ([`ServeReport::to_json`]) reconcile exactly:
//! each request ends in exactly one outcome, and the registry counters
//! are derived from the same completion stream
//! ([`ServeReport::reconciles_with`]).
//!
//! **Request-scoped observability.** Beyond the aggregate counters, the
//! engine records a full distributed-tracing view of every request in
//! its [`SpanSink`]: a root `request` span covering arrival → finish,
//! `stage` children for queue wait, retry backoff and service, the
//! service's internal stages (model sweep, batch makespan, each decode
//! rung tried), and one `kernel` span per [`gpu_sim::KernelRecord`]
//! replayed on the request's behalf — each record itself stamped with
//! the request's trace id end to end (serve → [`crate::batch`] →
//! [`crate::pipeline`] → [`gpu_sim::StreamSchedule`]). Injected chaos
//! (device loss, decoder glitches, payload corruption), retries, sheds
//! and deadline misses land as [`crate::metrics::span::SpanEvent`]s on
//! the owning request's tree, so a chaos storm is attributable request
//! by request, not just countable. End-to-end latencies feed per-
//! (class, outcome) log2 histograms ([`LatencyBook`]) whose buckets
//! carry exemplar trace ids, and [`Engine::slo_report`] evaluates
//! declarative error-budget objectives ([`crate::slo`]) over the same
//! completion stream — all in virtual time, so every export
//! ([`Engine::span_jsonl`], [`crate::slo::SloReport::to_json`]) is
//! byte-deterministic for a fixed seed.

use std::collections::BTreeMap;

use crate::batch::{compress_batched_with_faults, BatchOptions, DeviceFault};
use crate::decode::DecoderKind;
use crate::error::{HuffError, Result};
use crate::integrity::{DecompressOptions, RecoveryMode, RecoveryReport, Verify};
use crate::metrics::latency::LatencyBook;
use crate::metrics::registry::{self, Registry};
use crate::metrics::span::{SpanSink, TraceContext};
use crate::slo;
use crate::testing::Fault;
use crate::tune::{self, Dispatch, Tuner};
use crate::{archive, frame};
use gpu_sim::KernelRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::{Map, Value};

/// Modeled decode throughput per backend, output bytes per second.
///
/// The serving engine needs a service-time estimate for decompress
/// requests; these constants follow the decoder-sweep narrative (LUT
/// fastest, bit-serial slowest) without re-deriving the full roofline —
/// queueing behavior, not decode micro-modeling, is what the engine
/// studies. Compress requests use the batch report's contended makespan
/// directly.
const DECODE_MODEL_BYTES_PER_SEC: [(DecoderKind, f64); 3] =
    [(DecoderKind::Lut, 55.0e9), (DecoderKind::Chunked, 18.0e9), (DecoderKind::Serial, 1.2e9)];

/// Fixed per-request overhead (parse, dispatch), modeled seconds.
const REQUEST_OVERHEAD_SECONDS: f64 = 20.0e-6;

/// Fraction of a rung's full service time charged when that rung fails
/// and the engine degrades to the next backend (the failed pass ran
/// partway before erroring).
const FAILED_RUNG_COST_FRACTION: f64 = 0.25;

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent pipeline lanes (modeled).
    pub workers: usize,
    /// Bounded admission queue: requests arriving while this many are
    /// already waiting are shed.
    pub queue_capacity: usize,
    /// Retry budget for injected transient faults.
    pub max_retries: u32,
    /// First retry waits this many modeled seconds; each further retry
    /// doubles it.
    pub backoff_base: f64,
    /// Batch pipeline template for compress requests.
    pub batch: BatchOptions,
    /// Strict decode ladder for decompress requests, tried in order.
    pub ladder: Vec<DecoderKind>,
    /// Sentinel symbol for best-effort recovery.
    pub sentinel: u16,
}

impl EngineConfig {
    /// Defaults: 2 workers, queue of 8, 3 retries from a 0.25 ms base,
    /// the [`BatchOptions::new`] pipeline over `num_symbols` bins, and
    /// the full LUT → chunked → serial ladder.
    pub fn new(num_symbols: usize) -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 8,
            max_retries: 3,
            backoff_base: 0.25e-3,
            batch: BatchOptions::new(num_symbols),
            ladder: vec![DecoderKind::Lut, DecoderKind::Chunked, DecoderKind::Serial],
            sentinel: u16::MAX,
        }
    }
}

/// Chaos probabilities, drawn per admitted request from a seeded
/// generator — the same seed and request sequence always produce the
/// same faults.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the per-request fault draws.
    pub seed: u64,
    /// P(attempts fail transiently until retried).
    pub transient_prob: f64,
    /// P(the LUT rung fails with a gap-array glitch) — decompress only.
    pub glitch_prob: f64,
    /// P(the request payload is corrupted in flight) — decompress only.
    pub corruption_prob: f64,
    /// P(a device dies mid-batch) — compress only.
    pub device_loss_prob: f64,
}

impl ChaosConfig {
    /// All probabilities zero: chaos plumbing on, no faults.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            transient_prob: 0.0,
            glitch_prob: 0.0,
            corruption_prob: 0.0,
            device_loss_prob: 0.0,
        }
    }

    /// An aggressive mix exercising every fault class.
    pub fn storm(seed: u64) -> Self {
        ChaosConfig {
            seed,
            transient_prob: 0.3,
            glitch_prob: 0.3,
            corruption_prob: 0.2,
            device_loss_prob: 0.3,
        }
    }
}

/// What one admitted request was dealt by the chaos plan.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosDraw {
    /// This many leading attempts fail transiently.
    transient_failures: u32,
    /// LUT rung fails with an injected gap-array glitch.
    glitch: bool,
    /// Corrupt the payload at this fractional offset (decompress).
    corruption: Option<(f64, u8)>,
    /// `(device, modeled instant)` of an injected device loss (compress).
    device_loss: Option<(usize, f64)>,
}

/// The work a request asks for.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Compress these symbols into a multi-shard frame.
    Compress(Vec<u16>),
    /// Decompress this RSH2 archive or RSHM frame.
    Decompress(Vec<u8>),
    /// Decode only this byte range (decoded-output byte space) of an
    /// archive or frame — a seekable random-access read. Served through
    /// [`archive::decode_range`], so only the chunks covering the range
    /// are decoded and service time scales with the slice, not the
    /// archive.
    DecompressRange(Vec<u8>, std::ops::Range<u64>),
}

impl Workload {
    /// The request class this workload belongs to — the key latency
    /// histograms and SLO objectives aggregate by.
    pub fn class(&self) -> &'static str {
        match self {
            Workload::Compress(_) => "compress",
            Workload::Decompress(_) => "decompress",
            Workload::DecompressRange(..) => "decompress_range",
        }
    }
}

/// One request submitted to the engine.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen trace ID, surfaced end to end.
    pub trace_id: String,
    /// Modeled arrival instant, seconds; submissions must be in
    /// nondecreasing arrival order.
    pub arrival: f64,
    /// Optional deadline, seconds *from arrival*.
    pub deadline: Option<f64>,
    /// The work.
    pub workload: Workload,
}

impl Request {
    /// A compress request.
    pub fn compress(trace_id: impl Into<String>, arrival: f64, symbols: Vec<u16>) -> Self {
        Request {
            trace_id: trace_id.into(),
            arrival,
            deadline: None,
            workload: Workload::Compress(symbols),
        }
    }

    /// A decompress request.
    pub fn decompress(trace_id: impl Into<String>, arrival: f64, bytes: Vec<u8>) -> Self {
        Request {
            trace_id: trace_id.into(),
            arrival,
            deadline: None,
            workload: Workload::Decompress(bytes),
        }
    }

    /// A range-decode request: serve only `range` of the decoded output.
    pub fn decompress_range(
        trace_id: impl Into<String>,
        arrival: f64,
        bytes: Vec<u8>,
        range: std::ops::Range<u64>,
    ) -> Self {
        Request {
            trace_id: trace_id.into(),
            arrival,
            deadline: None,
            workload: Workload::DecompressRange(bytes, range),
        }
    }

    /// Attach a deadline (seconds from arrival).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The payload a finished request produced.
#[derive(Debug, Clone)]
pub enum Response {
    /// Compressed frame bytes.
    Frame(Vec<u8>),
    /// Decoded symbols.
    Symbols(Vec<u16>),
    /// The decoded bytes of a range request, exactly the slice asked for
    /// (clamped to the decoded size).
    Bytes(Vec<u8>),
}

/// How a request ended. Every request ends in exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Decoded/encoded bit-exactly on the first-choice path.
    Success,
    /// Served, but on a degraded path: a lower decode rung or
    /// best-effort recovery (`symbols_lost > 0` only there).
    Degraded {
        /// The backend that ultimately served the request.
        backend: String,
        /// Symbols sentinel-filled by best-effort recovery.
        symbols_lost: usize,
    },
    /// Rejected at admission: the queue was full.
    Shed {
        /// Structured reason (`"queue_full"`).
        reason: String,
    },
    /// Cancelled in queue or finished past its deadline.
    DeadlineMiss {
        /// The request's budget, seconds.
        budget: f64,
        /// What it actually needed (queue wait + service), seconds.
        needed: f64,
    },
    /// Unrecoverable: retries exhausted or the payload was damaged
    /// beyond best-effort repair.
    Failed {
        /// The terminal error, rendered.
        error: String,
    },
}

impl Outcome {
    /// The registry label for this outcome.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Degraded { .. } => "degraded",
            Outcome::Shed { .. } => "shed",
            Outcome::DeadlineMiss { .. } => "deadline",
            Outcome::Failed { .. } => "failed",
        }
    }

    /// True for `Success` and `Degraded` — the caller got correct bytes.
    pub fn served(&self) -> bool {
        matches!(self, Outcome::Success | Outcome::Degraded { .. })
    }
}

/// Everything observable about one finished request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's trace ID.
    pub trace_id: String,
    /// The request class ([`Workload::class`]).
    pub class: &'static str,
    /// Root span id of the request's tree in [`Engine::spans`].
    pub span_id: u64,
    /// How it ended.
    pub outcome: Outcome,
    /// The produced payload, when [`Outcome::served`].
    pub response: Option<Response>,
    /// Best-effort damage report, when recovery ran.
    pub recovery: Option<RecoveryReport>,
    /// Modeled seconds spent waiting for a worker.
    pub queue_wait: f64,
    /// Modeled execution seconds (successful attempt + failed-rung
    /// charges), excluding backoff.
    pub service: f64,
    /// Modeled seconds spent in retry backoff.
    pub backoff: f64,
    /// Retries consumed by transient faults.
    pub retries: u32,
    /// Queue depth observed at arrival (before this request joined).
    pub queue_depth: usize,
    /// Shards quarantined and rescheduled during a compress request.
    pub quarantined_shards: usize,
    /// Modeled completion instant, seconds.
    pub finish: f64,
}

/// Reusable scratch buffers for in-flight payload copies.
///
/// The engine never mutates a caller's payload: chaos corruption works on
/// a pooled copy, and the pool recycles those allocations across
/// requests instead of growing with the request count.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    /// Total acquisitions.
    pub acquired: u64,
    /// Acquisitions served by recycling a returned buffer.
    pub reused: u64,
}

impl BufferPool {
    fn acquire(&mut self, contents: &[u8]) -> Vec<u8> {
        self.acquired += 1;
        match self.free.pop() {
            Some(mut b) => {
                self.reused += 1;
                b.clear();
                b.extend_from_slice(contents);
                b
            }
            None => contents.to_vec(),
        }
    }

    fn release(&mut self, buf: Vec<u8>) {
        self.free.push(buf);
    }
}

/// Aggregate view of a finished (or in-progress) serve run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request completions, in submission order.
    pub completions: Vec<Completion>,
    /// Deepest queue observed at any arrival.
    pub max_depth: usize,
}

impl ServeReport {
    /// Completions that ended with the given [`Outcome::label`].
    pub fn count(&self, label: &str) -> usize {
        self.completions.iter().filter(|c| c.outcome.label() == label).count()
    }

    /// Total retries across all requests.
    pub fn retries_total(&self) -> u64 {
        self.completions.iter().map(|c| u64::from(c.retries)).sum()
    }

    /// Total modeled queue wait, seconds.
    pub fn queue_wait_total(&self) -> f64 {
        self.completions.iter().map(|c| c.queue_wait).sum()
    }

    /// Reduce the completion stream to [`crate::slo::Sample`]s — the
    /// narrow view SLO evaluation consumes. A request's end-to-end
    /// latency is its queue wait + backoff + service (equal to
    /// `finish − arrival` on every path).
    pub fn slo_samples(&self) -> Vec<slo::Sample> {
        self.completions
            .iter()
            .map(|c| slo::Sample {
                class: c.class.to_string(),
                trace_id: c.trace_id.clone(),
                finish: c.finish,
                latency: c.queue_wait + c.backoff + c.service,
                served: c.outcome.served(),
            })
            .collect()
    }

    /// Check the completion stream against a registry: every serve
    /// counter must equal the tally derived from the completions. This
    /// is the acceptance property "counters reconcile with the trace".
    pub fn reconciles_with(&self, reg: &Registry) -> bool {
        let outcome = |l: &str| reg.get("rsh_requests_total", &[("outcome", l)]) as u64;
        ["success", "degraded", "shed", "deadline", "failed"]
            .iter()
            .all(|l| outcome(l) == self.count(l) as u64)
            && reg.get("rsh_retries_total", &[]) as u64 == self.retries_total()
            && reg.get("rsh_deadline_miss_total", &[]) as u64 == self.count("deadline") as u64
            && (reg.get("rsh_queue_wait_seconds_total", &[]) - self.queue_wait_total()).abs()
                <= 1e-12 * (1.0 + self.queue_wait_total())
    }

    /// Export the run as an `rsh-trace-v1` document of kind `"serve"`,
    /// with byte-deterministic (sorted) counter keys.
    pub fn to_json(&self) -> Value {
        let mut counters = BTreeMap::new();
        for c in &self.completions {
            *counters.entry(c.outcome.label()).or_insert(0u64) += 1;
        }
        let mut counter_map = Map::new();
        for (k, v) in counters {
            counter_map.insert(k.to_string(), Value::Int(i128::from(v)));
        }
        counter_map.insert("retries".into(), Value::Int(i128::from(self.retries_total())));

        let mut root = Map::new();
        root.insert("schema".into(), Value::String(crate::metrics::TRACE_SCHEMA.into()));
        root.insert("kind".into(), Value::String("serve".into()));
        root.insert("max_queue_depth".into(), Value::Int(self.max_depth as i128));
        root.insert("counters".into(), Value::Object(counter_map));
        let reqs = self
            .completions
            .iter()
            .map(|c| {
                let mut m = Map::new();
                m.insert("trace_id".into(), Value::String(c.trace_id.clone()));
                m.insert("class".into(), Value::String(c.class.into()));
                m.insert("span".into(), Value::Int(i128::from(c.span_id)));
                m.insert("outcome".into(), Value::String(c.outcome.label().into()));
                m.insert("queue_wait_s".into(), Value::Float(c.queue_wait));
                m.insert("service_s".into(), Value::Float(c.service));
                m.insert("backoff_s".into(), Value::Float(c.backoff));
                m.insert("retries".into(), Value::Int(i128::from(c.retries)));
                m.insert("queue_depth".into(), Value::Int(c.queue_depth as i128));
                m.insert("quarantined_shards".into(), Value::Int(c.quarantined_shards as i128));
                m.insert("finish_s".into(), Value::Float(c.finish));
                Value::Object(m)
            })
            .collect();
        root.insert("requests".into(), Value::Array(reqs));
        Value::Object(root)
    }
}

/// What one successful execution produced.
struct Exec {
    /// Back-to-back service stages `(name, modeled seconds)`. Their sum
    /// is the request's service time, and they become the child spans of
    /// the request's `service` span — so stage spans always tile the
    /// recorded service exactly.
    stages: Vec<(String, f64)>,
    /// Kernel records replayed on this request's behalf (compress only;
    /// decode rungs are modeled without kernel replay). Each is stamped
    /// with the request's trace id.
    records: Vec<KernelRecord>,
    response: Response,
    recovery: Option<RecoveryReport>,
    degraded: Option<(String, usize)>,
    quarantined: usize,
}

impl Exec {
    /// Total service seconds: the sum of the stage durations.
    fn seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.1).sum()
    }
}

/// The serving engine. See the module docs for the model.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    chaos: Option<(ChaosConfig, StdRng)>,
    /// Per-worker modeled free instants.
    workers: Vec<f64>,
    /// Start instants of admitted requests; depth at arrival `t` is the
    /// count of entries still in the future (`start > t`).
    starts: Vec<f64>,
    pool: BufferPool,
    metrics: Registry,
    completions: Vec<Completion>,
    last_arrival: f64,
    max_depth: usize,
    tuner: Option<Tuner>,
    spans: SpanSink,
    latency: LatencyBook,
}

impl Engine {
    /// A fault-free engine.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            chaos: None,
            workers: Vec::new(),
            starts: Vec::new(),
            pool: BufferPool::default(),
            metrics: Registry::new(),
            completions: Vec::new(),
            last_arrival: 0.0,
            max_depth: 0,
            tuner: None,
            spans: SpanSink::new(),
            latency: LatencyBook::new(),
        }
    }

    /// An engine with a seeded chaos plan.
    pub fn with_chaos(cfg: EngineConfig, chaos: ChaosConfig) -> Self {
        let rng = StdRng::seed_from_u64(chaos.seed);
        let mut e = Engine::new(cfg);
        e.chaos = Some((chaos, rng));
        e
    }

    /// Enable adaptive autotuning: compress requests are dispatched by
    /// [`crate::tune::Tuner::decide`] instead of the fixed batch
    /// geometry. The first request with a given signature models the
    /// candidate sweep (charged [`tune::MODEL_SWEEP_SECONDS`] of service
    /// time); later requests hit the tuning cache and skip that cost.
    pub fn with_tuner(mut self, tuner: Tuner) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// The autotuner, when enabled — exposes cache hit/miss counters.
    pub fn tuner(&self) -> Option<&Tuner> {
        self.tuner.as_ref()
    }

    /// The engine's own metrics registry (serve events are also mirrored
    /// into the process-global registry for `rsh stats` / `/metrics`).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Scratch-buffer pool statistics.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Every request's span tree and chaos events recorded so far.
    pub fn spans(&self) -> &SpanSink {
        &self.spans
    }

    /// Per-(class, outcome) latency histograms with exemplar trace ids.
    pub fn latency(&self) -> &LatencyBook {
        &self.latency
    }

    /// The `rsh-span-v1` JSONL export of every span and event so far —
    /// byte-deterministic for a fixed seed.
    pub fn span_jsonl(&self) -> String {
        self.spans.to_jsonl()
    }

    /// Chrome `trace_event` JSON of the span trees, one lane per
    /// request.
    pub fn chrome_spans(&self) -> String {
        self.spans.to_chrome_trace("rsh serve (modeled)")
    }

    /// Evaluate SLO `objectives` against the completions so far (see
    /// [`crate::slo::evaluate`]).
    pub fn slo_report(&self, objectives: &[slo::Objective]) -> slo::SloReport {
        slo::evaluate(objectives, &self.report().slo_samples())
    }

    /// Submit one request and replay it to completion in virtual time.
    /// Requests must arrive in nondecreasing `arrival` order.
    pub fn submit(&mut self, req: Request) -> Result<&Completion> {
        if self.workers.len() != self.cfg.workers {
            if self.cfg.workers == 0 || self.cfg.batch.devices.is_empty() {
                return Err(HuffError::BadArchive(
                    "serve engine needs at least one worker and one device".into(),
                ));
            }
            self.workers = vec![0.0; self.cfg.workers];
        }
        if !req.arrival.is_finite() || req.arrival < self.last_arrival {
            return Err(HuffError::BadArchive(format!(
                "serve requests must arrive in nondecreasing order: {} after {}",
                req.arrival, self.last_arrival
            )));
        }
        self.last_arrival = req.arrival;
        let t = req.arrival;
        let trace_id = req.trace_id.clone();
        let class = req.workload.class();

        // Admission: depth = admitted requests that have not started yet.
        let depth = self.starts.iter().filter(|&&s| s > t).count();
        self.max_depth = self.max_depth.max(depth);
        if depth >= self.cfg.queue_capacity {
            self.metrics.record_shed("queue_full");
            self.metrics.record_request("shed");
            registry::global().record_shed("queue_full");
            registry::global().record_request("shed");
            let span_id =
                self.spans.open(&TraceContext::root(trace_id.clone()), "request", class, t, t);
            self.spans.event(trace_id.clone(), span_id, "shed", t, "queue_full");
            self.latency.observe(class, "shed", 0.0, &trace_id);
            self.completions.push(Completion {
                trace_id: req.trace_id,
                class,
                span_id,
                outcome: Outcome::Shed { reason: "queue_full".into() },
                response: None,
                recovery: None,
                queue_wait: 0.0,
                service: 0.0,
                backoff: 0.0,
                retries: 0,
                queue_depth: depth,
                quarantined_shards: 0,
                finish: t,
            });
            return Ok(self.completions.last().unwrap());
        }

        let draw = self.draw_chaos(&req.workload);

        // FIFO service on the earliest-free worker.
        let (widx, &free) = self
            .workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .unwrap();
        let start = t.max(free);
        let queue_wait = start - t;

        // Cancel in queue: the wait alone blows the budget, so the
        // request never consumes worker time.
        if let Some(d) = req.deadline {
            if queue_wait > d {
                self.metrics.record_deadline_miss();
                self.metrics.record_request("deadline");
                self.metrics.record_queue_wait(d, depth);
                registry::global().record_deadline_miss();
                registry::global().record_request("deadline");
                registry::global().record_queue_wait(d, depth);
                let root_ctx = TraceContext::root(trace_id.clone());
                let span_id = self.spans.open(&root_ctx, "request", class, t, t + d);
                self.spans.open(&root_ctx.child_of(span_id), "stage", "queue", t, t + d);
                self.spans.event(
                    trace_id.clone(),
                    span_id,
                    "deadline_miss",
                    t + d,
                    format!("cancelled in queue: budget {d:.6e}s, wait {queue_wait:.6e}s"),
                );
                self.latency.observe(class, "deadline", d, &trace_id);
                self.completions.push(Completion {
                    trace_id: req.trace_id,
                    class,
                    span_id,
                    outcome: Outcome::DeadlineMiss { budget: d, needed: queue_wait },
                    response: None,
                    recovery: None,
                    queue_wait: d,
                    service: 0.0,
                    backoff: 0.0,
                    retries: 0,
                    queue_depth: depth,
                    quarantined_shards: 0,
                    finish: t + d,
                });
                return Ok(self.completions.last().unwrap());
            }
        }

        // Execute, retrying injected transient faults with exponential
        // backoff in modeled time.
        let mut retries = 0u32;
        let mut backoff = 0.0f64;
        // Cumulative backoff at each retry, for the span events.
        let mut retry_offsets: Vec<f64> = Vec::new();
        let result = loop {
            if retries < draw.transient_failures {
                if retries >= self.cfg.max_retries {
                    break Err(HuffError::CorruptStream(
                        "injected transient fault persisted past the retry budget",
                    ));
                }
                backoff += self.cfg.backoff_base * f64::powi(2.0, retries as i32);
                retries += 1;
                retry_offsets.push(backoff);
                continue;
            }
            break self.execute(&req.workload, &draw, &trace_id);
        };

        self.starts.push(start);
        self.metrics.record_queue_wait(queue_wait, depth);
        self.metrics.record_retries(u64::from(retries));
        registry::global().record_queue_wait(queue_wait, depth);
        registry::global().record_retries(u64::from(retries));

        let completion = match result {
            Ok(exec) => {
                let service = exec.seconds();
                let finish = start + backoff + service;
                self.workers[widx] = finish;
                let outcome = match (&exec.degraded, req.deadline) {
                    (_, Some(d)) if finish - t > d => {
                        self.metrics.record_deadline_miss();
                        registry::global().record_deadline_miss();
                        Outcome::DeadlineMiss { budget: d, needed: finish - t }
                    }
                    (Some((backend, lost)), _) => {
                        self.metrics.record_degraded(backend);
                        registry::global().record_degraded(backend);
                        Outcome::Degraded { backend: backend.clone(), symbols_lost: *lost }
                    }
                    (None, _) => Outcome::Success,
                };
                let span_id = self.record_spans(
                    &trace_id,
                    class,
                    t,
                    start,
                    backoff,
                    &retry_offsets,
                    finish,
                    Some(&exec),
                    &draw,
                    &outcome,
                );
                Completion {
                    trace_id: req.trace_id,
                    class,
                    span_id,
                    outcome,
                    response: Some(exec.response),
                    recovery: exec.recovery,
                    queue_wait,
                    service,
                    backoff,
                    retries,
                    queue_depth: depth,
                    quarantined_shards: exec.quarantined,
                    finish,
                }
            }
            Err(e) => {
                // A failed request still occupied its worker for the
                // overhead of discovering the failure.
                let service = REQUEST_OVERHEAD_SECONDS;
                let finish = start + backoff + service;
                self.workers[widx] = finish;
                let outcome = Outcome::Failed { error: e.to_string() };
                let span_id = self.record_spans(
                    &trace_id,
                    class,
                    t,
                    start,
                    backoff,
                    &retry_offsets,
                    finish,
                    None,
                    &draw,
                    &outcome,
                );
                Completion {
                    trace_id: req.trace_id,
                    class,
                    span_id,
                    outcome,
                    response: None,
                    recovery: None,
                    queue_wait,
                    service,
                    backoff,
                    retries,
                    queue_depth: depth,
                    quarantined_shards: 0,
                    finish,
                }
            }
        };
        self.metrics.record_request(completion.outcome.label());
        registry::global().record_request(completion.outcome.label());
        self.latency.observe(
            class,
            completion.outcome.label(),
            completion.queue_wait + completion.backoff + completion.service,
            &completion.trace_id,
        );
        self.completions.push(completion);
        Ok(self.completions.last().unwrap())
    }

    /// Submit a batch of requests and return the final report.
    pub fn run(&mut self, requests: Vec<Request>) -> Result<ServeReport> {
        for r in requests {
            self.submit(r)?;
        }
        Ok(self.report())
    }

    /// Snapshot the run so far.
    pub fn report(&self) -> ServeReport {
        ServeReport { completions: self.completions.clone(), max_depth: self.max_depth }
    }

    fn draw_chaos(&mut self, workload: &Workload) -> ChaosDraw {
        let Some((cfg, rng)) = self.chaos.as_mut() else {
            return ChaosDraw::default();
        };
        let mut draw = ChaosDraw::default();
        if rng.gen_bool(cfg.transient_prob) {
            draw.transient_failures = rng.gen_range(1u32..=2);
        }
        match workload {
            Workload::Decompress(_) | Workload::DecompressRange(..) => {
                draw.glitch = rng.gen_bool(cfg.glitch_prob);
                if rng.gen_bool(cfg.corruption_prob) {
                    draw.corruption = Some((rng.gen_range(0.0f64..1.0), rng.gen_range(0u8..8)));
                }
            }
            Workload::Compress(_) => {
                if rng.gen_bool(cfg.device_loss_prob) {
                    let device = rng.gen_range(0usize..self.cfg.batch.devices.len());
                    let at = rng.gen_range(0.0f64..500.0) * 1e-6;
                    draw.device_loss = Some((device, at));
                }
            }
        }
        draw
    }

    /// Record the span tree of one executed (or failed-in-execution)
    /// request: root → queue / backoff / service stages → per-stage
    /// service children → kernel spans, plus the chaos and outcome
    /// events attributed to the root. Returns the root span id.
    #[allow(clippy::too_many_arguments)]
    fn record_spans(
        &mut self,
        trace_id: &str,
        class: &'static str,
        arrival: f64,
        start: f64,
        backoff: f64,
        retry_offsets: &[f64],
        finish: f64,
        exec: Option<&Exec>,
        draw: &ChaosDraw,
        outcome: &Outcome,
    ) -> u64 {
        let root_ctx = TraceContext::root(trace_id);
        let root = self.spans.open(&root_ctx, "request", class, arrival, finish);
        let child = root_ctx.child_of(root);
        if start > arrival {
            self.spans.open(&child, "stage", "queue", arrival, start);
        }
        if backoff > 0.0 {
            let b = self.spans.open(&child, "stage", "backoff", start, start + backoff);
            for (i, off) in retry_offsets.iter().enumerate() {
                self.spans.event(
                    trace_id,
                    b,
                    "retry",
                    start + off,
                    format!("attempt {} after injected transient fault", i + 2),
                );
            }
        }
        let svc_start = start + backoff;
        // A failed execution still occupied its worker for the fixed
        // overhead (see the Err arm in `submit`); its service span holds
        // that single stage so stage spans always tile the latency.
        let failed_stages;
        let stages: &[(String, f64)] = match exec {
            Some(e) => &e.stages,
            None => {
                failed_stages = [("overhead".to_string(), REQUEST_OVERHEAD_SECONDS)];
                &failed_stages
            }
        };
        let service: f64 = stages.iter().map(|s| s.1).sum();
        if service > 0.0 {
            let svc = self.spans.open(&child, "stage", "service", svc_start, finish);
            let svc_ctx = child.child_of(svc);
            let mut cursor = svc_start;
            for (name, dur) in stages {
                let sid = self.spans.open(&svc_ctx, "stage", name.clone(), cursor, cursor + dur);
                if name == "batch" {
                    if let Some(e) = exec {
                        self.spans.kernels(&svc_ctx.child_of(sid), cursor, &e.records);
                    }
                }
                cursor += dur;
            }
        }
        // Injected chaos and terminal outcomes, attributed to the root.
        if let Some((device, at)) = draw.device_loss {
            self.spans.event(
                trace_id,
                root,
                "device_loss",
                svc_start + at,
                format!("device {device} lost {at:.3e}s into the batch"),
            );
        }
        if draw.glitch {
            self.spans.event(
                trace_id,
                root,
                "decoder_glitch",
                svc_start,
                "injected gap-array glitch (chaos)",
            );
        }
        if let Some((frac, bit)) = draw.corruption {
            self.spans.event(
                trace_id,
                root,
                "payload_corruption",
                start,
                format!("bit {bit} flipped at fractional offset {frac:.6}"),
            );
        }
        match outcome {
            Outcome::DeadlineMiss { budget, needed } => {
                self.spans.event(
                    trace_id,
                    root,
                    "deadline_miss",
                    finish,
                    format!("budget {budget:.6e}s, needed {needed:.6e}s"),
                );
            }
            Outcome::Degraded { backend, symbols_lost } => {
                self.spans.event(
                    trace_id,
                    root,
                    "degraded",
                    finish,
                    format!("served by {backend}, {symbols_lost} symbols lost"),
                );
            }
            Outcome::Failed { error } => {
                self.spans.event(trace_id, root, "failed", finish, error.clone());
            }
            Outcome::Success | Outcome::Shed { .. } => {}
        }
        root
    }

    fn execute(&mut self, workload: &Workload, draw: &ChaosDraw, trace: &str) -> Result<Exec> {
        match workload {
            Workload::Compress(symbols) => self.execute_compress(symbols, draw, trace),
            Workload::Decompress(bytes) => self.execute_decompress(bytes, draw),
            Workload::DecompressRange(bytes, range) => {
                self.execute_decompress_range(bytes, range.clone(), draw)
            }
        }
    }

    fn execute_compress(&mut self, symbols: &[u16], draw: &ChaosDraw, trace: &str) -> Result<Exec> {
        let faults: Vec<DeviceFault> =
            draw.device_loss.iter().map(|&(device, at)| DeviceFault { device, at }).collect();

        // Autotuned path: dispatch per the tuner's decision. A cache
        // miss models the candidate sweep once and is charged
        // MODEL_SWEEP_SECONDS; a hit skips that cost entirely.
        if let Some(tuner) = &mut self.tuner {
            let (_, decision, hit) =
                tuner.decide(symbols, self.cfg.batch.num_symbols, self.cfg.batch.symbol_bytes)?;
            let sweep = if hit { 0.0 } else { tune::MODEL_SWEEP_SECONDS };
            let mut stages = vec![("overhead".to_string(), REQUEST_OVERHEAD_SECONDS)];
            if sweep > 0.0 {
                stages.push(("model_sweep".to_string(), sweep));
            }
            return match decision.dispatch {
                Dispatch::Gpu => {
                    let mut opts = self.cfg.batch.clone();
                    opts.trace = trace.to_string();
                    opts.shard_symbols =
                        symbols.len().div_ceil(decision.shards.max(1) as usize).max(1);
                    opts.streams = decision.streams.max(1) as usize;
                    opts.reduction = Some(decision.reduction.max(1));
                    let (frame_bytes, report, quarantine) =
                        compress_batched_with_faults(symbols, &opts, &faults)?;
                    stages.push(("batch".to_string(), report.makespan));
                    let records = report
                        .devices
                        .iter()
                        .flat_map(|d| d.timeline.records.iter().cloned())
                        .collect();
                    Ok(Exec {
                        stages,
                        records,
                        response: Response::Frame(frame_bytes),
                        recovery: None,
                        degraded: None,
                        quarantined: quarantine.quarantined.len(),
                    })
                }
                // Host paths: device loss cannot touch them, so the
                // chaos draw's faults are moot and service time is the
                // decision's modeled host cost.
                Dispatch::CpuSerial | Dispatch::StoreRaw => {
                    let devices = [tuner.device().clone()];
                    let bytes = tune::compress_with_decision(
                        symbols,
                        self.cfg.batch.num_symbols,
                        self.cfg.batch.symbol_bytes,
                        &decision,
                        &devices,
                    )?;
                    stages.push(("host_encode".to_string(), decision.modeled_seconds()));
                    Ok(Exec {
                        stages,
                        records: Vec::new(),
                        response: Response::Frame(bytes),
                        recovery: None,
                        degraded: None,
                        quarantined: 0,
                    })
                }
            };
        }

        let mut opts = self.cfg.batch.clone();
        opts.trace = trace.to_string();
        let (frame_bytes, report, quarantine) =
            compress_batched_with_faults(symbols, &opts, &faults)?;
        let records =
            report.devices.iter().flat_map(|d| d.timeline.records.iter().cloned()).collect();
        Ok(Exec {
            stages: vec![
                ("overhead".to_string(), REQUEST_OVERHEAD_SECONDS),
                ("batch".to_string(), report.makespan),
            ],
            records,
            response: Response::Frame(frame_bytes),
            recovery: None,
            degraded: None,
            quarantined: quarantine.quarantined.len(),
        })
    }

    fn execute_decompress(&mut self, bytes: &[u8], draw: &ChaosDraw) -> Result<Exec> {
        // Chaos corruption works on a pooled copy; the caller's payload
        // is never touched.
        let scratch;
        let payload: &[u8] = if let Some((frac, bit)) = draw.corruption {
            let mut buf = self.pool.acquire(bytes);
            let offset = ((bytes.len() as f64 * frac) as usize).min(bytes.len().saturating_sub(1));
            crate::testing::apply(&mut buf, &Fault::BitFlip { offset, bit });
            scratch = buf;
            &scratch
        } else {
            scratch = Vec::new();
            bytes
        };

        let mut stages = vec![("overhead".to_string(), REQUEST_OVERHEAD_SECONDS)];
        let mut last_err: Option<HuffError> = None;
        let mut outcome: Option<Exec> = None;

        for (rung, &kind) in self.cfg.ladder.iter().enumerate() {
            // The injected glitch models a gap-array inconsistency: the
            // LUT rung fails with the indexed error the degradation log
            // needs, and the engine falls through to the next rung.
            if draw.glitch && kind == DecoderKind::Lut {
                let e = HuffError::GapArray {
                    chunk: 0,
                    subchunk: 0,
                    gap_bit: 0,
                    detail: "injected decoder glitch (chaos)".into(),
                };
                stages.push((
                    format!("decode_{}_failed", kind.name()),
                    self.model_decode_seconds(payload.len(), kind) * FAILED_RUNG_COST_FRACTION,
                ));
                last_err = Some(e);
                continue;
            }
            let opts = DecompressOptions {
                verify: Verify::Full,
                mode: RecoveryMode::Strict,
                sentinel: self.cfg.sentinel,
                decoder: kind,
            };
            match decompress_any(payload, &opts) {
                Ok(rec) => {
                    stages.push((
                        format!("decode_{}", kind.name()),
                        self.model_decode_seconds(rec.symbols.len() * 2, kind),
                    ));
                    let degraded = (rung > 0).then(|| (kind.name().to_string(), 0));
                    outcome = Some(Exec {
                        stages: std::mem::take(&mut stages),
                        records: Vec::new(),
                        response: Response::Symbols(rec.symbols),
                        recovery: Some(rec.report),
                        degraded,
                        quarantined: 0,
                    });
                    break;
                }
                Err(e) => {
                    stages.push((
                        format!("decode_{}_failed", kind.name()),
                        self.model_decode_seconds(payload.len(), kind) * FAILED_RUNG_COST_FRACTION,
                    ));
                    last_err = Some(e);
                }
            }
        }
        let exec = match outcome {
            Some(exec) => exec,
            None => {
                // Strict ladder exhausted: best-effort recovery with the
                // most robust backend. Damaged regions come back
                // sentinel-filled and reported — never silently wrong.
                let opts = DecompressOptions {
                    verify: Verify::Full,
                    mode: RecoveryMode::BestEffort,
                    sentinel: self.cfg.sentinel,
                    decoder: DecoderKind::Serial,
                };
                match decompress_any(payload, &opts) {
                    Ok(rec) => {
                        stages.push((
                            "best_effort".to_string(),
                            self.model_decode_seconds(rec.symbols.len() * 2, DecoderKind::Serial),
                        ));
                        let lost = rec.report.symbols_lost;
                        Exec {
                            stages,
                            records: Vec::new(),
                            response: Response::Symbols(rec.symbols),
                            recovery: Some(rec.report),
                            degraded: Some(("best_effort".to_string(), lost)),
                            quarantined: 0,
                        }
                    }
                    Err(e) => {
                        return Err(last_err.unwrap_or(e));
                    }
                }
            }
        };
        if draw.corruption.is_some() {
            self.pool.release(scratch);
        }
        Ok(exec)
    }

    fn execute_decompress_range(
        &mut self,
        bytes: &[u8],
        range: std::ops::Range<u64>,
        draw: &ChaosDraw,
    ) -> Result<Exec> {
        let scratch;
        let payload: &[u8] = if let Some((frac, bit)) = draw.corruption {
            let mut buf = self.pool.acquire(bytes);
            let offset = ((bytes.len() as f64 * frac) as usize).min(bytes.len().saturating_sub(1));
            crate::testing::apply(&mut buf, &Fault::BitFlip { offset, bit });
            scratch = buf;
            &scratch
        } else {
            scratch = Vec::new();
            bytes
        };
        // A failed rung read at most the range's window, never the whole
        // archive — charge its fractional cost on the slice size.
        let slice_estimate =
            usize::try_from(range.end.saturating_sub(range.start)).unwrap_or(usize::MAX);

        let mut stages = vec![("overhead".to_string(), REQUEST_OVERHEAD_SECONDS)];
        let mut last_err: Option<HuffError> = None;
        let mut outcome: Option<Exec> = None;
        for (rung, &kind) in self.cfg.ladder.iter().enumerate() {
            if draw.glitch && kind == DecoderKind::Lut {
                let e = HuffError::GapArray {
                    chunk: 0,
                    subchunk: 0,
                    gap_bit: 0,
                    detail: "injected decoder glitch (chaos)".into(),
                };
                stages.push((
                    format!("decode_{}_failed", kind.name()),
                    self.model_decode_seconds(slice_estimate, kind) * FAILED_RUNG_COST_FRACTION,
                ));
                last_err = Some(e);
                continue;
            }
            let opts = DecompressOptions {
                verify: Verify::Full,
                mode: RecoveryMode::Strict,
                sentinel: self.cfg.sentinel,
                decoder: kind,
            };
            match archive::decode_range(payload, range.clone(), &opts) {
                Ok(r) => {
                    stages.push((
                        format!("decode_{}", kind.name()),
                        self.model_decode_seconds(r.bytes.len(), kind),
                    ));
                    let degraded = (rung > 0).then(|| (kind.name().to_string(), 0));
                    outcome = Some(Exec {
                        stages: std::mem::take(&mut stages),
                        records: Vec::new(),
                        response: Response::Bytes(r.bytes),
                        recovery: Some(r.report),
                        degraded,
                        quarantined: 0,
                    });
                    break;
                }
                Err(e) => {
                    stages.push((
                        format!("decode_{}_failed", kind.name()),
                        self.model_decode_seconds(slice_estimate, kind) * FAILED_RUNG_COST_FRACTION,
                    ));
                    last_err = Some(e);
                }
            }
        }
        let exec = match outcome {
            Some(exec) => exec,
            None => {
                let opts = DecompressOptions {
                    verify: Verify::Full,
                    mode: RecoveryMode::BestEffort,
                    sentinel: self.cfg.sentinel,
                    decoder: DecoderKind::Serial,
                };
                match archive::decode_range(payload, range, &opts) {
                    Ok(r) => {
                        stages.push((
                            "best_effort".to_string(),
                            self.model_decode_seconds(r.bytes.len(), DecoderKind::Serial),
                        ));
                        let lost = r.report.symbols_lost;
                        Exec {
                            stages,
                            records: Vec::new(),
                            response: Response::Bytes(r.bytes),
                            recovery: Some(r.report),
                            degraded: Some(("best_effort".to_string(), lost)),
                            quarantined: 0,
                        }
                    }
                    Err(e) => return Err(last_err.unwrap_or(e)),
                }
            }
        };
        if draw.corruption.is_some() {
            self.pool.release(scratch);
        }
        Ok(exec)
    }

    fn model_decode_seconds(&self, bytes: usize, kind: DecoderKind) -> f64 {
        let rate = DECODE_MODEL_BYTES_PER_SEC
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, r)| r)
            .unwrap_or(1.0e9);
        bytes as f64 / rate
    }
}

/// Decompress an RSHM frame or a bare RSH2 archive with the same options.
fn decompress_any(bytes: &[u8], opts: &DecompressOptions) -> Result<crate::integrity::Recovered> {
    if frame::is_frame(bytes) {
        frame::decompress_with(bytes, opts)
    } else {
        archive::decompress_with(bytes, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::compress_batched;
    use gpu_sim::DeviceSpec;

    fn symbols(n: usize, seed: u64) -> Vec<u16> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0u16..64)).collect()
    }

    fn small_cfg() -> EngineConfig {
        let mut cfg = EngineConfig::new(64);
        cfg.batch.shard_symbols = 4096;
        cfg.batch.devices = vec![DeviceSpec::test_part()];
        cfg
    }

    fn frame_of(symbols: &[u16], cfg: &EngineConfig) -> Vec<u8> {
        let (bytes, _) = compress_batched(symbols, &cfg.batch).unwrap();
        bytes
    }

    #[test]
    fn roundtrip_through_engine_is_bit_exact() {
        let cfg = small_cfg();
        let syms = symbols(10_000, 1);
        let mut eng = Engine::new(cfg.clone());
        let c = eng.submit(Request::compress("t-c", 0.0, syms.clone())).unwrap();
        assert_eq!(c.outcome, Outcome::Success);
        let Some(Response::Frame(frame_bytes)) = c.response.clone() else {
            panic!("expected frame response");
        };
        let c2 = eng.submit(Request::decompress("t-d", 1.0, frame_bytes)).unwrap();
        assert_eq!(c2.outcome, Outcome::Success);
        let Some(Response::Symbols(out)) = &c2.response else {
            panic!("expected symbols");
        };
        assert_eq!(*out, syms);
    }

    #[test]
    fn full_queue_sheds_with_structured_reason() {
        let mut cfg = small_cfg();
        cfg.workers = 1;
        cfg.queue_capacity = 1;
        let syms = symbols(8_000, 2);
        let mut eng = Engine::new(cfg);
        // Three simultaneous arrivals: one runs, one queues, one sheds.
        for i in 0..3 {
            eng.submit(Request::compress(format!("t{i}"), 0.0, syms.clone())).unwrap();
        }
        let report = eng.report();
        assert_eq!(report.count("success"), 2);
        assert_eq!(report.count("shed"), 1);
        let shed = &report.completions[2];
        assert_eq!(shed.outcome, Outcome::Shed { reason: "queue_full".into() });
        assert_eq!(eng.metrics().get("rsh_shed_total", &[("reason", "queue_full")]), 1.0);
        // The queued request's wait equals the first request's service.
        let first = &report.completions[0];
        let queued = &report.completions[1];
        assert!(queued.queue_wait > 0.0);
        assert!((queued.queue_wait - first.service).abs() < 1e-12);
    }

    #[test]
    fn deadline_cancels_in_queue_without_consuming_worker_time() {
        let mut cfg = small_cfg();
        cfg.workers = 1;
        let syms = symbols(8_000, 3);
        let mut eng = Engine::new(cfg);
        eng.submit(Request::compress("t0", 0.0, syms.clone())).unwrap();
        let first_finish = eng.report().completions[0].finish;
        let c = eng.submit(Request::compress("t1", 0.0, syms.clone()).with_deadline(1e-9)).unwrap();
        assert!(matches!(c.outcome, Outcome::DeadlineMiss { .. }));
        assert_eq!(c.service, 0.0);
        // Worker is still free at the first request's finish: the
        // cancelled request ran nothing.
        let c2 = eng.submit(Request::compress("t2", 0.0, syms)).unwrap();
        assert!((c2.queue_wait - first_finish).abs() < 1e-12);
    }

    #[test]
    fn transient_faults_retry_with_exponential_backoff() {
        let cfg = small_cfg();
        let mut chaos = ChaosConfig::quiet(7);
        chaos.transient_prob = 1.0;
        let syms = symbols(8_000, 4);
        let mut eng = Engine::with_chaos(cfg, chaos);
        let c = eng.submit(Request::compress("t0", 0.0, syms.clone())).unwrap();
        assert_eq!(c.outcome, Outcome::Success);
        assert!(c.retries >= 1 && c.retries <= 2);
        // backoff = base * (2^retries - 1)
        let expect = 0.25e-3 * (f64::powi(2.0, c.retries as i32) - 1.0);
        assert!((c.backoff - expect).abs() < 1e-12, "backoff {} != {}", c.backoff, expect);
        // Bytes are still bit-exact after retries.
        let healthy = compress_batched(&syms, &eng.cfg.batch).unwrap().0;
        let Some(Response::Frame(f)) = &eng.report().completions[0].response else { panic!() };
        assert_eq!(*f, healthy);
    }

    #[test]
    fn decoder_glitch_degrades_to_chunked_bit_exactly() {
        let cfg = small_cfg();
        let syms = symbols(12_000, 5);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut chaos = ChaosConfig::quiet(11);
        chaos.glitch_prob = 1.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        let c = eng.submit(Request::decompress("t0", 0.0, frame_bytes)).unwrap();
        let Outcome::Degraded { ref backend, symbols_lost } = c.outcome else {
            panic!("expected degraded, got {:?}", c.outcome);
        };
        assert_eq!(backend, "chunked");
        assert_eq!(symbols_lost, 0);
        let Some(Response::Symbols(out)) = &c.response else { panic!() };
        assert_eq!(*out, syms);
        assert_eq!(eng.metrics().get("rsh_degraded_total", &[("backend", "chunked")]), 1.0);
    }

    #[test]
    fn corruption_never_yields_wrong_bytes() {
        let cfg = small_cfg();
        let syms = symbols(12_000, 6);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut chaos = ChaosConfig::quiet(13);
        chaos.corruption_prob = 1.0;
        let mut served_degraded = false;
        for seed in 0..8u64 {
            chaos.seed = seed;
            let mut eng = Engine::with_chaos(cfg.clone(), chaos);
            let c = eng.submit(Request::decompress("t0", 0.0, frame_bytes.clone())).unwrap();
            match &c.outcome {
                Outcome::Degraded { .. } => {
                    served_degraded = true;
                    let Some(Response::Symbols(out)) = &c.response else { panic!() };
                    let report = c.recovery.as_ref().unwrap();
                    assert_eq!(out.len(), syms.len());
                    // Every symbol outside the reported damage is exact.
                    for (i, (&got, &want)) in out.iter().zip(&syms).enumerate() {
                        let damaged = report.damaged_ranges.iter().any(|&(s, e)| i >= s && i < e);
                        if !damaged {
                            assert_eq!(got, want, "wrong byte at {i} outside damage report");
                        }
                    }
                }
                // A flip in an undecoded region can verify clean; then
                // the bytes must be exact.
                Outcome::Success => {
                    let Some(Response::Symbols(out)) = &c.response else { panic!() };
                    assert_eq!(*out, syms);
                }
                Outcome::Failed { .. } => {} // header damage: structured failure
                other => panic!("corrupted payload must degrade or fail, got {other:?}"),
            }
        }
        assert!(served_degraded, "no seed produced a recoverable corruption");
    }

    #[test]
    fn device_loss_quarantines_and_stays_bit_exact() {
        let mut cfg = small_cfg();
        cfg.batch.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        cfg.batch.shard_symbols = 2048;
        let syms = symbols(16_000, 8);
        let healthy = compress_batched(&syms, &cfg.batch).unwrap().0;
        let mut chaos = ChaosConfig::quiet(17);
        chaos.device_loss_prob = 1.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        let c = eng.submit(Request::compress("t0", 0.0, syms)).unwrap();
        assert_eq!(c.outcome, Outcome::Success);
        let Some(Response::Frame(f)) = &c.response else { panic!() };
        assert_eq!(*f, healthy, "fault-recovered frame must be bit-identical");
    }

    #[test]
    fn counters_reconcile_with_completions() {
        let mut cfg = small_cfg();
        cfg.workers = 1;
        cfg.queue_capacity = 1;
        let syms = symbols(8_000, 9);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut chaos = ChaosConfig::storm(23);
        chaos.device_loss_prob = 0.0; // single test device; keep it alive
        let mut eng = Engine::with_chaos(cfg, chaos);
        for i in 0..12 {
            let t = i as f64 * 10e-6; // arrivals faster than service
            let req = if i % 2 == 0 {
                Request::compress(format!("c{i}"), t, syms.clone())
            } else {
                Request::decompress(format!("d{i}"), t, frame_bytes.clone()).with_deadline(0.5)
            };
            eng.submit(req).unwrap();
        }
        let report = eng.report();
        assert_eq!(report.completions.len(), 12);
        let total: usize = ["success", "degraded", "shed", "deadline", "failed"]
            .iter()
            .map(|l| report.count(l))
            .sum();
        assert_eq!(total, 12, "every request ends in exactly one outcome");
        assert!(report.reconciles_with(eng.metrics()));
    }

    #[test]
    fn chaos_is_deterministic() {
        let cfg = small_cfg();
        let syms = symbols(8_000, 10);
        let frame_bytes = frame_of(&syms, &cfg);
        let run = || {
            let mut eng = Engine::with_chaos(cfg.clone(), ChaosConfig::storm(42));
            for i in 0..6 {
                let t = i as f64 * 1e-4;
                let req = if i % 2 == 0 {
                    Request::compress(format!("c{i}"), t, syms.clone())
                } else {
                    Request::decompress(format!("d{i}"), t, frame_bytes.clone())
                };
                eng.submit(req).unwrap();
            }
            eng.report().to_json().to_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn range_request_serves_the_exact_slice_and_bills_the_slice() {
        let cfg = small_cfg();
        let syms = symbols(20_000, 14);
        let frame_bytes = frame_of(&syms, &cfg);
        let full: Vec<u8> = syms.iter().flat_map(|s| s.to_le_bytes()).collect();
        let mut eng = Engine::new(cfg);
        let c_full = eng.submit(Request::decompress("full", 0.0, frame_bytes.clone())).unwrap();
        let full_service = c_full.service;
        let c =
            eng.submit(Request::decompress_range("slice", 1.0, frame_bytes, 9_000..9_400)).unwrap();
        assert_eq!(c.outcome, Outcome::Success);
        let Some(Response::Bytes(out)) = &c.response else {
            panic!("expected bytes, got {:?}", c.response);
        };
        assert_eq!(*out, full[9_000..9_400]);
        // Service time scales with the 400-byte slice, not the archive.
        assert!(
            c.service < full_service,
            "range service {} should undercut full decode {full_service}",
            c.service
        );
    }

    #[test]
    fn range_request_degrades_down_the_ladder_bit_exactly() {
        let cfg = small_cfg();
        let syms = symbols(12_000, 15);
        let frame_bytes = frame_of(&syms, &cfg);
        let full: Vec<u8> = syms.iter().flat_map(|s| s.to_le_bytes()).collect();
        let mut chaos = ChaosConfig::quiet(31);
        chaos.glitch_prob = 1.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        let c =
            eng.submit(Request::decompress_range("r0", 0.0, frame_bytes, 5_000..6_000)).unwrap();
        let Outcome::Degraded { ref backend, symbols_lost } = c.outcome else {
            panic!("expected degraded, got {:?}", c.outcome);
        };
        assert_eq!(backend, "chunked");
        assert_eq!(symbols_lost, 0);
        let Some(Response::Bytes(out)) = &c.response else { panic!() };
        assert_eq!(*out, full[5_000..6_000]);
    }

    #[test]
    fn corrupted_range_request_never_yields_silently_wrong_bytes() {
        let cfg = small_cfg();
        let syms = symbols(12_000, 16);
        let frame_bytes = frame_of(&syms, &cfg);
        let full: Vec<u8> = syms.iter().flat_map(|s| s.to_le_bytes()).collect();
        let mut chaos = ChaosConfig::quiet(37);
        chaos.corruption_prob = 1.0;
        for seed in 0..8u64 {
            chaos.seed = seed;
            let mut eng = Engine::with_chaos(cfg.clone(), chaos);
            let c = eng
                .submit(Request::decompress_range("r0", 0.0, frame_bytes.clone(), 2_000..20_000))
                .unwrap();
            match &c.outcome {
                Outcome::Success => {
                    let Some(Response::Bytes(out)) = &c.response else { panic!() };
                    assert_eq!(*out, full[2_000..20_000]);
                }
                Outcome::Degraded { .. } => {
                    let Some(Response::Bytes(out)) = &c.response else { panic!() };
                    let report = c.recovery.as_ref().unwrap();
                    assert_eq!(out.len(), 18_000);
                    // Bytes outside the reported damage are exact.
                    for (k, (&got, &want)) in out.iter().zip(&full[2_000..20_000]).enumerate() {
                        let sym = (2_000 + k) / 2;
                        let damaged =
                            report.damaged_ranges.iter().any(|&(s, e)| sym >= s && sym < e);
                        if !damaged {
                            assert_eq!(got, want, "wrong byte at {k} outside damage report");
                        }
                    }
                }
                Outcome::Failed { .. } => {}
                other => panic!("corrupted range must serve or fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_order_arrivals_are_rejected() {
        let cfg = small_cfg();
        let mut eng = Engine::new(cfg);
        eng.submit(Request::compress("a", 1.0, symbols(4_000, 11))).unwrap();
        let err = eng.submit(Request::compress("b", 0.5, symbols(4_000, 12))).unwrap_err();
        assert!(err.to_string().contains("nondecreasing"));
    }

    #[test]
    fn pool_recycles_scratch_buffers() {
        let cfg = small_cfg();
        let syms = symbols(8_000, 13);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut chaos = ChaosConfig::quiet(29);
        chaos.corruption_prob = 1.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        for i in 0..4 {
            eng.submit(Request::decompress(format!("d{i}"), i as f64, frame_bytes.clone()))
                .unwrap();
        }
        assert_eq!(eng.pool().acquired, 4);
        assert!(eng.pool().reused >= 1, "pool never recycled a buffer");
    }

    #[test]
    fn span_stage_children_tile_every_completion_latency() {
        let mut cfg = small_cfg();
        cfg.workers = 1;
        let syms = symbols(8_000, 20);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut chaos = ChaosConfig::quiet(3);
        chaos.transient_prob = 1.0; // force backoff spans
        let mut eng = Engine::with_chaos(cfg, chaos);
        for i in 0..4 {
            let req = if i % 2 == 0 {
                Request::compress(format!("c{i}"), 0.0, syms.clone())
            } else {
                Request::decompress(format!("d{i}"), 0.0, frame_bytes.clone())
            };
            eng.submit(req).unwrap();
        }
        for c in &eng.report().completions {
            let root = eng.spans().root_of(&c.trace_id).expect("every request has a root span");
            assert_eq!(root.span_id, c.span_id);
            assert_eq!(root.name, c.class);
            let latency = c.queue_wait + c.backoff + c.service;
            assert!((root.duration() - latency).abs() < 1e-12);
            // Direct stage children (queue/backoff/service) tile the root.
            let stage_sum: f64 = eng
                .spans()
                .children(root.span_id)
                .iter()
                .filter(|s| s.kind == "stage")
                .map(|s| s.duration())
                .sum();
            assert!(
                (stage_sum - latency).abs() < 1e-12,
                "{}: stage sum {stage_sum} != latency {latency}",
                c.trace_id
            );
            // The service span's own children tile the service time.
            if c.service > 0.0 {
                let svc = eng
                    .spans()
                    .children(root.span_id)
                    .into_iter()
                    .find(|s| s.name == "service")
                    .expect("service span");
                let inner: f64 =
                    eng.spans().children(svc.span_id).iter().map(|s| s.duration()).sum();
                assert!((inner - c.service).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn compress_kernel_spans_carry_the_request_trace() {
        let cfg = small_cfg();
        let syms = symbols(10_000, 21);
        let mut eng = Engine::new(cfg);
        eng.submit(Request::compress("req-k", 0.0, syms)).unwrap();
        let kernels: Vec<_> =
            eng.spans().trace("req-k").into_iter().filter(|s| s.kind == "kernel").collect();
        assert!(!kernels.is_empty(), "compress must produce kernel spans");
        // Kernel spans sit inside the request window.
        let root = eng.spans().root_of("req-k").unwrap();
        for k in &kernels {
            assert_eq!(k.trace_id, "req-k");
            assert!(k.start >= root.start - 1e-12 && k.end <= root.end + 1e-12);
        }
    }

    #[test]
    fn chaos_faults_land_as_attributed_span_events() {
        // Decoder glitch on a decompress request.
        let cfg = small_cfg();
        let syms = symbols(10_000, 22);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut chaos = ChaosConfig::quiet(11);
        chaos.glitch_prob = 1.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        eng.submit(Request::decompress("glitched", 0.0, frame_bytes)).unwrap();
        let evs = eng.spans().trace_events("glitched");
        assert!(evs.iter().any(|e| e.name == "decoder_glitch"));
        assert!(evs.iter().any(|e| e.name == "degraded"));

        // Device loss on a compress request.
        let mut cfg = small_cfg();
        cfg.batch.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        cfg.batch.shard_symbols = 2048;
        let mut chaos = ChaosConfig::quiet(17);
        chaos.device_loss_prob = 1.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        eng.submit(Request::compress("lost", 0.0, symbols(16_000, 8))).unwrap();
        let evs = eng.spans().trace_events("lost");
        assert!(
            evs.iter().any(|e| e.name == "device_loss" && e.detail.contains("device")),
            "device loss must be an attributed span event, got {evs:?}"
        );

        // Shed requests get a root span and a shed event.
        let mut cfg = small_cfg();
        cfg.workers = 1;
        cfg.queue_capacity = 1;
        let syms = symbols(8_000, 2);
        let mut eng = Engine::new(cfg);
        for i in 0..3 {
            eng.submit(Request::compress(format!("t{i}"), 0.0, syms.clone())).unwrap();
        }
        assert!(eng.spans().trace_events("t2").iter().any(|e| e.name == "shed"));
        assert!(eng.spans().root_of("t2").is_some());
    }

    #[test]
    fn latency_book_and_slo_report_cover_the_run() {
        let mut cfg = small_cfg();
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        let syms = symbols(8_000, 23);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut eng = Engine::new(cfg);
        for i in 0..6 {
            let req = if i % 2 == 0 {
                Request::compress(format!("c{i}"), 0.0, syms.clone())
            } else {
                Request::decompress(format!("d{i}"), 0.0, frame_bytes.clone())
            };
            eng.submit(req).unwrap();
        }
        let total: u64 = eng.latency().iter().map(|(_, _, h)| h.count()).sum();
        assert_eq!(total, 6, "every completion is observed exactly once");
        // Percentiles are monotone per class.
        for class in eng.latency().classes() {
            let h = eng.latency().class(class);
            assert!(h.quantile(0.999) >= h.quantile(0.5));
        }
        let slo = eng.slo_report(&slo::default_objectives());
        assert_eq!(slo.statuses.len(), 3);
        let compress_status =
            slo.statuses.iter().find(|s| s.objective.class == "compress").unwrap();
        assert_eq!(compress_status.total, 3);
        // Byte-determinism of the JSON rendering.
        assert_eq!(
            slo.to_json().to_string(),
            eng.slo_report(&slo::default_objectives()).to_json().to_string()
        );
    }

    #[test]
    fn p999_exemplar_resolves_to_a_span_tree_that_sums_to_its_latency() {
        let cfg = small_cfg();
        let syms = symbols(8_000, 24);
        let frame_bytes = frame_of(&syms, &cfg);
        let mut chaos = ChaosConfig::storm(42);
        chaos.device_loss_prob = 0.0;
        let mut eng = Engine::with_chaos(cfg, chaos);
        for i in 0..10 {
            eng.submit(Request::decompress(format!("d{i}"), i as f64 * 1e-5, frame_bytes.clone()))
                .unwrap();
        }
        let h = eng.latency().class("decompress");
        let exemplar = h.exemplar(0.999).expect("populated histogram").to_string();
        let c = eng
            .report()
            .completions
            .iter()
            .find(|c| c.trace_id == exemplar)
            .expect("exemplar trace id resolves to a completion")
            .clone();
        let root = eng.spans().root_of(&exemplar).expect("exemplar has a span tree");
        let stage_sum: f64 = eng
            .spans()
            .children(root.span_id)
            .iter()
            .filter(|s| s.kind == "stage")
            .map(|s| s.duration())
            .sum();
        let latency = c.queue_wait + c.backoff + c.service;
        assert!((stage_sum - latency).abs() < 1e-12);
        // The exemplar is at least as slow as the p999 value's bucket peer.
        assert!(latency >= h.quantile(0.5));
    }

    #[test]
    fn span_and_slo_exports_are_byte_deterministic() {
        let cfg = small_cfg();
        let syms = symbols(8_000, 10);
        let frame_bytes = frame_of(&syms, &cfg);
        let run = || {
            let mut eng = Engine::with_chaos(cfg.clone(), ChaosConfig::storm(42));
            for i in 0..6 {
                let t = i as f64 * 1e-4;
                let req = if i % 2 == 0 {
                    Request::compress(format!("c{i}"), t, syms.clone())
                } else {
                    Request::decompress(format!("d{i}"), t, frame_bytes.clone())
                };
                eng.submit(req).unwrap();
            }
            let slo_json = eng.slo_report(&slo::default_objectives()).to_json().to_string();
            (eng.span_jsonl(), slo_json, eng.chrome_spans())
        };
        assert_eq!(run(), run());
        let (jsonl, _, chrome) = run();
        assert!(jsonl.lines().all(|l| l.starts_with("{\"schema\":\"rsh-span-v1\"")));
        assert!(chrome.contains("\"traceEvents\""));
    }
}
