//! Pipeline profiler: per-stage metrics aggregated from kernel trace
//! events, with human-readable, JSON (`rsh-trace-v1`), and Chrome
//! `trace_event` exporters.
//!
//! [`profile_compress`] and [`profile_decompress`] run the same device
//! pipelines as [`crate::pipeline`] but return a [`PipelineProfile`]
//! alongside the result: one [`StageMetrics`] row per stage (histogram,
//! codebook, encode, decode, archive I/O), each kernel launch attributed
//! to its stage via the [`crate::pipeline::StageSpans`] recorded on the
//! device clock. Summing the attributed kernels' `cost.total` reproduces
//! the stage's modeled seconds exactly — the invariant the trace tests
//! pin down.
//!
//! Stages with `kernels == 0` are host-side (archive serialization and
//! parsing); their time is *modeled* at a nominal host bandwidth
//! ([`HOST_IO_BYTES_PER_SEC`]) rather than wall-clock-measured, so a
//! fixed-seed run produces byte-identical profiles.
//!
//! Three exporters:
//!
//! * [`PipelineProfile::render_table`] — aligned text for terminals;
//! * [`PipelineProfile::to_json`] — the `rsh-trace-v1` schema (see
//!   FORMAT.md): run metadata, a `stages` array, a flattened `kernels`
//!   array, and an optional `recovery` report;
//! * [`PipelineProfile::to_chrome_trace`] — Chrome `trace_event` JSON,
//!   one lane per stage, loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//!
//! ```
//! use gpu_sim::{DeviceSpec, Gpu};
//! use huff_core::metrics::{self, ProfileOptions};
//!
//! let gpu = Gpu::new(DeviceSpec::test_part());
//! let data: Vec<u16> = (0..20_000).map(|i| (i % 97) as u16).collect();
//! let (archive, profile) =
//!     metrics::profile_compress(&gpu, &data, &ProfileOptions::new(128)).unwrap();
//! assert_eq!(huff_core::archive::decompress(&archive).unwrap(), data);
//! assert_eq!(profile.stages.len(), 4); // histogram, codebook, encode, archive
//! let json = profile.to_json_string();
//! assert!(json.starts_with("{\"schema\":\"rsh-trace-v1\""));
//!
//! // Roofline analysis of the same run (rsh-roofline-v1):
//! let roofline = profile.roofline(0.5);
//! assert!(!roofline.kernels.is_empty());
//! ```

pub mod chrome;
pub mod latency;
pub mod registry;
pub mod roofline;
pub mod span;

pub use chrome::LaneWriter;
pub use latency::{LatencyBook, LatencyHistogram};
pub use registry::Registry;
pub use roofline::{KernelRoofline, RooflineReport, StageRoofline, ROOFLINE_SCHEMA};
pub use span::{Span, SpanEvent, SpanSink, TraceContext, SPAN_SCHEMA};

use crate::archive;
use crate::batch::{self, BatchOptions, BatchReport};
use crate::decode::{self, DecoderKind};
use crate::error::{HuffError, Result};
use crate::integrity::{DecompressOptions, Recovered, RecoveryMode, RecoveryReport};
use crate::pipeline::{self, PipelineKind, StageTimes};
use crate::plan::KernelPlan;
use gpu_sim::{DeviceSpec, Gpu, KernelRecord};
use serde::json::{Map, Value};
use serde::Serialize;

/// Version tag of the JSON schema emitted by [`PipelineProfile::to_json`].
pub const TRACE_SCHEMA: &str = "rsh-trace-v1";

/// Nominal host-side memory bandwidth used to *model* archive
/// serialization and parsing time (stages with no kernels). A fixed
/// constant — not a measurement — so profiles are deterministic; 8 GB/s
/// is a conservative single-core memcpy-plus-checksum figure.
pub const HOST_IO_BYTES_PER_SEC: f64 = 8.0e9;

/// Options for [`profile_compress`] and [`profile_roundtrip`].
///
/// Replaces the positional parameter list that mirrored
/// [`pipeline::run`]: new knobs (the roundtrip decoder backend, the
/// roofline anomaly threshold) extend this struct instead of widening
/// every call site. Construct with [`ProfileOptions::new`] and chain the
/// builder methods for non-default values.
///
/// ```
/// use huff_core::decode::DecoderKind;
/// use huff_core::metrics::ProfileOptions;
///
/// let opts = ProfileOptions::new(256).reduction(4).decoder(DecoderKind::Lut);
/// assert_eq!(opts.num_symbols, 256);
/// assert_eq!(opts.symbol_bytes, 2); // default
/// ```
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Number of symbol bins (the codebook size).
    pub num_symbols: usize,
    /// Native symbol width in bytes (default 2).
    pub symbol_bytes: u64,
    /// Chunk magnitude: chunks hold `2^magnitude` symbols (default 10).
    pub magnitude: u32,
    /// Reduction factor `r`; `None` auto-tunes (the default).
    pub reduction: Option<u32>,
    /// Which encode pipeline to run (default
    /// [`PipelineKind::ReduceShuffle`]).
    pub kind: PipelineKind,
    /// Decoder backend for the roundtrip decode leg (default
    /// [`DecoderKind::Chunked`]).
    pub decoder: DecoderKind,
    /// Anomaly threshold for roofline analysis of the resulting profile
    /// (default [`roofline::DEFAULT_THRESHOLD`]).
    pub roofline_threshold: f64,
    /// Kernel-fusion plan the profiled pipeline runs under (default
    /// [`KernelPlan::fused`]; the artifact bytes are plan-independent).
    pub plan: KernelPlan,
}

impl ProfileOptions {
    /// Defaults for `num_symbols` bins: 2-byte symbols, magnitude 10,
    /// auto-tuned reduction, reduce-shuffle pipeline, chunked decoder.
    pub fn new(num_symbols: usize) -> Self {
        ProfileOptions {
            num_symbols,
            symbol_bytes: 2,
            magnitude: 10,
            reduction: None,
            kind: PipelineKind::ReduceShuffle,
            decoder: DecoderKind::default(),
            roofline_threshold: roofline::DEFAULT_THRESHOLD,
            plan: KernelPlan::default(),
        }
    }

    /// Set the native symbol width in bytes.
    pub fn symbol_bytes(mut self, bytes: u64) -> Self {
        self.symbol_bytes = bytes;
        self
    }

    /// Set the chunk magnitude.
    pub fn magnitude(mut self, magnitude: u32) -> Self {
        self.magnitude = magnitude;
        self
    }

    /// Pin the reduction factor (instead of auto-tuning).
    pub fn reduction(mut self, r: u32) -> Self {
        self.reduction = Some(r);
        self
    }

    /// Select the encode pipeline.
    pub fn kind(mut self, kind: PipelineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Select the decoder backend for the roundtrip decode leg.
    pub fn decoder(mut self, decoder: DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }

    /// Set the roofline anomaly threshold.
    pub fn roofline_threshold(mut self, threshold: f64) -> Self {
        self.roofline_threshold = threshold;
        self
    }

    /// Select the kernel-fusion plan.
    pub fn plan(mut self, plan: KernelPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// Aggregated metrics of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// Stage name (`"histogram"`, `"codebook"`, `"encode"`, `"decode"`,
    /// `"archive"`, `"parse"`).
    pub stage: &'static str,
    /// Modeled seconds: sum of the stage's kernel costs, or host-modeled
    /// I/O time when `kernels == 0`.
    pub seconds: f64,
    /// Kernel launches attributed to this stage (0 for host-side stages).
    pub kernels: usize,
    /// Bytes entering the stage.
    pub bytes_in: u64,
    /// Bytes leaving the stage.
    pub bytes_out: u64,
}

impl StageMetrics {
    /// Effective throughput in GB/s over the stage's input bytes.
    pub fn gbps(&self) -> f64 {
        gpu_sim::gbps(gpu_sim::throughput(self.bytes_in, self.seconds))
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("stage".into(), self.stage.into());
        m.insert("seconds".into(), Value::Float(self.seconds));
        m.insert("kernels".into(), Value::Int(self.kernels as i128));
        m.insert("bytes_in".into(), Value::Int(self.bytes_in as i128));
        m.insert("bytes_out".into(), Value::Int(self.bytes_out as i128));
        m.insert("gbps".into(), Value::Float(self.gbps()));
        Value::Object(m)
    }
}

/// One kernel launch attributed to a pipeline stage.
#[derive(Debug, Clone)]
pub struct StageKernel {
    /// The stage this launch belongs to.
    pub stage: &'static str,
    /// The full trace event from the device clock.
    pub record: KernelRecord,
}

/// A complete profile of one pipeline run: per-stage metrics plus every
/// kernel trace event, exportable as a table, JSON, or a Chrome trace.
#[derive(Debug, Clone)]
pub struct PipelineProfile {
    /// `"compress"`, `"decompress"`, or `"roundtrip"`.
    pub direction: &'static str,
    /// Device name the pipeline was modeled on.
    pub device: String,
    /// Full spec of the device — roofline analysis
    /// ([`PipelineProfile::roofline`]) derives counters against it.
    pub spec: DeviceSpec,
    /// Native input size in bytes (symbols × symbol width).
    pub input_bytes: u64,
    /// Size of the serialized archive in bytes.
    pub archive_bytes: u64,
    /// Compression ratio of the bitstream vs. the native symbol width.
    pub compression_ratio: f64,
    /// Achieved average bits per symbol in the payload.
    pub avg_bits: f64,
    /// Reduction factor `r` in effect.
    pub reduction: u32,
    /// Number of payload chunks.
    pub chunks: usize,
    /// Fraction of symbols in breaking units.
    pub breaking_fraction: f64,
    /// Per-stage metrics, in pipeline order.
    pub stages: Vec<StageMetrics>,
    /// Every kernel launch, in launch order, labeled with its stage.
    pub kernels: Vec<StageKernel>,
    /// Recovery report when the run decoded an archive (decompress /
    /// roundtrip directions); `None` for pure compression.
    pub recovery: Option<RecoveryReport>,
}

impl PipelineProfile {
    /// Total modeled seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// The `rsh-trace-v1` JSON value (see FORMAT.md for the schema).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), TRACE_SCHEMA.into());
        m.insert("direction".into(), self.direction.into());
        m.insert("device".into(), Value::String(self.device.clone()));
        m.insert("input_bytes".into(), Value::Int(self.input_bytes as i128));
        m.insert("archive_bytes".into(), Value::Int(self.archive_bytes as i128));
        m.insert("compression_ratio".into(), Value::Float(self.compression_ratio));
        m.insert("avg_bits".into(), Value::Float(self.avg_bits));
        m.insert("reduction".into(), Value::Int(i128::from(self.reduction)));
        m.insert("chunks".into(), Value::Int(self.chunks as i128));
        m.insert("breaking_fraction".into(), Value::Float(self.breaking_fraction));
        m.insert("total_seconds".into(), Value::Float(self.total_seconds()));
        m.insert("stages".into(), Value::Array(self.stages.iter().map(|s| s.to_json()).collect()));
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let mut obj = match k.record.to_json() {
                    Value::Object(o) => o,
                    _ => unreachable!("KernelRecord serializes to an object"),
                };
                obj.insert("stage".into(), k.stage.into());
                Value::Object(obj)
            })
            .collect();
        m.insert("kernels".into(), Value::Array(kernels));
        m.insert(
            "recovery".into(),
            match &self.recovery {
                Some(r) => recovery_json(r),
                None => Value::Null,
            },
        );
        Value::Object(m)
    }

    /// The `rsh-trace-v1` JSON, rendered compact.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Chrome `trace_event` JSON: one lane per stage, one complete event
    /// per kernel, each slice carrying derived roofline counters in its
    /// `args`. Host-side stages carry no kernels and are omitted. Load
    /// the output in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut w = LaneWriter::new(&format!("{} ({}, modeled)", self.direction, self.device))
            .with_counters(self.spec.clone());
        for k in &self.kernels {
            w.kernel(k.stage, &k.record);
        }
        w.finish()
    }

    /// Human-readable profile table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline profile — {} on {} (modeled)\n",
            self.direction, self.device
        ));
        out.push_str(&format!(
            "input {} -> archive {}  (ratio {:.2}x, {:.2} avg bits, r={}, {} chunks, {:.2}% breaking)\n",
            fmt_bytes(self.input_bytes),
            fmt_bytes(self.archive_bytes),
            self.compression_ratio,
            self.avg_bits,
            self.reduction,
            self.chunks,
            self.breaking_fraction * 100.0
        ));
        out.push('\n');
        out.push_str(&format!(
            "{:<10} {:>12} {:>8} {:>10} {:>10} {:>8}\n",
            "stage", "time", "kernels", "in", "out", "GB/s"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<10} {:>12} {:>8} {:>10} {:>10} {:>8.1}\n",
                s.stage,
                fmt_seconds(s.seconds),
                s.kernels,
                fmt_bytes(s.bytes_in),
                fmt_bytes(s.bytes_out),
                s.gbps()
            ));
        }
        let total = self.total_seconds();
        out.push_str(&format!(
            "{:<10} {:>12} {:>8} {:>10} {:>10} {:>8.1}\n",
            "total",
            fmt_seconds(total),
            self.kernels.len(),
            fmt_bytes(self.input_bytes),
            fmt_bytes(self.archive_bytes),
            gpu_sim::gbps(gpu_sim::throughput(self.input_bytes, total))
        ));
        if let Some(r) = &self.recovery {
            if r.is_clean() {
                out.push_str(&format!("\nrecovery: clean ({} chunks verified)\n", r.total_chunks));
            } else {
                out.push_str(&format!(
                    "\nrecovery: {}/{} chunks damaged, {} symbols lost\n",
                    r.damaged_chunks.len(),
                    r.total_chunks,
                    r.symbols_lost
                ));
            }
        }
        out
    }
}

fn recovery_json(r: &RecoveryReport) -> Value {
    let mut m = Map::new();
    m.insert("total_chunks".into(), Value::Int(r.total_chunks as i128));
    m.insert(
        "damaged_chunks".into(),
        Value::Array(r.damaged_chunks.iter().map(|&c| Value::Int(c as i128)).collect()),
    );
    m.insert(
        "damaged_ranges".into(),
        Value::Array(
            r.damaged_ranges
                .iter()
                .map(|&(s, e)| Value::Array(vec![Value::Int(s as i128), Value::Int(e as i128)]))
                .collect(),
        ),
    );
    m.insert("symbols_lost".into(), Value::Int(r.symbols_lost as i128));
    Value::Object(m)
}

fn host_io_seconds(bytes: u64) -> f64 {
    bytes as f64 / HOST_IO_BYTES_PER_SEC
}

fn stage_kernels(
    records: &[KernelRecord],
    range: std::ops::Range<usize>,
    stage: &'static str,
) -> Vec<StageKernel> {
    records[range].iter().map(|r| StageKernel { stage, record: r.clone() }).collect()
}

/// Run a compress pipeline (as [`pipeline::run_to_archive`]) and profile
/// it. [`PipelineKind::PrefixSum`] has no archive form and is rejected.
///
/// Returns the serialized archive and the profile; stages are
/// `histogram`, `codebook`, `encode`, and the host-side `archive`
/// serialization.
pub fn profile_compress(
    gpu: &Gpu,
    data: &[u16],
    opts: &ProfileOptions,
) -> Result<(Vec<u8>, PipelineProfile)> {
    if opts.kind == PipelineKind::PrefixSum {
        return Err(HuffError::BadArchive(
            "prefix-sum streams are not chunk-addressable; no archive form".into(),
        ));
    }
    let symbol_bytes = opts.symbol_bytes;
    let (stream, book, report) = pipeline::run_with_plan(
        gpu,
        data,
        symbol_bytes,
        opts.num_symbols,
        opts.magnitude,
        opts.reduction,
        opts.kind,
        opts.plan,
    )?;
    let packed = archive::serialize(&stream, &book, symbol_bytes as u8)?;

    let clock = gpu.clock();
    let records = clock.records();
    let spans = report.spans;
    let hist_bytes_out = opts.num_symbols as u64 * 8; // frequency array
    let book_bytes_out = book.lengths().len() as u64; // 1-byte lengths in the archive
    let payload_bytes = stream.total_bits.div_ceil(8);

    let stages = vec![
        StageMetrics {
            stage: "histogram",
            seconds: report.times.histogram,
            kernels: spans.histogram().len(),
            bytes_in: report.input_bytes,
            bytes_out: hist_bytes_out,
        },
        StageMetrics {
            stage: "codebook",
            seconds: report.times.codebook,
            kernels: spans.codebook().len(),
            bytes_in: hist_bytes_out,
            bytes_out: book_bytes_out,
        },
        StageMetrics {
            stage: "encode",
            seconds: report.times.encode,
            kernels: spans.encode().len(),
            bytes_in: report.input_bytes,
            bytes_out: payload_bytes,
        },
        StageMetrics {
            stage: "archive",
            seconds: host_io_seconds(packed.len() as u64),
            kernels: 0,
            bytes_in: payload_bytes,
            bytes_out: packed.len() as u64,
        },
    ];
    let mut kernels = stage_kernels(records, spans.histogram(), "histogram");
    kernels.extend(stage_kernels(records, spans.codebook(), "codebook"));
    kernels.extend(stage_kernels(records, spans.encode(), "encode"));

    let profile = PipelineProfile {
        direction: "compress",
        device: gpu.spec().name.to_string(),
        spec: gpu.spec().clone(),
        input_bytes: report.input_bytes,
        archive_bytes: packed.len() as u64,
        compression_ratio: report.compression_ratio,
        avg_bits: report.avg_bits,
        reduction: stream.config.reduction,
        chunks: stream.num_chunks(),
        breaking_fraction: report.breaking_fraction,
        stages,
        kernels,
        recovery: None,
    };
    record_profile(&profile);
    {
        let mut reg = registry::global();
        let ratio = if profile.archive_bytes == 0 {
            1.0
        } else {
            profile.input_bytes as f64 / profile.archive_bytes as f64
        };
        reg.record_compress(profile.input_bytes, profile.archive_bytes, ratio, profile.chunks);
    }
    Ok((packed, profile))
}

/// Feed a profile's kernel efficiencies into the global registry.
fn record_profile(profile: &PipelineProfile) {
    let mut reg = registry::global();
    for k in &profile.kernels {
        reg.record_kernel_efficiency(k.record.counters(&profile.spec).efficiency);
    }
}

/// Decode an archive on the device and profile it. Stages are the
/// host-side `parse` (deserialization + checksum verification) and the
/// device `decode` kernel.
///
/// Under [`RecoveryMode::Strict`] any damage is an error, as in
/// [`pipeline::decode_archive`]; under [`RecoveryMode::BestEffort`]
/// damaged chunks are sentinel-filled and the profile's `recovery` field
/// reports them.
pub fn profile_decompress(
    gpu: &Gpu,
    archive_bytes: &[u8],
    opts: &DecompressOptions,
) -> Result<(Recovered, PipelineProfile)> {
    let parsed = archive::deserialize_with(archive_bytes, opts)?;
    let stream = &parsed.stream;
    let symbol_bytes = u64::from(parsed.symbol_bytes.max(1));
    let input_bytes = stream.num_symbols as u64 * symbol_bytes;
    let payload_bytes = stream.total_bits.div_ceil(8);

    let base = gpu.launches();
    let recovered = match opts.mode {
        RecoveryMode::Strict => {
            let (symbols, _) =
                decode::gpu::decode_kind_on_gpu(gpu, stream, &parsed.book, opts.decoder)?;
            Recovered { symbols, report: RecoveryReport::clean(stream.num_chunks()) }
        }
        RecoveryMode::BestEffort => {
            let (symbols, report, _) = decode::gpu::decode_kind_best_effort_on_gpu(
                gpu,
                stream,
                &parsed.book,
                &parsed.chunk_damage,
                opts.sentinel,
                opts.decoder,
            );
            Recovered { symbols, report }
        }
    };
    let after = gpu.launches();

    let clock = gpu.clock();
    let records = clock.records();
    let decode_seconds: f64 = records[base..after].iter().map(|r| r.cost.total).sum();

    let avg_bits = if stream.num_symbols == 0 {
        0.0
    } else {
        stream.total_bits as f64 / stream.num_symbols as f64
    };
    let stages = vec![
        StageMetrics {
            stage: "parse",
            seconds: host_io_seconds(archive_bytes.len() as u64),
            kernels: 0,
            bytes_in: archive_bytes.len() as u64,
            bytes_out: payload_bytes,
        },
        StageMetrics {
            stage: "decode",
            seconds: decode_seconds,
            kernels: after - base,
            bytes_in: payload_bytes,
            bytes_out: input_bytes,
        },
    ];
    let kernels = stage_kernels(records, base..after, "decode");

    let profile = PipelineProfile {
        direction: "decompress",
        device: gpu.spec().name.to_string(),
        spec: gpu.spec().clone(),
        input_bytes,
        archive_bytes: archive_bytes.len() as u64,
        compression_ratio: if payload_bytes == 0 {
            1.0
        } else {
            input_bytes as f64 / payload_bytes as f64
        },
        avg_bits,
        reduction: stream.config.reduction,
        chunks: stream.num_chunks(),
        breaking_fraction: stream.breaking_fraction(),
        stages,
        kernels,
        recovery: Some(recovered.report.clone()),
    };
    record_profile(&profile);
    {
        let mut reg = registry::global();
        reg.record_decompress(
            profile.archive_bytes,
            profile.input_bytes,
            profile.chunks,
            recovered.report.damaged_chunks.len(),
        );
        reg.record_stage_seconds("decode", decode_seconds);
    }
    Ok((recovered, profile))
}

/// Compress, then decompress, on one device clock: the full `rsh profile`
/// walkthrough. Returns the archive, the decode result, and a single
/// profile whose stages cover both directions (histogram, codebook,
/// encode, archive, parse, decode). The decode leg runs the backend
/// selected by [`ProfileOptions::decoder`].
pub fn profile_roundtrip(
    gpu: &Gpu,
    data: &[u16],
    opts: &ProfileOptions,
) -> Result<(Vec<u8>, Recovered, PipelineProfile)> {
    let (packed, compress) = profile_compress(gpu, data, opts)?;
    let (recovered, decompress) =
        profile_decompress(gpu, &packed, &DecompressOptions::default().with_decoder(opts.decoder))?;

    let mut profile = compress;
    profile.direction = "roundtrip";
    profile.stages.extend(decompress.stages);
    profile.kernels.extend(decompress.kernels);
    profile.recovery = Some(recovered.report.clone());
    Ok((packed, recovered, profile))
}

/// Aggregated metrics of one stream (command queue) on one device in a
/// batched run: how many shards it carried and where its busy time went.
#[derive(Debug, Clone)]
pub struct StreamMetrics {
    /// Index into the batch's device list.
    pub device: usize,
    /// Stream id on that device.
    pub stream: u32,
    /// Shards whose pipelines ran on this stream.
    pub shards: usize,
    /// Total busy seconds on the contended timeline.
    pub busy: f64,
    /// Contended per-stage seconds, summed over the stream's shards.
    /// `stages.total()` equals `busy` — the per-stream attribution
    /// invariant.
    pub stages: StageTimes,
}

impl StreamMetrics {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("device".into(), Value::Int(self.device as i128));
        m.insert("stream".into(), Value::Int(i128::from(self.stream)));
        m.insert("shards".into(), Value::Int(self.shards as i128));
        m.insert("busy_seconds".into(), Value::Float(self.busy));
        m.insert("histogram".into(), Value::Float(self.stages.histogram));
        m.insert("codebook".into(), Value::Float(self.stages.codebook));
        m.insert("encode".into(), Value::Float(self.stages.encode));
        Value::Object(m)
    }
}

/// A profile of one batched (sharded, multi-stream, multi-device) run:
/// the [`BatchReport`] plus per-stream stage attribution, exportable as a
/// table, `rsh-trace-v1` JSON, or a Chrome trace with one lane per
/// device × stream.
#[derive(Debug, Clone)]
pub struct BatchProfile {
    /// The underlying batch report (shards, device timelines, makespan).
    pub report: BatchReport,
    /// Per-stream metrics, ordered by device then stream id.
    pub streams: Vec<StreamMetrics>,
    /// Size of the serialized multi-shard frame in bytes.
    pub archive_bytes: u64,
}

impl BatchProfile {
    fn build(report: BatchReport, archive_bytes: u64) -> Self {
        let mut streams = Vec::new();
        for dev in &report.devices {
            for s in dev.timeline.stream_ids() {
                let on_stream =
                    report.shards.iter().filter(|sh| sh.device == dev.device && sh.stream == s);
                let mut stages = StageTimes::default();
                let mut shards = 0usize;
                for sh in on_stream {
                    stages.histogram += sh.stages.histogram;
                    stages.codebook += sh.stages.codebook;
                    stages.encode += sh.stages.encode;
                    shards += 1;
                }
                streams.push(StreamMetrics {
                    device: dev.device,
                    stream: s,
                    shards,
                    busy: dev.timeline.stream_busy(s),
                    stages,
                });
            }
        }
        BatchProfile { report, streams, archive_bytes }
    }

    /// The `rsh-trace-v1` JSON value for a batched run (see FORMAT.md).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), TRACE_SCHEMA.into());
        m.insert("direction".into(), "compress-batched".into());
        m.insert("input_bytes".into(), Value::Int(self.report.input_bytes as i128));
        m.insert("archive_bytes".into(), Value::Int(self.archive_bytes as i128));
        m.insert("makespan_seconds".into(), Value::Float(self.report.makespan));
        m.insert("serial_seconds".into(), Value::Float(self.report.serial_seconds));
        m.insert("speedup".into(), Value::Float(self.report.speedup()));
        m.insert("gbps".into(), Value::Float(gpu_sim::gbps(self.report.throughput())));
        let devices = self
            .report
            .devices
            .iter()
            .map(|d| {
                let mut obj = Map::new();
                obj.insert("device".into(), Value::Int(d.device as i128));
                obj.insert("name".into(), d.name.into());
                obj.insert("makespan_seconds".into(), Value::Float(d.timeline.makespan));
                obj.insert(
                    "streams".into(),
                    Value::Array(
                        self.streams
                            .iter()
                            .filter(|s| s.device == d.device)
                            .map(StreamMetrics::to_json)
                            .collect(),
                    ),
                );
                Value::Object(obj)
            })
            .collect();
        m.insert("devices".into(), Value::Array(devices));
        let shards = self
            .report
            .shards
            .iter()
            .map(|sh| {
                let mut obj = Map::new();
                obj.insert("index".into(), Value::Int(sh.index as i128));
                obj.insert("device".into(), Value::Int(sh.device as i128));
                obj.insert("stream".into(), Value::Int(i128::from(sh.stream)));
                obj.insert("symbols".into(), Value::Int(sh.symbols as i128));
                obj.insert("histogram".into(), Value::Float(sh.stages.histogram));
                obj.insert("codebook".into(), Value::Float(sh.stages.codebook));
                obj.insert("encode".into(), Value::Float(sh.stages.encode));
                Value::Object(obj)
            })
            .collect();
        m.insert("shards".into(), Value::Array(shards));
        let kernels = self
            .report
            .devices
            .iter()
            .flat_map(|d| {
                d.timeline.records.iter().map(move |r| {
                    let mut obj = match r.to_json() {
                        Value::Object(o) => o,
                        _ => unreachable!("KernelRecord serializes to an object"),
                    };
                    obj.insert("device".into(), Value::Int(d.device as i128));
                    Value::Object(obj)
                })
            })
            .collect();
        m.insert("kernels".into(), Value::Array(kernels));
        Value::Object(m)
    }

    /// The `rsh-trace-v1` JSON, rendered compact.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Chrome `trace_event` JSON: one lane per device × stream, named
    /// `"gpu<d> (<name>) stream <s>"`, every kernel on its stream's lane.
    /// Lane/pid assignment follows the same [`LaneWriter`] rules as
    /// [`PipelineProfile::to_chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        let mut w = LaneWriter::new("batched compress (modeled)");
        for dev in &self.report.devices {
            // Register every stream lane up front so lane order is
            // device-major even when records interleave.
            for s in dev.timeline.stream_ids() {
                w.lane(&format!("gpu{} ({}) stream {}", dev.device, dev.name, s));
            }
            for r in &dev.timeline.records {
                w.kernel(&format!("gpu{} ({}) stream {}", dev.device, dev.name, r.stream), r);
            }
        }
        w.finish()
    }

    /// Human-readable per-stream profile table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("batched pipeline profile (modeled)\n");
        out.push_str(&format!(
            "input {} -> frame {}  ({} shards, {} device{})\n",
            fmt_bytes(self.report.input_bytes),
            fmt_bytes(self.archive_bytes),
            self.report.shards.len(),
            self.report.devices.len(),
            if self.report.devices.len() == 1 { "" } else { "s" }
        ));
        out.push_str(&format!(
            "makespan {}  serial {}  speedup {:.2}x  {:.1} GB/s\n",
            fmt_seconds(self.report.makespan),
            fmt_seconds(self.report.serial_seconds),
            self.report.speedup(),
            gpu_sim::gbps(self.report.throughput())
        ));
        out.push('\n');
        out.push_str(&format!(
            "{:<20} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
            "device/stream", "shards", "busy", "histogram", "codebook", "encode"
        ));
        for s in &self.streams {
            let name = self.report.devices[s.device].name;
            out.push_str(&format!(
                "{:<20} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
                format!("gpu{} ({}) s{}", s.device, name, s.stream),
                s.shards,
                fmt_seconds(s.busy),
                fmt_seconds(s.stages.histogram),
                fmt_seconds(s.stages.codebook),
                fmt_seconds(s.stages.encode),
            ));
        }
        out
    }
}

/// Compress `data` as a multi-shard frame (as
/// [`batch::compress_batched`]) and profile it: the returned
/// [`BatchProfile`] attributes every stream's contended busy time to
/// pipeline stages and exports multi-lane Chrome traces.
pub fn profile_compress_batched(
    data: &[u16],
    opts: &BatchOptions,
) -> Result<(Vec<u8>, BatchProfile)> {
    let (frame, report) = batch::compress_batched(data, opts)?;
    let archive_bytes = frame.len() as u64;
    Ok((frame, BatchProfile::build(report, archive_bytes)))
}

fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1.0e9 {
        format!("{:.2} GB", b / 1.0e9)
    } else if b >= 1.0e6 {
        format!("{:.2} MB", b / 1.0e6)
    } else if b >= 1.0e3 {
        format!("{:.2} kB", b / 1.0e3)
    } else {
        format!("{b:.0} B")
    }
}

pub(crate) fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1.0e-3 {
        format!("{:.3} ms", s * 1.0e3)
    } else {
        format!("{:.3} us", s * 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;
    use gpu_sim::DeviceSpec;

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
                (x % 256) as u16
            })
            .collect()
    }

    #[test]
    fn compress_profile_stage_seconds_match_kernel_sums() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(30_000);
        let (_, p) = profile_compress(&gpu, &syms, &ProfileOptions::new(256)).unwrap();
        assert_eq!(p.direction, "compress");
        for s in &p.stages {
            let sum: f64 =
                p.kernels.iter().filter(|k| k.stage == s.stage).map(|k| k.record.cost.total).sum();
            if s.kernels > 0 {
                assert!((sum - s.seconds).abs() < 1e-12, "stage {}", s.stage);
            } else {
                assert_eq!(sum, 0.0);
            }
        }
        // Every kernel is attributed to exactly one stage.
        let attributed: usize = p.stages.iter().map(|s| s.kernels).sum();
        assert_eq!(attributed, p.kernels.len());
    }

    #[test]
    fn decompress_profile_is_strict_clean_and_attributed() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(20_000);
        let (packed, _) = profile_compress(&gpu, &syms, &ProfileOptions::new(256)).unwrap();
        let (rec, p) = profile_decompress(&gpu, &packed, &DecompressOptions::default()).unwrap();
        assert_eq!(rec.symbols, syms);
        assert!(p.recovery.as_ref().unwrap().is_clean());
        assert_eq!(p.stages.len(), 2);
        let decode = &p.stages[1];
        assert_eq!(decode.stage, "decode");
        assert_eq!(decode.kernels, 1);
        assert_eq!(decode.bytes_out, p.input_bytes);
    }

    #[test]
    fn lut_decoder_profile_attributes_both_kernels() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(20_000);
        let (packed, _) = profile_compress(&gpu, &syms, &ProfileOptions::new(256)).unwrap();
        let opts = DecompressOptions::default().with_decoder(crate::decode::DecoderKind::Lut);
        let (rec, p) = profile_decompress(&gpu, &packed, &opts).unwrap();
        assert_eq!(rec.symbols, syms);
        let decode = &p.stages[1];
        assert_eq!(decode.stage, "decode");
        // Sync pass + LUT decode pass, both attributed to the stage.
        assert_eq!(decode.kernels, 2);
        let names: Vec<&str> = p
            .kernels
            .iter()
            .filter(|k| k.stage == "decode")
            .map(|k| k.record.name.as_str())
            .collect();
        assert_eq!(names, ["dec_subchunk_sync", "dec_lut_gap"]);
        let sum: f64 =
            p.kernels.iter().filter(|k| k.stage == "decode").map(|k| k.record.cost.total).sum();
        assert!((sum - decode.seconds).abs() < 1e-12);
    }

    #[test]
    fn best_effort_profile_reports_damage() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(20_000);
        let (packed, _) = profile_compress(&gpu, &syms, &ProfileOptions::new(256)).unwrap();
        let sections = archive::layout(&packed).unwrap();
        let payload = sections
            .iter()
            .find(|(s, _)| *s == crate::integrity::Section::Payload)
            .map(|(_, r)| r.clone())
            .unwrap();
        let mut corrupt = packed.clone();
        assert!(testing::apply(
            &mut corrupt,
            &testing::Fault::BitFlip { offset: payload.start + payload.len() / 2, bit: 4 }
        ));
        let (rec, p) =
            profile_decompress(&gpu, &corrupt, &DecompressOptions::best_effort()).unwrap();
        assert!(!rec.report.is_clean());
        assert!(!p.recovery.as_ref().unwrap().is_clean());
        let json = p.to_json_string();
        assert!(json.contains("\"damaged_chunks\":["));
    }

    #[test]
    fn roundtrip_profile_covers_both_directions() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(25_000);
        let (_, rec, p) = profile_roundtrip(&gpu, &syms, &ProfileOptions::new(256)).unwrap();
        assert_eq!(rec.symbols, syms);
        assert_eq!(p.direction, "roundtrip");
        let names: Vec<&str> = p.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["histogram", "codebook", "encode", "archive", "parse", "decode"]);
        assert!(p.total_seconds() > 0.0);
    }

    #[test]
    fn json_and_table_and_chrome_render() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(15_000);
        let (_, p) = profile_compress(&gpu, &syms, &ProfileOptions::new(256)).unwrap();
        let json = p.to_json_string();
        assert!(json.starts_with("{\"schema\":\"rsh-trace-v1\""));
        assert!(json.contains("\"stages\":["));
        assert!(json.contains("\"kernels\":["));
        assert!(json.contains("\"recovery\":null"));
        let table = p.render_table();
        assert!(table.contains("histogram"));
        assert!(table.contains("GB/s"));
        let chrome = p.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn profiles_are_deterministic() {
        let run = || {
            let gpu = Gpu::new(DeviceSpec::test_part());
            let syms = data(10_000);
            let (_, p) = profile_compress(&gpu, &syms, &ProfileOptions::new(256)).unwrap();
            p.to_json_string()
        };
        assert_eq!(run(), run());
    }

    fn batch_opts() -> BatchOptions {
        let mut o = BatchOptions::new(256);
        o.shard_symbols = 20_000;
        o.devices = vec![DeviceSpec::test_part()];
        o
    }

    #[test]
    fn batch_profile_stream_stages_sum_to_busy_time() {
        let syms = data(70_000);
        let (frame, p) = profile_compress_batched(&syms, &batch_opts()).unwrap();
        assert_eq!(archive::decompress(&frame).unwrap(), syms);
        assert_eq!(p.streams.len(), 2);
        for s in &p.streams {
            assert!(
                (s.stages.total() - s.busy).abs() < 1e-12,
                "stream {}: {} vs {}",
                s.stream,
                s.stages.total(),
                s.busy
            );
        }
        let shards: usize = p.streams.iter().map(|s| s.shards).sum();
        assert_eq!(shards, p.report.shards.len());
    }

    #[test]
    fn batch_profile_exports_render() {
        let syms = data(70_000);
        let (_, p) = profile_compress_batched(&syms, &batch_opts()).unwrap();
        let json = p.to_json_string();
        assert!(json.starts_with("{\"schema\":\"rsh-trace-v1\""));
        assert!(json.contains("\"direction\":\"compress-batched\""));
        assert!(json.contains("\"devices\":["));
        assert!(json.contains("\"shards\":["));
        assert!(json.contains("\"speedup\":"));
        let table = p.render_table();
        assert!(table.contains("makespan"));
        assert!(table.contains("stream"), "table: {table}");
        let chrome = p.to_chrome_trace();
        assert!(chrome.contains("gpu0 (TestPart) stream 0"));
        assert!(chrome.contains("gpu0 (TestPart) stream 1"));
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn batch_profile_multi_device_lanes() {
        let syms = data(80_000);
        let mut opts = batch_opts();
        opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        let (_, p) = profile_compress_batched(&syms, &opts).unwrap();
        let chrome = p.to_chrome_trace();
        assert!(chrome.contains("gpu0 (TestPart) stream 0"));
        assert!(chrome.contains("gpu1 (TestPart) stream 0"));
    }

    #[test]
    fn prefix_sum_rejected() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let syms = data(5_000);
        let r =
            profile_compress(&gpu, &syms, &ProfileOptions::new(256).kind(PipelineKind::PrefixSum));
        assert!(matches!(r, Err(HuffError::BadArchive(_))));
    }
}
