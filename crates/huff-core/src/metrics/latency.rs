//! Log2-bucketed latency histograms with exemplar trace ids.
//!
//! Mean latency hides exactly the requests an operator cares about; the
//! serving engine therefore records every request's end-to-end latency
//! (virtual seconds, `finish − arrival`) into a [`LatencyHistogram`] per
//! (request class, outcome) pair, kept in a [`LatencyBook`].
//!
//! Buckets are powers of two in microseconds: bucket `k` covers
//! `(2^(k−1), 2^k]` µs, with `k = 0` absorbing everything at or below
//! 1 µs (including the zero-latency shed path). Each bucket carries an
//! **exemplar**: the trace id of the slowest observation that landed in
//! it, so a p999 spike in a report links straight back to the span tree
//! ([`super::span`]) of a concrete offending request.
//!
//! Alongside the buckets the histogram keeps every raw sample, ordered
//! by insertion position (binary search), so quantiles
//! ([`LatencyHistogram::quantile`]) are exact nearest-rank values —
//! deterministic, monotone in `q`, and free of interpolation artifacts
//! — rather than bucket-boundary estimates, and each `quantile` call is
//! a single index into the already-sorted samples (report paths ask for
//! several quantiles per histogram; dashboards ask per request). At
//! serving-trace scales (thousands of requests) the extra memory is
//! noise.

use serde::json::{Map, Value};
use std::collections::BTreeMap;

/// The quantiles serving reports print, in ascending order.
pub const REPORT_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999)];

/// Log2 bucket index for a latency: smallest `k ≥ 0` with
/// `latency ≤ 2^k` µs.
fn bucket_of(latency_seconds: f64) -> u32 {
    let us = latency_seconds * 1e6;
    let mut k = 0u32;
    let mut le = 1.0f64;
    while us > le && k < 64 {
        le *= 2.0;
        k += 1;
    }
    k
}

/// One log2 bucket: its population plus the exemplar (slowest) request
/// that landed in it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bucket {
    /// Observations in this bucket.
    pub count: u64,
    /// Trace id of the slowest observation in this bucket (first wins on
    /// exact ties, keeping replays deterministic).
    pub exemplar_trace: String,
    /// Latency of the exemplar, seconds.
    pub exemplar_latency: f64,
}

/// A latency distribution: log2 buckets with exemplars, plus the raw
/// samples (kept sorted ascending) for exact quantiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    buckets: BTreeMap<u32, Bucket>,
    /// Invariant: sorted ascending; [`Self::quantile`] indexes directly.
    samples: Vec<f64>,
    sum: f64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one observation (seconds) attributed to `trace_id`.
    pub fn observe(&mut self, latency_seconds: f64, trace_id: &str) {
        let b = self.buckets.entry(bucket_of(latency_seconds)).or_default();
        b.count += 1;
        if b.count == 1 || latency_seconds > b.exemplar_latency {
            b.exemplar_trace = trace_id.to_string();
            b.exemplar_latency = latency_seconds;
        }
        let at = self.samples.partition_point(|&x| x < latency_seconds);
        self.samples.insert(at, latency_seconds);
        self.sum += latency_seconds;
    }

    /// Fold another histogram into this one (used to aggregate outcomes
    /// of one request class).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (k, ob) in &other.buckets {
            let b = self.buckets.entry(*k).or_default();
            b.count += ob.count;
            if !ob.exemplar_trace.is_empty()
                && (b.exemplar_trace.is_empty() || ob.exemplar_latency > b.exemplar_latency)
            {
                b.exemplar_trace = ob.exemplar_trace.clone();
                b.exemplar_latency = ob.exemplar_latency;
            }
        }
        // Both inputs are sorted, so std's adaptive sort sees two runs
        // and merges near-linearly; merge happens per report, not per
        // observe.
        self.samples.extend_from_slice(&other.samples);
        self.samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        self.sum += other.sum;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all observations, seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact nearest-rank quantile: the smallest observation `v` such
    /// that at least `⌈q·n⌉` observations are `≤ v`. Returns 0.0 on an
    /// empty histogram. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// The exemplar trace id for the bucket containing `quantile(q)` —
    /// a concrete request at least as slow as that quantile (it is the
    /// slowest in the same log2 bucket). `None` on an empty histogram.
    pub fn exemplar(&self, q: f64) -> Option<&str> {
        if self.samples.is_empty() {
            return None;
        }
        let b = self.buckets.get(&bucket_of(self.quantile(q)))?;
        Some(&b.exemplar_trace)
    }

    /// The buckets, ascending by upper bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, &Bucket)> {
        self.buckets.iter().map(|(k, b)| (*k, b))
    }

    /// JSON rendering: ascending `le_us` buckets with counts and
    /// exemplars, the report quantiles, count, and sum.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("count".into(), Value::Int(i128::from(self.count())));
        m.insert("sum_s".into(), Value::Float(self.sum));
        let mut buckets = Vec::new();
        for (k, b) in &self.buckets {
            let mut bm = Map::new();
            bm.insert("le_us".into(), Value::Float(2f64.powi(*k as i32)));
            bm.insert("count".into(), Value::Int(i128::from(b.count)));
            bm.insert("exemplar".into(), Value::String(b.exemplar_trace.clone()));
            bm.insert("exemplar_s".into(), Value::Float(b.exemplar_latency));
            buckets.push(Value::Object(bm));
        }
        m.insert("buckets".into(), Value::Array(buckets));
        let mut quant = Map::new();
        for (name, q) in REPORT_QUANTILES {
            quant.insert(name.into(), Value::Float(self.quantile(q)));
        }
        m.insert("quantiles_s".into(), Value::Object(quant));
        Value::Object(m)
    }
}

/// Latency histograms keyed by (request class, outcome label) — e.g.
/// `("decompress", "degraded")`. BTreeMap keys keep every iteration and
/// export order deterministic.
#[derive(Debug, Clone, Default)]
pub struct LatencyBook {
    hists: BTreeMap<(String, String), LatencyHistogram>,
}

impl LatencyBook {
    /// An empty book.
    pub fn new() -> Self {
        LatencyBook::default()
    }

    /// Record one observation under (class, outcome).
    pub fn observe(&mut self, class: &str, outcome: &str, latency_seconds: f64, trace_id: &str) {
        self.hists
            .entry((class.to_string(), outcome.to_string()))
            .or_default()
            .observe(latency_seconds, trace_id);
    }

    /// The histogram of one (class, outcome) pair, if populated.
    pub fn get(&self, class: &str, outcome: &str) -> Option<&LatencyHistogram> {
        self.hists.get(&(class.to_string(), outcome.to_string()))
    }

    /// All histograms of one class, merged across outcomes — the
    /// distribution the per-class percentile columns and SLO thresholds
    /// are computed over.
    pub fn class(&self, class: &str) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for ((c, _), h) in &self.hists {
            if c == class {
                out.merge(h);
            }
        }
        out
    }

    /// The histograms of one class merged across every outcome *except*
    /// `"shed"` — the admitted-request distribution. Shed requests never
    /// consume a worker and are recorded at zero latency, so folding
    /// them in deflates percentiles; reports whose columns promise
    /// admitted-request latency must use this instead of
    /// [`Self::class`].
    pub fn admitted(&self, class: &str) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for ((c, o), h) in &self.hists {
            if c == class && o != "shed" {
                out.merge(h);
            }
        }
        out
    }

    /// The distinct classes present, ascending.
    pub fn classes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (c, _) in self.hists.keys() {
            if out.last() != Some(&c.as_str()) {
                out.push(c);
            }
        }
        out
    }

    /// Iterate (class, outcome, histogram) in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &LatencyHistogram)> {
        self.hists.iter().map(|((c, o), h)| (c.as_str(), o.as_str(), h))
    }

    /// JSON rendering: an array of `{class, outcome, histogram}` in key
    /// order.
    pub fn to_json(&self) -> Value {
        let mut arr = Vec::new();
        for ((c, o), h) in &self.hists {
            let mut m = Map::new();
            m.insert("class".into(), Value::String(c.clone()));
            m.insert("outcome".into(), Value::String(o.clone()));
            m.insert("histogram".into(), h.to_json());
            arr.push(Value::Object(m));
        }
        Value::Array(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_half_open_powers_of_two() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(1.0e-6), 0); // exactly 1 µs → le 1 µs
        assert_eq!(bucket_of(1.1e-6), 1); // (1, 2] µs
        assert_eq!(bucket_of(2.0e-6), 1);
        assert_eq!(bucket_of(3.0e-6), 2);
        assert_eq!(bucket_of(1.0), 20); // 1 s = 1e6 µs ≤ 2^20 µs
    }

    #[test]
    fn quantiles_are_exact_and_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3, &format!("t{i}"));
        }
        assert!((h.quantile(0.5) - 0.050).abs() < 1e-12);
        assert!((h.quantile(0.99) - 0.099).abs() < 1e-12);
        assert!((h.quantile(0.999) - 0.100).abs() < 1e-12);
        let mut prev = 0.0;
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile must be monotone in q");
            prev = v;
        }
    }

    #[test]
    fn exemplar_is_slowest_in_bucket_and_at_least_the_quantile() {
        let mut h = LatencyHistogram::new();
        h.observe(10e-6, "fast");
        h.observe(900e-6, "slow");
        h.observe(1000e-6, "slowest"); // same (512, 1024] µs bucket as "slow"
        assert_eq!(h.exemplar(0.999), Some("slowest"));
        let p999 = h.quantile(0.999);
        assert!(h.exemplar(0.999).is_some());
        assert!(1000e-6 >= p999);
    }

    #[test]
    fn exemplar_ties_keep_first_observation() {
        let mut h = LatencyHistogram::new();
        h.observe(5e-6, "first");
        h.observe(5e-6, "second");
        assert_eq!(h.exemplar(0.5), Some("first"));
    }

    #[test]
    fn book_merges_outcomes_per_class() {
        let mut b = LatencyBook::new();
        b.observe("decompress", "ok", 1e-3, "a");
        b.observe("decompress", "degraded", 8e-3, "b");
        b.observe("compress", "ok", 2e-3, "c");
        assert_eq!(b.classes(), vec!["compress", "decompress"]);
        let d = b.class("decompress");
        assert_eq!(d.count(), 2);
        assert_eq!(d.exemplar(0.99), Some("b"));
        assert!(b.get("decompress", "ok").is_some());
        assert!(b.get("decompress", "shed").is_none());
    }

    #[test]
    fn observation_order_does_not_change_quantiles() {
        let mut fwd = LatencyHistogram::new();
        let mut rev = LatencyHistogram::new();
        for i in 1..=50 {
            fwd.observe(i as f64 * 1e-4, &format!("f{i}"));
            rev.observe((51 - i) as f64 * 1e-4, &format!("r{i}"));
        }
        for q in [0.1, 0.5, 0.99, 0.999] {
            assert_eq!(fwd.quantile(q), rev.quantile(q));
        }
    }

    #[test]
    fn merge_keeps_samples_sorted_for_quantiles() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.observe(3e-3, "a3");
        a.observe(1e-3, "a1");
        b.observe(4e-3, "b4");
        b.observe(2e-3, "b2");
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.quantile(0.5) - 2e-3).abs() < 1e-15);
        assert!((a.quantile(1.0) - 4e-3).abs() < 1e-15);
    }

    #[test]
    fn admitted_excludes_zero_latency_sheds() {
        let mut b = LatencyBook::new();
        b.observe("compress", "ok", 2e-3, "a");
        b.observe("compress", "degraded", 4e-3, "b");
        b.observe("compress", "shed", 0.0, "c");
        b.observe("compress", "shed", 0.0, "d");
        // All-outcome view: the two zero samples drag p50 to zero.
        assert_eq!(b.class("compress").count(), 4);
        assert_eq!(b.class("compress").quantile(0.5), 0.0);
        // Admitted view: only the served/degraded requests.
        let adm = b.admitted("compress");
        assert_eq!(adm.count(), 2);
        assert!((adm.quantile(0.5) - 2e-3).abs() < 1e-15);
        assert_eq!(adm.exemplar(0.999), Some("b"));
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let mut b = LatencyBook::new();
        b.observe("compress", "ok", 1e-3, "a");
        b.observe("compress", "ok", 4e-3, "b");
        let j1 = b.to_json().to_string();
        let j2 = b.to_json().to_string();
        assert_eq!(j1, j2);
        serde::json::Value::parse(&j1).unwrap();
        assert!(j1.contains("\"exemplar\":\"b\""));
        assert!(j1.contains("\"p999\""));
    }
}
