//! Process-wide service metrics: counters, gauges, and histograms with
//! Prometheus-style text exposition and JSON export.
//!
//! A long-running compression service needs a scrapeable surface; this
//! module is that surface for the modeled system. The library's entry
//! points ([`crate::archive::compress`], [`crate::archive::decompress_with`],
//! [`crate::batch::compress_batched`], [`crate::pipeline::run`], the
//! decoder dispatchers, and the profilers) update the [`global`] registry
//! as a side effect; `rsh stats` resets it, runs one operation, and dumps
//! the exposition.
//!
//! The metric families are fixed at construction (a registry never grows
//! names at runtime), labels are single-key and low-cardinality by
//! design, and everything is a plain `f64` behind one mutex — this is an
//! observability surface, not a time-series database.
//!
//! ```
//! use huff_core::metrics::registry::Registry;
//!
//! let mut r = Registry::new();
//! r.record_compress(1_000_000, 400_000, 2.5, 16);
//! assert_eq!(r.get("rsh_bytes_out_total", &[("direction", "compress")]), 400_000.0);
//! let text = r.render();
//! assert!(text.contains("# TYPE rsh_bytes_out_total counter"));
//! assert!(text.contains("rsh_bytes_out_total{direction=\"compress\"} 400000"));
//! ```

use serde::json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What kind of metric a family is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing sum.
    Counter,
    /// Last-written value.
    Gauge,
    /// Bucketed distribution with sum and count.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Bucket upper bounds of the kernel-efficiency histogram (a final +Inf
/// bucket is implicit).
pub const EFFICIENCY_BUCKETS: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

/// The fixed family table: name, kind, help. Single source of truth for
/// both exposition formats.
const FAMILIES: &[(&str, MetricKind, &str)] = &[
    ("rsh_runs_total", MetricKind::Counter, "Operations completed, by direction."),
    ("rsh_bytes_in_total", MetricKind::Counter, "Input bytes consumed, by direction."),
    ("rsh_bytes_out_total", MetricKind::Counter, "Output bytes produced, by direction."),
    ("rsh_compression_ratio", MetricKind::Gauge, "Compression ratio of the last compress run."),
    ("rsh_chunks_total", MetricKind::Counter, "Payload chunks processed."),
    ("rsh_chunks_damaged_total", MetricKind::Counter, "Payload chunks found damaged."),
    ("rsh_shards_total", MetricKind::Counter, "Frame shards processed."),
    ("rsh_shards_ok_total", MetricKind::Counter, "Frame shards decoded clean."),
    (
        "rsh_shards_recovered_total",
        MetricKind::Counter,
        "Frame shards recovered best-effort (damaged or unreadable).",
    ),
    ("rsh_stage_seconds_total", MetricKind::Counter, "Modeled device seconds, by pipeline stage."),
    ("rsh_decode_backend_total", MetricKind::Counter, "Decode operations, by backend."),
    (
        "rsh_kernel_efficiency",
        MetricKind::Histogram,
        "Roofline efficiency (achieved / effective bandwidth) of profiled kernels.",
    ),
    ("rsh_requests_total", MetricKind::Counter, "Serve requests completed, by outcome."),
    ("rsh_retries_total", MetricKind::Counter, "Serve attempts retried after transient faults."),
    ("rsh_shed_total", MetricKind::Counter, "Serve requests shed at admission, by reason."),
    (
        "rsh_deadline_miss_total",
        MetricKind::Counter,
        "Serve requests cancelled for missing their deadline.",
    ),
    (
        "rsh_degraded_total",
        MetricKind::Counter,
        "Serve requests completed on a degraded decode backend, by backend.",
    ),
    (
        "rsh_queue_wait_seconds_total",
        MetricKind::Counter,
        "Modeled seconds serve requests spent queued for a worker.",
    ),
    ("rsh_queue_depth", MetricKind::Gauge, "Admission queue depth seen by the latest request."),
    (
        "rsh_quarantined_shards_total",
        MetricKind::Counter,
        "Shards quarantined off failed devices and rescheduled onto survivors.",
    ),
    (
        "rsh_range_decodes_total",
        MetricKind::Counter,
        "Random-access range decodes, by offset source (index/scan).",
    ),
    ("rsh_range_bytes_total", MetricKind::Counter, "Bytes produced by range decodes."),
    ("rsh_range_chunks_touched_total", MetricKind::Counter, "Chunks decoded to serve range reads."),
    (
        "rsh_range_chunks_skipped_total",
        MetricKind::Counter,
        "Chunks range reads did not have to decode.",
    ),
    (
        "rsh_index_probes_total",
        MetricKind::Counter,
        "Seek-index u64-word probes spent locating chunk offsets.",
    ),
    ("rsh_tune_lookups_total", MetricKind::Counter, "Tuning-cache lookups, by result (hit/miss)."),
    (
        "rsh_tune_decisions_total",
        MetricKind::Counter,
        "Autotune decisions applied, by dispatch path.",
    ),
];

#[derive(Debug, Clone, Default)]
struct Sample {
    /// Counter/gauge value; for histograms, the sum of observations.
    value: f64,
    /// Histogram observation count.
    count: u64,
    /// Non-cumulative per-bucket counts (len = EFFICIENCY_BUCKETS + 1,
    /// the last slot is the +Inf bucket); empty for counters/gauges.
    buckets: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: &'static str,
    /// Canonical label string (`{k="v"}` or empty) → sample.
    samples: BTreeMap<String, Sample>,
}

/// A fixed-family metrics registry.
///
/// Use [`global`] for the process-wide instance the library updates;
/// construct local instances in tests to avoid cross-test interference.
#[derive(Debug, Clone)]
pub struct Registry {
    families: BTreeMap<&'static str, Family>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Escape a label value per the Prometheus text-exposition rules:
/// inside the quoted value, backslash, double-quote and newline must be
/// written as `\\`, `\"` and `\n`. Without this, a value containing `"`
/// or a newline produces an exposition no scraper can parse.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Invert [`escape_label_value`]. Unknown escape sequences pass through
/// verbatim (matching how Prometheus parsers treat them).
pub fn unescape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    // Escaping happens at key construction, so storage, lookup and both
    // exposition formats all see the same canonical (escaped) string.
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// Format a sample value the way Prometheus text exposition does:
/// integers without a decimal point.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// A registry with every known family present and empty.
    pub fn new() -> Self {
        let families = FAMILIES
            .iter()
            .map(|&(name, kind, help)| (name, Family { kind, help, samples: BTreeMap::new() }))
            .collect();
        Registry { families }
    }

    fn family_mut(&mut self, name: &str, expect: MetricKind) -> &mut Family {
        let f = self.families.get_mut(name).unwrap_or_else(|| panic!("unknown metric {name}"));
        assert_eq!(f.kind, expect, "metric {name} is a {}", f.kind.name());
        f
    }

    /// Add `v` (≥ 0) to a counter.
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        debug_assert!(v >= 0.0, "counter {name} decremented by {v}");
        let f = self.family_mut(name, MetricKind::Counter);
        f.samples.entry(label_key(labels)).or_default().value += v;
    }

    /// Set a gauge.
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let f = self.family_mut(name, MetricKind::Gauge);
        f.samples.entry(label_key(labels)).or_default().value = v;
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let f = self.family_mut(name, MetricKind::Histogram);
        let s = f.samples.entry(label_key(labels)).or_default();
        if s.buckets.is_empty() {
            s.buckets = vec![0; EFFICIENCY_BUCKETS.len() + 1];
        }
        let i = EFFICIENCY_BUCKETS.iter().position(|&b| v <= b).unwrap_or(EFFICIENCY_BUCKETS.len());
        s.buckets[i] += 1;
        s.count += 1;
        s.value += v;
    }

    /// Current value of a counter/gauge (histograms: sum of
    /// observations). Missing samples read as 0.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.families
            .get(name)
            .and_then(|f| f.samples.get(&label_key(labels)))
            .map_or(0.0, |s| s.value)
    }

    /// Observation count of a histogram sample.
    pub fn count(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.families
            .get(name)
            .and_then(|f| f.samples.get(&label_key(labels)))
            .map_or(0, |s| s.count)
    }

    /// Drop every sample (family definitions stay).
    pub fn reset(&mut self) {
        for f in self.families.values_mut() {
            f.samples.clear();
        }
    }

    /// Prometheus text exposition (families in name order, samples in
    /// label order; empty families are omitted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, f) in &self.families {
            if f.samples.is_empty() {
                continue;
            }
            out.push_str(&format!("# HELP {name} {}\n", f.help));
            out.push_str(&format!("# TYPE {name} {}\n", f.kind.name()));
            for (labels, s) in &f.samples {
                match f.kind {
                    MetricKind::Counter | MetricKind::Gauge => {
                        out.push_str(&format!("{name}{labels} {}\n", fmt_value(s.value)));
                    }
                    MetricKind::Histogram => {
                        let with_le = |le: &str| {
                            if labels.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
                            }
                        };
                        let mut cum = 0u64;
                        for (i, &b) in EFFICIENCY_BUCKETS.iter().enumerate() {
                            cum += s.buckets.get(i).copied().unwrap_or(0);
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                with_le(&fmt_value(b))
                            ));
                        }
                        out.push_str(&format!("{name}_bucket{} {}\n", with_le("+Inf"), s.count));
                        out.push_str(&format!("{name}_sum{labels} {}\n", fmt_value(s.value)));
                        out.push_str(&format!("{name}_count{labels} {}\n", s.count));
                    }
                }
            }
        }
        out
    }

    /// JSON export: one object per non-empty family, with its samples.
    pub fn to_json(&self) -> Value {
        let mut root = Map::new();
        let mut families = Vec::new();
        for (name, f) in &self.families {
            if f.samples.is_empty() {
                continue;
            }
            let mut fam = Map::new();
            fam.insert("name".into(), (*name).into());
            fam.insert("kind".into(), f.kind.name().into());
            fam.insert("help".into(), f.help.into());
            let samples = f
                .samples
                .iter()
                .map(|(labels, s)| {
                    let mut o = Map::new();
                    o.insert("labels".into(), Value::String(labels.clone()));
                    match f.kind {
                        MetricKind::Counter | MetricKind::Gauge => {
                            o.insert("value".into(), Value::Float(s.value));
                        }
                        MetricKind::Histogram => {
                            o.insert("sum".into(), Value::Float(s.value));
                            o.insert("count".into(), Value::Int(i128::from(s.count)));
                            o.insert(
                                "buckets".into(),
                                Value::Array(
                                    s.buckets.iter().map(|&c| Value::Int(i128::from(c))).collect(),
                                ),
                            );
                        }
                    }
                    Value::Object(o)
                })
                .collect();
            fam.insert("samples".into(), Value::Array(samples));
            families.push(Value::Object(fam));
        }
        root.insert("families".into(), Value::Array(families));
        Value::Object(root)
    }

    // ---- Domain helpers: the vocabulary the library records in. ----

    /// One compress run: input/output bytes, achieved ratio, chunk count.
    pub fn record_compress(&mut self, bytes_in: u64, bytes_out: u64, ratio: f64, chunks: usize) {
        let d = [("direction", "compress")];
        self.add("rsh_runs_total", &d, 1.0);
        self.add("rsh_bytes_in_total", &d, bytes_in as f64);
        self.add("rsh_bytes_out_total", &d, bytes_out as f64);
        self.set("rsh_compression_ratio", &[], ratio);
        self.add("rsh_chunks_total", &[], chunks as f64);
    }

    /// One decompress run (per shard for frames): archive bytes in,
    /// symbol bytes out, total and damaged chunk counts.
    pub fn record_decompress(
        &mut self,
        bytes_in: u64,
        bytes_out: u64,
        chunks: usize,
        damaged: usize,
    ) {
        let d = [("direction", "decompress")];
        self.add("rsh_runs_total", &d, 1.0);
        self.add("rsh_bytes_in_total", &d, bytes_in as f64);
        self.add("rsh_bytes_out_total", &d, bytes_out as f64);
        self.add("rsh_chunks_total", &[], chunks as f64);
        self.add("rsh_chunks_damaged_total", &[], damaged as f64);
    }

    /// One verify run.
    pub fn record_verify(&mut self) {
        self.add("rsh_runs_total", &[("direction", "verify")], 1.0);
    }

    /// Modeled device seconds attributed to a pipeline stage.
    pub fn record_stage_seconds(&mut self, stage: &str, seconds: f64) {
        self.add("rsh_stage_seconds_total", &[("stage", stage)], seconds);
    }

    /// Shards written into a frame by a batched compress.
    pub fn record_shards_built(&mut self, shards: usize) {
        self.add("rsh_shards_total", &[], shards as f64);
    }

    /// Outcome of decoding one frame's shards.
    pub fn record_shards_decoded(&mut self, ok: usize, recovered: usize) {
        self.add("rsh_shards_total", &[], (ok + recovered) as f64);
        self.add("rsh_shards_ok_total", &[], ok as f64);
        self.add("rsh_shards_recovered_total", &[], recovered as f64);
    }

    /// One decode dispatch through the named backend.
    pub fn record_decode_backend(&mut self, backend: &str) {
        self.add("rsh_decode_backend_total", &[("backend", backend)], 1.0);
    }

    /// One profiled kernel's roofline efficiency.
    pub fn record_kernel_efficiency(&mut self, efficiency: f64) {
        self.observe("rsh_kernel_efficiency", &[], efficiency);
    }

    // ---- Serve-path vocabulary (see `crate::serve`). ----

    /// One serve request reaching a terminal outcome (`"success"`,
    /// `"degraded"`, `"shed"`, `"deadline"`, `"failed"`).
    pub fn record_request(&mut self, outcome: &str) {
        self.add("rsh_requests_total", &[("outcome", outcome)], 1.0);
    }

    /// Retries spent on one request (0 is a no-op).
    pub fn record_retries(&mut self, retries: u64) {
        if retries > 0 {
            self.add("rsh_retries_total", &[], retries as f64);
        }
    }

    /// One request shed at admission.
    pub fn record_shed(&mut self, reason: &str) {
        self.add("rsh_shed_total", &[("reason", reason)], 1.0);
    }

    /// One request cancelled for missing its deadline.
    pub fn record_deadline_miss(&mut self) {
        self.add("rsh_deadline_miss_total", &[], 1.0);
    }

    /// One request served by a degraded decode backend.
    pub fn record_degraded(&mut self, backend: &str) {
        self.add("rsh_degraded_total", &[("backend", backend)], 1.0);
    }

    /// Modeled queue wait of one admitted request, plus the depth it saw.
    pub fn record_queue_wait(&mut self, seconds: f64, depth: usize) {
        self.add("rsh_queue_wait_seconds_total", &[], seconds);
        self.set("rsh_queue_depth", &[], depth as f64);
    }

    /// Shards quarantined off failed devices in a batched run.
    pub fn record_shards_quarantined(&mut self, shards: usize) {
        self.add("rsh_quarantined_shards_total", &[], shards as f64);
    }

    /// One random-access range decode: output bytes, how many chunks it
    /// decoded vs the archive's total, and the probe traffic it spent
    /// locating offsets (see `crate::archive::decode_range`).
    pub fn record_range_decode(
        &mut self,
        bytes_out: u64,
        chunks_touched: usize,
        total_chunks: usize,
        probes: u64,
        index_used: bool,
    ) {
        let source = if index_used { "index" } else { "scan" };
        self.add("rsh_range_decodes_total", &[("source", source)], 1.0);
        self.add("rsh_range_bytes_total", &[], bytes_out as f64);
        self.add("rsh_range_chunks_touched_total", &[], chunks_touched as f64);
        self.add(
            "rsh_range_chunks_skipped_total",
            &[],
            total_chunks.saturating_sub(chunks_touched) as f64,
        );
        self.add("rsh_index_probes_total", &[], probes as f64);
    }

    /// One tuning-cache lookup.
    pub fn record_tune_lookup(&mut self, hit: bool) {
        let result = if hit { "hit" } else { "miss" };
        self.add("rsh_tune_lookups_total", &[("result", result)], 1.0);
    }

    /// One autotune decision applied, by dispatch path name.
    pub fn record_tune_decision(&mut self, dispatch: &str) {
        self.add("rsh_tune_decisions_total", &[("dispatch", dispatch)], 1.0);
    }
}

/// Lock the process-wide registry.
///
/// The library's entry points record into this instance; hold the guard
/// only for the duration of one call (never while calling back into the
/// library, which would deadlock).
pub fn global() -> MutexGuard<'static, Registry> {
    static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();
    let m = GLOBAL.get_or_init(|| Mutex::new(Registry::new()));
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_monotonically() {
        let mut r = Registry::new();
        let labels = [("direction", "compress")];
        let mut last = r.get("rsh_bytes_in_total", &labels);
        for _ in 0..5 {
            r.add("rsh_bytes_in_total", &labels, 100.0);
            let now = r.get("rsh_bytes_in_total", &labels);
            assert!(now > last);
            last = now;
        }
        assert_eq!(last, 500.0);
    }

    #[test]
    fn gauge_overwrites() {
        let mut r = Registry::new();
        r.set("rsh_compression_ratio", &[], 2.0);
        r.set("rsh_compression_ratio", &[], 3.5);
        assert_eq!(r.get("rsh_compression_ratio", &[]), 3.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let mut r = Registry::new();
        for v in [0.05, 0.3, 0.6, 0.95, 0.97] {
            r.record_kernel_efficiency(v);
        }
        assert_eq!(r.count("rsh_kernel_efficiency", &[]), 5);
        let text = r.render();
        assert!(text.contains("rsh_kernel_efficiency_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("rsh_kernel_efficiency_bucket{le=\"0.5\"} 2"));
        assert!(text.contains("rsh_kernel_efficiency_bucket{le=\"1\"} 5"));
        assert!(text.contains("rsh_kernel_efficiency_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("rsh_kernel_efficiency_count 5"));
    }

    #[test]
    fn exposition_has_help_and_type_lines() {
        let mut r = Registry::new();
        r.record_compress(1000, 400, 2.5, 4);
        r.record_decode_backend("lut");
        let text = r.render();
        assert!(text.contains("# HELP rsh_runs_total"));
        assert!(text.contains("# TYPE rsh_runs_total counter"));
        assert!(text.contains("rsh_runs_total{direction=\"compress\"} 1"));
        assert!(text.contains("rsh_decode_backend_total{backend=\"lut\"} 1"));
        assert!(text.contains("# TYPE rsh_compression_ratio gauge"));
        // Empty families are omitted entirely.
        assert!(!text.contains("rsh_shards_total"));
    }

    #[test]
    fn shard_helpers_reconcile() {
        let mut r = Registry::new();
        r.record_shards_decoded(3, 1);
        assert_eq!(r.get("rsh_shards_total", &[]), 4.0);
        assert_eq!(r.get("rsh_shards_ok_total", &[]), 3.0);
        assert_eq!(r.get("rsh_shards_recovered_total", &[]), 1.0);
    }

    #[test]
    fn reset_clears_samples_but_keeps_families() {
        let mut r = Registry::new();
        r.record_verify();
        assert_eq!(r.get("rsh_runs_total", &[("direction", "verify")]), 1.0);
        r.reset();
        assert_eq!(r.get("rsh_runs_total", &[("direction", "verify")]), 0.0);
        r.record_verify();
        assert_eq!(r.get("rsh_runs_total", &[("direction", "verify")]), 1.0);
    }

    #[test]
    fn json_export_mirrors_samples() {
        let mut r = Registry::new();
        r.record_compress(1000, 400, 2.5, 4);
        r.record_kernel_efficiency(0.8);
        let v = r.to_json();
        let families = v.as_object().unwrap().get("families").unwrap().as_array().unwrap();
        assert!(!families.is_empty());
        let names: Vec<&str> = families
            .iter()
            .map(|f| f.as_object().unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"rsh_bytes_out_total"));
        assert!(names.contains(&"rsh_kernel_efficiency"));
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_panics() {
        Registry::new().add("rsh_nonexistent", &[], 1.0);
    }

    #[test]
    fn label_values_are_escaped_in_exposition() {
        let mut r = Registry::new();
        r.record_shed("queue \"full\"\nback\\slash");
        let text = r.render();
        assert!(
            text.contains(r#"rsh_shed_total{reason="queue \"full\"\nback\\slash"} 1"#),
            "exposition: {text}"
        );
        // No raw newline may survive inside a sample line.
        for line in text.lines() {
            assert!(!line.is_empty() || text.ends_with('\n'));
        }
        // Lookup with the same raw value still round-trips.
        assert_eq!(r.get("rsh_shed_total", &[("reason", "queue \"full\"\nback\\slash")]), 1.0);
        // JSON export stays parseable by the vendored parser.
        serde::json::Value::parse(&r.to_json().to_string()).unwrap();
    }

    mod label_escaping_properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Any label value survives escape → unescape, and both the
            /// text and JSON exposition of a registry carrying it stay
            /// parseable by the vendored parsers.
            #[test]
            fn label_escaping_roundtrips(
                idxs in proptest::collection::vec(0usize..12, 0..32)
            ) {
                const ALPHABET: [char; 12] =
                    ['a', 'Z', '0', ' ', '"', '\\', '\n', 'µ', '{', '}', '=', ','];
                let value: String = idxs.iter().map(|&i| ALPHABET[i]).collect();

                // The escape transform inverts exactly.
                let escaped = escape_label_value(&value);
                prop_assert_eq!(unescape_label_value(&escaped), value.clone());
                // Escaped values never contain raw newlines.
                prop_assert!(!escaped.contains('\n'));

                let mut r = Registry::new();
                r.record_shed(&value);
                prop_assert_eq!(r.get("rsh_shed_total", &[("reason", &value)]), 1.0);

                // Text exposition: the sample line's quoted value parses
                // back to the original.
                let text = r.render();
                let line = text
                    .lines()
                    .find(|l| l.starts_with("rsh_shed_total{reason=\""))
                    .expect("sample line present");
                let quoted = &line["rsh_shed_total{reason=\"".len()..];
                let end = quoted.rfind("\"}").expect("closing quote");
                prop_assert_eq!(unescape_label_value(&quoted[..end]), value);

                // JSON exposition: the vendored parser accepts the
                // document.
                let json = r.to_json().to_string();
                let parsed = serde::json::Value::parse(&json).expect("valid JSON");
                prop_assert!(parsed.as_object().is_some());
            }
        }
    }

    #[test]
    fn global_registry_is_shared_and_resettable() {
        {
            let mut g = global();
            g.reset();
            g.record_verify();
        }
        let v = global().get("rsh_runs_total", &[("direction", "verify")]);
        assert!(v >= 1.0);
    }
}
