//! Shared Chrome `trace_event` emission for profile exporters.
//!
//! [`PipelineProfile::to_chrome_trace`](crate::metrics::PipelineProfile::to_chrome_trace)
//! and
//! [`BatchProfile::to_chrome_trace`](crate::metrics::BatchProfile::to_chrome_trace)
//! both render kernels onto named lanes; [`LaneWriter`] is the one place
//! that assigns lane ids so the two exporters stay consistent: every
//! trace uses pid 0, lanes get consecutive tids in first-appearance
//! order, and each lane's `thread_name` metadata event precedes its first
//! kernel slice.

use gpu_sim::trace::ChromeTrace;
use gpu_sim::{DeviceSpec, KernelRecord};

/// Chrome-trace builder that names lanes lazily.
///
/// Callers address lanes by *name*; the writer assigns the tid the first
/// time a name appears and reuses it afterwards, so exporters never
/// hand-manage lane numbering.
#[derive(Debug, Clone)]
pub struct LaneWriter {
    trace: ChromeTrace,
    lanes: Vec<String>,
}

impl LaneWriter {
    /// A new trace whose process is labeled `process_name`.
    pub fn new(process_name: &str) -> Self {
        LaneWriter { trace: ChromeTrace::new(process_name), lanes: Vec::new() }
    }

    /// Attach a device spec so every kernel slice also carries derived
    /// roofline [`gpu_sim::roofline::Counters`] in its `args`.
    pub fn with_counters(mut self, spec: DeviceSpec) -> Self {
        self.trace = self.trace.with_counters(spec);
        self
    }

    /// Register (or look up) the lane named `name`, assigning the next
    /// free tid on first use. Returns the lane's tid.
    pub fn lane(&mut self, name: &str) -> u32 {
        match self.lanes.iter().position(|l| l == name) {
            Some(i) => i as u32,
            None => {
                let tid = self.lanes.len() as u32;
                self.lanes.push(name.to_string());
                self.trace.lane(tid, name);
                tid
            }
        }
    }

    /// Append one kernel slice to the lane named `lane`, creating the
    /// lane (with the next free tid) on first use.
    pub fn kernel(&mut self, lane: &str, rec: &KernelRecord) {
        let tid = self.lane(lane);
        self.trace.kernel(tid, rec);
    }

    /// Append an arbitrary complete slice (`"ph":"X"`) to the lane named
    /// `lane` — span-tree exporters use this for request and stage spans
    /// that are not kernel launches.
    pub fn slice(
        &mut self,
        lane: &str,
        cat: &str,
        name: &str,
        start: f64,
        end: f64,
        args: serde::json::Map,
    ) {
        let tid = self.lane(lane);
        self.trace.slice(tid, cat, name, start, end, args);
    }

    /// Append an instant marker (`"ph":"i"`) to the lane named `lane` —
    /// span events (retries, device loss, shed) render as markers.
    pub fn instant(&mut self, lane: &str, cat: &str, name: &str, at: f64, args: serde::json::Map) {
        let tid = self.lane(lane);
        self.trace.instant(tid, cat, name, at, args);
    }

    /// Render the Chrome `trace_event` JSON.
    pub fn finish(&self) -> String {
        self.trace.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Access, Gpu, GridDim};

    #[test]
    fn lanes_are_assigned_first_seen_and_reused() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        for name in ["a", "b", "a"] {
            gpu.launch(name, GridDim::new(4, 64), |s| {
                s.traffic().read(Access::Coalesced, 1024, 4);
            });
        }
        let clock = gpu.clock();
        let mut w = LaneWriter::new("p");
        for r in clock.records() {
            w.kernel(&r.name.clone(), r);
        }
        let s = w.finish();
        // Two lanes only; the second "a" kernel reuses tid 0.
        assert!(s.contains("\"thread_name\""));
        assert!(!s.contains("\"tid\":2"));
        assert_eq!(s.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn with_counters_propagates() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        gpu.launch("k", GridDim::new(4, 64), |s| {
            s.traffic().read(Access::Coalesced, 1024, 4);
        });
        let clock = gpu.clock();
        let mut w = LaneWriter::new("p").with_counters(DeviceSpec::test_part());
        w.kernel("k", &clock.records()[0]);
        assert!(w.finish().contains("\"counters\""));
    }
}
