//! Request-scoped span trees: the distributed-tracing layer of the
//! serving engine.
//!
//! Process-level aggregates (the [`super::registry`] counters, the
//! roofline report) answer *how much*; they cannot answer *which request*
//! queued, retried, degraded down the decode ladder, or blew its
//! deadline. A [`SpanSink`] records, per request, a tree of [`Span`]s —
//! the request itself, its queue / backoff / service phases, the service
//! stages, and every kernel launch replayed on its behalf — plus point
//! [`SpanEvent`]s (retries, injected device loss, decoder glitches,
//! shedding) attributed to the span they interrupted.
//!
//! Identity follows the usual tracing shape: a [`TraceContext`] carries
//! the owning request's `trace_id` and the parent span id; span ids are
//! allocated from one monotone counter per sink, so concurrent requests
//! can never share a span id. All timestamps are virtual (modeled)
//! seconds on the engine's clock — a fixed seed replays byte-identical
//! exports.
//!
//! Two exporters:
//!
//! * [`SpanSink::to_jsonl`] — the `rsh-span-v1` line-delimited schema
//!   (FORMAT.md §11): every span, then every event, one JSON object per
//!   line, in deterministic creation order;
//! * [`SpanSink::to_chrome_trace`] — Chrome `trace_event` JSON with one
//!   lane per request (trace id), spans as complete slices and events as
//!   instant markers.

use super::chrome::LaneWriter;
use gpu_sim::KernelRecord;
use serde::json::{Map, Value};

/// Version tag of the line-delimited JSON schema emitted by
/// [`SpanSink::to_jsonl`].
pub const SPAN_SCHEMA: &str = "rsh-span-v1";

/// Where a span attaches in its request's tree: the owning trace id plus
/// the parent span id (`None` for the request's root span).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Owning request's trace id.
    pub trace_id: String,
    /// Parent span id; `None` opens a root span.
    pub parent_span_id: Option<u64>,
}

impl TraceContext {
    /// The root context of a request: no parent.
    pub fn root(trace_id: impl Into<String>) -> Self {
        TraceContext { trace_id: trace_id.into(), parent_span_id: None }
    }

    /// A child context under `span_id`, same trace.
    pub fn child_of(&self, span_id: u64) -> TraceContext {
        TraceContext { trace_id: self.trace_id.clone(), parent_span_id: Some(span_id) }
    }
}

/// One node in a request's span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Sink-unique id (monotone across all requests of one sink).
    pub span_id: u64,
    /// Parent span id; `None` for the request's root span.
    pub parent_span_id: Option<u64>,
    /// Owning request's trace id.
    pub trace_id: String,
    /// Span name (`"compress"`, `"queue"`, `"service"`, a stage or
    /// kernel name).
    pub name: String,
    /// Structural kind: `"request"`, `"stage"`, or `"kernel"`.
    pub kind: &'static str,
    /// Start instant, virtual seconds.
    pub start: f64,
    /// End instant, virtual seconds.
    pub end: f64,
}

impl Span {
    /// The span's duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), SPAN_SCHEMA.into());
        m.insert("type".into(), "span".into());
        m.insert("trace".into(), Value::String(self.trace_id.clone()));
        m.insert("span".into(), Value::Int(i128::from(self.span_id)));
        m.insert(
            "parent".into(),
            match self.parent_span_id {
                Some(p) => Value::Int(i128::from(p)),
                None => Value::Null,
            },
        );
        m.insert("kind".into(), self.kind.into());
        m.insert("name".into(), Value::String(self.name.clone()));
        m.insert("start_s".into(), Value::Float(self.start));
        m.insert("end_s".into(), Value::Float(self.end));
        Value::Object(m)
    }
}

/// A point event attributed to a span: a retry, an injected fault, a
/// shed, a deadline miss.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// The span this event interrupted.
    pub span_id: u64,
    /// Owning request's trace id.
    pub trace_id: String,
    /// Event name (`"retry"`, `"device_loss"`, `"decoder_glitch"`,
    /// `"payload_corruption"`, `"shed"`, `"deadline_miss"`, `"degraded"`,
    /// `"failed"`).
    pub name: String,
    /// Instant, virtual seconds.
    pub at: f64,
    /// Structured detail, deterministic for a fixed seed.
    pub detail: String,
}

impl SpanEvent {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), SPAN_SCHEMA.into());
        m.insert("type".into(), "event".into());
        m.insert("trace".into(), Value::String(self.trace_id.clone()));
        m.insert("span".into(), Value::Int(i128::from(self.span_id)));
        m.insert("name".into(), Value::String(self.name.clone()));
        m.insert("at_s".into(), Value::Float(self.at));
        m.insert("detail".into(), Value::String(self.detail.clone()));
        Value::Object(m)
    }
}

/// Collects the span trees and events of every request served by one
/// engine. Span ids come from a single monotone counter, so two requests
/// — concurrent or not — never share one.
#[derive(Debug, Clone, Default)]
pub struct SpanSink {
    spans: Vec<Span>,
    events: Vec<SpanEvent>,
    next_id: u64,
}

impl SpanSink {
    /// An empty sink.
    pub fn new() -> Self {
        SpanSink::default()
    }

    /// Record one span under `ctx` and return its id.
    pub fn open(
        &mut self,
        ctx: &TraceContext,
        kind: &'static str,
        name: impl Into<String>,
        start: f64,
        end: f64,
    ) -> u64 {
        let span_id = self.next_id;
        self.next_id += 1;
        self.spans.push(Span {
            span_id,
            parent_span_id: ctx.parent_span_id,
            trace_id: ctx.trace_id.clone(),
            name: name.into(),
            kind,
            start,
            end,
        });
        span_id
    }

    /// Record a point event on `span_id`.
    pub fn event(
        &mut self,
        trace_id: impl Into<String>,
        span_id: u64,
        name: impl Into<String>,
        at: f64,
        detail: impl Into<String>,
    ) {
        self.events.push(SpanEvent {
            span_id,
            trace_id: trace_id.into(),
            name: name.into(),
            at,
            detail: detail.into(),
        });
    }

    /// Record one kernel span per record under `ctx`, shifting each
    /// record's schedule-local timestamps by `offset` onto the engine's
    /// clock.
    pub fn kernels(&mut self, ctx: &TraceContext, offset: f64, records: &[KernelRecord]) {
        for r in records {
            self.open(ctx, "kernel", r.name.clone(), offset + r.start, offset + r.end);
        }
    }

    /// All spans, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All events, in creation order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// The spans of one request, in creation order.
    pub fn trace(&self, trace_id: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.trace_id == trace_id).collect()
    }

    /// The root span of one request.
    pub fn root_of(&self, trace_id: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.trace_id == trace_id && s.parent_span_id.is_none())
    }

    /// Direct children of `span_id`, in creation order.
    pub fn children(&self, span_id: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent_span_id == Some(span_id)).collect()
    }

    /// The events attributed to one request.
    pub fn trace_events(&self, trace_id: &str) -> Vec<&SpanEvent> {
        self.events.iter().filter(|e| e.trace_id == trace_id).collect()
    }

    /// The `rsh-span-v1` line-delimited export: every span, then every
    /// event, one compact JSON object per line, in creation order —
    /// byte-deterministic for a fixed seed.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&s.to_json().to_string());
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON with **one lane per request**: each
    /// trace id gets its own lane (first-appearance order), spans render
    /// as complete slices and events as instant markers.
    pub fn to_chrome_trace(&self, process_name: &str) -> String {
        let mut w = LaneWriter::new(process_name);
        for s in &self.spans {
            let mut args = Map::new();
            args.insert("span".into(), Value::Int(i128::from(s.span_id)));
            args.insert(
                "parent".into(),
                match s.parent_span_id {
                    Some(p) => Value::Int(i128::from(p)),
                    None => Value::Null,
                },
            );
            w.slice(&s.trace_id, s.kind, &s.name, s.start, s.end, args);
        }
        for e in &self.events {
            let mut args = Map::new();
            args.insert("span".into(), Value::Int(i128::from(e.span_id)));
            args.insert("detail".into(), Value::String(e.detail.clone()));
            w.instant(&e.trace_id, "event", &e.name, e.at, args);
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_with_tree() -> SpanSink {
        let mut sink = SpanSink::new();
        let root_ctx = TraceContext::root("r0");
        let root = sink.open(&root_ctx, "request", "compress", 0.0, 1.0);
        let child_ctx = root_ctx.child_of(root);
        sink.open(&child_ctx, "stage", "queue", 0.0, 0.25);
        let svc = sink.open(&child_ctx, "stage", "service", 0.25, 1.0);
        sink.event("r0", svc, "retry", 0.3, "attempt 1");
        sink
    }

    #[test]
    fn ids_are_monotone_and_unique_across_traces() {
        let mut sink = SpanSink::new();
        let a = sink.open(&TraceContext::root("a"), "request", "compress", 0.0, 1.0);
        let b = sink.open(&TraceContext::root("b"), "request", "decompress", 0.5, 1.5);
        assert!(b > a);
        let ids: Vec<u64> = sink.spans().iter().map(|s| s.span_id).collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
    }

    #[test]
    fn tree_navigation() {
        let sink = sink_with_tree();
        let root = sink.root_of("r0").unwrap();
        assert_eq!(root.name, "compress");
        let kids = sink.children(root.span_id);
        assert_eq!(kids.len(), 2);
        // Children tile the root exactly.
        let sum: f64 = kids.iter().map(|s| s.duration()).sum();
        assert!((sum - root.duration()).abs() < 1e-12);
        assert_eq!(sink.trace_events("r0").len(), 1);
    }

    #[test]
    fn jsonl_is_schema_tagged_and_deterministic() {
        let a = sink_with_tree().to_jsonl();
        let b = sink_with_tree().to_jsonl();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 4);
        for line in a.lines() {
            assert!(line.starts_with("{\"schema\":\"rsh-span-v1\""), "line: {line}");
            serde::json::Value::parse(line).unwrap();
        }
        assert!(a.contains("\"type\":\"event\""));
        assert!(a.contains("\"parent\":null"));
    }

    #[test]
    fn chrome_export_has_one_lane_per_trace() {
        let mut sink = sink_with_tree();
        sink.open(&TraceContext::root("r1"), "request", "decompress", 2.0, 3.0);
        let s = sink.to_chrome_trace("serve (modeled)");
        assert!(s.contains("\"r0\""));
        assert!(s.contains("\"r1\""));
        // Two lanes: tids 0 and 1 only.
        assert!(s.contains("\"tid\":1"));
        assert!(!s.contains("\"tid\":2"));
        assert!(s.contains("\"ph\":\"i\""), "events render as instants");
    }

    #[test]
    fn kernel_spans_are_offset_onto_the_engine_clock() {
        let mut sink = SpanSink::new();
        let ctx = TraceContext::root("r0");
        let root = sink.open(&ctx, "request", "compress", 10.0, 11.0);
        let recs = vec![{
            let mut r = gpu_sim::KernelRecord {
                seq: 0,
                name: "hist".into(),
                blocks: 1,
                threads_per_block: 32,
                stream: 0,
                contention: 1.0,
                start: 0.25,
                end: 0.5,
                cost: Default::default(),
                traffic: Default::default(),
                trace: "r0".into(),
            };
            r.cost.total = 0.25;
            r
        }];
        sink.kernels(&ctx.child_of(root), 10.0, &recs);
        let k = sink.spans().last().unwrap();
        assert_eq!(k.kind, "kernel");
        assert!((k.start - 10.25).abs() < 1e-12);
        assert!((k.end - 10.5).abs() < 1e-12);
    }
}
