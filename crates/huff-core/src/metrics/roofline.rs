//! Roofline analysis of a pipeline profile: per-kernel and per-stage
//! efficiency tables with anomaly flags, exportable as a table or
//! `rsh-roofline-v1` JSON.
//!
//! [`RooflineReport::from_profile`] derives [`Counters`] for every kernel
//! in a [`PipelineProfile`] (via [`gpu_sim::roofline`]) and aggregates
//! them per stage. A kernel is flagged **anomalous** when it is
//! throughput-classified ([`Bound::Memory`] or [`Bound::Contention`] —
//! i.e. it *should* be riding the bandwidth roofline) yet achieves less
//! than `threshold` of the device's effective bandwidth. Latency-bound
//! kernels (tiny codebook launches, the bit-serial decoder) are reported
//! with their classification but never flagged — low bandwidth is their
//! expected shape, not a regression.
//!
//! The paper's central claim is checkable here: on the 64 MB acceptance
//! input the reduce/shuffle encode kernels classify memory-bound at
//! ≥ 0.5 of peak bandwidth, while the bit-serial decode baseline
//! classifies latency-bound (see DESIGN.md § "Roofline & counters").

use crate::metrics::PipelineProfile;
use gpu_sim::roofline::{Bound, Counters};
use serde::json::{Map, Value};
use serde::Serialize;

/// Version tag of the JSON schema emitted by [`RooflineReport::to_json`].
pub const ROOFLINE_SCHEMA: &str = "rsh-roofline-v1";

/// Default anomaly threshold: a throughput-bound kernel below half the
/// achievable bandwidth is worth a look.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// One kernel's roofline row.
#[derive(Debug, Clone)]
pub struct KernelRoofline {
    /// Pipeline stage the launch belongs to.
    pub stage: &'static str,
    /// Launch sequence number on the device clock.
    pub seq: usize,
    /// Kernel name.
    pub name: String,
    /// Modeled seconds.
    pub seconds: f64,
    /// Derived hardware counters (includes the [`Bound`] classification
    /// and the efficiency score).
    pub counters: Counters,
    /// Throughput-bound but below the efficiency threshold.
    pub anomaly: bool,
}

/// Per-stage aggregate over the stage's kernels.
#[derive(Debug, Clone)]
pub struct StageRoofline {
    /// Stage name.
    pub stage: &'static str,
    /// Kernel launches in the stage.
    pub kernels: usize,
    /// Summed modeled seconds.
    pub seconds: f64,
    /// Summed logical DRAM bytes.
    pub logical_bytes: u64,
    /// `logical_bytes / seconds` — the stage's achieved throughput.
    pub achieved_bps: f64,
    /// Achieved over effective bandwidth, in `(0, 1]` for any stage that
    /// moves bytes.
    pub efficiency: f64,
    /// Dominant classification: the [`Bound`] holding the most modeled
    /// time across the stage's kernels.
    pub bound: Bound,
    /// Number of flagged kernels in the stage.
    pub anomalies: usize,
}

/// Roofline report over one profiled run.
#[derive(Debug, Clone)]
pub struct RooflineReport {
    /// `"compress"`, `"decompress"`, or `"roundtrip"`.
    pub direction: &'static str,
    /// Device name the run was modeled on.
    pub device: String,
    /// Anomaly threshold in effect.
    pub threshold: f64,
    /// Device peak DRAM bandwidth, bytes/s.
    pub peak_bps: f64,
    /// Device effective (achievable) bandwidth, bytes/s.
    pub effective_bps: f64,
    /// Per-kernel rows, in launch order.
    pub kernels: Vec<KernelRoofline>,
    /// Per-stage aggregates, in pipeline order (host-side stages with no
    /// kernels are excluded — they never touched the device).
    pub stages: Vec<StageRoofline>,
}

impl RooflineReport {
    /// Analyze `profile` under an anomaly `threshold` (see
    /// [`DEFAULT_THRESHOLD`]).
    pub fn from_profile(profile: &PipelineProfile, threshold: f64) -> Self {
        let spec = &profile.spec;
        let kernels: Vec<KernelRoofline> = profile
            .kernels
            .iter()
            .map(|k| {
                let counters = k.record.counters(spec);
                let throughput_bound = matches!(counters.bound, Bound::Memory | Bound::Contention);
                KernelRoofline {
                    stage: k.stage,
                    seq: k.record.seq,
                    name: k.record.name.clone(),
                    seconds: k.record.cost.total,
                    anomaly: throughput_bound && counters.efficiency < threshold,
                    counters,
                }
            })
            .collect();

        let stages = profile
            .stages
            .iter()
            .filter(|s| s.kernels > 0)
            .map(|s| {
                let rows: Vec<&KernelRoofline> =
                    kernels.iter().filter(|k| k.stage == s.stage).collect();
                let seconds: f64 = rows.iter().map(|k| k.seconds).sum();
                let logical_bytes: u64 = rows.iter().map(|k| k.counters.logical_bytes).sum();
                let achieved_bps = if seconds > 0.0 { logical_bytes as f64 / seconds } else { 0.0 };
                // Dominant bound: the class holding the most modeled time.
                let mut by_bound: Vec<(Bound, f64)> = Vec::new();
                for k in &rows {
                    match by_bound.iter_mut().find(|(b, _)| *b == k.counters.bound) {
                        Some((_, t)) => *t += k.seconds,
                        None => by_bound.push((k.counters.bound, k.seconds)),
                    }
                }
                let bound = by_bound
                    .iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map_or(Bound::Latency, |(b, _)| *b);
                StageRoofline {
                    stage: s.stage,
                    kernels: rows.len(),
                    seconds,
                    logical_bytes,
                    achieved_bps,
                    efficiency: achieved_bps / spec.effective_bandwidth(),
                    bound,
                    anomalies: rows.iter().filter(|k| k.anomaly).count(),
                }
            })
            .collect();

        RooflineReport {
            direction: profile.direction,
            device: profile.device.clone(),
            threshold,
            peak_bps: spec.peak_bandwidth,
            effective_bps: spec.effective_bandwidth(),
            kernels,
            stages,
        }
    }

    /// Total flagged kernels.
    pub fn anomalies(&self) -> usize {
        self.kernels.iter().filter(|k| k.anomaly).count()
    }

    /// The `rsh-roofline-v1` JSON value (see FORMAT.md for the schema).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), ROOFLINE_SCHEMA.into());
        m.insert("direction".into(), self.direction.into());
        m.insert("device".into(), Value::String(self.device.clone()));
        m.insert("threshold".into(), Value::Float(self.threshold));
        m.insert("peak_gbps".into(), Value::Float(self.peak_bps / 1e9));
        m.insert("effective_gbps".into(), Value::Float(self.effective_bps / 1e9));
        m.insert("anomalies".into(), Value::Int(self.anomalies() as i128));
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let mut o = Map::new();
                o.insert("stage".into(), k.stage.into());
                o.insert("seq".into(), Value::Int(k.seq as i128));
                o.insert("name".into(), Value::String(k.name.clone()));
                o.insert("seconds".into(), Value::Float(k.seconds));
                o.insert("counters".into(), k.counters.to_json());
                o.insert("anomaly".into(), Value::Bool(k.anomaly));
                Value::Object(o)
            })
            .collect();
        m.insert("kernels".into(), Value::Array(kernels));
        let stages = self
            .stages
            .iter()
            .map(|s| {
                let mut o = Map::new();
                o.insert("stage".into(), s.stage.into());
                o.insert("kernels".into(), Value::Int(s.kernels as i128));
                o.insert("seconds".into(), Value::Float(s.seconds));
                o.insert("logical_bytes".into(), Value::Int(s.logical_bytes as i128));
                o.insert("achieved_gbps".into(), Value::Float(s.achieved_bps / 1e9));
                o.insert("efficiency".into(), Value::Float(s.efficiency));
                o.insert("bound".into(), s.bound.name().into());
                o.insert("anomalies".into(), Value::Int(s.anomalies as i128));
                Value::Object(o)
            })
            .collect();
        m.insert("stages".into(), Value::Array(stages));
        Value::Object(m)
    }

    /// The `rsh-roofline-v1` JSON, rendered compact.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Human-readable roofline table: one row per kernel, then the
    /// per-stage aggregates. Anomalous kernels are marked `!`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "roofline — {} on {} (modeled), threshold {:.2}\n",
            self.direction, self.device, self.threshold
        ));
        out.push_str(&format!(
            "peak {:.0} GB/s, effective {:.0} GB/s\n\n",
            self.peak_bps / 1e9,
            self.effective_bps / 1e9
        ));
        out.push_str(&format!(
            "{:<10} {:<22} {:>10} {:>8} {:>6} {:>6} {:>5} {:<11} {}\n",
            "stage", "kernel", "GB/s", "eff", "peak", "occ", "div", "bound", "flag"
        ));
        for k in &self.kernels {
            let c = &k.counters;
            out.push_str(&format!(
                "{:<10} {:<22} {:>10.1} {:>8.3} {:>6.2} {:>6.2} {:>5.2} {:<11} {}\n",
                k.stage,
                k.name,
                c.achieved_bps / 1e9,
                c.efficiency,
                c.peak_fraction,
                c.occupancy,
                c.divergence_fraction,
                c.bound.name(),
                if k.anomaly { "!" } else { "" }
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<10} {:>7} {:>12} {:>10} {:>8} {:<11} {:>9}\n",
            "stage", "kernels", "time", "GB/s", "eff", "bound", "anomalies"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<10} {:>7} {:>12} {:>10.1} {:>8.3} {:<11} {:>9}\n",
                s.stage,
                s.kernels,
                crate::metrics::fmt_seconds(s.seconds),
                s.achieved_bps / 1e9,
                s.efficiency,
                s.bound.name(),
                s.anomalies
            ));
        }
        out
    }
}

impl PipelineProfile {
    /// Roofline analysis of this profile under `threshold` (see
    /// [`RooflineReport`]).
    pub fn roofline(&self, threshold: f64) -> RooflineReport {
        RooflineReport::from_profile(self, threshold)
    }
}

/// Side-by-side per-kernel comparison of two roofline reports over the
/// same input — e.g. the fused vs unfused [`crate::KernelPlan`]s
/// (`rsh profile --compare`). Kernels pair by name; a kernel launched
/// under only one plan shows `-` on the other side. Ends with the total
/// launch-count and modeled-time delta.
pub fn render_comparison(
    label_a: &str,
    a: &RooflineReport,
    label_b: &str,
    b: &RooflineReport,
) -> String {
    let row = |r: Option<&KernelRoofline>| -> String {
        match r {
            Some(k) => format!(
                "{:>10} {:>8.1} {:>6.3} {:<10}",
                crate::metrics::fmt_seconds(k.seconds),
                k.counters.achieved_bps / 1e9,
                k.counters.efficiency,
                k.counters.bound.name()
            ),
            None => format!("{:>10} {:>8} {:>6} {:<10}", "-", "-", "-", "-"),
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "roofline compare — {} on {} (modeled), threshold {:.2}\n\n",
        a.direction, a.device, a.threshold
    ));
    out.push_str(&format!(
        "{:<24} | {:<37} | {:<37}\n",
        "",
        format!("[{label_a}]"),
        format!("[{label_b}]")
    ));
    out.push_str(&format!(
        "{:<24} | {:>10} {:>8} {:>6} {:<10} | {:>10} {:>8} {:>6} {:<10}\n",
        "kernel", "time", "GB/s", "eff", "bound", "time", "GB/s", "eff", "bound"
    ));
    // Kernel order: every kernel of `a` in launch order, then the
    // kernels only `b` launched.
    let mut names: Vec<&str> = Vec::new();
    for k in a.kernels.iter().chain(&b.kernels) {
        if !names.contains(&k.name.as_str()) {
            names.push(k.name.as_str());
        }
    }
    for name in names {
        let ka = a.kernels.iter().find(|k| k.name == name);
        let kb = b.kernels.iter().find(|k| k.name == name);
        out.push_str(&format!("{:<24} | {} | {}\n", name, row(ka), row(kb)));
    }
    let total = |r: &RooflineReport| -> f64 { r.kernels.iter().map(|k| k.seconds).sum() };
    let (ta, tb) = (total(a), total(b));
    out.push_str(&format!(
        "\ntotal: {} launches, {} [{}] vs {} launches, {} [{}]",
        a.kernels.len(),
        crate::metrics::fmt_seconds(ta),
        label_a,
        b.kernels.len(),
        crate::metrics::fmt_seconds(tb),
        label_b,
    ));
    if ta > 0.0 && tb > 0.0 {
        out.push_str(&format!(" ({:+.2}% modeled time)\n", (ta - tb) / tb * 100.0));
    } else {
        out.push('\n');
    }
    out
}
