//! Archive integrity: checksums, verification policy, recovery reporting.
//!
//! The RSH2 container ([`crate::archive`]) protects itself with CRC32
//! checksums at two granularities:
//!
//! * a **header checksum** over every byte that precedes it (magic,
//!   config, codebook lengths, chunk table, outlier sidecar, total-bits
//!   field and the per-chunk checksum table) — header damage is fatal
//!   because the codebook and chunk offsets are required to decode
//!   anything at all;
//! * a **per-chunk payload checksum** over the byte span each chunk's
//!   bits occupy — chunks decode independently (that is the point of
//!   chunking, Section III-A of the paper), so payload damage can be
//!   localized to the chunks whose spans cover the damaged bytes.
//!
//! [`DecompressOptions`] selects how much of this is checked
//! ([`Verify`]) and what happens when a check fails ([`RecoveryMode`]):
//! `Strict` turns the first mismatch into
//! [`HuffError::ChecksumMismatch`](crate::error::HuffError::ChecksumMismatch),
//! while `BestEffort` decodes every chunk whose checksum passes, fills
//! the symbols of damaged chunks with a sentinel, and reports the damage
//! in a [`RecoveryReport`].
//!
//! The CRC32 here is the standard IEEE 802.3 polynomial (reflected,
//! `0xEDB88320`), implemented in-repo so the workspace stays
//! dependency-free.

use std::fmt;

/// IEEE 802.3 CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC32 (IEEE 802.3, as used by gzip/zlib/PNG).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// A region of the archive container, for checksum errors and fault maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The 4-byte magic.
    Magic,
    /// The fixed config fields (symbol width, magnitude, reduction,
    /// pad, symbol count).
    Config,
    /// The codeword-length table.
    Codebook,
    /// The per-chunk bit-length table.
    ChunkTable,
    /// The sparse breaking-unit sidecar.
    Outliers,
    /// The total-bits field.
    TotalBits,
    /// The per-chunk CRC table plus the header CRC (RSH2 only).
    Checksums,
    /// The entire checksummed header region (everything before the
    /// payload) when damage cannot be attributed more precisely.
    Header,
    /// The compressed bitstream.
    Payload,
    /// The optional seek-index trailer after the payload (RSH2 only;
    /// fail-open — damage here degrades to the chunk-table prefix scan).
    SeekIndex,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Section::Magic => "magic",
            Section::Config => "config",
            Section::Codebook => "codebook",
            Section::ChunkTable => "chunk table",
            Section::Outliers => "outlier sidecar",
            Section::TotalBits => "total bits",
            Section::Checksums => "checksum table",
            Section::Header => "header",
            Section::Payload => "payload",
            Section::SeekIndex => "seek index",
        };
        f.write_str(name)
    }
}

/// How much of the archive's checksum metadata to check on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verify {
    /// Check the header checksum and every per-chunk payload checksum.
    #[default]
    Full,
    /// Check only the header checksum; trust the payload.
    HeadersOnly,
    /// Skip all checksum verification (RSH1-era behavior).
    None,
}

/// What to do when verification or decoding fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Fail on the first mismatch with a typed error.
    #[default]
    Strict,
    /// Decode every chunk that passes its checksum, sentinel-fill the
    /// rest, and report the damage instead of aborting. Header damage is
    /// still fatal — without the codebook and chunk offsets nothing can
    /// be decoded.
    BestEffort,
}

/// Options threaded through `decompress_with` / `deserialize_with`.
#[derive(Debug, Clone, Copy)]
pub struct DecompressOptions {
    /// Checksum verification depth.
    pub verify: Verify,
    /// Strict abort vs best-effort recovery.
    pub mode: RecoveryMode,
    /// Symbol written into regions lost to damaged chunks in
    /// best-effort mode.
    pub sentinel: u16,
    /// Decoder backend for the payload (all backends are bit-exact; see
    /// [`DecoderKind`](crate::decode::DecoderKind)).
    pub decoder: crate::decode::DecoderKind,
}

impl Default for DecompressOptions {
    fn default() -> Self {
        DecompressOptions {
            verify: Verify::Full,
            mode: RecoveryMode::Strict,
            sentinel: u16::MAX,
            decoder: crate::decode::DecoderKind::default(),
        }
    }
}

impl DecompressOptions {
    /// Strict, fully-verified decompression (the default).
    pub fn strict() -> Self {
        Self::default()
    }

    /// Best-effort recovery with full verification.
    pub fn best_effort() -> Self {
        DecompressOptions { mode: RecoveryMode::BestEffort, ..Self::default() }
    }

    /// Replace the sentinel symbol used for lost regions.
    pub fn with_sentinel(mut self, sentinel: u16) -> Self {
        self.sentinel = sentinel;
        self
    }

    /// Select the decoder backend.
    pub fn with_decoder(mut self, decoder: crate::decode::DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }
}

/// What best-effort recovery salvaged and what it lost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Total chunks in the archive.
    pub total_chunks: usize,
    /// Indices of chunks whose checksum failed or whose decode errored.
    pub damaged_chunks: Vec<usize>,
    /// Half-open `[start, end)` symbol-index ranges of the output that
    /// were sentinel-filled. Outlier units inside damaged chunks are
    /// *not* listed: their raw symbols live in the (header-protected)
    /// sidecar and are recovered exactly.
    pub damaged_ranges: Vec<(usize, usize)>,
    /// Total symbols sentinel-filled (the sum of range widths).
    pub symbols_lost: usize,
}

impl RecoveryReport {
    /// A clean report over `total_chunks` chunks.
    pub fn clean(total_chunks: usize) -> Self {
        RecoveryReport { total_chunks, ..Self::default() }
    }

    /// True when nothing was damaged.
    pub fn is_clean(&self) -> bool {
        self.damaged_chunks.is_empty() && self.symbols_lost == 0
    }
}

/// The result of a best-effort decompression.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The decoded symbols; damaged regions hold the sentinel.
    pub symbols: Vec<u16>,
    /// Which chunks and symbol ranges were lost.
    pub report: RecoveryReport,
}

/// The result of a random-access range decode
/// ([`crate::archive::decode_range`]): the requested bytes plus an
/// accounting of how little of the archive was touched to produce them.
#[derive(Debug, Clone)]
pub struct RangeDecode {
    /// The decoded output bytes for the (clamped) requested range —
    /// symbols serialized little-endian at the archive's symbol width.
    pub bytes: Vec<u8>,
    /// Damage report in *global* coordinates (chunk indices and symbol
    /// ranges refer to the whole archive, not the decoded window).
    pub report: RecoveryReport,
    /// Chunks actually decoded (the covering window).
    pub chunks_touched: usize,
    /// Total chunks in the archive.
    pub total_chunks: usize,
    /// u64-word probes spent locating chunk offsets: a few per chunk
    /// boundary with the seek index, O(chunks) for the prefix-scan
    /// fallback.
    pub index_probes: u64,
    /// True when the seek-index trailer was present, valid, and used;
    /// false when offsets came from the chunk-table prefix scan.
    pub index_used: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for part in data.chunks(37) {
            h.update(part);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn options_builders() {
        let o = DecompressOptions::default();
        assert_eq!(o.verify, Verify::Full);
        assert_eq!(o.mode, RecoveryMode::Strict);
        assert_eq!(o.decoder, crate::decode::DecoderKind::Chunked);
        let b = DecompressOptions::best_effort()
            .with_sentinel(0)
            .with_decoder(crate::decode::DecoderKind::Lut);
        assert_eq!(b.mode, RecoveryMode::BestEffort);
        assert_eq!(b.sentinel, 0);
        assert_eq!(b.decoder, crate::decode::DecoderKind::Lut);
    }

    #[test]
    fn report_cleanliness() {
        let r = RecoveryReport::clean(5);
        assert!(r.is_clean());
        let d = RecoveryReport {
            total_chunks: 5,
            damaged_chunks: vec![2],
            damaged_ranges: vec![(100, 200)],
            symbols_lost: 100,
        };
        assert!(!d.is_clean());
    }

    #[test]
    fn section_display() {
        assert_eq!(Section::Payload.to_string(), "payload");
        assert_eq!(Section::ChunkTable.to_string(), "chunk table");
    }
}
