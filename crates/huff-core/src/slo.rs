//! Declarative service-level objectives and error budgets for the
//! serving engine.
//!
//! An [`Objective`] states a latency promise in the engine's **virtual
//! clock** — "99% of `decompress` requests finish under 5 modeled ms over
//! a rolling 1 s window". Because the engine is a deterministic replay
//! (all time is modeled; see [`crate::serve`]), evaluating an objective is
//! itself deterministic: two runs of the same seeded workload produce
//! byte-identical [`SloReport`]s, so SLO compliance can be asserted in CI
//! like any other regression gate.
//!
//! The error-budget arithmetic is the standard one. An objective with
//! target `t` tolerates a bad-request fraction of `1 − t` (its *budget*).
//! Over the evaluation window,
//!
//! ```text
//! burn rate = (bad / total) / (1 − t)
//! ```
//!
//! so burn 1.0 means the window spends its budget exactly, burn 2.0 means
//! the budget would be exhausted in half the window, and burn below 1.0
//! is sustainable indefinitely. A request is *good* iff it was actually
//! served (shed, failed, and deadline-missed requests are bad by
//! definition) **and** its end-to-end latency is at or under the
//! objective's threshold.
//!
//! [`evaluate`] consumes [`Sample`]s — a deliberately narrow view of a
//! completion (class, trace id, finish time, latency, served flag) so the
//! layer has no dependency on the serving types;
//! `ServeReport::slo_samples` adapts. The report renders as an aligned
//! table (`rsh slo`) or as the `rsh-slo-v1` JSON schema (FORMAT.md §11).

use serde::json::{Map, Value};

/// Version tag of the JSON schema emitted by [`SloReport::to_json`].
pub const SLO_SCHEMA: &str = "rsh-slo-v1";

/// A declarative latency objective over one request class.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Short identifier, e.g. `"decompress-p99"`.
    pub name: String,
    /// Request class this objective covers: `"compress"`,
    /// `"decompress"`, or `"decompress_range"`.
    pub class: String,
    /// Fraction of requests that must be good, e.g. `0.99`.
    pub target: f64,
    /// Latency threshold in virtual seconds; a served request at or
    /// under it is good.
    pub threshold_seconds: f64,
    /// Rolling window length in virtual seconds, anchored at the newest
    /// completion.
    pub window_seconds: f64,
}

impl Objective {
    /// A new objective. `target` must lie in `(0, 1)`.
    pub fn new(
        name: impl Into<String>,
        class: impl Into<String>,
        target: f64,
        threshold_seconds: f64,
        window_seconds: f64,
    ) -> Self {
        assert!(target > 0.0 && target < 1.0, "SLO target must be in (0, 1)");
        assert!(threshold_seconds > 0.0 && window_seconds > 0.0);
        Objective {
            name: name.into(),
            class: class.into(),
            target,
            threshold_seconds,
            window_seconds,
        }
    }

    /// The tolerated bad fraction, `1 − target`.
    pub fn budget(&self) -> f64 {
        1.0 - self.target
    }
}

/// The stock objectives `rsh slo` evaluates when none are configured:
/// p99-style promises per request class, thresholds set from the decode
/// ladder's modeled throughputs.
pub fn default_objectives() -> Vec<Objective> {
    vec![
        Objective::new("compress-99", "compress", 0.99, 20.0e-3, 1.0),
        Objective::new("decompress-99", "decompress", 0.99, 5.0e-3, 1.0),
        Objective::new("range-95", "decompress_range", 0.95, 5.0e-3, 1.0),
    ]
}

/// One completed request, reduced to what SLO evaluation needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Request class (`"compress"` | `"decompress"` | `"decompress_range"`).
    pub class: String,
    /// Owning request's trace id.
    pub trace_id: String,
    /// Completion instant, virtual seconds.
    pub finish: f64,
    /// End-to-end latency (finish − arrival), virtual seconds.
    pub latency: f64,
    /// Whether the request produced a usable response (success or
    /// degraded). Shed / failed / deadline-missed requests are unserved.
    pub served: bool,
}

/// One objective's evaluation over the rolling window.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The objective evaluated.
    pub objective: Objective,
    /// Requests of the objective's class inside the window.
    pub total: u64,
    /// Good requests: served and at or under the threshold.
    pub good: u64,
    /// `good / total` (1.0 for an empty window).
    pub compliance: f64,
    /// Error-budget burn rate over the window:
    /// `(bad / total) / (1 − target)`. 0.0 for an empty window.
    pub burn_rate: f64,
    /// Trace id and latency of the worst (slowest bad, else slowest)
    /// request in the window — the place to start reading spans.
    pub worst: Option<(String, f64)>,
}

impl SloStatus {
    /// Whether the window meets the objective (burn at most 1.0).
    pub fn met(&self) -> bool {
        self.burn_rate <= 1.0
    }

    /// Fraction of the window's error budget left, `1 − burn` (clamped
    /// at zero when overspent).
    pub fn budget_remaining(&self) -> f64 {
        (1.0 - self.burn_rate).max(0.0)
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), Value::String(self.objective.name.clone()));
        m.insert("class".into(), Value::String(self.objective.class.clone()));
        m.insert("target".into(), Value::Float(self.objective.target));
        m.insert("threshold_s".into(), Value::Float(self.objective.threshold_seconds));
        m.insert("window_s".into(), Value::Float(self.objective.window_seconds));
        m.insert("total".into(), Value::Int(i128::from(self.total)));
        m.insert("good".into(), Value::Int(i128::from(self.good)));
        m.insert("compliance".into(), Value::Float(self.compliance));
        m.insert("burn_rate".into(), Value::Float(self.burn_rate));
        m.insert("budget_remaining".into(), Value::Float(self.budget_remaining()));
        m.insert("met".into(), Value::Bool(self.met()));
        match &self.worst {
            Some((trace, lat)) => {
                m.insert("worst_trace".into(), Value::String(trace.clone()));
                m.insert("worst_latency_s".into(), Value::Float(*lat));
            }
            None => {
                m.insert("worst_trace".into(), Value::Null);
                m.insert("worst_latency_s".into(), Value::Null);
            }
        }
        Value::Object(m)
    }
}

/// Every objective's status at one evaluation instant.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Per-objective statuses, in objective order.
    pub statuses: Vec<SloStatus>,
    /// The evaluation instant: the newest completion's finish time
    /// (windows end here).
    pub now: f64,
}

impl SloReport {
    /// Whether every objective is met.
    pub fn all_met(&self) -> bool {
        self.statuses.iter().all(SloStatus::met)
    }

    /// The `rsh-slo-v1` JSON document — deterministic for a fixed seed.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), SLO_SCHEMA.into());
        m.insert("now_s".into(), Value::Float(self.now));
        m.insert(
            "objectives".into(),
            Value::Array(self.statuses.iter().map(SloStatus::to_json).collect()),
        );
        Value::Object(m)
    }

    /// Aligned human-readable table (the `rsh slo` default output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<17} {:>7} {:>9} {:>6} {:>6} {:>10} {:>7}  {}\n",
            "objective",
            "class",
            "target",
            "threshold",
            "total",
            "good",
            "compliance",
            "burn",
            "status"
        ));
        for s in &self.statuses {
            out.push_str(&format!(
                "{:<16} {:<17} {:>6.2}% {:>7.3}ms {:>6} {:>6} {:>9.3}% {:>7.2}  {}\n",
                s.objective.name,
                s.objective.class,
                s.objective.target * 100.0,
                s.objective.threshold_seconds * 1e3,
                s.total,
                s.good,
                s.compliance * 100.0,
                s.burn_rate,
                if s.met() { "ok" } else { "BURNING" },
            ));
        }
        out
    }
}

/// Evaluate `objectives` against `samples`. Each objective sees the
/// samples of its class whose finish lies in the rolling window
/// `(now − window, now]`, where `now` is the newest finish across *all*
/// samples — evaluation happens at the instant the trace ends.
pub fn evaluate(objectives: &[Objective], samples: &[Sample]) -> SloReport {
    let now = samples.iter().map(|s| s.finish).fold(0.0, f64::max);
    let statuses = objectives
        .iter()
        .map(|o| {
            let window: Vec<&Sample> = samples
                .iter()
                .filter(|s| s.class == o.class && s.finish > now - o.window_seconds)
                .collect();
            let total = window.len() as u64;
            let good =
                window.iter().filter(|s| s.served && s.latency <= o.threshold_seconds).count()
                    as u64;
            let bad = total - good;
            let compliance = if total == 0 { 1.0 } else { good as f64 / total as f64 };
            let burn_rate = if total == 0 { 0.0 } else { (bad as f64 / total as f64) / o.budget() };
            // Worst request: slowest bad one if any are bad, else slowest
            // overall. Strict > keeps the earliest on ties (determinism).
            let mut worst: Option<(String, f64)> = None;
            let mut worst_is_bad = false;
            for s in &window {
                let is_bad = !(s.served && s.latency <= o.threshold_seconds);
                let better_candidate = match &worst {
                    None => true,
                    Some((_, lat)) => {
                        (is_bad && !worst_is_bad) || (is_bad == worst_is_bad && s.latency > *lat)
                    }
                };
                if better_candidate {
                    worst = Some((s.trace_id.clone(), s.latency));
                    worst_is_bad = is_bad;
                }
            }
            SloStatus { objective: o.clone(), total, good, compliance, burn_rate, worst }
        })
        .collect();
    SloReport { statuses, now }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(class: &str, trace: &str, finish: f64, latency: f64, served: bool) -> Sample {
        Sample { class: class.into(), trace_id: trace.into(), finish, latency, served }
    }

    fn obj(target: f64, threshold: f64, window: f64) -> Objective {
        Objective::new("t", "decompress", target, threshold, window)
    }

    #[test]
    fn burn_rate_arithmetic() {
        // 100 requests, 2 bad, target 99% → budget 1% → burn 2.0.
        let mut samples = Vec::new();
        for i in 0..100 {
            let bad = i < 2;
            samples.push(sample(
                "decompress",
                &format!("t{i}"),
                0.5,
                if bad { 1.0 } else { 1e-4 },
                true,
            ));
        }
        let r = evaluate(&[obj(0.99, 5e-3, 1.0)], &samples);
        let s = &r.statuses[0];
        assert_eq!(s.total, 100);
        assert_eq!(s.good, 98);
        assert!((s.burn_rate - 2.0).abs() < 1e-9);
        assert!(!s.met());
        assert_eq!(s.budget_remaining(), 0.0);
        assert_eq!(s.worst.as_ref().unwrap().0, "t0");
    }

    #[test]
    fn unserved_requests_burn_budget_even_when_fast() {
        let samples = vec![
            sample("decompress", "ok", 0.1, 1e-4, true),
            sample("decompress", "shed", 0.1, 0.0, false),
        ];
        let r = evaluate(&[obj(0.5, 5e-3, 1.0)], &samples);
        let s = &r.statuses[0];
        assert_eq!(s.good, 1);
        assert!((s.burn_rate - 1.0).abs() < 1e-9);
        assert!(s.met(), "burn exactly 1.0 is still (barely) within budget");
        assert_eq!(s.worst.as_ref().unwrap().0, "shed", "bad beats slower-but-good");
    }

    #[test]
    fn rolling_window_drops_old_samples() {
        let samples = vec![
            sample("decompress", "old-bad", 0.1, 1.0, true), // outside window
            sample("decompress", "new-ok", 2.0, 1e-4, true),
        ];
        let r = evaluate(&[obj(0.99, 5e-3, 1.0)], &samples);
        let s = &r.statuses[0];
        assert!((r.now - 2.0).abs() < 1e-12);
        assert_eq!(s.total, 1);
        assert_eq!(s.good, 1);
        assert!(s.met());
    }

    #[test]
    fn empty_window_is_compliant_with_zero_burn() {
        let r = evaluate(&default_objectives(), &[]);
        assert!(r.all_met());
        for s in &r.statuses {
            assert_eq!(s.total, 0);
            assert_eq!(s.compliance, 1.0);
            assert_eq!(s.burn_rate, 0.0);
            assert!(s.worst.is_none());
        }
    }

    #[test]
    fn classes_are_independent() {
        let samples = vec![
            sample("compress", "c0", 0.5, 1.0, true), // terrible compress
            sample("decompress", "d0", 0.5, 1e-4, true), // fine decompress
        ];
        let objs = vec![
            Objective::new("c", "compress", 0.99, 5e-3, 1.0),
            Objective::new("d", "decompress", 0.99, 5e-3, 1.0),
        ];
        let r = evaluate(&objs, &samples);
        assert!(!r.statuses[0].met());
        assert!(r.statuses[1].met());
        assert!(!r.all_met());
    }

    #[test]
    fn report_renders_table_and_json() {
        let samples = vec![sample("decompress", "d0", 0.5, 1e-4, true)];
        let r = evaluate(&default_objectives(), &samples);
        let t = r.render_table();
        assert!(t.contains("objective"));
        assert!(t.contains("decompress-99"));
        assert!(t.contains("ok"));
        let j = r.to_json().to_string();
        assert!(j.starts_with("{\"schema\":\"rsh-slo-v1\""));
        serde::json::Value::parse(&j).unwrap();
        // Determinism: rendering twice is byte-identical.
        assert_eq!(j, r.to_json().to_string());
    }
}
