//! Parallel per-chunk decoder for [`ChunkedStream`]s.
//!
//! Chunking exists exactly to "facilitate the reverse process, decoding"
//! (Section III-A): every chunk's bit offset is known from the prefix sum,
//! so chunks decode independently in parallel. Breaking units are spliced
//! back from the sparse sidecar at unit boundaries — a breaking unit
//! contributed zero bits to the chunk payload, and its raw symbols replace
//! the decode at that position.

use crate::bitstream::BitReader;
use crate::codebook::CanonicalCodebook;
use crate::encode::ChunkedStream;
use crate::error::Result;
use rayon::prelude::*;

/// Decode a chunked stream back to symbols.
pub fn decode(stream: &ChunkedStream, book: &CanonicalCodebook) -> Result<Vec<u16>> {
    let chunk_syms = stream.config.chunk_symbols();
    let unit_syms = stream.config.unit_symbols();
    let units_per_chunk = stream.config.units_per_chunk() as u64;

    let parts: Vec<Result<Vec<u16>>> = (0..stream.num_chunks())
        .into_par_iter()
        .map(|ci| {
            let sym_base = ci * chunk_syms;
            let sym_count = chunk_syms.min(stream.num_symbols - sym_base);
            let mut reader = BitReader::new(&stream.bytes, stream.total_bits);
            reader.skip(stream.chunk_bit_offsets[ci])?;

            let mut out = Vec::with_capacity(sym_count);
            let n_units = sym_count.div_ceil(unit_syms.max(1));
            for u in 0..n_units {
                let global_unit = ci as u64 * units_per_chunk + u as u64;
                let in_unit = unit_syms.min(sym_count - u * unit_syms);
                if let Some(raw) = stream.outliers.lookup(global_unit) {
                    out.extend_from_slice(raw);
                } else {
                    for _ in 0..in_unit {
                        out.push(book.decode_symbol(|| reader.read_bit())?);
                    }
                }
            }
            Ok(out)
        })
        .collect();

    let mut out = Vec::with_capacity(stream.num_symbols);
    for p in parts {
        out.extend_from_slice(&p?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::encode::{reduce_shuffle, BreakingStrategy, MergeConfig};

    #[test]
    fn parallel_chunk_decode_matches_input() {
        let freqs = [97u64, 53, 31, 17, 11, 7, 5, 3];
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> =
            (0..20_000).map(|i| ((i as u64).wrapping_mul(48271) >> 7) as u16 % 8).collect();
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(9, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(decode(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn corrupt_offsets_detected() {
        let book = codebook::parallel(&[3, 1], 2).unwrap();
        let syms = vec![0u16, 1, 0, 0];
        let mut stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(2, 1),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        // Corrupt: point the first chunk past the end.
        if let Some(o) = stream.chunk_bit_offsets.first_mut() {
            *o = stream.total_bits + 100;
        }
        assert!(decode(&stream, &book).is_err());
    }
}
