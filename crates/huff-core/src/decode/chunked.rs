//! Parallel per-chunk decoder for [`ChunkedStream`]s.
//!
//! Chunking exists exactly to "facilitate the reverse process, decoding"
//! (Section III-A): every chunk's bit offset is known from the prefix sum,
//! so chunks decode independently in parallel. Breaking units are spliced
//! back from the sparse sidecar at unit boundaries — a breaking unit
//! contributed zero bits to the chunk payload, and its raw symbols replace
//! the decode at that position.
//!
//! Chunk independence is also what makes *recovery* possible: when a
//! chunk's payload bytes are damaged (see [`crate::integrity`]), every
//! other chunk still decodes from its own offset.
//! [`decode_best_effort`] exploits this — damaged chunks are
//! sentinel-filled (except their breaking units, whose raw symbols live
//! in the header sidecar and survive payload damage) while intact chunks
//! decode normally.

use crate::bitstream::BitReader;
use crate::codebook::CanonicalCodebook;
use crate::encode::ChunkedStream;
use crate::error::{HuffError, Result};
use crate::integrity::RecoveryReport;
use rayon::prelude::*;

/// Decode chunk `ci` of `stream` to symbols.
pub(crate) fn decode_chunk(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    ci: usize,
) -> Result<Vec<u16>> {
    let chunk_syms = stream.config.chunk_symbols();
    let unit_syms = stream.config.unit_symbols().max(1);
    let units_per_chunk = stream.config.units_per_chunk() as u64;

    let sym_base = ci * chunk_syms;
    let sym_count = chunk_syms.min(stream.num_symbols.saturating_sub(sym_base));
    let mut reader = BitReader::new(&stream.bytes, stream.total_bits);
    reader.skip(stream.chunk_bit_offsets[ci])?;

    let mut out = Vec::with_capacity(sym_count);
    let n_units = sym_count.div_ceil(unit_syms);
    for u in 0..n_units {
        let global_unit = ci as u64 * units_per_chunk + u as u64;
        let in_unit = unit_syms.min(sym_count - u * unit_syms);
        if let Some(raw) = stream.outliers.lookup(global_unit) {
            if raw.len() != in_unit {
                return Err(HuffError::CorruptStream("outlier unit length mismatch"));
            }
            out.extend_from_slice(raw);
        } else {
            for _ in 0..in_unit {
                out.push(book.decode_symbol(|| reader.read_bit())?);
            }
        }
    }
    Ok(out)
}

/// Decode a chunked stream back to symbols.
pub fn decode(stream: &ChunkedStream, book: &CanonicalCodebook) -> Result<Vec<u16>> {
    let parts: Vec<Result<Vec<u16>>> =
        (0..stream.num_chunks()).into_par_iter().map(|ci| decode_chunk(stream, book, ci)).collect();

    let mut out = Vec::with_capacity(stream.num_symbols);
    for p in parts {
        out.extend_from_slice(&p?);
    }
    if out.len() != stream.num_symbols {
        return Err(HuffError::CorruptStream("decoded count disagrees with header"));
    }
    Ok(out)
}

/// Decode a chunked stream on a single thread, chunk by chunk — the
/// bit-serial baseline the paper's decoders are measured against. Output
/// is bit-exact with [`decode`] (and with [`crate::decode::lut::decode`]).
pub fn decode_serial(stream: &ChunkedStream, book: &CanonicalCodebook) -> Result<Vec<u16>> {
    let mut out = Vec::with_capacity(stream.num_symbols);
    for ci in 0..stream.num_chunks() {
        out.extend_from_slice(&decode_chunk(stream, book, ci)?);
    }
    if out.len() != stream.num_symbols {
        return Err(HuffError::CorruptStream("decoded count disagrees with header"));
    }
    Ok(out)
}

/// (symbols, chunk-local lost ranges, was_damaged) per chunk.
pub(crate) type ChunkPart = (Vec<u16>, Vec<(usize, usize)>, bool);

/// The best-effort skeleton shared by every decoder backend: decode each
/// chunk with `decode_one` unless it is marked damaged (or its decode
/// fails), sentinel-filling what is lost, then stitch the parts and the
/// damage report together. `parallel` selects rayon fan-out vs. a
/// single-thread loop (the `serial` decoder).
pub(crate) fn decode_best_effort_with<F>(
    stream: &ChunkedStream,
    damaged: &[bool],
    sentinel: u16,
    parallel: bool,
    decode_one: F,
) -> (Vec<u16>, RecoveryReport)
where
    F: Fn(usize) -> Result<Vec<u16>> + Sync,
{
    let n_chunks = stream.num_chunks();
    let decode_part = |ci: usize| -> ChunkPart {
        let marked = damaged.get(ci).copied().unwrap_or(false);
        if !marked {
            if let Ok(syms) = decode_one(ci) {
                return (syms, Vec::new(), false);
            }
        }
        let (syms, lost) = fill_damaged_chunk(stream, ci, sentinel);
        (syms, lost, true)
    };
    let parts: Vec<ChunkPart> = if parallel {
        (0..n_chunks).into_par_iter().map(decode_part).collect()
    } else {
        (0..n_chunks).map(decode_part).collect()
    };

    let chunk_syms = stream.config.chunk_symbols();
    let mut symbols = Vec::with_capacity(stream.num_symbols);
    let mut report = RecoveryReport::clean(n_chunks);
    for (ci, (part, lost, was_damaged)) in parts.into_iter().enumerate() {
        let base = ci * chunk_syms;
        if was_damaged {
            report.damaged_chunks.push(ci);
            for (s, e) in lost {
                report.symbols_lost += e - s;
                // Merge across chunk boundaries when runs are adjacent.
                match report.damaged_ranges.last_mut() {
                    Some(last) if last.1 == base + s => last.1 = base + e,
                    _ => report.damaged_ranges.push((base + s, base + e)),
                }
            }
        }
        symbols.extend_from_slice(&part);
    }
    (symbols, report)
}

/// The sentinel fill for one damaged chunk: breaking units come back
/// exactly from the sidecar, everything else becomes `sentinel`. Returns
/// the chunk's symbols plus the `[start, end)` *chunk-local* ranges that
/// were sentinel-filled.
pub(crate) fn fill_damaged_chunk(
    stream: &ChunkedStream,
    ci: usize,
    sentinel: u16,
) -> (Vec<u16>, Vec<(usize, usize)>) {
    let chunk_syms = stream.config.chunk_symbols();
    let unit_syms = stream.config.unit_symbols().max(1);
    let units_per_chunk = stream.config.units_per_chunk() as u64;
    let sym_base = ci * chunk_syms;
    let sym_count = chunk_syms.min(stream.num_symbols.saturating_sub(sym_base));

    let mut out = Vec::with_capacity(sym_count);
    let mut lost: Vec<(usize, usize)> = Vec::new();
    let n_units = sym_count.div_ceil(unit_syms);
    for u in 0..n_units {
        let global_unit = ci as u64 * units_per_chunk + u as u64;
        let in_unit = unit_syms.min(sym_count - u * unit_syms);
        match stream.outliers.lookup(global_unit) {
            Some(raw) if raw.len() == in_unit => out.extend_from_slice(raw),
            _ => {
                let start = out.len();
                out.resize(out.len() + in_unit, sentinel);
                // Merge with the previous run when adjacent.
                match lost.last_mut() {
                    Some(last) if last.1 == start => last.1 = start + in_unit,
                    _ => lost.push((start, start + in_unit)),
                }
            }
        }
    }
    (out, lost)
}

/// Decode every chunk not marked in `damaged` (and every marked chunk's
/// breaking units, which live in the header sidecar); sentinel-fill the
/// rest. Chunks whose decode fails despite a clean checksum — possible
/// under [`crate::integrity::Verify::None`] — are sentinel-filled too.
/// Never panics and never returns an error: the report says what was
/// lost.
pub fn decode_best_effort(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    damaged: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport) {
    decode_best_effort_with(stream, damaged, sentinel, true, |ci| decode_chunk(stream, book, ci))
}

/// Single-thread variant of [`decode_best_effort`]: same output, same
/// report, no rayon fan-out.
pub fn decode_serial_best_effort(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    damaged: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport) {
    decode_best_effort_with(stream, damaged, sentinel, false, |ci| decode_chunk(stream, book, ci))
}

/// The report [`decode_best_effort`] *would* produce for `damaged`,
/// without decoding anything — used by archive verification.
pub fn damage_report(stream: &ChunkedStream, damaged: &[bool]) -> RecoveryReport {
    let chunk_syms = stream.config.chunk_symbols();
    let mut report = RecoveryReport::clean(stream.num_chunks());
    for ci in 0..stream.num_chunks() {
        if !damaged.get(ci).copied().unwrap_or(false) {
            continue;
        }
        report.damaged_chunks.push(ci);
        let (_, lost) = fill_damaged_chunk(stream, ci, 0);
        let base = ci * chunk_syms;
        for (s, e) in lost {
            report.symbols_lost += e - s;
            match report.damaged_ranges.last_mut() {
                Some(last) if last.1 == base + s => last.1 = base + e,
                _ => report.damaged_ranges.push((base + s, base + e)),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::encode::{reduce_shuffle, BreakingStrategy, MergeConfig};

    fn stream_and_book(n: usize) -> (ChunkedStream, CanonicalCodebook, Vec<u16>) {
        let freqs = [97u64, 53, 31, 17, 11, 7, 5, 3];
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> =
            (0..n).map(|i| ((i as u64).wrapping_mul(48271) >> 7) as u16 % 8).collect();
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(9, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        (stream, book, syms)
    }

    #[test]
    fn parallel_chunk_decode_matches_input() {
        let (stream, book, syms) = stream_and_book(20_000);
        assert_eq!(decode(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn corrupt_offsets_detected() {
        let book = codebook::parallel(&[3, 1], 2).unwrap();
        let syms = vec![0u16, 1, 0, 0];
        let mut stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(2, 1),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        // Corrupt: point the first chunk past the end.
        if let Some(o) = stream.chunk_bit_offsets.first_mut() {
            *o = stream.total_bits + 100;
        }
        assert!(decode(&stream, &book).is_err());
    }

    #[test]
    fn best_effort_with_no_damage_matches_strict() {
        let (stream, book, syms) = stream_and_book(20_000);
        let damaged = vec![false; stream.num_chunks()];
        let (out, report) = decode_best_effort(&stream, &book, &damaged, u16::MAX);
        assert_eq!(out, syms);
        assert!(report.is_clean());
    }

    #[test]
    fn best_effort_sentinel_fills_marked_chunks() {
        let (stream, book, syms) = stream_and_book(20_000);
        let n = stream.num_chunks();
        assert!(n >= 3, "need several chunks, got {n}");
        let mut damaged = vec![false; n];
        damaged[1] = true;
        let (out, report) = decode_best_effort(&stream, &book, &damaged, 0xDEAD);
        assert_eq!(out.len(), syms.len());
        assert_eq!(report.damaged_chunks, vec![1]);
        assert!(report.symbols_lost > 0);
        let chunk_syms = stream.config.chunk_symbols();
        for i in 0..syms.len() {
            let in_damaged_range = report.damaged_ranges.iter().any(|&(s, e)| i >= s && i < e);
            if in_damaged_range {
                assert_eq!(out[i], 0xDEAD);
                assert!(i >= chunk_syms && i < 2 * chunk_syms);
            } else {
                assert_eq!(out[i], syms[i], "index {i}");
            }
        }
    }

    #[test]
    fn best_effort_catches_decode_failure_without_damage_flag() {
        let (mut stream, book, syms) = stream_and_book(10_000);
        // Break the last chunk's offset so its decode fails even though
        // no checksum flagged it.
        let n = stream.num_chunks();
        *stream.chunk_bit_offsets.last_mut().unwrap() = stream.total_bits + 9;
        let damaged = vec![false; n];
        let (out, report) = decode_best_effort(&stream, &book, &damaged, u16::MAX);
        assert_eq!(out.len(), syms.len());
        assert_eq!(report.damaged_chunks, vec![n - 1]);
    }

    #[test]
    fn serial_decode_matches_parallel() {
        let (stream, book, syms) = stream_and_book(20_000);
        assert_eq!(decode_serial(&stream, &book).unwrap(), syms);
        let damaged = vec![false; stream.num_chunks()];
        let par = decode_best_effort(&stream, &book, &damaged, 0xBEEF);
        let ser = decode_serial_best_effort(&stream, &book, &damaged, 0xBEEF);
        assert_eq!(par, ser);
    }

    #[test]
    fn single_nonzero_symbol_stream_decodes() {
        // Zero-entropy input: one coded symbol, 1-bit codes everywhere.
        let book = codebook::parallel(&[0, 9, 0], 2).unwrap();
        let syms = vec![1u16; 5_000];
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(8, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(decode(&stream, &book).unwrap(), syms);
        assert_eq!(decode_serial(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn header_count_exceeding_encoded_symbols_errors() {
        // A corrupt header claiming more symbols than the payload encodes
        // must surface a structured error from every strict path, and
        // never panic or loop.
        let (mut stream, book, syms) = stream_and_book(4_000);
        stream.num_symbols = syms.len() + stream.config.chunk_symbols();
        stream.chunk_bit_lens.push(0);
        stream.chunk_bit_offsets.push(stream.total_bits);
        assert!(matches!(decode(&stream, &book), Err(HuffError::CorruptStream(_))));
        assert!(matches!(decode_serial(&stream, &book), Err(HuffError::CorruptStream(_))));
    }

    #[test]
    fn damage_report_matches_best_effort_report() {
        let (stream, book, _) = stream_and_book(30_000);
        let mut damaged = vec![false; stream.num_chunks()];
        damaged[0] = true;
        if stream.num_chunks() > 2 {
            damaged[2] = true;
        }
        let (_, live) = decode_best_effort(&stream, &book, &damaged, 0);
        let dry = damage_report(&stream, &damaged);
        assert_eq!(live, dry);
    }
}
