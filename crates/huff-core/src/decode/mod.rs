//! Decoding.
//!
//! The paper focuses on encoding; decoding is implemented for completeness
//! and verification:
//! * [`canonical`] — treeless canonical decoding with the `First`/`Entry`
//!   metadata (the reason the codebook is canonized, Section IV-B2);
//! * [`tree`] — Huffman-tree-walking reference decoder;
//! * [`chunked`] — parallel per-chunk decoding of
//!   [`ChunkedStream`](crate::encode::ChunkedStream)s with breaking-unit
//!   splicing;
//! * [`gpu`] — the chunked decoder as a device kernel with modeled time.

pub mod canonical;
pub mod chunked;
pub mod gpu;
pub mod tree;
