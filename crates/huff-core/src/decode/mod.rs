//! Decoding.
//!
//! The paper focuses on encoding; decoding gets the same treatment from
//! the companion paper (Rivera et al. 2022), reproduced here:
//! * [`canonical`] — treeless canonical decoding with the `First`/`Entry`
//!   metadata (the reason the codebook is canonized, Section IV-B2);
//! * [`tree`] — Huffman-tree-walking reference decoder;
//! * [`chunked`] — parallel per-chunk decoding of
//!   [`ChunkedStream`]s with breaking-unit
//!   splicing (plus the single-thread `serial` baseline);
//! * [`lut`] — the second-generation decoder: multi-bit LUT probes plus
//!   subchunk gap-array self-synchronization;
//! * [`gpu`] — the decoders as device kernels with modeled time.
//!
//! All backends are bit-exact with each other; [`DecoderKind`] selects
//! one, and [`decode_stream`] / [`decode_stream_best_effort`] dispatch.

pub mod canonical;
pub mod chunked;
pub mod gpu;
pub mod lut;
pub mod tree;

use crate::codebook::CanonicalCodebook;
use crate::encode::ChunkedStream;
use crate::error::{HuffError, Result};
use crate::integrity::RecoveryReport;

/// Which decoder backend to run. Every backend produces bit-identical
/// output; they differ in parallelism and modeled device cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecoderKind {
    /// Single-thread bit-serial decode, chunk by chunk — the baseline.
    Serial,
    /// One worker per chunk, bit-serial within the chunk (the original
    /// kernel shape).
    #[default]
    Chunked,
    /// Multi-bit LUT probes plus subchunk gap-array self-synchronization
    /// within each chunk ([`lut`]).
    Lut,
}

impl DecoderKind {
    /// Parse a CLI-style name (`serial`, `chunked`, `lut`).
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "serial" => Ok(DecoderKind::Serial),
            "chunked" => Ok(DecoderKind::Chunked),
            "lut" => Ok(DecoderKind::Lut),
            _ => Err(HuffError::BadArchive(format!(
                "unknown decoder '{name}' (expected serial, chunked or lut)"
            ))),
        }
    }

    /// The CLI-style name.
    pub fn name(self) -> &'static str {
        match self {
            DecoderKind::Serial => "serial",
            DecoderKind::Chunked => "chunked",
            DecoderKind::Lut => "lut",
        }
    }
}

/// Strict decode of a chunked stream with the selected backend.
pub fn decode_stream(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    decoder: DecoderKind,
) -> Result<Vec<u16>> {
    crate::metrics::registry::global().record_decode_backend(decoder.name());
    // The empty stream decodes to nothing on every backend — and is the
    // only stream an empty codebook (empty-input archive) can carry.
    if stream.num_symbols == 0 && stream.num_chunks() == 0 {
        return Ok(Vec::new());
    }
    match decoder {
        DecoderKind::Serial => chunked::decode_serial(stream, book),
        DecoderKind::Chunked => chunked::decode(stream, book),
        DecoderKind::Lut => lut::decode(stream, book),
    }
}

/// Best-effort decode of a chunked stream with the selected backend. The
/// recovery contract (sentinel fill, report) is backend-independent.
pub fn decode_stream_best_effort(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    damaged: &[bool],
    sentinel: u16,
    decoder: DecoderKind,
) -> (Vec<u16>, RecoveryReport) {
    crate::metrics::registry::global().record_decode_backend(decoder.name());
    if stream.num_symbols == 0 && stream.num_chunks() == 0 {
        return (Vec::new(), RecoveryReport::clean(0));
    }
    match decoder {
        DecoderKind::Serial => chunked::decode_serial_best_effort(stream, book, damaged, sentinel),
        DecoderKind::Chunked => chunked::decode_best_effort(stream, book, damaged, sentinel),
        DecoderKind::Lut => lut::decode_best_effort(stream, book, damaged, sentinel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_kind_parse_roundtrip() {
        for kind in [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut] {
            assert_eq!(DecoderKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(DecoderKind::parse("warp").is_err());
        assert_eq!(DecoderKind::default(), DecoderKind::Chunked);
    }
}
