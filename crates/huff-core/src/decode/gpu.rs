//! Chunked canonical decoding on the simulated device.
//!
//! The paper's encoder chunks data partly "because it will facilitate the
//! reverse process, decoding" (Section III-A), and canonizes the codebook
//! so decoding needs no tree — just the `First`/`Entry` arrays and the
//! reverse codebook, small enough to cache on-chip (Section IV-B2). Three
//! kernel families realize that, one per [`DecoderKind`]:
//!
//! * `dec_serial` — the whole stream on one thread (the cuSZ-era
//!   baseline); a latency chain the model charges per dependent probe.
//! * `dec_chunked_*` — one block per chunk, decode tables staged in
//!   shared memory, each block walking its substream bit-serially.
//! * `dec_subchunk_sync` + `dec_lut_gap*` — the second-generation decoder
//!   (Rivera et al. 2022, see [`super::lut`]): a sync kernel walks
//!   codeword lengths to find each subsequence's first boundary (gap
//!   array), then the decode kernel probes a shared-memory LUT once per
//!   symbol instead of once per bit.
//!
//! Bit-serial decoding is compute-bound per symbol (a dependent chain of
//! bit reads and boundary compares), so its modeled time scales with
//! *total payload bits*; the LUT decoder's scales with *symbols*, which is
//! where the modeled crossover comes from (DESIGN.md § "Sync-pass cost
//! model"): above ~3 payload bits per symbol the LUT pipeline wins, below
//! that both kernels sit on the DRAM roofline and the sync pass is pure
//! overhead.

use super::chunked;
use super::lut::{self, DecodeLut, GapStats, SubchunkConfig};
use super::DecoderKind;
use crate::codebook::CanonicalCodebook;
use crate::encode::ChunkedStream;
use crate::error::Result;
use crate::integrity::{DecompressOptions, RangeDecode, RecoveryMode, RecoveryReport};
use gpu_sim::{Access, Gpu, GridDim, KernelScope};

/// Hard grid-size cap: chunks beyond this many blocks are handled by a
/// block-level loop (grid-stride over chunks), which the traffic model
/// must charge for.
const MAX_BLOCKS: u64 = 1 << 20;

/// One decode launch's geometry: the clamped grid plus the block-loop
/// residency the clamp implies. Grid and traffic/cost attribution both
/// derive from this helper so they can never disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DecodeLaunch {
    /// Chunks the stream actually holds (at least 1).
    n_chunks: u64,
    /// Grid blocks after the clamp.
    blocks: u64,
    /// Chunks each block loops over (1 until the clamp engages).
    chunks_per_block: u64,
}

impl DecodeLaunch {
    fn grid(&self) -> GridDim {
        GridDim::new(self.blocks as u32, 256)
    }

    /// Scalar-op overhead of the block loop: iterations beyond the first
    /// pay loop bookkeeping (index math, bounds check, table re-base).
    fn loop_ops(&self) -> u64 {
        8 * (self.n_chunks - self.blocks)
    }
}

fn decode_launch(stream: &ChunkedStream) -> DecodeLaunch {
    let n_chunks = stream.num_chunks().max(1) as u64;
    let blocks = n_chunks.min(MAX_BLOCKS);
    DecodeLaunch { n_chunks, blocks, chunks_per_block: n_chunks.div_ceil(blocks) }
}

/// The shared traffic model of the bit-serial chunked decode kernel
/// (strict and best-effort variants launch the same kernel shape).
fn account_decode_traffic(scope: &mut KernelScope, stream: &ChunkedStream, table_bytes: u64) {
    let launch = decode_launch(stream);
    let n = stream.num_symbols as u64;
    let payload_bytes = stream.total_bits.div_ceil(8);
    let resident = launch.blocks.min(u64::from(scope.spec().sm_count) * 4);
    let t = scope.traffic();
    // Each chunk streams its payload once; substreams are contiguous so
    // reads coalesce across the block's threads.
    t.read(Access::Coalesced, payload_bytes, 1);
    // Chunk offsets + bit lengths.
    t.read(Access::Coalesced, 2 * launch.n_chunks, 8);
    // Decode tables staged per resident block, reused from L2 after.
    t.read(Access::Coalesced, resident * table_bytes, 1);
    // Per-symbol on-chip table probes (~avg-code-length lookups each).
    let avg_probes = stream.total_bits.checked_div(n).map_or(1, |p| p.clamp(1, 64));
    t.shared(n * avg_probes * 4);
    // Symbol output, coalesced.
    t.write(Access::Coalesced, n, 2);
    // Bit-serial decode: ~6 ops per consumed bit (3 to extract the bit
    // and accumulate the code value, 3 for the First/Count boundary
    // compares), divergent across the warp (symbols end at different bit
    // positions).
    t.ops(6 * stream.total_bits + launch.loop_ops());
    t.diverge(2.0);
}

fn decode_table_bytes(book: &CanonicalCodebook) -> u64 {
    (book.reverse().len() * 2 + book.first().len() * 8 + book.entry().len() * 4) as u64
}

/// Decode a chunked stream on the device with the bit-serial per-chunk
/// kernel. Returns the symbols and the modeled kernel time in seconds.
pub fn decode_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
) -> Result<(Vec<u16>, f64)> {
    let table_bytes = decode_table_bytes(book);
    let grid = decode_launch(stream).grid();
    let (out, cost) = gpu.launch_timed("dec_chunked_canonical", grid, |scope| {
        let out = chunked::decode(stream, book);
        account_decode_traffic(scope, stream, table_bytes);
        out
    });
    Ok((out?, cost.total))
}

/// Best-effort decode of a (possibly damaged) chunked stream on the
/// device: chunks flagged in `chunk_damage` are sentinel-filled instead of
/// decoded (see [`chunked::decode_best_effort`]). Returns the symbols, the
/// recovery report, and the modeled kernel time in seconds.
///
/// The traffic model is identical to [`decode_on_gpu`] — a damaged chunk
/// still costs its payload read (the checksum pass touched it) and its
/// sentinel writes, and damage is rare enough that modeling the skipped
/// table probes would be noise.
pub fn decode_best_effort_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    chunk_damage: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport, f64) {
    let table_bytes = decode_table_bytes(book);
    let grid = decode_launch(stream).grid();
    let ((symbols, report), cost) = gpu.launch_timed("dec_chunked_best_effort", grid, |scope| {
        let out = chunked::decode_best_effort(stream, book, chunk_damage, sentinel);
        account_decode_traffic(scope, stream, table_bytes);
        out
    });
    (symbols, report, cost.total)
}

/// The serial baseline's traffic: one thread owns the whole stream, so
/// every table probe is a dependent access in a single latency chain —
/// the Section II-C argument for why serial algorithms collapse on GPUs.
fn account_serial_traffic(scope: &mut KernelScope, stream: &ChunkedStream, table_bytes: u64) {
    let n = stream.num_symbols as u64;
    let t = scope.traffic();
    t.read(Access::Coalesced, stream.total_bits.div_ceil(8), 1);
    t.read(Access::Coalesced, table_bytes, 1);
    // One dependent probe chain per symbol.
    t.sequential(n);
    t.ops(6 * stream.total_bits);
    t.write(Access::Coalesced, n, 2);
}

/// Decode the whole stream on a single device thread (`dec_serial`): the
/// baseline the paper's parallel decoders are measured against. Returns
/// the symbols and the modeled kernel time in seconds.
pub fn decode_serial_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
) -> Result<(Vec<u16>, f64)> {
    let table_bytes = decode_table_bytes(book);
    let (out, cost) = gpu.launch_timed("dec_serial", GridDim::new(1, 1), |scope| {
        let out = chunked::decode_serial(stream, book);
        account_serial_traffic(scope, stream, table_bytes);
        out
    });
    Ok((out?, cost.total))
}

/// Best-effort variant of [`decode_serial_on_gpu`] (same kernel shape).
pub fn decode_serial_best_effort_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    chunk_damage: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport, f64) {
    let table_bytes = decode_table_bytes(book);
    let ((symbols, report), cost) =
        gpu.launch_timed("dec_serial_best_effort", GridDim::new(1, 1), |scope| {
            let out = chunked::decode_serial_best_effort(stream, book, chunk_damage, sentinel);
            account_serial_traffic(scope, stream, table_bytes);
            out
        });
    (symbols, report, cost.total)
}

/// The sync kernel's traffic: one walker per subsequence, each starting at
/// its own bit offset (divergent strided reads), stepping codeword lengths
/// through shared-memory LUT probes until its gap settles.
fn account_sync_traffic(
    scope: &mut KernelScope,
    stream: &ChunkedStream,
    stats: &GapStats,
    cfg: SubchunkConfig,
    lut: &DecodeLut,
) {
    let launch = decode_launch(stream);
    let resident = launch.blocks.min(u64::from(scope.spec().sm_count) * 4);
    // A subsequence window spans this many 32-byte sectors.
    let sectors_per_sub = cfg.width_bits.max(1).div_ceil(256);
    let t = scope.traffic();
    // Chunk offsets + bit lengths locate the subsequences.
    t.read(Access::Coalesced, 2 * launch.n_chunks, 8);
    // Each walker lands mid-payload at its own offset: one transaction
    // per subsequence sector, not coalescible across the warp.
    t.read(Access::Strided, stats.subsequences * sectors_per_sub, 32);
    // The LUT staged into shared memory per resident block.
    t.read(Access::Coalesced, resident * lut.table_bytes(), 1);
    // One shared LUT probe per codeword-length step.
    t.shared(stats.sync_steps * 4);
    // The gap array, written once per subsequence.
    t.write(Access::Coalesced, stats.subsequences, 8);
    // ~5 ops per step: window extract, probe, length accumulate, boundary
    // compare, loop. Per-pass barrier bookkeeping per block; stragglers
    // in the convergence loop diverge.
    t.ops(5 * stats.sync_steps + 8 * stats.max_sync_passes * launch.blocks + launch.loop_ops());
    t.diverge(2.0);
}

/// The LUT decode kernel's traffic: everything coalesced — payload and
/// gap array stream in, one shared-memory LUT probe per *symbol* (not per
/// bit), symbols stream out.
fn account_lut_traffic(
    scope: &mut KernelScope,
    stream: &ChunkedStream,
    stats: &GapStats,
    lut: &DecodeLut,
) {
    let launch = decode_launch(stream);
    let n = stream.num_symbols as u64;
    let resident = launch.blocks.min(u64::from(scope.spec().sm_count) * 4);
    let t = scope.traffic();
    t.read(Access::Coalesced, stream.total_bits.div_ceil(8), 1);
    t.read(Access::Coalesced, 2 * launch.n_chunks, 8);
    // The gap array computed by the sync kernel, read back coalesced.
    t.read(Access::Coalesced, stats.subsequences * 8, 1);
    t.read(Access::Coalesced, resident * lut.table_bytes(), 1);
    // One shared LUT probe per decoded symbol — the whole point.
    t.shared(stats.decoded_symbols * 4);
    t.write(Access::Coalesced, n, 2);
    // ~8 ops per symbol: window refill/shift, probe, unpack, advance.
    // Mild divergence from subsequence tails and slow-path fall-backs.
    t.ops(8 * stats.decoded_symbols + launch.loop_ops());
    t.diverge(1.2);
}

/// Decode with the LUT + gap-array pipeline: a `dec_subchunk_sync` launch
/// (self-synchronization pass) followed by `dec_lut_gap` (decode +
/// compaction). Returns the symbols and the summed modeled kernel time.
pub fn decode_lut_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
) -> Result<(Vec<u16>, f64)> {
    let table = DecodeLut::build(book, lut::DEFAULT_LUT_BITS);
    let cfg = SubchunkConfig::default();
    let grid = decode_launch(stream).grid();

    let ((result, stats), sync_cost) = gpu.launch_timed("dec_subchunk_sync", grid, |scope| {
        // The host decode runs once here; the sync kernel is charged from
        // the measured gap-array work counters.
        let (result, stats) = match lut::decode_with(stream, book, &table, cfg) {
            Ok((symbols, stats)) => (Ok(symbols), stats),
            Err(e) => (Err(e), GapStats::estimate(stream, cfg)),
        };
        account_sync_traffic(scope, stream, &stats, cfg, &table);
        (result, stats)
    });
    let (result, dec_cost) = gpu.launch_timed("dec_lut_gap", grid, |scope| {
        account_lut_traffic(scope, stream, &stats, &table);
        result
    });
    Ok((result?, sync_cost.total + dec_cost.total))
}

/// Best-effort variant of [`decode_lut_on_gpu`]: same two-kernel shape,
/// with the gap-array work counters estimated analytically (damaged
/// chunks skip decoding, but the model keeps the undamaged-shape cost —
/// same convention as the bit-serial kernels).
pub fn decode_lut_best_effort_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    chunk_damage: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport, f64) {
    let table = DecodeLut::build(book, lut::DEFAULT_LUT_BITS);
    let cfg = SubchunkConfig::default();
    let grid = decode_launch(stream).grid();
    let stats = GapStats::estimate(stream, cfg);

    let ((symbols, report), sync_cost) = gpu.launch_timed("dec_subchunk_sync", grid, |scope| {
        let out = lut::decode_best_effort_with(stream, book, &table, cfg, chunk_damage, sentinel);
        account_sync_traffic(scope, stream, &stats, cfg, &table);
        out
    });
    let (_, dec_cost) = gpu.launch_timed("dec_lut_gap_best_effort", grid, |scope| {
        account_lut_traffic(scope, stream, &stats, &table);
    });
    (symbols, report, sync_cost.total + dec_cost.total)
}

/// Strict decode with the backend selected by `kind`. Returns the symbols
/// and the modeled kernel time in seconds.
pub fn decode_kind_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    kind: DecoderKind,
) -> Result<(Vec<u16>, f64)> {
    crate::metrics::registry::global().record_decode_backend(kind.name());
    match kind {
        DecoderKind::Serial => decode_serial_on_gpu(gpu, stream, book),
        DecoderKind::Chunked => decode_on_gpu(gpu, stream, book),
        DecoderKind::Lut => decode_lut_on_gpu(gpu, stream, book),
    }
}

/// Locate and decode only the chunks covering `range` on the modeled
/// device.
///
/// A `dec_seek_probe` launch first charges the u64-word probes spent
/// locating the covering chunks — seek-index rank/select lookups when the
/// archive carries a valid [`crate::seek::ChunkIndex`] trailer, a
/// chunk-table prefix scan otherwise — to the traffic ledger's
/// index-probe term. The selected backend then decodes the rebased
/// window stream, so the kernel trace *proves* the decode touched only
/// the window: its payload traffic scales with the window's bits, not
/// the archive's. Returns the range decode plus the summed modeled
/// kernel seconds.
pub fn decode_range_on_gpu(
    gpu: &Gpu,
    archive_bytes: &[u8],
    range: std::ops::Range<u64>,
    opts: &DecompressOptions,
    kind: DecoderKind,
) -> Result<(RangeDecode, f64)> {
    let w = crate::archive::range_window(archive_bytes, range, opts)?;
    let (_, probe_cost) = gpu.launch_timed("dec_seek_probe", GridDim::new(1, 32), |scope| {
        let t = scope.traffic();
        t.index_probe(w.index_probes);
        // ~4 ops per probe: sample/word index math, popcount rank, the
        // select bit walk, and the low-bits splice.
        t.ops(4 * w.index_probes);
    });
    let (r, decode_secs) = if w.stream.num_symbols == 0 && w.stream.num_chunks() == 0 {
        // Empty window (empty range or empty archive): nothing to launch.
        (w.finish(&[], RecoveryReport::clean(0)), 0.0)
    } else {
        match opts.mode {
            RecoveryMode::Strict => {
                let (symbols, secs) = decode_kind_on_gpu(gpu, &w.stream, &w.book, kind)?;
                let report = RecoveryReport::clean(w.chunk_hi - w.chunk_lo);
                (w.finish(&symbols, report), secs)
            }
            RecoveryMode::BestEffort => {
                let (symbols, report, secs) = decode_kind_best_effort_on_gpu(
                    gpu,
                    &w.stream,
                    &w.book,
                    &w.damage,
                    opts.sentinel,
                    kind,
                );
                (w.finish(&symbols, report), secs)
            }
        }
    };
    crate::metrics::registry::global().record_range_decode(
        r.bytes.len() as u64,
        r.chunks_touched,
        r.total_chunks,
        r.index_probes,
        r.index_used,
    );
    Ok((r, probe_cost.total + decode_secs))
}

/// Best-effort decode with the backend selected by `kind`.
pub fn decode_kind_best_effort_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    chunk_damage: &[bool],
    sentinel: u16,
    kind: DecoderKind,
) -> (Vec<u16>, RecoveryReport, f64) {
    crate::metrics::registry::global().record_decode_backend(kind.name());
    match kind {
        DecoderKind::Serial => {
            decode_serial_best_effort_on_gpu(gpu, stream, book, chunk_damage, sentinel)
        }
        DecoderKind::Chunked => {
            decode_best_effort_on_gpu(gpu, stream, book, chunk_damage, sentinel)
        }
        DecoderKind::Lut => {
            decode_lut_best_effort_on_gpu(gpu, stream, book, chunk_damage, sentinel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::encode::{reduce_shuffle, BreakingStrategy, MergeConfig};
    use crate::sparse::SparseOutliers;
    use gpu_sim::DeviceSpec;

    fn setup(n: usize) -> (CanonicalCodebook, Vec<u16>, ChunkedStream) {
        let freqs: Vec<u64> = vec![500, 250, 125, 63, 31, 16, 8, 7];
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> =
            (0..n).map(|i| ((i as u64).wrapping_mul(2654435761) >> 9) as u16 % 8).collect();
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(10, 3),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        (book, syms, stream)
    }

    /// A high-entropy setup (uniform 256-symbol alphabet, 8 payload bits
    /// per symbol) — the compute-bound regime where the LUT decoder's
    /// per-symbol work beats the bit-serial kernel's per-bit work. `r = 2`
    /// keeps the 32-bit merge units from breaking (4 × 8 bits).
    fn setup_high_entropy(n: usize) -> (CanonicalCodebook, Vec<u16>, ChunkedStream) {
        let freqs: Vec<u64> = vec![1000; 256];
        let book = codebook::parallel(&freqs, 8).unwrap();
        let syms: Vec<u16> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as u16 % 256)
            .collect();
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(10, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        (book, syms, stream)
    }

    #[test]
    fn gpu_decode_matches_input() {
        let (book, syms, stream) = setup(30_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (out, secs) = decode_on_gpu(&gpu, &stream, &book).unwrap();
        assert_eq!(out, syms);
        assert!(secs > 0.0);
        assert_eq!(gpu.clock().launches(), 1);
    }

    #[test]
    fn empty_stream_decodes_empty() {
        let (book, _, _) = setup(16);
        let empty = reduce_shuffle::encode(
            &[],
            &book,
            MergeConfig::default(),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (out, _) = decode_on_gpu(&gpu, &empty, &book).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn best_effort_gpu_decode_sentinels_damaged_chunks() {
        let (book, syms, stream) = setup(30_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let mut damage = vec![false; stream.num_chunks()];
        damage[0] = true;
        let (out, report, secs) = decode_best_effort_on_gpu(&gpu, &stream, &book, &damage, 0xFFFF);
        assert_eq!(out.len(), syms.len());
        assert!(!report.is_clean());
        assert_eq!(report.damaged_chunks, vec![0]);
        assert!(secs > 0.0);
        assert_eq!(gpu.clock().launches(), 1);
        // Undamaged tail decodes exactly.
        let first_clean = report.damaged_ranges.iter().map(|&(_, e)| e).max().unwrap();
        assert_eq!(&out[first_clean..], &syms[first_clean..]);
    }

    #[test]
    fn v100_decode_throughput_band() {
        let (book, _, stream) = setup(4_000_000);
        let gpu = Gpu::v100();
        let (_, secs) = decode_on_gpu(&gpu, &stream, &book).unwrap();
        let gbps = gpu_sim::gbps(stream.num_symbols as f64 * 2.0 / secs);
        // Decoding is compute/latency-bound: below encode throughput but
        // far above a serial CPU decode.
        assert!(gbps > 5.0 && gbps < 900.0, "modeled {gbps:.1} GB/s");
    }

    #[test]
    fn lut_gpu_decode_matches_input_in_two_launches() {
        let (book, syms, stream) = setup(30_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (out, secs) = decode_lut_on_gpu(&gpu, &stream, &book).unwrap();
        assert_eq!(out, syms);
        assert!(secs > 0.0);
        let clock = gpu.clock();
        assert_eq!(clock.launches(), 2);
        let names: Vec<&str> = clock.records().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["dec_subchunk_sync", "dec_lut_gap"]);
    }

    #[test]
    fn lut_best_effort_matches_chunked_best_effort() {
        let (book, _, stream) = setup(30_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let mut damage = vec![false; stream.num_chunks()];
        damage[1] = true;
        let (lut_out, lut_report, secs) =
            decode_lut_best_effort_on_gpu(&gpu, &stream, &book, &damage, 0xFFFF);
        let (chk_out, chk_report, _) =
            decode_best_effort_on_gpu(&gpu, &stream, &book, &damage, 0xFFFF);
        assert_eq!(lut_out, chk_out);
        assert_eq!(lut_report, chk_report);
        assert!(secs > 0.0);
    }

    #[test]
    fn serial_gpu_decode_is_latency_bound_baseline() {
        let (book, syms, stream) = setup(200_000);
        let gpu = Gpu::v100();
        let (out, serial_secs) = decode_serial_on_gpu(&gpu, &stream, &book).unwrap();
        assert_eq!(out, syms);
        let (_, chunked_secs) = decode_on_gpu(&gpu, &stream, &book).unwrap();
        // One thread pays full memory latency per symbol: orders of
        // magnitude slower than the parallel kernel.
        assert!(
            serial_secs > 50.0 * chunked_secs,
            "serial {serial_secs:.6}s vs chunked {chunked_secs:.6}s"
        );
    }

    #[test]
    fn lut_beats_bit_serial_in_compute_bound_regime() {
        // ~8 payload bits/symbol on a V100: the bit-serial kernel's
        // 6-ops-per-bit chain dominates, while the LUT pipeline pays one
        // probe per symbol plus the sync pass. This is the modeled
        // crossover the decoder sweep (BENCH_decode.json) commits.
        let (book, _, stream) = setup_high_entropy(4_000_000);
        let gpu = Gpu::v100();
        let (_, chunked_secs) = decode_on_gpu(&gpu, &stream, &book).unwrap();
        let (_, lut_secs) = decode_lut_on_gpu(&gpu, &stream, &book).unwrap();
        assert!(
            lut_secs < chunked_secs,
            "lut {lut_secs:.6}s not faster than chunked {chunked_secs:.6}s"
        );
    }

    #[test]
    fn decode_kind_dispatch_is_bit_exact() {
        let (book, syms, stream) = setup(50_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        for kind in [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut] {
            let (out, secs) = decode_kind_on_gpu(&gpu, &stream, &book, kind).unwrap();
            assert_eq!(out, syms, "{}", kind.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn gpu_range_decode_touches_only_covering_chunks() {
        let syms: Vec<u16> = (0..200_000)
            .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as u16 % 256)
            .collect();
        let packed =
            crate::archive::compress(&syms, &crate::archive::CompressOptions::new(256)).unwrap();
        let (full_stream, _, _) = crate::archive::deserialize(&packed).unwrap();
        let full_payload = full_stream.total_bits.div_ceil(8);

        let gpu = Gpu::new(DeviceSpec::test_part());
        let opts = DecompressOptions::default();
        let (r, secs) =
            decode_range_on_gpu(&gpu, &packed, 100_000..100_200, &opts, DecoderKind::Chunked)
                .unwrap();
        let full: Vec<u8> = syms.iter().flat_map(|&s| s.to_le_bytes()).collect();
        assert_eq!(r.bytes, &full[100_000..100_200]);
        assert!(r.index_used);
        assert!(r.chunks_touched < r.total_chunks / 10);
        assert!(secs > 0.0);

        // The kernel trace is the proof: a probe launch charged to the
        // index-probe term, then a decode whose payload read is a tiny
        // fraction of the archive's payload.
        let clock = gpu.clock();
        let names: Vec<&str> = clock.records().iter().map(|rec| rec.name.as_str()).collect();
        assert_eq!(names[0], "dec_seek_probe");
        let probe = &clock.records()[0];
        assert_eq!(probe.traffic.index_probe_ops, r.index_probes);
        assert!(probe.traffic.index_probe_ops > 0);
        let dec = &clock.records()[1];
        assert!(
            dec.traffic.read_coalesced < full_payload / 10,
            "window decode read {} of {} payload bytes",
            dec.traffic.read_coalesced,
            full_payload
        );
    }

    #[test]
    fn gpu_range_decode_is_bit_exact_per_backend() {
        let syms: Vec<u16> = (0..60_000).map(|i| (i % 251) as u16).collect();
        let packed =
            crate::archive::compress(&syms, &crate::archive::CompressOptions::new(256)).unwrap();
        let full: Vec<u8> = syms.iter().flat_map(|&s| s.to_le_bytes()).collect();
        for kind in [DecoderKind::Serial, DecoderKind::Chunked, DecoderKind::Lut] {
            let gpu = Gpu::new(DeviceSpec::test_part());
            let opts = DecompressOptions::default();
            let (r, _) = decode_range_on_gpu(&gpu, &packed, 33_333..44_444, &opts, kind).unwrap();
            assert_eq!(r.bytes, &full[33_333..44_444], "{}", kind.name());
        }
    }

    #[test]
    fn decode_launch_clamps_and_loops() {
        let mk = |n_chunks: usize| ChunkedStream {
            config: MergeConfig::new(2, 1),
            chunk_bit_lens: vec![0; n_chunks],
            chunk_bit_offsets: vec![0; n_chunks],
            total_bits: 0,
            bytes: Vec::new(),
            num_symbols: 0,
            outliers: SparseOutliers::new(),
        };
        let small = decode_launch(&mk(1000));
        assert_eq!((small.blocks, small.chunks_per_block), (1000, 1));
        assert_eq!(small.loop_ops(), 0);
        let big = decode_launch(&mk((1 << 20) + 37));
        assert_eq!(big.blocks, 1 << 20);
        assert_eq!(big.chunks_per_block, 2);
        assert_eq!(big.loop_ops(), 8 * 37);
    }

    #[test]
    fn grid_and_traffic_consistent_beyond_grid_clamp() {
        // Regression: the grid used to clamp at 2^20 blocks while the
        // traffic model charged all chunks with no block-loop term. Both
        // now derive from decode_launch: the grid stays clamped AND the
        // ledger carries the full chunk-table traffic plus the loop
        // overhead the clamp implies.
        let n_chunks = (1usize << 20) + 37;
        let stream = ChunkedStream {
            config: MergeConfig::new(2, 1),
            chunk_bit_lens: vec![0; n_chunks],
            chunk_bit_offsets: vec![0; n_chunks],
            total_bits: 0,
            bytes: Vec::new(),
            num_symbols: 0,
            outliers: SparseOutliers::new(),
        };
        let book = codebook::parallel(&[3, 1], 2).unwrap();
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (out, _) = decode_on_gpu(&gpu, &stream, &book).unwrap();
        assert!(out.is_empty());
        let clock = gpu.clock();
        let rec = &clock.records()[0];
        assert_eq!(rec.blocks, 1 << 20);
        // Chunk table modeled for every chunk, not just the grid's blocks.
        assert!(rec.traffic.read_coalesced >= 2 * n_chunks as u64 * 8);
        // The block loop over the 37 overflow chunks is charged.
        assert!(rec.traffic.thread_ops >= 8 * 37);
    }
}
