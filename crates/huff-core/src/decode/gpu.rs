//! Chunked canonical decoding on the simulated device.
//!
//! The paper's encoder chunks data partly "because it will facilitate the
//! reverse process, decoding" (Section III-A), and canonizes the codebook
//! so decoding needs no tree — just the `First`/`Entry` arrays and the
//! reverse codebook, small enough to cache on-chip (Section IV-B2). This
//! kernel realizes that: one block per chunk, the decode tables staged in
//! shared memory, each block walking its substream bit-serially.
//!
//! Decoding is latency-bound per symbol (a dependent chain of bit reads),
//! but thousands of chunks decode concurrently, so throughput is
//! `symbols-in-flight / per-symbol-latency`, capped by DRAM bandwidth.

use super::chunked;
use crate::codebook::CanonicalCodebook;
use crate::encode::ChunkedStream;
use crate::error::Result;
use crate::integrity::RecoveryReport;
use gpu_sim::{Access, Gpu, GridDim, KernelScope};

/// The shared traffic model of the chunked decode kernel (strict and
/// best-effort variants launch the same kernel shape).
fn account_decode_traffic(scope: &mut KernelScope, stream: &ChunkedStream, table_bytes: u64) {
    let n_chunks = stream.num_chunks().max(1) as u64;
    let n = stream.num_symbols as u64;
    let payload_bytes = stream.total_bits.div_ceil(8);
    let resident = n_chunks.min(u64::from(scope.spec().sm_count) * 4);
    let t = scope.traffic();
    // Each chunk streams its payload once; substreams are contiguous so
    // reads coalesce across the block's threads.
    t.read(Access::Coalesced, payload_bytes, 1);
    // Chunk offsets + bit lengths.
    t.read(Access::Coalesced, 2 * n_chunks, 8);
    // Decode tables staged per resident block, reused from L2 after.
    t.read(Access::Coalesced, resident * table_bytes, 1);
    // Per-symbol on-chip table probes (~avg-code-length lookups each).
    let avg_probes = stream.total_bits.checked_div(n).map_or(1, |p| p.clamp(1, 64));
    t.shared(n * avg_probes * 4);
    // Symbol output, coalesced.
    t.write(Access::Coalesced, n, 2);
    // Bit-serial decode: ~3 ops per consumed bit, divergent across the
    // warp (symbols end at different bit positions).
    t.ops(3 * stream.total_bits);
    t.diverge(2.0);
}

fn decode_grid(stream: &ChunkedStream) -> GridDim {
    let n_chunks = stream.num_chunks().max(1) as u64;
    GridDim::new((n_chunks as u32).min(1 << 20), 256)
}

fn decode_table_bytes(book: &CanonicalCodebook) -> u64 {
    (book.reverse().len() * 2 + book.first().len() * 8 + book.entry().len() * 4) as u64
}

/// Decode a chunked stream on the device. Returns the symbols and the
/// modeled kernel time in seconds.
pub fn decode_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
) -> Result<(Vec<u16>, f64)> {
    let table_bytes = decode_table_bytes(book);
    let (out, cost) = gpu.launch_timed("dec_chunked_canonical", decode_grid(stream), |scope| {
        let out = chunked::decode(stream, book);
        account_decode_traffic(scope, stream, table_bytes);
        out
    });
    Ok((out?, cost.total))
}

/// Best-effort decode of a (possibly damaged) chunked stream on the
/// device: chunks flagged in `chunk_damage` are sentinel-filled instead of
/// decoded (see [`chunked::decode_best_effort`]). Returns the symbols, the
/// recovery report, and the modeled kernel time in seconds.
///
/// The traffic model is identical to [`decode_on_gpu`] — a damaged chunk
/// still costs its payload read (the checksum pass touched it) and its
/// sentinel writes, and damage is rare enough that modeling the skipped
/// table probes would be noise.
pub fn decode_best_effort_on_gpu(
    gpu: &Gpu,
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    chunk_damage: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport, f64) {
    let table_bytes = decode_table_bytes(book);
    let ((symbols, report), cost) =
        gpu.launch_timed("dec_chunked_best_effort", decode_grid(stream), |scope| {
            let out = chunked::decode_best_effort(stream, book, chunk_damage, sentinel);
            account_decode_traffic(scope, stream, table_bytes);
            out
        });
    (symbols, report, cost.total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::encode::{reduce_shuffle, BreakingStrategy, MergeConfig};
    use gpu_sim::DeviceSpec;

    fn setup(n: usize) -> (CanonicalCodebook, Vec<u16>, ChunkedStream) {
        let freqs: Vec<u64> = vec![500, 250, 125, 63, 31, 16, 8, 7];
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> =
            (0..n).map(|i| ((i as u64).wrapping_mul(2654435761) >> 9) as u16 % 8).collect();
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(10, 3),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        (book, syms, stream)
    }

    #[test]
    fn gpu_decode_matches_input() {
        let (book, syms, stream) = setup(30_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (out, secs) = decode_on_gpu(&gpu, &stream, &book).unwrap();
        assert_eq!(out, syms);
        assert!(secs > 0.0);
        assert_eq!(gpu.clock().launches(), 1);
    }

    #[test]
    fn empty_stream_decodes_empty() {
        let (book, _, _) = setup(16);
        let empty = reduce_shuffle::encode(
            &[],
            &book,
            MergeConfig::default(),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        let gpu = Gpu::new(DeviceSpec::test_part());
        let (out, _) = decode_on_gpu(&gpu, &empty, &book).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn best_effort_gpu_decode_sentinels_damaged_chunks() {
        let (book, syms, stream) = setup(30_000);
        let gpu = Gpu::new(DeviceSpec::test_part());
        let mut damage = vec![false; stream.num_chunks()];
        damage[0] = true;
        let (out, report, secs) = decode_best_effort_on_gpu(&gpu, &stream, &book, &damage, 0xFFFF);
        assert_eq!(out.len(), syms.len());
        assert!(!report.is_clean());
        assert_eq!(report.damaged_chunks, vec![0]);
        assert!(secs > 0.0);
        assert_eq!(gpu.clock().launches(), 1);
        // Undamaged tail decodes exactly.
        let first_clean = report.damaged_ranges.iter().map(|&(_, e)| e).max().unwrap();
        assert_eq!(&out[first_clean..], &syms[first_clean..]);
    }

    #[test]
    fn v100_decode_throughput_band() {
        let (book, _, stream) = setup(4_000_000);
        let gpu = Gpu::v100();
        let (_, secs) = decode_on_gpu(&gpu, &stream, &book).unwrap();
        let gbps = gpu_sim::gbps(stream.num_symbols as f64 * 2.0 / secs);
        // Decoding is compute/latency-bound: below encode throughput but
        // far above a serial CPU decode.
        assert!(gbps > 5.0 && gbps < 900.0, "modeled {gbps:.1} GB/s");
    }
}
