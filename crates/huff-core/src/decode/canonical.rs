//! Treeless canonical decoder.
//!
//! Decodes with only the `First`/`Entry`/`Count` arrays and the reverse
//! codebook — no tree traversal, `H`-bounded work per symbol, and a
//! cache-friendly footprint of `O(H + n)` words (the property that lets
//! the reverse codebook be cached on-chip for high decoding throughput).

use crate::bitstream::BitReader;
use crate::codebook::CanonicalCodebook;
use crate::error::Result;

/// Decode exactly `count` symbols from a dense MSB-first stream.
pub fn decode(
    bytes: &[u8],
    bit_len: u64,
    count: usize,
    book: &CanonicalCodebook,
) -> Result<Vec<u16>> {
    let mut reader = BitReader::new(bytes, bit_len);
    decode_from(&mut reader, count, book)
}

/// Decode `count` symbols from an existing reader position.
pub fn decode_from(
    reader: &mut BitReader<'_>,
    count: usize,
    book: &CanonicalCodebook,
) -> Result<Vec<u16>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(book.decode_symbol(|| reader.read_bit())?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::encode::serial;

    fn setup(n: usize) -> (codebook::CanonicalCodebook, Vec<u16>) {
        let freqs: Vec<u64> = vec![100, 50, 25, 12, 6, 3, 2, 2];
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(6364136223846793005) >> 33) as u16 % 8)
            .collect();
        (book, syms)
    }

    #[test]
    fn roundtrip_serial_encode() {
        let (book, syms) = setup(10_000);
        let enc = serial::encode(&syms, &book).unwrap();
        let dec = decode(&enc.bytes, enc.bit_len, syms.len(), &book).unwrap();
        assert_eq!(dec, syms);
    }

    #[test]
    fn roundtrip_empty() {
        let (book, _) = setup(0);
        let dec = decode(&[], 0, 0, &book).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn truncated_stream_errors() {
        let (book, syms) = setup(100);
        let enc = serial::encode(&syms, &book).unwrap();
        // Ask for one more symbol than encoded.
        assert!(decode(&enc.bytes, enc.bit_len, syms.len() + 1, &book).is_err());
    }

    #[test]
    fn decode_from_preserves_reader_position() {
        let (book, syms) = setup(64);
        let enc = serial::encode(&syms, &book).unwrap();
        let mut reader = BitReader::new(&enc.bytes, enc.bit_len);
        let first = decode_from(&mut reader, 32, &book).unwrap();
        let second = decode_from(&mut reader, 32, &book).unwrap();
        assert_eq!(first, syms[..32]);
        assert_eq!(second, syms[32..]);
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn single_symbol_alphabet() {
        let book = codebook::parallel(&[0, 5], 2).unwrap();
        let syms = vec![1u16; 40];
        let enc = serial::encode(&syms, &book).unwrap();
        assert_eq!(enc.bit_len, 40);
        let dec = decode(&enc.bytes, enc.bit_len, 40, &book).unwrap();
        assert_eq!(dec, syms);
    }

    #[test]
    fn deep_codebook_roundtrip() {
        let lengths: Vec<u32> = (1..=30).chain([30]).collect();
        let book = codebook::CanonicalCodebook::from_lengths(&lengths).unwrap();
        let syms: Vec<u16> = (0..1000).map(|i| (i % 31) as u16).collect();
        let enc = serial::encode(&syms, &book).unwrap();
        let dec = decode(&enc.bytes, enc.bit_len, syms.len(), &book).unwrap();
        assert_eq!(dec, syms);
    }
}
