//! Huffman-tree-walking reference decoder.
//!
//! The slow path canonical decoding replaces: follow left/right child
//! pointers bit by bit. Kept as an oracle for differential tests.

use crate::bitstream::BitReader;
use crate::error::{HuffError, Result};
use crate::tree::Node;

/// Decode `count` symbols by walking the tree.
pub fn decode(bytes: &[u8], bit_len: u64, count: usize, root: &Node) -> Result<Vec<u16>> {
    let mut reader = BitReader::new(bytes, bit_len);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut node = root;
        loop {
            match node {
                Node::Leaf { symbol, .. } => {
                    out.push(*symbol);
                    break;
                }
                Node::Internal { left, right, .. } => {
                    node = if reader.read_bit()? { right } else { left };
                }
            }
        }
    }
    Ok(out)
}

/// Differential check: tree decoding of a tree-codebook encoding must equal
/// canonical decoding of a canonical encoding.
pub fn cross_check(symbols: &[u16], freqs: &[u64]) -> Result<bool> {
    let root = crate::tree::build_tree(freqs)?;
    let tree_codes = crate::tree::tree_codebook(freqs)?;
    let mut w = crate::bitstream::BitWriter::new();
    for &s in symbols {
        let c = tree_codes[s as usize];
        if c.is_empty() {
            return Err(HuffError::MissingCodeword(s as usize));
        }
        w.push_code(c);
    }
    let (bytes, bits) = w.finish();
    let tree_decoded = decode(&bytes, bits, symbols.len(), &root)?;

    let book = crate::codebook::parallel(freqs, 4)?;
    let enc = crate::encode::serial::encode(symbols, &book)?;
    let canon_decoded = super::canonical::decode(&enc.bytes, enc.bit_len, symbols.len(), &book)?;

    Ok(tree_decoded == symbols && canon_decoded == symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, tree_codebook};

    #[test]
    fn roundtrip_tree_codes() {
        let freqs = [10u64, 6, 3, 1];
        let root = build_tree(&freqs).unwrap();
        let codes = tree_codebook(&freqs).unwrap();
        let syms = [0u16, 1, 2, 3, 0, 0, 1];
        let mut w = crate::bitstream::BitWriter::new();
        for &s in &syms {
            w.push_code(codes[s as usize]);
        }
        let (bytes, bits) = w.finish();
        let dec = decode(&bytes, bits, syms.len(), &root).unwrap();
        assert_eq!(dec, syms);
    }

    #[test]
    fn truncated_stream_errors() {
        let freqs = [1u64, 1];
        let root = build_tree(&freqs).unwrap();
        assert!(decode(&[], 0, 1, &root).is_err());
    }

    #[test]
    fn cross_check_agrees() {
        let freqs: Vec<u64> = vec![31, 17, 11, 7, 5, 3, 2];
        let syms: Vec<u16> = (0..500).map(|i| (i % 7) as u16).collect();
        assert!(cross_check(&syms, &freqs).unwrap());
    }

    #[test]
    fn cross_check_rejects_uncoded() {
        assert!(cross_check(&[1], &[1, 0]).is_err());
    }
}
