//! Second-generation decoder: multi-bit LUT decoding with subchunk
//! self-synchronization (the gap array).
//!
//! The bit-serial decoders ([`super::canonical`], [`super::chunked`])
//! consume one bit per `First`/`Entry` probe, so a symbol costs
//! `code-length` dependent steps. Rivera et al. 2022 ("Optimizing Huffman
//! Decoding for Error-Bounded Lossy Compression on GPUs", the companion
//! to the source paper) replace that walk with two ideas this module
//! reproduces:
//!
//! 1. **Decode LUT** ([`DecodeLut`]): a table indexed by the next
//!    `L = min(max_len, 12)` stream bits whose entry yields the decoded
//!    symbol *and* the consumed codeword length in one probe. Codewords
//!    longer than `L` bits hit a slow-path marker and fall back to the
//!    bit-serial walk — rare by construction, since canonical Huffman
//!    assigns short codes to frequent symbols.
//! 2. **Subchunk gap array**: each chunk's payload is cut into fixed-width
//!    bit subsequences. Huffman streams self-synchronize: stepping
//!    codeword lengths from *any* correct boundary reaches the next
//!    subsequence's first boundary (its *gap*). A sync pass iterates that
//!    propagation to a fixed point — after pass `k` the first `k+1` gaps
//!    are exact, so it settles in at most `n_sub` passes (typically 1–2) —
//!    then every subsequence decodes independently and a compaction pass
//!    concatenates the outputs.
//!
//! Neither structure is serialized: both derive deterministically from the
//! archive's codeword lengths (see FORMAT.md § "Decode LUT and gap
//! array"). Output is bit-exact with the other decoders — that invariant
//! is enforced by unit tests here and the cross-decoder property suite.

use super::chunked;
use crate::bitstream::BitReader;
use crate::codebook::CanonicalCodebook;
use crate::encode::ChunkedStream;
use crate::error::{HuffError, Result};
use crate::integrity::RecoveryReport;
use rayon::prelude::*;

/// Default LUT index width: the paper's `L = min(max_len, 12)`.
pub const DEFAULT_LUT_BITS: u32 = 12;

/// Default subsequence width in bits for the gap-array sync pass.
pub const DEFAULT_SUBCHUNK_BITS: u64 = 256;

/// Hard cap on the LUT index width (a 2^24-entry table is 64 MiB; wider
/// tables stop fitting anything resembling on-chip memory).
const MAX_LUT_BITS: u32 = 24;

/// Multi-bit decode table: `1 << bits` entries, each packing a symbol in
/// the low 16 bits and the consumed codeword length in bits 16..24. A zero
/// length marks the slow path (codeword longer than the table index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeLut {
    bits: u32,
    entries: Vec<u32>,
}

impl DecodeLut {
    /// Build the table for `book` over the next `min(max_len, max_bits)`
    /// stream bits. Every codeword of length `l <= bits` fills the
    /// `2^(bits-l)` indices sharing its prefix; prefix-freeness guarantees
    /// the ranges never overlap.
    pub fn build(book: &CanonicalCodebook, max_bits: u32) -> Self {
        let bits = book.max_len().min(max_bits).clamp(1, MAX_LUT_BITS);
        let mut entries = vec![0u32; 1usize << bits];
        let (first, entry, count, rev) = (book.first(), book.entry(), book.count(), book.reverse());
        for l in 1..=bits {
            let li = l as usize;
            if li >= count.len() {
                break;
            }
            for k in 0..u64::from(count[li]) {
                let code = first[li] + k;
                let sym = rev[entry[li] as usize + k as usize];
                let lo = (code << (bits - l)) as usize;
                let hi = ((code + 1) << (bits - l)) as usize;
                entries[lo..hi].fill((l << 16) | u32::from(sym));
            }
        }
        DecodeLut { bits, entries }
    }

    /// The index width `L` in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Table footprint in bytes (4 bytes per entry) — what a kernel would
    /// stage into shared memory.
    pub fn table_bytes(&self) -> u64 {
        self.entries.len() as u64 * 4
    }

    /// Probe the table with an `L`-bit MSB-aligned window. Returns the
    /// symbol and consumed length, or `None` for the slow path.
    pub fn lookup(&self, window: u64) -> Option<(u16, u32)> {
        let e = self.entries[window as usize];
        let len = e >> 16;
        if len == 0 {
            None
        } else {
            Some((e as u16, len))
        }
    }

    /// Decode one symbol from `reader`: peek up to `L` bits, probe, and
    /// skip only the consumed length. Falls back to the bit-serial
    /// `First`/`Entry` walk when the codeword is longer than the table or
    /// fewer than its length bits remain — the fall-back also reports
    /// truncation precisely.
    #[inline]
    pub fn decode_symbol(
        &self,
        book: &CanonicalCodebook,
        reader: &mut BitReader<'_>,
    ) -> Result<u16> {
        let avail = reader.remaining().min(u64::from(self.bits)) as u32;
        if avail > 0 {
            // MSB-align a short window so the prefix indexes correctly.
            let window = reader.peek_bits(avail)? << (self.bits - avail);
            if let Some((sym, len)) = self.lookup(window) {
                if len <= avail {
                    reader.skip(u64::from(len))?;
                    return Ok(sym);
                }
            }
        }
        book.decode_symbol(|| reader.read_bit())
    }
}

/// Subchunk geometry for the gap-array sync pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubchunkConfig {
    /// Subsequence width in bits. Smaller widths expose more parallelism
    /// per chunk but lengthen the sync fixpoint; zero is treated as 1.
    pub width_bits: u64,
}

impl Default for SubchunkConfig {
    fn default() -> Self {
        SubchunkConfig { width_bits: DEFAULT_SUBCHUNK_BITS }
    }
}

/// Work counters of a gap-array decode, aggregated over chunks. These
/// feed the GPU traffic model ([`super::gpu`]): the sync pass is charged
/// by `sync_steps` (divergent strided walks), the decode pass by
/// `decoded_symbols` (coalesced LUT probes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GapStats {
    /// Total subsequences across all chunks.
    pub subsequences: u64,
    /// Worst-case sync passes any chunk needed (block-level barriers).
    pub max_sync_passes: u64,
    /// Codeword-length steps performed across all sync passes.
    pub sync_steps: u64,
    /// Coded (non-outlier) symbols decoded in the decode pass.
    pub decoded_symbols: u64,
}

impl GapStats {
    /// Merge another chunk's counters into this aggregate.
    pub fn absorb(&mut self, other: &GapStats) {
        self.subsequences += other.subsequences;
        self.max_sync_passes = self.max_sync_passes.max(other.max_sync_passes);
        self.sync_steps += other.sync_steps;
        self.decoded_symbols += other.decoded_symbols;
    }

    /// Analytic estimate for a stream when measured counters are not
    /// available (the best-effort kernel, where damaged chunks skip
    /// decoding but the model keeps the undamaged-shape cost — same
    /// convention as the bit-serial kernel).
    pub fn estimate(stream: &ChunkedStream, cfg: SubchunkConfig) -> GapStats {
        let w = cfg.width_bits.max(1);
        let n = stream.num_symbols as u64;
        GapStats {
            subsequences: stream.chunk_bit_lens.iter().map(|&l| l.div_ceil(w)).sum(),
            max_sync_passes: 2,
            sync_steps: n,
            decoded_symbols: n,
        }
    }
}

/// Walk codeword lengths from a candidate boundary `gap` until the first
/// boundary at or past `end`. `None` when the speculative walk fails
/// (wrong guess landed mid-codeword on garbage) — corrected by a later
/// pass once the left neighbor's gap is exact.
fn sync_exit(
    bytes: &[u8],
    limit_bits: u64,
    gap: u64,
    end: u64,
    book: &CanonicalCodebook,
    lut: &DecodeLut,
    stats: &mut GapStats,
) -> Option<u64> {
    if gap >= end {
        return Some(gap);
    }
    let mut reader = BitReader::new(bytes, limit_bits);
    reader.skip(gap).ok()?;
    let mut pos = gap;
    while pos < end {
        stats.sync_steps += 1;
        lut.decode_symbol(book, &mut reader).ok()?;
        pos = reader.position();
    }
    Some(pos)
}

/// Wrap a low-level decode failure with the gap-array position it struck,
/// so strict-mode errors name the failing chunk/subchunk/gap (the serving
/// engine logs this before degrading to a slower backend).
fn gap_err(chunk: usize, subchunk: usize, gap_bit: u64, cause: &HuffError) -> HuffError {
    HuffError::GapArray { chunk, subchunk, gap_bit, detail: cause.to_string() }
}

/// Gap-array decode of the payload bit span `[off, off + len)` of chunk
/// `ci` (the chunk index only contextualizes errors).
#[allow(clippy::too_many_arguments)] // internal helper mirroring the kernel signature
fn decode_span(
    bytes: &[u8],
    off: u64,
    len: u64,
    book: &CanonicalCodebook,
    lut: &DecodeLut,
    cfg: SubchunkConfig,
    ci: usize,
    stats: &mut GapStats,
) -> Result<Vec<u16>> {
    if len == 0 {
        return Ok(Vec::new());
    }
    let end_bits = off + len;
    let w = cfg.width_bits.max(1);
    let n_sub = usize::try_from(len.div_ceil(w))
        .map_err(|_| HuffError::CorruptStream("subsequence count overflows"))?;
    // A payload physically shorter than the chunk span would trip the
    // bit-reader's buffer assertion; surface it as an indexed error
    // naming the first subchunk the surviving bytes cannot back.
    let have_bits = (bytes.len() as u64).saturating_mul(8);
    if have_bits < end_bits {
        let sub = ((have_bits.max(off) - off) / w).min(n_sub as u64 - 1) as usize;
        return Err(HuffError::GapArray {
            chunk: ci,
            subchunk: sub,
            gap_bit: off + sub as u64 * w,
            detail: format!(
                "payload truncated to {have_bits} bits but the chunk span ends at {end_bits}"
            ),
        });
    }
    stats.subsequences += n_sub as u64;
    let sub_end = |i: usize| (off + (i as u64 + 1) * w).min(end_bits);

    // Sync pass. gaps[0] = off is correct by construction; each pass
    // re-walks the subsequences whose gap changed and proposes the exit
    // position as the next subsequence's gap. After pass k the first k+1
    // gaps are exact (induction on the chunk's real boundary chain), so
    // the fixpoint arrives in at most n_sub passes; the cap below turns a
    // non-converging (corrupt) stream into an error instead of a loop.
    let mut gaps: Vec<u64> = (0..n_sub).map(|i| off + i as u64 * w).collect();
    let mut exits: Vec<Option<u64>> = vec![None; n_sub];
    let mut dirty = vec![true; n_sub];
    let mut passes = 0u64;
    loop {
        for i in 0..n_sub {
            if std::mem::take(&mut dirty[i]) {
                exits[i] = sync_exit(bytes, end_bits, gaps[i], sub_end(i), book, lut, stats);
            }
        }
        passes += 1;
        let mut changed = false;
        for i in 0..n_sub - 1 {
            // A failed speculative walk proposes the subsequence boundary
            // itself until a later pass corrects it.
            let proposal = exits[i].unwrap_or_else(|| sub_end(i));
            if gaps[i + 1] != proposal {
                gaps[i + 1] = proposal;
                dirty[i + 1] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if passes > n_sub as u64 {
            let sub = dirty.iter().position(|&d| d).unwrap_or(0);
            return Err(HuffError::GapArray {
                chunk: ci,
                subchunk: sub,
                gap_bit: gaps[sub],
                detail: "subchunk synchronization did not converge".into(),
            });
        }
    }
    stats.max_sync_passes = stats.max_sync_passes.max(passes);

    // Decode pass: each subsequence decodes the codewords *starting* in
    // [gap, sub_end); the codeword straddling its right edge belongs to it,
    // which is exactly where the next subsequence's gap points. Compaction
    // concatenates, so the union is the chunk's serial decode, bit-exactly.
    let mut out: Vec<u16> = Vec::new();
    for (i, &gap) in gaps.iter().enumerate().take(n_sub) {
        let end = sub_end(i);
        if gap >= end {
            continue; // one codeword spans this whole subsequence
        }
        let mut reader = BitReader::new(bytes, end_bits);
        reader.skip(gap).map_err(|e| gap_err(ci, i, gap, &e))?;
        while reader.position() < end {
            out.push(lut.decode_symbol(book, &mut reader).map_err(|e| gap_err(ci, i, gap, &e))?);
        }
    }
    stats.decoded_symbols += out.len() as u64;
    Ok(out)
}

/// Decode chunk `ci` via the gap array, splicing breaking units back from
/// the sparse sidecar at unit boundaries (same contract as
/// [`chunked::decode`]'s per-chunk step).
pub(crate) fn decode_chunk(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    lut: &DecodeLut,
    cfg: SubchunkConfig,
    ci: usize,
    stats: &mut GapStats,
) -> Result<Vec<u16>> {
    let chunk_syms = stream.config.chunk_symbols();
    let unit_syms = stream.config.unit_symbols().max(1);
    let units_per_chunk = stream.config.units_per_chunk() as u64;
    let sym_base = ci * chunk_syms;
    let sym_count = chunk_syms.min(stream.num_symbols.saturating_sub(sym_base));

    let off = stream.chunk_bit_offsets[ci];
    let len = stream.chunk_bit_lens[ci];
    if off.checked_add(len).is_none_or(|e| e > stream.total_bits) {
        return Err(HuffError::CorruptStream("chunk span beyond payload"));
    }
    let coded = decode_span(&stream.bytes, off, len, book, lut, cfg, ci, stats)?;

    let mut out = Vec::with_capacity(sym_count);
    let mut taken = 0usize;
    let n_units = sym_count.div_ceil(unit_syms);
    for u in 0..n_units {
        let global_unit = ci as u64 * units_per_chunk + u as u64;
        let in_unit = unit_syms.min(sym_count - u * unit_syms);
        if let Some(raw) = stream.outliers.lookup(global_unit) {
            if raw.len() != in_unit {
                return Err(HuffError::CorruptStream("outlier unit length mismatch"));
            }
            out.extend_from_slice(raw);
        } else {
            let next = taken + in_unit;
            if next > coded.len() {
                return Err(HuffError::CorruptStream("decoded count disagrees with header"));
            }
            out.extend_from_slice(&coded[taken..next]);
            taken = next;
        }
    }
    if taken != coded.len() {
        return Err(HuffError::CorruptStream("decoded count disagrees with header"));
    }
    Ok(out)
}

/// Decode a chunked stream with the default LUT width and subchunk
/// geometry. Bit-exact with [`chunked::decode`].
pub fn decode(stream: &ChunkedStream, book: &CanonicalCodebook) -> Result<Vec<u16>> {
    let lut = DecodeLut::build(book, DEFAULT_LUT_BITS);
    decode_with(stream, book, &lut, SubchunkConfig::default()).map(|(s, _)| s)
}

/// Decode with explicit LUT and subchunk geometry, returning the work
/// counters alongside the symbols (chunks decode in parallel; counters
/// are merged).
pub fn decode_with(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    lut: &DecodeLut,
    cfg: SubchunkConfig,
) -> Result<(Vec<u16>, GapStats)> {
    type ChunkOut = Result<(Vec<u16>, GapStats)>;
    let parts: Vec<ChunkOut> = (0..stream.num_chunks())
        .into_par_iter()
        .map(|ci| {
            let mut st = GapStats::default();
            decode_chunk(stream, book, lut, cfg, ci, &mut st).map(|v| (v, st))
        })
        .collect();

    let mut out = Vec::with_capacity(stream.num_symbols);
    let mut stats = GapStats::default();
    for p in parts {
        let (part, st) = p?;
        out.extend_from_slice(&part);
        stats.absorb(&st);
    }
    if out.len() != stream.num_symbols {
        return Err(HuffError::CorruptStream("decoded count disagrees with header"));
    }
    Ok((out, stats))
}

/// Best-effort gap-array decode: same recovery contract as
/// [`chunked::decode_best_effort`] — marked or failing chunks are
/// sentinel-filled (their breaking units recovered from the sidecar) and
/// reported; never panics, never errors.
pub fn decode_best_effort(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    damaged: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport) {
    let lut = DecodeLut::build(book, DEFAULT_LUT_BITS);
    decode_best_effort_with(stream, book, &lut, SubchunkConfig::default(), damaged, sentinel)
}

/// Best-effort decode with explicit LUT and subchunk geometry.
pub fn decode_best_effort_with(
    stream: &ChunkedStream,
    book: &CanonicalCodebook,
    lut: &DecodeLut,
    cfg: SubchunkConfig,
    damaged: &[bool],
    sentinel: u16,
) -> (Vec<u16>, RecoveryReport) {
    chunked::decode_best_effort_with(stream, damaged, sentinel, true, |ci| {
        let mut st = GapStats::default();
        decode_chunk(stream, book, lut, cfg, ci, &mut st)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook;
    use crate::encode::{reduce_shuffle, BreakingStrategy, MergeConfig};

    fn stream_and_book(n: usize) -> (ChunkedStream, CanonicalCodebook, Vec<u16>) {
        let freqs = [97u64, 53, 31, 17, 11, 7, 5, 3];
        let book = codebook::parallel(&freqs, 4).unwrap();
        let syms: Vec<u16> =
            (0..n).map(|i| ((i as u64).wrapping_mul(48271) >> 7) as u16 % 8).collect();
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(9, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        (stream, book, syms)
    }

    #[test]
    fn lut_entries_cover_short_codes() {
        // Lengths (1, 2, 2): codes 0, 10, 11.
        let book = CanonicalCodebook::from_lengths(&[1, 2, 2]).unwrap();
        let lut = DecodeLut::build(&book, 12);
        assert_eq!(lut.bits(), 2); // min(max_len, 12)
        assert_eq!(lut.lookup(0b00), Some((0, 1)));
        assert_eq!(lut.lookup(0b01), Some((0, 1)));
        assert_eq!(lut.lookup(0b10), Some((1, 2)));
        assert_eq!(lut.lookup(0b11), Some((2, 2)));
        assert_eq!(lut.table_bytes(), 16);
    }

    #[test]
    fn long_codes_hit_slow_path_marker() {
        // An incomplete codebook leaves unassigned windows at zero.
        let book = CanonicalCodebook::from_lengths(&[2, 2, 2]).unwrap();
        let lut = DecodeLut::build(&book, 12);
        assert_eq!(lut.bits(), 2);
        assert_eq!(lut.lookup(0b11), None);
    }

    #[test]
    fn lut_decode_matches_chunked() {
        let (stream, book, syms) = stream_and_book(20_000);
        assert_eq!(decode(&stream, &book).unwrap(), syms);
        assert_eq!(decode(&stream, &book).unwrap(), chunked::decode(&stream, &book).unwrap());
    }

    #[test]
    fn subchunk_widths_all_agree() {
        let (stream, book, syms) = stream_and_book(6_000);
        let lut = DecodeLut::build(&book, DEFAULT_LUT_BITS);
        for width_bits in [1u64, 7, 32, 64, 256, 1 << 20] {
            let cfg = SubchunkConfig { width_bits };
            let (out, stats) = decode_with(&stream, &book, &lut, cfg).unwrap();
            assert_eq!(out, syms, "width {width_bits}");
            assert!(stats.max_sync_passes >= 1);
            assert!(stats.decoded_symbols > 0);
        }
    }

    #[test]
    fn narrow_lut_exercises_slow_path() {
        let (stream, book, syms) = stream_and_book(6_000);
        // max_len here exceeds 1 bit, so a 1-bit LUT forces the serial
        // fall-back for most symbols.
        let lut = DecodeLut::build(&book, 1);
        let (out, _) = decode_with(&stream, &book, &lut, SubchunkConfig::default()).unwrap();
        assert_eq!(out, syms);
    }

    #[test]
    fn deep_codebook_beyond_lut_roundtrips() {
        // 30-bit codewords: far past the 12-bit table, all slow path.
        let lengths: Vec<u32> = (1..=30).chain([30]).collect();
        let book = CanonicalCodebook::from_lengths(&lengths).unwrap();
        let syms: Vec<u16> = (0..2_000).map(|i| (i % 31) as u16).collect();
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(8, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(decode(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn single_nonzero_symbol_stream_decodes() {
        let book = codebook::parallel(&[0, 9, 0], 2).unwrap();
        let syms = vec![1u16; 5_000];
        let stream = reduce_shuffle::encode(
            &syms,
            &book,
            MergeConfig::new(8, 2),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert_eq!(decode(&stream, &book).unwrap(), syms);
    }

    #[test]
    fn all_equal_frequencies_at_lut_boundary() {
        // 4096 equally-frequent symbols -> complete 12-bit code, exactly
        // the table width; every window is a direct hit. 8192 symbols ->
        // 13-bit codes, every probe takes the slow path. Both roundtrip.
        for (n_syms, data_len) in [(4096usize, 8_000usize), (8192, 4_000)] {
            let lengths = vec![n_syms.trailing_zeros(); n_syms];
            let book = CanonicalCodebook::from_lengths(&lengths).unwrap();
            let syms: Vec<u16> =
                (0..data_len).map(|i| ((i * 2654435761) % n_syms) as u16).collect();
            let stream = reduce_shuffle::encode(
                &syms,
                &book,
                MergeConfig::new(9, 3),
                BreakingStrategy::SparseSidecar,
            )
            .unwrap();
            assert_eq!(decode(&stream, &book).unwrap(), syms, "{n_syms} symbols");
        }
    }

    #[test]
    fn header_count_exceeding_encoded_symbols_errors() {
        let (mut stream, book, syms) = stream_and_book(4_000);
        stream.num_symbols = syms.len() + stream.config.chunk_symbols();
        stream.chunk_bit_lens.push(0);
        stream.chunk_bit_offsets.push(stream.total_bits);
        assert!(matches!(decode(&stream, &book), Err(HuffError::CorruptStream(_))));
    }

    #[test]
    fn corrupt_chunk_span_errors_not_panics() {
        let (mut stream, book, _) = stream_and_book(4_000);
        if let Some(o) = stream.chunk_bit_offsets.first_mut() {
            *o = stream.total_bits + 100;
        }
        assert!(decode(&stream, &book).is_err());
    }

    #[test]
    fn strict_error_names_failing_chunk_subchunk_and_gap() {
        // Physically truncate the payload while leaving the chunk table
        // intact: strict decode must report the first chunk and subchunk
        // the surviving bytes cannot back, not panic in the bit reader.
        let (mut stream, book, _) = stream_and_book(20_000);
        assert!(stream.num_chunks() >= 3);
        let keep = stream.bytes.len() / 2;
        stream.bytes.truncate(keep);
        let err = decode(&stream, &book).unwrap_err();
        let HuffError::GapArray { chunk, subchunk, gap_bit, ref detail } = err else {
            panic!("expected GapArray, got {err:?}");
        };
        // The reported position is consistent with the truncation point:
        // the gap sits inside the named chunk's bit span, at or past the
        // surviving bytes' coverage of that chunk's start.
        let off = stream.chunk_bit_offsets[chunk];
        let len = stream.chunk_bit_lens[chunk];
        assert!(gap_bit >= off && gap_bit < off + len, "gap {gap_bit} outside chunk span");
        let w = SubchunkConfig::default().width_bits;
        assert_eq!(subchunk, ((gap_bit - off) / w) as usize);
        assert!(detail.contains("truncated"), "detail: {detail}");
        // The rendered message names all three indices.
        let msg = err.to_string();
        assert!(msg.contains(&format!("chunk {chunk}")), "{msg}");
        assert!(msg.contains(&format!("subchunk {subchunk}")), "{msg}");
        assert!(msg.contains(&format!("gap bit {gap_bit}")), "{msg}");
    }

    #[test]
    fn nonconverging_sync_error_is_indexed_too() {
        // Shrink a chunk's recorded bit length so its subsequence walk
        // proposes boundaries that can never settle inside the span; if it
        // instead settles, decode still fails with an indexed error from
        // the decode pass. Either way strict mode must not panic and must
        // surface a GapArray error or a count mismatch.
        let (mut stream, book, _) = stream_and_book(20_000);
        let l = stream.chunk_bit_lens[1];
        stream.chunk_bit_lens[1] = l / 3 + 1;
        match decode(&stream, &book) {
            Err(HuffError::GapArray { chunk, .. }) => assert_eq!(chunk, 1),
            Err(HuffError::CorruptStream(_)) => {}
            other => panic!("expected a strict decode error, got {other:?}"),
        }
    }

    #[test]
    fn best_effort_matches_chunked_best_effort() {
        let (stream, book, _) = stream_and_book(20_000);
        let n = stream.num_chunks();
        assert!(n >= 3);
        let mut damaged = vec![false; n];
        damaged[1] = true;
        let lut_out = decode_best_effort(&stream, &book, &damaged, 0xDEAD);
        let chk_out = chunked::decode_best_effort(&stream, &book, &damaged, 0xDEAD);
        assert_eq!(lut_out, chk_out);
    }

    #[test]
    fn empty_stream_decodes_empty() {
        let book = codebook::parallel(&[3, 1], 2).unwrap();
        let stream = reduce_shuffle::encode(
            &[],
            &book,
            MergeConfig::default(),
            BreakingStrategy::SparseSidecar,
        )
        .unwrap();
        assert!(decode(&stream, &book).unwrap().is_empty());
    }

    #[test]
    fn stats_count_real_work() {
        let (stream, book, syms) = stream_and_book(10_000);
        let lut = DecodeLut::build(&book, DEFAULT_LUT_BITS);
        let (out, stats) = decode_with(&stream, &book, &lut, SubchunkConfig::default()).unwrap();
        assert_eq!(out, syms);
        // Every coded symbol is stepped at least once during sync and
        // decoded exactly once.
        assert!(stats.decoded_symbols <= syms.len() as u64);
        assert!(stats.sync_steps >= stats.decoded_symbols);
        assert!(stats.subsequences >= stream.num_chunks() as u64);
        let est = GapStats::estimate(&stream, SubchunkConfig::default());
        assert_eq!(est.subsequences, stats.subsequences);
    }
}
