//! Stage 1 of the pipeline: histogramming.
//!
//! Three implementations with identical results:
//! * [`serial::histogram`] — reference;
//! * [`parallel_cpu::histogram`] — privatized per-thread histograms merged
//!   by reduction (the multithread CPU encoder's first stage, Table VI);
//! * [`gpu::histogram`] — the Gómez-Luna et al. replicated shared-memory
//!   histogram kernel on the simulated device (Section IV-A).

pub mod gpu;
pub mod parallel_cpu;
pub mod serial;

/// A frequency histogram over `num_symbols` integer-coded symbols.
pub type Histogram = Vec<u64>;

/// Validate that `data`'s symbols all fall below `num_symbols`. Returns the
/// first offending symbol if any.
pub fn check_range(data: &[u16], num_symbols: usize) -> Option<usize> {
    data.iter().find(|&&s| (s as usize) >= num_symbols).map(|&s| s as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_range_finds_offender() {
        assert_eq!(check_range(&[1, 2, 300], 256), Some(300));
        assert_eq!(check_range(&[1, 2, 255], 256), None);
        assert_eq!(check_range(&[], 1), None);
    }

    /// All three implementations agree on random data.
    #[test]
    fn implementations_agree() {
        use gpu_sim::Gpu;
        let data: Vec<u16> =
            (0..50_000u32).map(|i| ((i.wrapping_mul(2654435761)) >> 20) as u16 % 1024).collect();
        let a = serial::histogram(&data, 1024);
        let b = parallel_cpu::histogram(&data, 1024, 8);
        let gpu = Gpu::v100();
        let c = gpu::histogram(&gpu, &data, 1024, 2);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.iter().sum::<u64>(), 50_000);
    }
}
