//! Gómez-Luna replicated shared-memory histogram on the simulated device.
//!
//! Section IV-A: the histogram is replicated per thread block (and further
//! replicated within the block when shared memory allows) so that atomic
//! updates spread over many copies; per-block copies are then combined by a
//! parallel reduction into the single global histogram.
//!
//! Two kernels, matching Table I:
//! * `hist_blockwise_reduction` — blocks read coalesced partitions of the
//!   input, update replicated shared histograms with atomics, reduce their
//!   replicas, and write one partial histogram per block;
//! * `hist_gridwise_reduction` — partial histograms are tree-reduced into
//!   the global histogram.

use super::Histogram;
use gpu_sim::atomic::{expected_conflicts, histogram_skew};
use gpu_sim::{Access, Gpu, GridDim};
use rayon::prelude::*;

/// Number of threads per block for the histogram kernels.
const BLOCK_THREADS: u32 = 256;

/// Compute the histogram of `data` on the device, charging modeled time to
/// the device clock. `symbol_bytes` is the dataset's native symbol width
/// (the basis of the input-read traffic and the GB/s figures).
pub fn histogram(gpu: &Gpu, data: &[u16], num_symbols: usize, symbol_bytes: u64) -> Histogram {
    // One block per SM-resident slot; each block strides the input. The
    // per-block partition is data.len()/blocks.
    let blocks = (gpu.spec().sm_count * 8).min(1024);
    let grid = GridDim::new(blocks, BLOCK_THREADS);

    // Replication degree: how many shared-memory copies of the histogram
    // fit per block (at least 1; the paper's kernel degrades to a single
    // copy for large codebooks such as 8192 bins).
    let hist_bytes = num_symbols * std::mem::size_of::<u32>();
    let copies = (gpu.spec().shared_mem_per_block / hist_bytes.max(1)).clamp(1, 8);

    let partials: Vec<Histogram> = gpu.launch("hist_blockwise_reduction", grid, |scope| {
        let chunk = data.len().div_ceil(blocks as usize).max(1);
        let partials: Vec<Histogram> = data
            .par_chunks(chunk)
            .map(|part| super::serial::histogram(part, num_symbols))
            .collect();

        // Traffic: every input element is read once, coalesced; each
        // element performs one shared-memory atomic into one of `copies`
        // replicas; replicas are reduced and each block writes one partial.
        let n = data.len() as u64;
        let skew = {
            // Estimate skew from the combined partials (the data itself).
            let mut combined = vec![0u64; num_symbols];
            for p in &partials {
                for (c, v) in combined.iter_mut().zip(p) {
                    *c += v;
                }
            }
            histogram_skew(&combined)
        };
        let t = scope.traffic();
        t.read(Access::Coalesced, n, symbol_bytes);
        // Conflicts serialize at warp granularity: the hardware resolves a
        // warp's same-address atomics as one multi-update transaction, so
        // the serialization cost is per warp-instruction, not per lane.
        let conflicts = expected_conflicts(n, (num_symbols * copies) as u64, skew / copies as f64)
            / u64::from(gpu.spec().warp_size);
        t.shared_atomic(n, conflicts);
        t.shared((copies as u64) * num_symbols as u64 * 4);
        t.write(Access::Coalesced, u64::from(blocks) * num_symbols as u64, 4);
        t.ops(2 * n);
        partials
    });

    gpu.launch("hist_gridwise_reduction", GridDim::cover(num_symbols, BLOCK_THREADS), |scope| {
        let out = (0..num_symbols)
            .into_par_iter()
            .map(|bin| partials.iter().map(|p| p[bin]).sum())
            .collect();
        let t = scope.traffic();
        t.read(Access::Coalesced, partials.len() as u64 * num_symbols as u64, 8);
        t.write(Access::Coalesced, num_symbols as u64, 8);
        t.ops(partials.len() as u64 * num_symbols as u64);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn matches_serial() {
        let data: Vec<u16> = (0..30_000u32).map(|i| (i % 777) as u16).collect();
        let gpu = Gpu::new(DeviceSpec::test_part());
        let h = histogram(&gpu, &data, 1024, 2);
        assert_eq!(h, crate::histogram::serial::histogram(&data, 1024));
    }

    #[test]
    fn empty_input_gives_zero_histogram() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let h = histogram(&gpu, &[], 16, 2);
        assert_eq!(h, vec![0u64; 16]);
    }

    #[test]
    fn charges_two_kernels() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let _ = histogram(&gpu, &[1, 2, 3], 8, 2);
        assert_eq!(gpu.clock().launches(), 2);
        assert!(gpu.elapsed_matching("hist_blockwise") > 0.0);
        assert!(gpu.elapsed_matching("hist_gridwise") > 0.0);
    }

    #[test]
    fn modeled_throughput_near_bandwidth_on_v100() {
        // Table V: histogramming reaches ~200-276 GB/s on the V100 for
        // large inputs (reads dominate; atomics and the final reduction
        // cost the rest). Check the model lands in a sane band.
        let data: Vec<u16> = (0..(64 << 20) / 2).map(|i| (i % 1024) as u16).collect();
        let gpu = Gpu::v100();
        let _ = histogram(&gpu, &data, 1024, 2);
        let gbps = gpu_sim::gbps(gpu_sim::throughput((data.len() * 2) as u64, gpu.elapsed()));
        assert!(gbps > 80.0 && gbps < 900.0, "modeled {gbps} GB/s");
    }

    #[test]
    fn skewed_data_is_slower_than_uniform() {
        let uniform: Vec<u16> = (0..2_000_000u32).map(|i| (i % 1024) as u16).collect();
        let skewed: Vec<u16> = vec![7u16; 2_000_000];
        let g1 = Gpu::v100();
        let _ = histogram(&g1, &uniform, 1024, 2);
        let g2 = Gpu::v100();
        let _ = histogram(&g2, &skewed, 1024, 2);
        assert!(g2.elapsed() > g1.elapsed(), "skewed {} <= uniform {}", g2.elapsed(), g1.elapsed());
    }
}
