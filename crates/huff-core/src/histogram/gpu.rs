//! Gómez-Luna replicated shared-memory histogram on the simulated device.
//!
//! Section IV-A: the histogram is replicated per thread block (and further
//! replicated within the block when shared memory allows) so that atomic
//! updates spread over many copies; per-block copies are then combined
//! into the single global histogram.
//!
//! Two launch shapes, selected by [`KernelPlan::fused_histogram`]:
//!
//! * **Fused (default)** — `hist_fused_reduction`: full privatization in a
//!   single kernel. A smaller grid (each block strides a larger input
//!   partition, so its replica amortizes over more data) reduces its
//!   shared-memory replicas and *commits* them straight into the global
//!   histogram with consecutive-address atomics, which the L2 resolves at
//!   sector granularity ([`gpu_sim::Traffic::global_atomic_coalesced`]). This
//!   eliminates both the partials round-trip through DRAM and the
//!   latency-bound tree-reduce launch.
//! * **Unfused** — the paper's Table I pair: `hist_blockwise_reduction`
//!   writes one partial histogram per block, then `hist_gridwise_reduction`
//!   tree-reduces the partials. Retained verbatim for comparison, and used
//!   automatically whenever the histogram does not fit a block's shared
//!   memory (large-bin codebooks cannot be privatized).

use super::Histogram;
use crate::plan::KernelPlan;
use gpu_sim::atomic::{expected_conflicts, histogram_skew};
use gpu_sim::{Access, Gpu, GridDim};
use rayon::prelude::*;

/// Number of threads per block for the histogram kernels.
const BLOCK_THREADS: u32 = 256;

/// Compute the histogram of `data` on the device under the default
/// (fused) plan. See [`histogram_with_plan`].
pub fn histogram(gpu: &Gpu, data: &[u16], num_symbols: usize, symbol_bytes: u64) -> Histogram {
    histogram_with_plan(gpu, data, num_symbols, symbol_bytes, KernelPlan::default())
}

/// Compute the histogram of `data` on the device, charging modeled time to
/// the device clock. `symbol_bytes` is the dataset's native symbol width
/// (the basis of the input-read traffic and the GB/s figures). The result
/// is identical for every plan; only the modeled launch/traffic shape
/// differs.
pub fn histogram_with_plan(
    gpu: &Gpu,
    data: &[u16],
    num_symbols: usize,
    symbol_bytes: u64,
    plan: KernelPlan,
) -> Histogram {
    let hist_bytes = num_symbols * std::mem::size_of::<u32>();
    // Replication degree: how many shared-memory copies of the histogram
    // fit per block (at least 1; the paper's kernel degrades to a single
    // copy for large codebooks such as 8192 bins).
    let copies = (gpu.spec().shared_mem_per_block / hist_bytes.max(1)).clamp(1, 8);

    // Full privatization needs at least one complete replica in shared
    // memory; past that the fused commit has nothing to commit from and
    // the two-kernel global-memory path is the only option.
    if plan.fused_histogram && hist_bytes <= gpu.spec().shared_mem_per_block {
        fused(gpu, data, num_symbols, symbol_bytes, copies)
    } else {
        two_kernel(gpu, data, num_symbols, symbol_bytes, copies)
    }
}

/// Estimate the skew of the data's symbol distribution from the combined
/// partials (the data itself), for the shared-atomic conflict model.
fn combined_skew(partials: &[Histogram], num_symbols: usize) -> f64 {
    let mut combined = vec![0u64; num_symbols];
    for p in partials {
        for (c, v) in combined.iter_mut().zip(p) {
            *c += v;
        }
    }
    histogram_skew(&combined)
}

/// Charge the traffic shared by both launch shapes: the coalesced input
/// read, the replicated shared-memory atomics, and the replica storage.
fn charge_read_phase(
    t: &mut gpu_sim::Traffic,
    n: u64,
    num_symbols: usize,
    copies: usize,
    skew: f64,
    warp_size: u32,
    symbol_bytes: u64,
) {
    t.read(Access::Coalesced, n, symbol_bytes);
    // Conflicts serialize at warp granularity: the hardware resolves a
    // warp's same-address atomics as one multi-update transaction, so
    // the serialization cost is per warp-instruction, not per lane.
    let conflicts = expected_conflicts(n, (num_symbols * copies) as u64, skew / copies as f64)
        / u64::from(warp_size);
    t.shared_atomic(n, conflicts);
    t.shared((copies as u64) * num_symbols as u64 * 4);
    t.ops(2 * n);
}

/// Single-kernel full-privatization histogram (Gómez-Luna commit style).
fn fused(
    gpu: &Gpu,
    data: &[u16],
    num_symbols: usize,
    symbol_bytes: u64,
    copies: usize,
) -> Histogram {
    // Half the unfused grid: each replica covers twice the input, so the
    // commit phase (one atomic per bin per block) stays cheap relative to
    // the read phase it piggybacks on.
    let blocks = (gpu.spec().sm_count * 4).min(512);
    let grid = GridDim::new(blocks, BLOCK_THREADS);

    gpu.launch("hist_fused_reduction", grid, |scope| {
        let chunk = data.len().div_ceil(blocks as usize).max(1);
        let partials: Vec<Histogram> = data
            .par_chunks(chunk)
            .map(|part| super::serial::histogram(part, num_symbols))
            .collect();
        let committing = partials.len() as u64;

        let out = (0..num_symbols)
            .into_par_iter()
            .map(|bin| partials.iter().map(|p| p[bin]).sum())
            .collect();

        let n = data.len() as u64;
        let skew = combined_skew(&partials, num_symbols);
        let t = scope.traffic();
        charge_read_phase(t, n, num_symbols, copies, skew, gpu.spec().warp_size, symbol_bytes);
        // Commit: each block adds its reduced replica into the global
        // histogram bin-by-bin. Lanes hit consecutive bins (distinct
        // addresses within a warp), so the L2 folds the adds into
        // sector-granular RMW traffic; the serialization chain is the
        // per-bin collision across blocks, at most one per committer.
        t.global_atomic_coalesced(committing * num_symbols as u64, 4, committing);
        t.ops(committing * num_symbols as u64);
        out
    })
}

/// The paper's two-kernel blockwise + gridwise reduction pair.
fn two_kernel(
    gpu: &Gpu,
    data: &[u16],
    num_symbols: usize,
    symbol_bytes: u64,
    copies: usize,
) -> Histogram {
    // One block per SM-resident slot; each block strides the input. The
    // per-block partition is data.len()/blocks.
    let blocks = (gpu.spec().sm_count * 8).min(1024);
    let grid = GridDim::new(blocks, BLOCK_THREADS);

    let partials: Vec<Histogram> = gpu.launch("hist_blockwise_reduction", grid, |scope| {
        let chunk = data.len().div_ceil(blocks as usize).max(1);
        let partials: Vec<Histogram> = data
            .par_chunks(chunk)
            .map(|part| super::serial::histogram(part, num_symbols))
            .collect();

        // Traffic: every input element is read once, coalesced; each
        // element performs one shared-memory atomic into one of `copies`
        // replicas; replicas are reduced and each block writes one partial.
        let n = data.len() as u64;
        let skew = combined_skew(&partials, num_symbols);
        let t = scope.traffic();
        charge_read_phase(t, n, num_symbols, copies, skew, gpu.spec().warp_size, symbol_bytes);
        t.write(Access::Coalesced, u64::from(blocks) * num_symbols as u64, 4);
        partials
    });

    gpu.launch("hist_gridwise_reduction", GridDim::cover(num_symbols, BLOCK_THREADS), |scope| {
        let out = (0..num_symbols)
            .into_par_iter()
            .map(|bin| partials.iter().map(|p| p[bin]).sum())
            .collect();
        let t = scope.traffic();
        t.read(Access::Coalesced, partials.len() as u64 * num_symbols as u64, 8);
        t.write(Access::Coalesced, num_symbols as u64, 8);
        t.ops(partials.len() as u64 * num_symbols as u64);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn matches_serial() {
        let data: Vec<u16> = (0..30_000u32).map(|i| (i % 777) as u16).collect();
        let gpu = Gpu::new(DeviceSpec::test_part());
        let h = histogram(&gpu, &data, 1024, 2);
        assert_eq!(h, crate::histogram::serial::histogram(&data, 1024));
    }

    #[test]
    fn fused_and_unfused_agree() {
        let data: Vec<u16> = (0..50_000u32).map(|i| ((i * 31) % 613) as u16).collect();
        let g1 = Gpu::new(DeviceSpec::test_part());
        let g2 = Gpu::new(DeviceSpec::test_part());
        let fused = histogram_with_plan(&g1, &data, 1024, 2, KernelPlan::fused());
        let unfused = histogram_with_plan(&g2, &data, 1024, 2, KernelPlan::unfused());
        assert_eq!(fused, unfused);
    }

    #[test]
    fn empty_input_gives_zero_histogram() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let h = histogram(&gpu, &[], 16, 2);
        assert_eq!(h, vec![0u64; 16]);
    }

    #[test]
    fn fused_plan_charges_one_kernel() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let _ = histogram(&gpu, &[1, 2, 3], 8, 2);
        assert_eq!(gpu.clock().launches(), 1);
        assert!(gpu.elapsed_matching("hist_fused") > 0.0);
        assert_eq!(gpu.elapsed_matching("hist_gridwise"), 0.0);
    }

    #[test]
    fn unfused_plan_charges_two_kernels() {
        let gpu = Gpu::new(DeviceSpec::test_part());
        let _ = histogram_with_plan(&gpu, &[1, 2, 3], 8, 2, KernelPlan::unfused());
        assert_eq!(gpu.clock().launches(), 2);
        assert!(gpu.elapsed_matching("hist_blockwise") > 0.0);
        assert!(gpu.elapsed_matching("hist_gridwise") > 0.0);
    }

    #[test]
    fn large_bin_histogram_falls_back_to_two_kernels() {
        // 65536 bins x 4 B = 256 KiB: no block can privatize that, so the
        // fused plan degrades to the two-kernel global-memory path.
        let gpu = Gpu::v100();
        let data: Vec<u16> = (0..10_000u32).map(|i| (i % 60_000) as u16).collect();
        let h = histogram_with_plan(&gpu, &data, 65_536, 2, KernelPlan::fused());
        assert_eq!(h, crate::histogram::serial::histogram(&data, 65_536));
        assert_eq!(gpu.clock().launches(), 2);
        assert!(gpu.elapsed_matching("hist_gridwise") > 0.0);
    }

    #[test]
    fn fused_is_faster_than_unfused_at_scale() {
        // The whole point of the fusion: the commit is cheaper than the
        // partials round-trip plus the latency-bound tree-reduce launch.
        let data: Vec<u16> = (0..(8 << 20)).map(|i| (i % 1024) as u16).collect();
        let g1 = Gpu::v100();
        let _ = histogram_with_plan(&g1, &data, 1024, 2, KernelPlan::fused());
        let g2 = Gpu::v100();
        let _ = histogram_with_plan(&g2, &data, 1024, 2, KernelPlan::unfused());
        assert!(g1.elapsed() < g2.elapsed(), "fused {} >= unfused {}", g1.elapsed(), g2.elapsed());
    }

    #[test]
    fn modeled_throughput_near_bandwidth_on_v100() {
        // Table V: histogramming reaches ~200-276 GB/s on the V100 for
        // large inputs (reads dominate; atomics and the final reduction
        // cost the rest). Check the model lands in a sane band.
        let data: Vec<u16> = (0..(64 << 20) / 2).map(|i| (i % 1024) as u16).collect();
        let gpu = Gpu::v100();
        let _ = histogram(&gpu, &data, 1024, 2);
        let gbps = gpu_sim::gbps(gpu_sim::throughput((data.len() * 2) as u64, gpu.elapsed()));
        assert!(gbps > 80.0 && gbps < 900.0, "modeled {gbps} GB/s");
    }

    #[test]
    fn skewed_data_is_slower_than_uniform() {
        let uniform: Vec<u16> = (0..2_000_000u32).map(|i| (i % 1024) as u16).collect();
        let skewed: Vec<u16> = vec![7u16; 2_000_000];
        let g1 = Gpu::v100();
        let _ = histogram(&g1, &uniform, 1024, 2);
        let g2 = Gpu::v100();
        let _ = histogram(&g2, &skewed, 1024, 2);
        assert!(g2.elapsed() > g1.elapsed(), "skewed {} <= uniform {}", g2.elapsed(), g1.elapsed());
    }
}
