//! Multithreaded privatized histogram (the CPU baseline of Table VI).
//!
//! Each worker counts a contiguous slice into a private histogram;
//! privates are then merged by a tree reduction. This is the same
//! conflict-avoidance idea as the GPU kernel's replicated shared-memory
//! copies, realized with per-thread privatization.

use super::Histogram;
use rayon::prelude::*;

/// Histogram `data` using up to `threads` workers.
pub fn histogram(data: &[u16], num_symbols: usize, threads: usize) -> Histogram {
    let threads = threads.max(1);
    if threads == 1 || data.len() < 4096 {
        return super::serial::histogram(data, num_symbols);
    }
    let chunk = data.len().div_ceil(threads);
    data.par_chunks(chunk).map(|part| super::serial::histogram(part, num_symbols)).fold(
        vec![0u64; num_symbols],
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        },
    )
}

/// Run `histogram` inside a dedicated rayon pool of exactly `threads`
/// workers — the Table IV/VI "N cores" sweep needs hard thread bounds, not
/// the global pool.
pub fn histogram_with_pool(data: &[u16], num_symbols: usize, threads: usize) -> Histogram {
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(threads.max(1)).build().expect("thread pool");
    pool.install(|| histogram(data, num_symbols, threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_on_random_data() {
        let data: Vec<u16> =
            (0..100_000u32).map(|i| (i.wrapping_mul(48271) >> 16) as u16 % 512).collect();
        let s = crate::histogram::serial::histogram(&data, 512);
        for t in [1, 2, 4, 7, 16] {
            assert_eq!(histogram(&data, 512, t), s, "threads={t}");
        }
    }

    #[test]
    fn small_input_falls_back_to_serial() {
        let data = vec![3u16; 100];
        let h = histogram(&data, 4, 8);
        assert_eq!(h[3], 100);
    }

    #[test]
    fn zero_threads_treated_as_one() {
        let h = histogram(&[1, 1], 2, 0);
        assert_eq!(h, vec![0, 2]);
    }

    #[test]
    fn pooled_version_agrees() {
        let data: Vec<u16> = (0..20_000).map(|i| (i % 97) as u16).collect();
        let a = histogram(&data, 97, 4);
        let b = histogram_with_pool(&data, 97, 4);
        assert_eq!(a, b);
    }
}
