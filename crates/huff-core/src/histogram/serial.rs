//! Serial reference histogram.

use super::Histogram;

/// Count symbol frequencies with a single pass.
///
/// # Panics
/// Panics (in debug) if a symbol is out of range; release builds would
/// panic on the indexing. Use [`super::check_range`] to pre-validate
/// untrusted data.
pub fn histogram(data: &[u16], num_symbols: usize) -> Histogram {
    let mut h = vec![0u64; num_symbols];
    for &s in data {
        h[s as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_each_symbol() {
        let h = histogram(&[0, 1, 1, 3, 3, 3], 4);
        assert_eq!(h, vec![1, 2, 0, 3]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(histogram(&[], 4), vec![0; 4]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = histogram(&[5], 4);
    }
}
