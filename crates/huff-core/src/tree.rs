//! Serial Huffman tree construction — the reference the parallel codebook
//! is validated against, and the "SZ serial" baseline of Tables III/IV.
//!
//! Classic `O(n log n)` binary-heap construction of the Huffman tree,
//! plus traversal to per-symbol codeword lengths and codes. Deterministic:
//! ties are broken by node creation order, which also bounds the maximum
//! code length the same way SZ's implementation does.

use crate::codeword::Codeword;
use crate::error::{HuffError, Result};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A node of the Huffman tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A leaf carrying the input symbol it encodes.
    Leaf {
        /// Symbol value.
        symbol: u16,
        /// Its frequency.
        freq: u64,
    },
    /// An internal node with two children.
    Internal {
        /// Combined frequency.
        freq: u64,
        /// Left child (bit 0).
        left: Box<Node>,
        /// Right child (bit 1).
        right: Box<Node>,
    },
}

impl Node {
    /// This subtree's total frequency.
    pub fn freq(&self) -> u64 {
        match self {
            Node::Leaf { freq, .. } | Node::Internal { freq, .. } => *freq,
        }
    }

    /// Number of leaves below (and including) this node.
    pub fn leaf_count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { left, right, .. } => left.leaf_count() + right.leaf_count(),
        }
    }

    /// Height of the subtree (a single leaf has height 0).
    pub fn height(&self) -> u32 {
        match self {
            Node::Leaf { .. } => 0,
            Node::Internal { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }
}

/// Build the Huffman tree for a histogram. Symbols with zero frequency are
/// excluded. Errors if no symbol has a nonzero frequency.
pub fn build_tree(freqs: &[u64]) -> Result<Node> {
    // (freq, tie-break sequence) min-heap; creation order as tie-break
    // keeps the construction deterministic and matches the two-queue
    // property the parallel algorithm relies on.
    struct Item {
        freq: u64,
        seq: u64,
        node: Box<Node>,
    }
    impl PartialEq for Item {
        fn eq(&self, other: &Self) -> bool {
            (self.freq, self.seq) == (other.freq, other.seq)
        }
    }
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.freq, self.seq).cmp(&(other.freq, other.seq))
        }
    }

    let mut heap: BinaryHeap<Reverse<Item>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (symbol, &freq) in freqs.iter().enumerate() {
        if freq > 0 {
            heap.push(Reverse(Item {
                freq,
                seq,
                node: Box::new(Node::Leaf { symbol: symbol as u16, freq }),
            }));
            seq += 1;
        }
    }
    if heap.is_empty() {
        return Err(HuffError::EmptyHistogram);
    }
    if heap.len() == 1 {
        // Degenerate single-symbol alphabet: give it a 1-bit code by
        // pairing the leaf with itself under a synthetic root.
        let Reverse(item) = heap.pop().expect("one node");
        let clone = item.node.clone();
        return Ok(Node::Internal { freq: item.freq, left: item.node, right: clone });
    }
    while heap.len() > 1 {
        let Reverse(a) = heap.pop().expect("len > 1");
        let Reverse(b) = heap.pop().expect("len > 1");
        let freq = a.freq + b.freq;
        heap.push(Reverse(Item {
            freq,
            seq,
            node: Box::new(Node::Internal { freq, left: a.node, right: b.node }),
        }));
        seq += 1;
    }
    let Reverse(root) = heap.pop().expect("exactly one");
    Ok(*root.node)
}

/// Per-symbol codeword lengths from a histogram: `lengths[s]` is 0 for
/// absent symbols. This is the quantity the parallel `GenerateCL` must
/// reproduce (up to tie-breaking, with identical weighted total).
pub fn codeword_lengths(freqs: &[u64]) -> Result<Vec<u32>> {
    let tree = build_tree(freqs)?;
    let mut lengths = vec![0u32; freqs.len()];
    // Single-symbol degenerate tree duplicates the leaf; depth-first walk
    // assigns the same length twice, harmlessly.
    fn walk(node: &Node, depth: u32, lengths: &mut [u32]) {
        match node {
            Node::Leaf { symbol, .. } => lengths[*symbol as usize] = depth.max(1),
            Node::Internal { left, right, .. } => {
                walk(left, depth + 1, lengths);
                walk(right, depth + 1, lengths);
            }
        }
    }
    walk(&tree, 0, &mut lengths);
    Ok(lengths)
}

/// Tree-derived (non-canonical) codewords: left edge appends 0, right
/// appends 1. Used only as a reference; the production codebook is
/// canonical.
pub fn tree_codebook(freqs: &[u64]) -> Result<Vec<Codeword>> {
    let tree = build_tree(freqs)?;
    let mut codes = vec![Codeword::EMPTY; freqs.len()];
    fn walk(node: &Node, prefix: u64, depth: u32, codes: &mut [Codeword]) {
        match node {
            Node::Leaf { symbol, .. } => {
                codes[*symbol as usize] = Codeword::new(prefix, depth.max(1))
            }
            Node::Internal { left, right, .. } => {
                walk(left, prefix << 1, depth + 1, codes);
                walk(right, (prefix << 1) | 1, depth + 1, codes);
            }
        }
    }
    walk(&tree, 0, 0, &mut codes);
    Ok(codes)
}

/// Total encoded length in bits under optimal (Huffman) lengths.
pub fn weighted_length(freqs: &[u64], lengths: &[u32]) -> u64 {
    freqs.iter().zip(lengths).map(|(&f, &l)| f * u64::from(l)).sum()
}

/// Kraft sum numerator scaled by 2^64: exactly 2^64 for a complete
/// prefix-free code (returns the sum of `2^(64 - l)` over coded symbols).
pub fn kraft_sum(lengths: &[u32]) -> u128 {
    lengths.iter().filter(|&&l| l > 0).map(|&l| 1u128 << (64 - l.min(64))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_textbook_example() {
        // Freqs 1,1,2,4: lengths 3,3,2,1.
        let lens = codeword_lengths(&[1, 1, 2, 4]).unwrap();
        assert_eq!(lens, vec![3, 3, 2, 1]);
    }

    #[test]
    fn uniform_power_of_two_is_balanced() {
        let lens = codeword_lengths(&[5; 8]).unwrap();
        assert!(lens.iter().all(|&l| l == 3));
    }

    #[test]
    fn absent_symbols_get_zero_length() {
        let lens = codeword_lengths(&[3, 0, 3, 0]).unwrap();
        assert_eq!(lens[1], 0);
        assert_eq!(lens[3], 0);
        assert_eq!(lens[0], 1);
    }

    #[test]
    fn empty_histogram_errors() {
        assert!(matches!(codeword_lengths(&[0, 0]), Err(HuffError::EmptyHistogram)));
        assert!(matches!(codeword_lengths(&[]), Err(HuffError::EmptyHistogram)));
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lens = codeword_lengths(&[0, 9, 0]).unwrap();
        assert_eq!(lens, vec![0, 1, 0]);
    }

    #[test]
    fn two_symbols_one_bit_each() {
        let lens = codeword_lengths(&[7, 3]).unwrap();
        assert_eq!(lens, vec![1, 1]);
    }

    #[test]
    fn kraft_equality_holds() {
        let lens = codeword_lengths(&[5, 9, 12, 13, 16, 45]).unwrap();
        assert_eq!(kraft_sum(&lens), 1u128 << 64);
    }

    #[test]
    fn tree_codebook_is_prefix_free() {
        let codes = tree_codebook(&[5, 9, 12, 13, 16, 45]).unwrap();
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert!(!a.is_prefix_of(b), "{a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn fibonacci_freqs_give_skewed_depths() {
        // Fibonacci frequencies force the deepest possible tree.
        let freqs = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        let lens = codeword_lengths(&freqs).unwrap();
        assert_eq!(*lens.iter().max().unwrap(), 9);
        assert_eq!(kraft_sum(&lens), 1u128 << 64);
    }

    #[test]
    fn weighted_length_is_optimal_vs_fixed() {
        let freqs = [50u64, 30, 15, 5];
        let lens = codeword_lengths(&freqs).unwrap();
        let huff = weighted_length(&freqs, &lens);
        let fixed = 100 * 2; // 2 bits for 4 symbols
        assert!(huff <= fixed);
    }

    #[test]
    fn node_metrics() {
        let tree = build_tree(&[1, 1, 2]).unwrap();
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.freq(), 4);
        assert_eq!(tree.height(), 2);
    }
}
