//! Error types for the Huffman pipeline.

use crate::integrity::Section;
use std::fmt;

/// Errors surfaced by codebook construction, encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffError {
    /// The input histogram has no nonzero frequency.
    EmptyHistogram,
    /// A symbol outside the codebook's range was encountered.
    SymbolOutOfRange {
        /// The offending symbol value.
        symbol: usize,
        /// The codebook size.
        codebook: usize,
    },
    /// A symbol with zero frequency (no codeword) appeared in the input.
    MissingCodeword(usize),
    /// A codeword would exceed the maximum representable length.
    CodewordTooLong {
        /// Required length in bits.
        len: u32,
        /// Maximum supported length.
        max: u32,
    },
    /// The compressed stream ended mid-codeword or is otherwise malformed.
    CorruptStream(&'static str),
    /// Strict gap-array (LUT) decode failed at a specific subchunk — the
    /// indices make the serving engine's degradation log actionable.
    GapArray {
        /// Chunk index within the stream.
        chunk: usize,
        /// Subchunk (subsequence) index within the chunk.
        subchunk: usize,
        /// Bit offset of the subchunk's synchronization gap.
        gap_bit: u64,
        /// What went wrong at that subchunk.
        detail: String,
    },
    /// An archive header field is invalid.
    BadArchive(String),
    /// A stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Which archive section failed verification.
        section: Section,
        /// Chunk index for per-chunk payload checksums, `None` for the
        /// header checksum.
        chunk: Option<u32>,
        /// The checksum stored in the archive.
        expected: u32,
        /// The checksum recomputed over the archive bytes.
        got: u32,
    },
}

impl fmt::Display for HuffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HuffError::EmptyHistogram => write!(f, "histogram contains no symbols"),
            HuffError::SymbolOutOfRange { symbol, codebook } => {
                write!(f, "symbol {symbol} out of range for codebook of {codebook}")
            }
            HuffError::MissingCodeword(s) => {
                write!(f, "symbol {s} has no codeword (zero frequency in histogram)")
            }
            HuffError::CodewordTooLong { len, max } => {
                write!(f, "codeword length {len} exceeds maximum {max}")
            }
            HuffError::CorruptStream(m) => write!(f, "corrupt stream: {m}"),
            HuffError::GapArray { chunk, subchunk, gap_bit, detail } => write!(
                f,
                "gap-array decode failed in chunk {chunk} subchunk {subchunk} \
                 (gap bit {gap_bit}): {detail}"
            ),
            HuffError::BadArchive(m) => write!(f, "bad archive: {m}"),
            HuffError::ChecksumMismatch { section, chunk, expected, got } => match chunk {
                Some(ci) => write!(
                    f,
                    "checksum mismatch in {section} chunk {ci}: stored {expected:#010x}, computed {got:#010x}"
                ),
                None => write!(
                    f,
                    "checksum mismatch in {section}: stored {expected:#010x}, computed {got:#010x}"
                ),
            },
        }
    }
}

impl std::error::Error for HuffError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, HuffError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HuffError::EmptyHistogram.to_string().contains("no symbols"));
        assert!(HuffError::SymbolOutOfRange { symbol: 300, codebook: 256 }
            .to_string()
            .contains("300"));
        assert!(HuffError::CodewordTooLong { len: 70, max: 64 }.to_string().contains("70"));
        assert!(HuffError::CorruptStream("truncated").to_string().contains("truncated"));
        let g = HuffError::GapArray {
            chunk: 3,
            subchunk: 7,
            gap_bit: 1920,
            detail: "synchronization did not converge".into(),
        };
        assert!(g.to_string().contains("chunk 3"));
        assert!(g.to_string().contains("subchunk 7"));
        assert!(g.to_string().contains("gap bit 1920"));
        assert!(g.to_string().contains("converge"));
        assert!(HuffError::BadArchive("magic".into()).to_string().contains("magic"));
        assert!(HuffError::MissingCodeword(9).to_string().contains('9'));
        let m = HuffError::ChecksumMismatch {
            section: Section::Payload,
            chunk: Some(7),
            expected: 0xDEADBEEF,
            got: 0,
        };
        assert!(m.to_string().contains("chunk 7"));
        assert!(m.to_string().contains("0xdeadbeef"));
        let h = HuffError::ChecksumMismatch {
            section: Section::Header,
            chunk: None,
            expected: 1,
            got: 2,
        };
        assert!(h.to_string().contains("header"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(HuffError::EmptyHistogram);
        assert!(!e.to_string().is_empty());
    }
}
