//! MSB-first bit streams.
//!
//! All encoders emit, and the decoder consumes, a dense MSB-first
//! bitstream: the first bit of the stream is the most significant bit of
//! the first byte. [`BitWriter`] backs the serial and multithreaded CPU
//! encoders; [`BitReader`] backs every decoder.

use crate::codeword::Codeword;
use crate::error::{HuffError, Result};

/// An append-only MSB-first bit buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already written into the trailing partial byte (0..8).
    partial_bits: u32,
    /// Total bits written.
    len_bits: u64,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// An empty writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        BitWriter { buf: Vec::with_capacity(bits.div_ceil(8)), partial_bits: 0, len_bits: 0 }
    }

    /// Append one bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.last_mut().expect("partial byte exists");
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
        self.len_bits += 1;
    }

    /// Append the `len` low bits of `bits`, MSB of the field first.
    #[inline]
    pub fn push_bits(&mut self, bits: u64, len: u32) {
        debug_assert!(len <= 64);
        debug_assert!(len == 64 || bits >> len == 0);
        let mut remaining = len;
        while remaining > 0 {
            let room = 8 - self.partial_bits;
            let take = room.min(remaining);
            let shift = remaining - take;
            let field = ((bits >> shift) & ((1u64 << take) - 1)) as u8;
            if self.partial_bits == 0 {
                self.buf.push(0);
            }
            let last = self.buf.last_mut().expect("partial byte exists");
            *last |= field << (room - take);
            self.partial_bits = (self.partial_bits + take) % 8;
            self.len_bits += u64::from(take);
            remaining -= take;
        }
    }

    /// Append a codeword.
    #[inline]
    pub fn push_code(&mut self, code: Codeword) {
        if code.len() == 64 {
            self.push_bits(code.bits() >> 32, 32);
            self.push_bits(code.bits() & 0xFFFF_FFFF, 32);
        } else {
            self.push_bits(code.bits(), code.len());
        }
    }

    /// Total bits written so far.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Finish, returning the byte buffer (trailing bits zero-padded) and
    /// the exact bit length.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.buf, self.len_bits)
    }

    /// Borrow the bytes written so far (trailing partial byte included).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append another writer's content, preserving bit alignment.
    pub fn append(&mut self, other: &BitWriter) {
        let mut remaining = other.len_bits;
        for &byte in &other.buf {
            let take = remaining.min(8) as u32;
            if take == 0 {
                break;
            }
            self.push_bits(u64::from(byte >> (8 - take)), take);
            remaining -= u64::from(take);
        }
    }
}

/// An MSB-first bit cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit position.
    pos: u64,
    /// Total readable bits.
    len_bits: u64,
}

impl<'a> BitReader<'a> {
    /// A reader over `buf` exposing exactly `len_bits` bits.
    ///
    /// # Panics
    /// Panics if `buf` is too short for `len_bits`.
    pub fn new(buf: &'a [u8], len_bits: u64) -> Self {
        assert!(
            (buf.len() as u64) * 8 >= len_bits,
            "buffer of {} bytes cannot hold {} bits",
            buf.len(),
            len_bits
        );
        BitReader { buf, pos: 0, len_bits }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.len_bits - self.pos
    }

    /// Current bit position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        if self.pos >= self.len_bits {
            return Err(HuffError::CorruptStream("read past end of bitstream"));
        }
        let byte = self.buf[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Read `len` bits MSB-first into the low bits of a `u64`.
    pub fn read_bits(&mut self, len: u32) -> Result<u64> {
        debug_assert!(len <= 64);
        if self.pos + u64::from(len) > self.len_bits {
            return Err(HuffError::CorruptStream("read past end of bitstream"));
        }
        let mut out = 0u64;
        let mut remaining = len;
        while remaining > 0 {
            let byte = self.buf[(self.pos / 8) as usize];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(remaining);
            let field = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | u64::from(field);
            self.pos += u64::from(take);
            remaining -= take;
        }
        Ok(out)
    }

    /// Read `len` bits MSB-first without consuming them.
    ///
    /// The multi-bit LUT decoder ([`crate::decode::lut`]) peeks a whole
    /// window, looks the prefix up, then [`skip`](Self::skip)s only the
    /// bits the matched codeword actually consumed.
    pub fn peek_bits(&self, len: u32) -> Result<u64> {
        self.clone().read_bits(len)
    }

    /// Skip `len` bits.
    pub fn skip(&mut self, len: u64) -> Result<()> {
        if self.pos + len > self.len_bits {
            return Err(HuffError::CorruptStream("skip past end of bitstream"));
        }
        self.pos += len;
        Ok(())
    }
}

/// Pack a `(bits, len)` sequence of 32-bit words holding `total_bits` of
/// payload into bytes — the final layout of the GPU coalescing-copy stage.
pub fn words_to_bytes(words: &[u32], total_bits: u64) -> Vec<u8> {
    let nbytes = (total_bits as usize).div_ceil(8);
    let mut out = Vec::with_capacity(nbytes);
    for w in words {
        out.extend_from_slice(&w.to_be_bytes());
        if out.len() >= nbytes + 4 {
            break;
        }
    }
    out.truncate(nbytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true, false];
        for &b in &pattern {
            w.push_bit(b);
        }
        let (buf, len) = w.finish();
        assert_eq!(len, 10);
        let mut r = BitReader::new(&buf, len);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn push_bits_msb_first() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        w.push_bits(0b0, 1);
        w.push_bits(0b111, 3);
        let (buf, len) = w.finish();
        assert_eq!(len, 8);
        assert_eq!(buf, vec![0b1011_0111]);
    }

    #[test]
    fn push_bits_across_byte_boundary() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0x3FF, 10); // ten 1-bits
        let (buf, len) = w.finish();
        assert_eq!(len, 13);
        assert_eq!(buf, vec![0b1011_1111, 0b1111_1000]);
    }

    #[test]
    fn push_64_bit_code() {
        let mut w = BitWriter::new();
        let c = Codeword::new(u64::MAX, 64);
        w.push_code(c);
        let (buf, len) = w.finish();
        assert_eq!(len, 64);
        assert!(buf.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn read_bits_matches_written() {
        let mut w = BitWriter::new();
        w.push_bits(0xDEAD_BEEF, 32);
        w.push_bits(0x5, 3);
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_bits(3).unwrap(), 0x5);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn read_bits_zero_len() {
        let mut r = BitReader::new(&[0xFF], 8);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.position(), 0);
    }

    #[test]
    fn peek_bits_does_not_consume() {
        let mut w = BitWriter::new();
        w.push_bits(0b1_0110_1101, 9);
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.peek_bits(5).unwrap(), 0b10110);
        assert_eq!(r.position(), 0);
        r.skip(3).unwrap();
        assert_eq!(r.peek_bits(6).unwrap(), 0b101101);
        assert_eq!(r.position(), 3);
        assert!(r.peek_bits(7).is_err()); // only 6 bits remain
    }

    #[test]
    fn skip_and_remaining() {
        let buf = [0u8; 4];
        let mut r = BitReader::new(&buf, 32);
        r.skip(20).unwrap();
        assert_eq!(r.remaining(), 12);
        assert!(r.skip(13).is_err());
    }

    #[test]
    fn append_preserves_alignment() {
        let mut a = BitWriter::new();
        a.push_bits(0b101, 3);
        let mut b = BitWriter::new();
        b.push_bits(0b11001, 5);
        b.push_bits(0b0110, 4);
        a.append(&b);
        let (buf, len) = a.finish();
        assert_eq!(len, 12);
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.read_bits(12).unwrap(), 0b1011_1001_0110);
    }

    #[test]
    fn append_empty_is_noop() {
        let mut a = BitWriter::new();
        a.push_bits(0b1, 1);
        a.append(&BitWriter::new());
        assert_eq!(a.len_bits(), 1);
    }

    #[test]
    fn words_to_bytes_truncates_to_bits() {
        let words = [0xAABBCCDD, 0x11223344];
        let bytes = words_to_bytes(&words, 40);
        assert_eq!(bytes, vec![0xAA, 0xBB, 0xCC, 0xDD, 0x11]);
    }

    #[test]
    fn words_to_bytes_empty() {
        assert!(words_to_bytes(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn reader_rejects_short_buffer() {
        let _ = BitReader::new(&[0u8; 1], 9);
    }

    #[test]
    fn writer_capacity_constructor() {
        let w = BitWriter::with_capacity_bits(100);
        assert_eq!(w.len_bits(), 0);
        assert!(w.as_bytes().is_empty());
    }
}
