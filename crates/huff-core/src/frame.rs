//! Multi-shard archive frame: the container the batched pipeline emits.
//!
//! A frame concatenates independently-compressed shards, each a complete
//! RSH2 archive ([`crate::archive`]) with its own codebook, chunk table and
//! CRCs. Shards are self-contained on purpose: per-shard best-effort
//! recovery *composes* — damage inside one shard's body is localized by
//! that shard's own chunk checksums, and even a shard whose header is
//! destroyed costs only that shard's symbol range, never the frame.
//!
//! Layout, version 1 (little-endian):
//!
//! ```text
//! magic "RSHM" | version u8 | symbol_bytes u8 | pad u16
//! total_symbols u64 | shard_symbols u64 | num_shards u32
//! shard_byte_len u64 × num_shards
//! header_crc u32               CRC32 of every byte preceding this field
//! shard bodies                 num_shards complete RSH2 archives
//! ```
//!
//! Shard `i` holds symbols `[i × shard_symbols, min((i+1) × shard_symbols,
//! total_symbols))`; only the last shard may be short. Frame-header damage
//! is fatal (the shard boundaries are required to find anything), exactly
//! mirroring the RSH2 rule that archive-header damage is fatal.
//!
//! Single-shard RSH2 archives remain valid on their own:
//! [`crate::archive::decompress_with`] dispatches on the magic, so readers
//! accept both formats transparently (see FORMAT.md § "Multi-shard
//! frame").

use crate::archive;
use crate::error::{HuffError, Result};
use crate::integrity::{
    crc32, DecompressOptions, RangeDecode, Recovered, RecoveryMode, RecoveryReport, Section, Verify,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rayon::prelude::*;
use std::ops::Range;

const MAGIC: &[u8; 4] = b"RSHM";
const VERSION: u8 = 1;

/// True when `bytes` starts with the multi-shard frame magic.
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == MAGIC
}

/// Parsed frame header: shard geometry plus the body byte ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Container version (currently 1).
    pub version: u8,
    /// Native symbol width recorded in the header.
    pub symbol_bytes: u8,
    /// Total symbols across all shards.
    pub total_symbols: u64,
    /// Symbols per shard (the last shard may hold fewer).
    pub shard_symbols: u64,
    /// Byte range of each shard's RSH2 body within the frame.
    pub shard_ranges: Vec<Range<usize>>,
}

impl FrameInfo {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shard_ranges.len()
    }

    /// The symbol-index range shard `i` covers.
    ///
    /// Checked: a shard index whose symbol offset would overflow `u64` (or
    /// the address space) is a structured error, never a silent wrap into
    /// another shard's range.
    pub fn shard_symbol_range(&self, i: usize) -> Result<Range<usize>> {
        let at = |k: u64| -> Result<usize> {
            let off = k
                .checked_mul(self.shard_symbols)
                .ok_or_else(|| bad(format!("shard {i} symbol offset overflows u64")))?
                .min(self.total_symbols);
            off.try_into()
                .map_err(|_| bad(format!("shard {i} symbol offset exceeds address space")))
        };
        let hi_idx = (i as u64)
            .checked_add(1)
            .ok_or_else(|| bad(format!("shard {i} symbol offset overflows u64")))?;
        Ok(at(i as u64)?..at(hi_idx)?)
    }
}

fn bad(msg: impl Into<String>) -> HuffError {
    HuffError::BadArchive(msg.into())
}

/// The shard count as the u32 the header stores. A count that does not
/// fit is a serialization error, not a silent truncation (a truncated
/// count would make the header CRC sign a wrong shard table).
fn shard_count_u32(n: usize) -> Result<u32> {
    u32::try_from(n).map_err(|_| bad(format!("{n} shards exceed the frame format's u32 count")))
}

/// Concatenate per-shard RSH2 archives into a frame.
///
/// `shards.len()` must equal `ceil(total_symbols / shard_symbols)` — the
/// geometry is stored once in the frame header, not per shard.
pub fn assemble(
    shards: &[Vec<u8>],
    total_symbols: u64,
    shard_symbols: u64,
    symbol_bytes: u8,
) -> Result<Vec<u8>> {
    if shard_symbols == 0 {
        return Err(bad("a frame needs a nonzero shard size"));
    }
    if shards.is_empty() && total_symbols != 0 {
        return Err(bad("a frame needs at least one shard"));
    }
    let expected = total_symbols.div_ceil(shard_symbols);
    if shards.len() as u64 != expected {
        return Err(bad(format!(
            "{} shards inconsistent with {total_symbols} symbols at {shard_symbols}/shard",
            shards.len()
        )));
    }
    let body: usize = shards.iter().map(Vec::len).sum();
    let mut buf = BytesMut::with_capacity(body + 40 + 8 * shards.len());
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(symbol_bytes);
    buf.put_u16_le(0);
    buf.put_u64_le(total_symbols);
    buf.put_u64_le(shard_symbols);
    buf.put_u32_le(shard_count_u32(shards.len())?);
    for s in shards {
        buf.put_u64_le(s.len() as u64);
    }
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    for s in shards {
        buf.put_slice(s);
    }
    Ok(buf.to_vec())
}

/// Parse and (unless `verify` is [`Verify::None`]) checksum the frame
/// header. Header damage is fatal: without the shard table nothing inside
/// the frame can be located.
pub fn parse(bytes: &[u8], verify: Verify) -> Result<FrameInfo> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(bad(format!("truncated frame: need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    need(&buf, 28)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad frame magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(bad(format!("unsupported frame version {version}")));
    }
    let symbol_bytes = buf.get_u8();
    let _pad = buf.get_u16_le();
    let total_symbols = buf.get_u64_le();
    let shard_symbols = buf.get_u64_le();
    let num_shards = buf.get_u32_le() as usize;
    if shard_symbols == 0 || (num_shards == 0 && total_symbols != 0) {
        return Err(bad("empty frame geometry"));
    }
    if num_shards as u64 != total_symbols.div_ceil(shard_symbols) {
        return Err(bad(format!(
            "{num_shards} shards inconsistent with {total_symbols} symbols at \
             {shard_symbols}/shard"
        )));
    }
    let table = num_shards.checked_mul(8).ok_or_else(|| bad("shard table size overflow"))?;
    need(&buf, table + 4)?;
    let mut lens = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        lens.push(buf.get_u64_le());
    }
    let header_end = bytes.len() - buf.remaining();
    let stored_crc = buf.get_u32_le();
    if verify != Verify::None {
        let got = crc32(&bytes[..header_end]);
        if got != stored_crc {
            return Err(HuffError::ChecksumMismatch {
                section: Section::Header,
                chunk: None,
                expected: stored_crc,
                got,
            });
        }
    }
    let mut shard_ranges = Vec::with_capacity(num_shards);
    let mut off = bytes.len() - buf.remaining();
    for &l in &lens {
        let len: usize = l.try_into().map_err(|_| bad("shard length exceeds address space"))?;
        let end = off.checked_add(len).ok_or_else(|| bad("shard table overflows frame"))?;
        shard_ranges.push(off..end);
        off = end;
    }
    Ok(FrameInfo { version, symbol_bytes, total_symbols, shard_symbols, shard_ranges })
}

/// Decompress a frame under an explicit verification and recovery policy.
///
/// Strict mode requires every shard to verify and decode completely. In
/// best-effort mode each shard recovers independently: damage inside a
/// shard is handled by that shard's own chunk recovery; a shard that
/// cannot be parsed at all (dead header, missing body) is sentinel-filled
/// across its whole symbol range and reported as a single opaque damaged
/// chunk. Chunk indices and symbol ranges in the merged report are shifted
/// to frame-global coordinates.
pub fn decompress_with(bytes: &[u8], opts: &DecompressOptions) -> Result<Recovered> {
    let info = parse(bytes, opts.verify)?;
    let best_effort = opts.mode == RecoveryMode::BestEffort;

    // Decode shards in parallel; each is an independent archive.
    let results: Vec<Result<Recovered>> = info
        .shard_ranges
        .par_iter()
        .enumerate()
        .map(|(i, r)| {
            let expected = info.shard_symbol_range(i)?.len();
            let body = bytes
                .get(r.clone())
                .ok_or_else(|| bad(format!("shard {i} body extends past the frame")))?;
            let rec = archive::decompress_with(body, opts)?;
            if rec.symbols.len() != expected {
                return Err(bad(format!(
                    "shard {i} decoded {} symbols, expected {expected}",
                    rec.symbols.len()
                )));
            }
            Ok(rec)
        })
        .collect();

    let mut symbols = Vec::with_capacity(info.total_symbols as usize);
    let mut report = RecoveryReport::default();
    let (mut shards_ok, mut shards_recovered) = (0usize, 0usize);
    for (i, res) in results.into_iter().enumerate() {
        let range = info.shard_symbol_range(i)?;
        let base_chunks = report.total_chunks;
        match res {
            Ok(rec) => {
                if rec.report.is_clean() {
                    shards_ok += 1;
                } else {
                    shards_recovered += 1;
                }
                report.total_chunks += rec.report.total_chunks;
                for c in rec.report.damaged_chunks {
                    report.damaged_chunks.push(base_chunks + c);
                }
                for (s, e) in rec.report.damaged_ranges {
                    report.damaged_ranges.push((range.start + s, range.start + e));
                    report.symbols_lost += e - s;
                }
                symbols.extend_from_slice(&rec.symbols);
            }
            Err(e) if best_effort => {
                // The shard is unreadable as a whole: its internal chunk
                // structure is unknown, so it counts as one opaque chunk.
                let _ = e;
                shards_recovered += 1;
                report.total_chunks += 1;
                report.damaged_chunks.push(base_chunks);
                report.damaged_ranges.push((range.start, range.end));
                report.symbols_lost += range.len();
                symbols.resize(symbols.len() + range.len(), opts.sentinel);
            }
            Err(e) => return Err(e),
        }
    }
    crate::metrics::registry::global().record_shards_decoded(shards_ok, shards_recovered);
    Ok(Recovered { symbols, report })
}

/// Decode only the bytes of `range` (in decoded-output byte space) from a
/// multi-shard frame.
///
/// Each shard overlapping the range runs [`archive::decode_range`] over
/// its shard-local slice, so only the chunks covering the range are ever
/// decoded; untouched shards contribute nothing but their chunk count to
/// the report's totals (a cheap header peek, not a decode). Strict and
/// best-effort semantics per shard mirror [`decompress_with`]: in
/// best-effort mode a shard that cannot be read at all is sentinel-filled
/// across its overlap with the range and reported as one opaque damaged
/// chunk. `index_used` is true only when every touched shard located its
/// chunks through its seek index.
pub fn decode_range(
    bytes: &[u8],
    range: Range<u64>,
    opts: &DecompressOptions,
) -> Result<RangeDecode> {
    decode_range_with(bytes, range, opts, &mut |_, body, local| {
        archive::decode_range(body, local, opts)
    })
}

/// Per-shard decode callback for [`decode_range_with`], called as
/// `(shard_index, shard_body, shard_local_byte_range)`.
pub(crate) type ShardRangeDecode<'a> =
    dyn FnMut(usize, &[u8], Range<u64>) -> Result<RangeDecode> + 'a;

/// [`decode_range`] with the per-shard decode step pluggable: the batch
/// layer substitutes a GPU-backed shard decode while reusing the exact
/// shard-window arithmetic and report merging here.
pub(crate) fn decode_range_with(
    bytes: &[u8],
    range: Range<u64>,
    opts: &DecompressOptions,
    shard_decode: &mut ShardRangeDecode<'_>,
) -> Result<RangeDecode> {
    if range.start > range.end {
        return Err(bad(format!("byte range {}..{} is inverted", range.start, range.end)));
    }
    let info = parse(bytes, opts.verify)?;
    let sb = u64::from(info.symbol_bytes.max(1));
    let total_bytes = info
        .total_symbols
        .checked_mul(sb)
        .ok_or_else(|| bad("frame decoded size overflows u64"))?;
    let shard_bytes = info
        .shard_symbols
        .checked_mul(sb)
        .ok_or_else(|| bad("frame shard byte size overflows u64"))?;
    let lo = range.start.min(total_bytes);
    let hi = range.end.min(total_bytes);
    let best_effort = opts.mode == RecoveryMode::BestEffort;

    // Per-shard chunk counts give the chunk-index base for shifting
    // shard-local reports into frame-global coordinates. An unreadable
    // shard counts as one opaque chunk, mirroring decompress_with.
    let mut chunk_base = Vec::with_capacity(info.num_shards() + 1);
    chunk_base.push(0usize);
    for r in &info.shard_ranges {
        let n = match bytes.get(r.clone()) {
            Some(body) => archive::chunk_count(body).unwrap_or(1),
            None => 1,
        };
        chunk_base.push(chunk_base[chunk_base.len() - 1] + n);
    }
    let total_chunks = chunk_base[info.num_shards()];

    let (s0, s1) = if lo == hi || shard_bytes == 0 {
        (0, 0)
    } else {
        ((lo / shard_bytes) as usize, (hi.div_ceil(shard_bytes) as usize).min(info.num_shards()))
    };

    let mut out = Vec::with_capacity((hi - lo) as usize);
    let mut report = RecoveryReport { total_chunks, ..RecoveryReport::default() };
    let mut chunks_touched = 0usize;
    let mut index_probes = 0u64;
    let mut index_used = true;
    // `i` drives three parallel tables (shard_ranges, chunk_base, the
    // shard's symbol range), so the index loop is the clear shape here.
    #[allow(clippy::needless_range_loop)]
    for i in s0..s1 {
        let sym_range = info.shard_symbol_range(i)?;
        let shard_lo = (i as u64)
            .checked_mul(shard_bytes)
            .ok_or_else(|| bad(format!("shard {i} byte offset overflows u64")))?;
        let shard_hi = shard_lo.saturating_add(shard_bytes).min(total_bytes);
        let g_lo = lo.max(shard_lo);
        let g_hi = hi.min(shard_hi);
        let res = bytes
            .get(info.shard_ranges[i].clone())
            .ok_or_else(|| bad(format!("shard {i} body extends past the frame")))
            .and_then(|body| shard_decode(i, body, g_lo - shard_lo..g_hi - shard_lo));
        match res {
            Ok(r) => {
                for c in r.report.damaged_chunks {
                    report.damaged_chunks.push(chunk_base[i] + c);
                }
                for (s, e) in r.report.damaged_ranges {
                    report.damaged_ranges.push((sym_range.start + s, sym_range.start + e));
                    report.symbols_lost += e - s;
                }
                chunks_touched += r.chunks_touched;
                index_probes += r.index_probes;
                index_used &= r.index_used;
                out.extend_from_slice(&r.bytes);
            }
            Err(e) if best_effort => {
                // The shard is unreadable as a whole: sentinel-fill its
                // overlap with the range, one opaque damaged chunk.
                let _ = e;
                let sent = u64::from(opts.sentinel).to_le_bytes();
                for p in g_lo..g_hi {
                    out.push(sent[(p % sb).min(7) as usize]);
                }
                chunks_touched += 1;
                index_used = false;
                report.damaged_chunks.push(chunk_base[i]);
                let d_lo = ((g_lo / sb) as usize).max(sym_range.start);
                let d_hi = (g_hi.div_ceil(sb) as usize).min(sym_range.end).max(d_lo);
                report.damaged_ranges.push((d_lo, d_hi));
                report.symbols_lost += d_hi - d_lo;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(RangeDecode { bytes: out, report, chunks_touched, total_chunks, index_probes, index_used })
}

/// Check every shard's checksums without decoding any payload, merging
/// the per-shard reports into frame-global coordinates (same conventions
/// as [`decompress_with`]).
pub fn verify(bytes: &[u8]) -> Result<RecoveryReport> {
    let info = parse(bytes, Verify::Full)?;
    let mut report = RecoveryReport::default();
    for (i, r) in info.shard_ranges.iter().enumerate() {
        let range = info.shard_symbol_range(i)?;
        let base_chunks = report.total_chunks;
        let shard_report = bytes
            .get(r.clone())
            .ok_or_else(|| bad("shard body extends past the frame"))
            .and_then(archive::verify);
        match shard_report {
            Ok(sr) => {
                report.total_chunks += sr.total_chunks;
                for c in sr.damaged_chunks {
                    report.damaged_chunks.push(base_chunks + c);
                }
                for (s, e) in sr.damaged_ranges {
                    report.damaged_ranges.push((range.start + s, range.start + e));
                    report.symbols_lost += e - s;
                }
            }
            Err(_) => {
                report.total_chunks += 1;
                report.damaged_chunks.push(base_chunks);
                report.damaged_ranges.push((range.start, range.end));
                report.symbols_lost += range.len();
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{compress, CompressOptions};

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
                (x % 256) as u16
            })
            .collect()
    }

    fn frame_of(syms: &[u16], shard_symbols: usize) -> Vec<u8> {
        let shards: Vec<Vec<u8>> = syms
            .chunks(shard_symbols)
            .map(|s| compress(s, &CompressOptions::new(256)).unwrap())
            .collect();
        assemble(&shards, syms.len() as u64, shard_symbols as u64, 2).unwrap()
    }

    #[test]
    fn frame_roundtrips_bit_exactly() {
        let syms = data(30_000);
        let frame = frame_of(&syms, 8192);
        assert!(is_frame(&frame));
        let rec = decompress_with(&frame, &DecompressOptions::default()).unwrap();
        assert_eq!(rec.symbols, syms);
        assert!(rec.report.is_clean());
        assert!(verify(&frame).unwrap().is_clean());
    }

    #[test]
    fn parse_exposes_geometry() {
        let syms = data(10_000);
        let frame = frame_of(&syms, 4096);
        let info = parse(&frame, Verify::Full).unwrap();
        assert_eq!(info.num_shards(), 3);
        assert_eq!(info.total_symbols, 10_000);
        assert_eq!(info.shard_symbol_range(0).unwrap(), 0..4096);
        assert_eq!(info.shard_symbol_range(2).unwrap(), 8192..10_000);
        // Checked math: a shard index whose offset cannot fit must error
        // instead of wrapping (satellite of the seek-index PR).
        let silly = FrameInfo {
            version: 1,
            symbol_bytes: 2,
            total_symbols: u64::MAX,
            shard_symbols: u64::MAX / 2,
            shard_ranges: vec![],
        };
        assert!(silly.shard_symbol_range(3).is_err());
        // Shard bodies tile the tail of the frame.
        let mut cursor = info.shard_ranges[0].start;
        for r in &info.shard_ranges {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, frame.len());
    }

    #[test]
    fn shard_count_overflow_is_an_error_not_a_truncation() {
        assert_eq!(shard_count_u32(0).unwrap(), 0);
        assert_eq!(shard_count_u32(u32::MAX as usize).unwrap(), u32::MAX);
        // On 64-bit targets a shard count past u32::MAX must refuse to
        // serialize rather than wrap to a small count the CRC then signs.
        if let Ok(n) = usize::try_from(u64::from(u32::MAX) + 1) {
            assert!(shard_count_u32(n).is_err());
        }
    }

    #[test]
    fn lut_decoder_roundtrips_through_frame_path() {
        let syms = data(30_000);
        let frame = frame_of(&syms, 8192);
        for decoder in [crate::decode::DecoderKind::Serial, crate::decode::DecoderKind::Lut] {
            let opts = DecompressOptions::default().with_decoder(decoder);
            let rec = decompress_with(&frame, &opts).unwrap();
            assert_eq!(rec.symbols, syms, "{}", decoder.name());
            assert!(rec.report.is_clean());
        }
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let syms = data(1000);
        let shards = vec![compress(&syms, &CompressOptions::new(256)).unwrap()];
        assert!(assemble(&shards, 5000, 1000, 2).is_err());
        assert!(assemble(&[], 5000, 1000, 2).is_err());
        assert!(assemble(&[], 0, 0, 2).is_err());
    }

    #[test]
    fn empty_frame_roundtrips() {
        // Zero symbols → zero shards is valid geometry, not an error.
        let frame = assemble(&[], 0, 4096, 2).unwrap();
        assert!(is_frame(&frame));
        let info = parse(&frame, Verify::Full).unwrap();
        assert_eq!(info.num_shards(), 0);
        assert_eq!(info.total_symbols, 0);
        let rec = decompress_with(&frame, &DecompressOptions::default()).unwrap();
        assert!(rec.symbols.is_empty());
        assert!(rec.report.is_clean());
        assert!(verify(&frame).unwrap().is_clean());
        let r = decode_range(&frame, 0..100, &DecompressOptions::default()).unwrap();
        assert!(r.bytes.is_empty());
        assert_eq!(r.chunks_touched, 0);
        assert_eq!(r.total_chunks, 0);
    }

    #[test]
    fn range_decode_matches_full_decode_slice() {
        let syms = data(30_000);
        let frame = frame_of(&syms, 8192);
        let full = decompress_with(&frame, &DecompressOptions::default()).unwrap();
        let full_bytes: Vec<u8> = full.symbols.iter().flat_map(|&s| s.to_le_bytes()).collect();
        // Ranges within one shard, straddling the shard boundary at byte
        // 16_384, mid-symbol endpoints, the tail, and an empty range.
        for (a, b) in [(0, 64), (16_000, 17_000), (16_383, 16_385), (59_990, 60_000), (123, 123)] {
            let r = decode_range(&frame, a..b, &DecompressOptions::default()).unwrap();
            assert_eq!(r.bytes, &full_bytes[a as usize..b as usize], "{a}..{b}");
            assert!(r.report.is_clean());
        }
        let r = decode_range(&frame, 20_000..20_100, &DecompressOptions::default()).unwrap();
        assert!(r.chunks_touched < r.total_chunks, "small range must skip chunks");
        assert!(r.index_used, "fresh archives carry a seek index");
    }

    #[test]
    fn range_decode_dead_shard_sentinel_fills_overlap() {
        let syms = data(24_000);
        let frame = frame_of(&syms, 8192);
        let info = parse(&frame, Verify::Full).unwrap();
        let mut corrupt = frame.clone();
        corrupt[info.shard_ranges[1].start] = b'X'; // kill shard 1's magic

        assert!(decode_range(&corrupt, 16_000..33_000, &DecompressOptions::default()).is_err());

        let opts = DecompressOptions::best_effort().with_sentinel(0xABCD);
        let r = decode_range(&corrupt, 16_000..33_000, &opts).unwrap();
        assert_eq!(r.bytes.len(), 17_000);
        // Shard 1 occupies bytes 16_384..32_768 of the decoded output.
        assert!(r.bytes[384..16_768].chunks(2).all(|c| c == [0xCD, 0xAB]));
        assert_eq!(&r.bytes[..384], &make_bytes(&syms)[16_000..16_384]);
        assert_eq!(&r.bytes[16_768..], &make_bytes(&syms)[32_768..33_000]);
        assert!(!r.report.is_clean());
        assert!(!r.index_used);
    }

    fn make_bytes(syms: &[u16]) -> Vec<u8> {
        syms.iter().flat_map(|&s| s.to_le_bytes()).collect()
    }

    #[test]
    fn header_flip_is_fatal_even_best_effort() {
        let syms = data(5000);
        let mut frame = frame_of(&syms, 2048);
        frame[9] ^= 0x01; // total_symbols field
        let r = decompress_with(&frame, &DecompressOptions::best_effort());
        assert!(r.is_err());
    }

    #[test]
    fn shard_payload_damage_localizes_to_that_shard() {
        let syms = data(24_000);
        let frame = frame_of(&syms, 8192);
        let info = parse(&frame, Verify::Full).unwrap();
        // Flip a byte in the middle of shard 1's body (payload region).
        let mut corrupt = frame.clone();
        let r1 = info.shard_ranges[1].clone();
        corrupt[r1.start + (r1.len() * 3 / 4)] ^= 0x40;

        assert!(decompress_with(&corrupt, &DecompressOptions::default()).is_err());

        let opts = DecompressOptions::best_effort();
        let rec = decompress_with(&corrupt, &opts).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert!(!rec.report.is_clean());
        // All damage lies within shard 1's symbol range.
        for &(s, e) in &rec.report.damaged_ranges {
            assert!(s >= 8192 && e <= 16_384, "range {s}..{e} outside shard 1");
        }
        // Shards 0 and 2 are bit-exact.
        assert_eq!(&rec.symbols[..8192], &syms[..8192]);
        assert_eq!(&rec.symbols[16_384..], &syms[16_384..]);
    }

    #[test]
    fn dead_shard_header_costs_only_that_shard() {
        let syms = data(24_000);
        let frame = frame_of(&syms, 8192);
        let info = parse(&frame, Verify::Full).unwrap();
        let mut corrupt = frame.clone();
        // Destroy shard 1's magic: the shard is unreadable as a whole.
        let r1 = info.shard_ranges[1].clone();
        corrupt[r1.start] = b'X';

        let opts = DecompressOptions::best_effort().with_sentinel(0xABCD);
        let rec = decompress_with(&corrupt, &opts).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert_eq!(rec.report.damaged_ranges, vec![(8192, 16_384)]);
        assert_eq!(rec.report.symbols_lost, 8192);
        assert!(rec.symbols[8192..16_384].iter().all(|&s| s == 0xABCD));
        assert_eq!(&rec.symbols[..8192], &syms[..8192]);
        assert_eq!(&rec.symbols[16_384..], &syms[16_384..]);

        let report = verify(&corrupt).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.damaged_ranges, vec![(8192, 16_384)]);
    }

    #[test]
    fn truncated_frame_rejected() {
        let syms = data(4000);
        let frame = frame_of(&syms, 2048);
        for cut in [0, 3, 7, 20, 35, frame.len() / 2] {
            assert!(
                decompress_with(&frame[..cut], &DecompressOptions::default()).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn truncated_tail_shard_recovers_best_effort() {
        let syms = data(12_000);
        let frame = frame_of(&syms, 4096);
        let info = parse(&frame, Verify::Full).unwrap();
        // Cut mid-way through the last shard's body.
        let cut = info.shard_ranges[2].start + info.shard_ranges[2].len() / 2;
        let rec = decompress_with(&frame[..cut], &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        // First two shards intact.
        assert_eq!(&rec.symbols[..8192], &syms[..8192]);
        assert!(!rec.report.is_clean());
    }

    #[test]
    fn chunk_indices_shift_across_shards() {
        let syms = data(16_384);
        let frame = frame_of(&syms, 8192);
        let info = parse(&frame, Verify::Full).unwrap();
        let mut corrupt = frame.clone();
        let r1 = info.shard_ranges[1].clone();
        corrupt[r1.end - 2] ^= 0x10; // last bytes of shard 1's payload
        let report = verify(&corrupt).unwrap();
        // Damaged chunk index must lie in the second shard's chunk range.
        let shard0_chunks =
            archive::verify(&frame[info.shard_ranges[0].clone()]).unwrap().total_chunks;
        assert!(report.damaged_chunks.iter().all(|&c| c >= shard0_chunks));
        assert_eq!(report.total_chunks, 2 * shard0_chunks);
    }
}
