//! Multi-shard archive frame: the container the batched pipeline emits.
//!
//! A frame concatenates independently-compressed shards, each a complete
//! RSH2 archive ([`crate::archive`]) with its own codebook, chunk table and
//! CRCs. Shards are self-contained on purpose: per-shard best-effort
//! recovery *composes* — damage inside one shard's body is localized by
//! that shard's own chunk checksums, and even a shard whose header is
//! destroyed costs only that shard's symbol range, never the frame.
//!
//! Layout, version 1 (little-endian):
//!
//! ```text
//! magic "RSHM" | version u8 | symbol_bytes u8 | pad u16
//! total_symbols u64 | shard_symbols u64 | num_shards u32
//! shard_byte_len u64 × num_shards
//! header_crc u32               CRC32 of every byte preceding this field
//! shard bodies                 num_shards complete RSH2 archives
//! ```
//!
//! Shard `i` holds symbols `[i × shard_symbols, min((i+1) × shard_symbols,
//! total_symbols))`; only the last shard may be short. Frame-header damage
//! is fatal (the shard boundaries are required to find anything), exactly
//! mirroring the RSH2 rule that archive-header damage is fatal.
//!
//! Single-shard RSH2 archives remain valid on their own:
//! [`crate::archive::decompress_with`] dispatches on the magic, so readers
//! accept both formats transparently (see FORMAT.md § "Multi-shard
//! frame").

use crate::archive;
use crate::error::{HuffError, Result};
use crate::integrity::{crc32, DecompressOptions, Recovered, RecoveryReport, Section, Verify};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rayon::prelude::*;
use std::ops::Range;

const MAGIC: &[u8; 4] = b"RSHM";
const VERSION: u8 = 1;

/// True when `bytes` starts with the multi-shard frame magic.
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == MAGIC
}

/// Parsed frame header: shard geometry plus the body byte ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Container version (currently 1).
    pub version: u8,
    /// Native symbol width recorded in the header.
    pub symbol_bytes: u8,
    /// Total symbols across all shards.
    pub total_symbols: u64,
    /// Symbols per shard (the last shard may hold fewer).
    pub shard_symbols: u64,
    /// Byte range of each shard's RSH2 body within the frame.
    pub shard_ranges: Vec<Range<usize>>,
}

impl FrameInfo {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shard_ranges.len()
    }

    /// The symbol-index range shard `i` covers.
    pub fn shard_symbol_range(&self, i: usize) -> Range<usize> {
        let lo = (i as u64 * self.shard_symbols).min(self.total_symbols) as usize;
        let hi = ((i as u64 + 1) * self.shard_symbols).min(self.total_symbols) as usize;
        lo..hi
    }
}

fn bad(msg: impl Into<String>) -> HuffError {
    HuffError::BadArchive(msg.into())
}

/// The shard count as the u32 the header stores. A count that does not
/// fit is a serialization error, not a silent truncation (a truncated
/// count would make the header CRC sign a wrong shard table).
fn shard_count_u32(n: usize) -> Result<u32> {
    u32::try_from(n).map_err(|_| bad(format!("{n} shards exceed the frame format's u32 count")))
}

/// Concatenate per-shard RSH2 archives into a frame.
///
/// `shards.len()` must equal `ceil(total_symbols / shard_symbols)` — the
/// geometry is stored once in the frame header, not per shard.
pub fn assemble(
    shards: &[Vec<u8>],
    total_symbols: u64,
    shard_symbols: u64,
    symbol_bytes: u8,
) -> Result<Vec<u8>> {
    if shards.is_empty() || shard_symbols == 0 {
        return Err(bad("a frame needs at least one shard"));
    }
    let expected = total_symbols.div_ceil(shard_symbols);
    if shards.len() as u64 != expected {
        return Err(bad(format!(
            "{} shards inconsistent with {total_symbols} symbols at {shard_symbols}/shard",
            shards.len()
        )));
    }
    let body: usize = shards.iter().map(Vec::len).sum();
    let mut buf = BytesMut::with_capacity(body + 40 + 8 * shards.len());
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(symbol_bytes);
    buf.put_u16_le(0);
    buf.put_u64_le(total_symbols);
    buf.put_u64_le(shard_symbols);
    buf.put_u32_le(shard_count_u32(shards.len())?);
    for s in shards {
        buf.put_u64_le(s.len() as u64);
    }
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    for s in shards {
        buf.put_slice(s);
    }
    Ok(buf.to_vec())
}

/// Parse and (unless `verify` is [`Verify::None`]) checksum the frame
/// header. Header damage is fatal: without the shard table nothing inside
/// the frame can be located.
pub fn parse(bytes: &[u8], verify: Verify) -> Result<FrameInfo> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(bad(format!("truncated frame: need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    need(&buf, 28)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad frame magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(bad(format!("unsupported frame version {version}")));
    }
    let symbol_bytes = buf.get_u8();
    let _pad = buf.get_u16_le();
    let total_symbols = buf.get_u64_le();
    let shard_symbols = buf.get_u64_le();
    let num_shards = buf.get_u32_le() as usize;
    if shard_symbols == 0 || num_shards == 0 {
        return Err(bad("empty frame geometry"));
    }
    if num_shards as u64 != total_symbols.div_ceil(shard_symbols) {
        return Err(bad(format!(
            "{num_shards} shards inconsistent with {total_symbols} symbols at \
             {shard_symbols}/shard"
        )));
    }
    let table = num_shards.checked_mul(8).ok_or_else(|| bad("shard table size overflow"))?;
    need(&buf, table + 4)?;
    let mut lens = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        lens.push(buf.get_u64_le());
    }
    let header_end = bytes.len() - buf.remaining();
    let stored_crc = buf.get_u32_le();
    if verify != Verify::None {
        let got = crc32(&bytes[..header_end]);
        if got != stored_crc {
            return Err(HuffError::ChecksumMismatch {
                section: Section::Header,
                chunk: None,
                expected: stored_crc,
                got,
            });
        }
    }
    let mut shard_ranges = Vec::with_capacity(num_shards);
    let mut off = bytes.len() - buf.remaining();
    for &l in &lens {
        let len: usize = l.try_into().map_err(|_| bad("shard length exceeds address space"))?;
        let end = off.checked_add(len).ok_or_else(|| bad("shard table overflows frame"))?;
        shard_ranges.push(off..end);
        off = end;
    }
    Ok(FrameInfo { version, symbol_bytes, total_symbols, shard_symbols, shard_ranges })
}

/// Decompress a frame under an explicit verification and recovery policy.
///
/// Strict mode requires every shard to verify and decode completely. In
/// best-effort mode each shard recovers independently: damage inside a
/// shard is handled by that shard's own chunk recovery; a shard that
/// cannot be parsed at all (dead header, missing body) is sentinel-filled
/// across its whole symbol range and reported as a single opaque damaged
/// chunk. Chunk indices and symbol ranges in the merged report are shifted
/// to frame-global coordinates.
pub fn decompress_with(bytes: &[u8], opts: &DecompressOptions) -> Result<Recovered> {
    let info = parse(bytes, opts.verify)?;
    let best_effort = opts.mode == crate::integrity::RecoveryMode::BestEffort;

    // Decode shards in parallel; each is an independent archive.
    let results: Vec<Result<Recovered>> = info
        .shard_ranges
        .par_iter()
        .enumerate()
        .map(|(i, r)| {
            let expected = info.shard_symbol_range(i).len();
            let body = bytes
                .get(r.clone())
                .ok_or_else(|| bad(format!("shard {i} body extends past the frame")))?;
            let rec = archive::decompress_with(body, opts)?;
            if rec.symbols.len() != expected {
                return Err(bad(format!(
                    "shard {i} decoded {} symbols, expected {expected}",
                    rec.symbols.len()
                )));
            }
            Ok(rec)
        })
        .collect();

    let mut symbols = Vec::with_capacity(info.total_symbols as usize);
    let mut report = RecoveryReport::default();
    let (mut shards_ok, mut shards_recovered) = (0usize, 0usize);
    for (i, res) in results.into_iter().enumerate() {
        let range = info.shard_symbol_range(i);
        let base_chunks = report.total_chunks;
        match res {
            Ok(rec) => {
                if rec.report.is_clean() {
                    shards_ok += 1;
                } else {
                    shards_recovered += 1;
                }
                report.total_chunks += rec.report.total_chunks;
                for c in rec.report.damaged_chunks {
                    report.damaged_chunks.push(base_chunks + c);
                }
                for (s, e) in rec.report.damaged_ranges {
                    report.damaged_ranges.push((range.start + s, range.start + e));
                    report.symbols_lost += e - s;
                }
                symbols.extend_from_slice(&rec.symbols);
            }
            Err(e) if best_effort => {
                // The shard is unreadable as a whole: its internal chunk
                // structure is unknown, so it counts as one opaque chunk.
                let _ = e;
                shards_recovered += 1;
                report.total_chunks += 1;
                report.damaged_chunks.push(base_chunks);
                report.damaged_ranges.push((range.start, range.end));
                report.symbols_lost += range.len();
                symbols.resize(symbols.len() + range.len(), opts.sentinel);
            }
            Err(e) => return Err(e),
        }
    }
    crate::metrics::registry::global().record_shards_decoded(shards_ok, shards_recovered);
    Ok(Recovered { symbols, report })
}

/// Check every shard's checksums without decoding any payload, merging
/// the per-shard reports into frame-global coordinates (same conventions
/// as [`decompress_with`]).
pub fn verify(bytes: &[u8]) -> Result<RecoveryReport> {
    let info = parse(bytes, Verify::Full)?;
    let mut report = RecoveryReport::default();
    for (i, r) in info.shard_ranges.iter().enumerate() {
        let range = info.shard_symbol_range(i);
        let base_chunks = report.total_chunks;
        let shard_report = bytes
            .get(r.clone())
            .ok_or_else(|| bad("shard body extends past the frame"))
            .and_then(archive::verify);
        match shard_report {
            Ok(sr) => {
                report.total_chunks += sr.total_chunks;
                for c in sr.damaged_chunks {
                    report.damaged_chunks.push(base_chunks + c);
                }
                for (s, e) in sr.damaged_ranges {
                    report.damaged_ranges.push((range.start + s, range.start + e));
                    report.symbols_lost += e - s;
                }
            }
            Err(_) => {
                report.total_chunks += 1;
                report.damaged_chunks.push(base_chunks);
                report.damaged_ranges.push((range.start, range.end));
                report.symbols_lost += range.len();
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{compress, CompressOptions};

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
                (x % 256) as u16
            })
            .collect()
    }

    fn frame_of(syms: &[u16], shard_symbols: usize) -> Vec<u8> {
        let shards: Vec<Vec<u8>> = syms
            .chunks(shard_symbols)
            .map(|s| compress(s, &CompressOptions::new(256)).unwrap())
            .collect();
        assemble(&shards, syms.len() as u64, shard_symbols as u64, 2).unwrap()
    }

    #[test]
    fn frame_roundtrips_bit_exactly() {
        let syms = data(30_000);
        let frame = frame_of(&syms, 8192);
        assert!(is_frame(&frame));
        let rec = decompress_with(&frame, &DecompressOptions::default()).unwrap();
        assert_eq!(rec.symbols, syms);
        assert!(rec.report.is_clean());
        assert!(verify(&frame).unwrap().is_clean());
    }

    #[test]
    fn parse_exposes_geometry() {
        let syms = data(10_000);
        let frame = frame_of(&syms, 4096);
        let info = parse(&frame, Verify::Full).unwrap();
        assert_eq!(info.num_shards(), 3);
        assert_eq!(info.total_symbols, 10_000);
        assert_eq!(info.shard_symbol_range(0), 0..4096);
        assert_eq!(info.shard_symbol_range(2), 8192..10_000);
        // Shard bodies tile the tail of the frame.
        let mut cursor = info.shard_ranges[0].start;
        for r in &info.shard_ranges {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, frame.len());
    }

    #[test]
    fn shard_count_overflow_is_an_error_not_a_truncation() {
        assert_eq!(shard_count_u32(0).unwrap(), 0);
        assert_eq!(shard_count_u32(u32::MAX as usize).unwrap(), u32::MAX);
        // On 64-bit targets a shard count past u32::MAX must refuse to
        // serialize rather than wrap to a small count the CRC then signs.
        if let Ok(n) = usize::try_from(u64::from(u32::MAX) + 1) {
            assert!(shard_count_u32(n).is_err());
        }
    }

    #[test]
    fn lut_decoder_roundtrips_through_frame_path() {
        let syms = data(30_000);
        let frame = frame_of(&syms, 8192);
        for decoder in [crate::decode::DecoderKind::Serial, crate::decode::DecoderKind::Lut] {
            let opts = DecompressOptions::default().with_decoder(decoder);
            let rec = decompress_with(&frame, &opts).unwrap();
            assert_eq!(rec.symbols, syms, "{}", decoder.name());
            assert!(rec.report.is_clean());
        }
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let syms = data(1000);
        let shards = vec![compress(&syms, &CompressOptions::new(256)).unwrap()];
        assert!(assemble(&shards, 5000, 1000, 2).is_err());
        assert!(assemble(&[], 0, 1000, 2).is_err());
    }

    #[test]
    fn header_flip_is_fatal_even_best_effort() {
        let syms = data(5000);
        let mut frame = frame_of(&syms, 2048);
        frame[9] ^= 0x01; // total_symbols field
        let r = decompress_with(&frame, &DecompressOptions::best_effort());
        assert!(r.is_err());
    }

    #[test]
    fn shard_payload_damage_localizes_to_that_shard() {
        let syms = data(24_000);
        let frame = frame_of(&syms, 8192);
        let info = parse(&frame, Verify::Full).unwrap();
        // Flip a byte in the middle of shard 1's body (payload region).
        let mut corrupt = frame.clone();
        let r1 = info.shard_ranges[1].clone();
        corrupt[r1.start + (r1.len() * 3 / 4)] ^= 0x40;

        assert!(decompress_with(&corrupt, &DecompressOptions::default()).is_err());

        let opts = DecompressOptions::best_effort();
        let rec = decompress_with(&corrupt, &opts).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert!(!rec.report.is_clean());
        // All damage lies within shard 1's symbol range.
        for &(s, e) in &rec.report.damaged_ranges {
            assert!(s >= 8192 && e <= 16_384, "range {s}..{e} outside shard 1");
        }
        // Shards 0 and 2 are bit-exact.
        assert_eq!(&rec.symbols[..8192], &syms[..8192]);
        assert_eq!(&rec.symbols[16_384..], &syms[16_384..]);
    }

    #[test]
    fn dead_shard_header_costs_only_that_shard() {
        let syms = data(24_000);
        let frame = frame_of(&syms, 8192);
        let info = parse(&frame, Verify::Full).unwrap();
        let mut corrupt = frame.clone();
        // Destroy shard 1's magic: the shard is unreadable as a whole.
        let r1 = info.shard_ranges[1].clone();
        corrupt[r1.start] = b'X';

        let opts = DecompressOptions::best_effort().with_sentinel(0xABCD);
        let rec = decompress_with(&corrupt, &opts).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        assert_eq!(rec.report.damaged_ranges, vec![(8192, 16_384)]);
        assert_eq!(rec.report.symbols_lost, 8192);
        assert!(rec.symbols[8192..16_384].iter().all(|&s| s == 0xABCD));
        assert_eq!(&rec.symbols[..8192], &syms[..8192]);
        assert_eq!(&rec.symbols[16_384..], &syms[16_384..]);

        let report = verify(&corrupt).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.damaged_ranges, vec![(8192, 16_384)]);
    }

    #[test]
    fn truncated_frame_rejected() {
        let syms = data(4000);
        let frame = frame_of(&syms, 2048);
        for cut in [0, 3, 7, 20, 35, frame.len() / 2] {
            assert!(
                decompress_with(&frame[..cut], &DecompressOptions::default()).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn truncated_tail_shard_recovers_best_effort() {
        let syms = data(12_000);
        let frame = frame_of(&syms, 4096);
        let info = parse(&frame, Verify::Full).unwrap();
        // Cut mid-way through the last shard's body.
        let cut = info.shard_ranges[2].start + info.shard_ranges[2].len() / 2;
        let rec = decompress_with(&frame[..cut], &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.symbols.len(), syms.len());
        // First two shards intact.
        assert_eq!(&rec.symbols[..8192], &syms[..8192]);
        assert!(!rec.report.is_clean());
    }

    #[test]
    fn chunk_indices_shift_across_shards() {
        let syms = data(16_384);
        let frame = frame_of(&syms, 8192);
        let info = parse(&frame, Verify::Full).unwrap();
        let mut corrupt = frame.clone();
        let r1 = info.shard_ranges[1].clone();
        corrupt[r1.end - 2] ^= 0x10; // last bytes of shard 1's payload
        let report = verify(&corrupt).unwrap();
        // Damaged chunk index must lie in the second shard's chunk range.
        let shard0_chunks =
            archive::verify(&frame[info.shard_ranges[0].clone()]).unwrap().total_chunks;
        assert!(report.damaged_chunks.iter().all(|&c| c >= shard0_chunks));
        assert_eq!(report.total_chunks, 2 * shard0_chunks);
    }
}
