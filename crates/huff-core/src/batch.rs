//! Sharded, multi-stream, multi-device batch compression.
//!
//! Large inputs are split into fixed-size shards; each shard runs the full
//! histogram → codebook → encode chain as an independent pipeline. Shards
//! fan out round-robin across simulated devices, and within a device
//! across CUDA-style streams ([`gpu_sim::StreamSchedule`]), so shard
//! `i+1`'s histogram overlaps shard `i`'s encode — the classic
//! double-buffered shape. The host-side work is real (rayon runs the
//! shard pipelines in parallel); the device timelines are then computed
//! deterministically by the stream scheduler under its bandwidth-contention
//! model, independent of host thread interleaving.
//!
//! The result is a multi-shard frame ([`crate::frame`]): every shard a
//! self-contained RSH2 archive with its own CRCs, so per-shard best-effort
//! recovery composes, plus a [`BatchReport`] carrying the per-device
//! timelines and per-shard contended stage times.
//!
//! ```
//! use huff_core::batch::{compress_batched, BatchOptions};
//! use huff_core::archive;
//!
//! let data: Vec<u16> = (0..100_000).map(|i| (i % 200) as u16).collect();
//! let mut opts = BatchOptions::new(256);
//! opts.shard_symbols = 32_768;
//! opts.streams = 2;
//! let (frame, report) = compress_batched(&data, &opts).unwrap();
//! assert_eq!(archive::decompress(&frame).unwrap(), data);
//! assert!(report.speedup() >= 1.0);
//! ```

use crate::archive;
use crate::decode::DecoderKind;
use crate::error::{HuffError, Result};
use crate::frame;
use crate::integrity::{DecompressOptions, RangeDecode};
use crate::pipeline::{self, PipelineKind, PipelineReport, StageTimes};
use crate::plan::KernelPlan;
use gpu_sim::{DeviceSpec, Gpu, KernelRecord, StreamSchedule, Timeline};
use rayon::prelude::*;

/// Options for [`compress_batched`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Symbols per shard (the last shard may hold fewer).
    pub shard_symbols: usize,
    /// Streams (command queues) per device.
    pub streams: usize,
    /// One simulated device per entry; shards round-robin across them.
    pub devices: Vec<DeviceSpec>,
    /// Staging buffers per device: at most this many shards in flight at
    /// once, enforced with events (shard `k` waits for shard
    /// `k - buffers`). `0` means one buffer per stream — the stream FIFO
    /// itself is the only constraint.
    pub buffers: usize,
    /// Histogram size (codebook span).
    pub num_symbols: usize,
    /// Chunk magnitude `M`.
    pub magnitude: u32,
    /// Reduction factor; `None` applies the Fig. 3 rule per shard.
    pub reduction: Option<u32>,
    /// Which encode pipeline to run per shard.
    pub kind: PipelineKind,
    /// Native symbol width recorded in the frame header.
    pub symbol_bytes: u8,
    /// Kernel-fusion plan each shard's pipeline runs under (the frame
    /// bytes are identical for every plan).
    pub plan: KernelPlan,
    /// Owning request's trace id: stamped onto every kernel record the
    /// batch produces (shard pipelines and replayed timelines alike), so
    /// the serving layer's span trees attribute device work per request.
    /// Empty (the default) leaves records untraced.
    pub trace: String,
}

impl BatchOptions {
    /// Defaults for 2-byte symbols over `num_symbols` bins: 4 Mi-symbol
    /// shards, two streams on one V100.
    pub fn new(num_symbols: usize) -> Self {
        BatchOptions {
            shard_symbols: 1 << 22,
            streams: 2,
            devices: vec![DeviceSpec::v100()],
            buffers: 0,
            num_symbols,
            magnitude: 10,
            reduction: None,
            kind: PipelineKind::ReduceShuffle,
            symbol_bytes: 2,
            plan: KernelPlan::default(),
            trace: String::new(),
        }
    }
}

/// A simulated device failure injected into a batched run: device
/// `device` dies at modeled time `at` seconds. See
/// [`compress_batched_with_faults`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFault {
    /// Index into [`BatchOptions::devices`].
    pub device: usize,
    /// Modeled failure instant in seconds from batch start.
    pub at: f64,
}

/// What quarantine and rescheduling did after simulated device failures.
///
/// Shards whose kernels had not all completed when their device died are
/// *quarantined* and replayed on the surviving devices in a recovery
/// wave; the wave starts once the failure is detected (the latest
/// injected failure instant) and each survivor has drained its own
/// first-wave queue. The output frame is bit-identical to the healthy
/// run — faults cost modeled time, never correctness.
#[derive(Debug, Clone, Default)]
pub struct QuarantineReport {
    /// Devices that failed, ascending.
    pub failed_devices: Vec<usize>,
    /// Shard indices that lost their device mid-flight, ascending.
    pub quarantined: Vec<usize>,
    /// `(shard, surviving device)` for every quarantined shard, in shard
    /// order.
    pub rescheduled: Vec<(usize, usize)>,
    /// Makespan of the recovery wave alone (seconds).
    pub recovery_seconds: f64,
}

impl QuarantineReport {
    /// True when no device failed (the report is all-empty).
    pub fn is_clean(&self) -> bool {
        self.failed_devices.is_empty()
    }
}

/// One shard's outcome within the batch.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard index (symbol range `index × shard_symbols ..`).
    pub index: usize,
    /// Device the shard ran on.
    pub device: usize,
    /// Stream (on that device) the shard's kernels were enqueued to.
    pub stream: u32,
    /// Symbols in this shard.
    pub symbols: usize,
    /// Contended per-stage times on the scheduled timeline (these sum to
    /// the shard's share of its stream's busy time).
    pub stages: StageTimes,
    /// The shard's standalone pipeline report (uncontended times, ratio,
    /// spans relative to the shard's own clock).
    pub report: PipelineReport,
}

/// One device's scheduled timeline.
#[derive(Debug, Clone)]
pub struct DeviceTimeline {
    /// Index into [`BatchOptions::devices`].
    pub device: usize,
    /// Device marketing name.
    pub name: &'static str,
    /// The contended multi-stream timeline.
    pub timeline: Timeline,
}

/// Everything observable about one batched run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardRun>,
    /// Per-device scheduled timelines.
    pub devices: Vec<DeviceTimeline>,
    /// Input size in bytes (native symbol width).
    pub input_bytes: u64,
    /// Modeled end-to-end time: the slowest device's makespan.
    pub makespan: f64,
    /// What the same kernels would take back-to-back on one stream of one
    /// device (sum of uncontended costs) — the serial-pipeline baseline.
    pub serial_seconds: f64,
}

impl BatchReport {
    /// Overlap + multi-device speedup vs. the serial baseline.
    pub fn speedup(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.serial_seconds / self.makespan
    }

    /// End-to-end modeled throughput in bytes/second.
    pub fn throughput(&self) -> f64 {
        gpu_sim::throughput(self.input_bytes, self.makespan)
    }
}

/// Compress `symbols` as a multi-shard frame, overlapping shard pipelines
/// across streams and devices. Returns the frame bytes plus the batch
/// report. The frame decodes with [`crate::archive::decompress`] (and
/// degrades per shard under best-effort recovery, see [`crate::frame`]).
pub fn compress_batched(symbols: &[u16], opts: &BatchOptions) -> Result<(Vec<u8>, BatchReport)> {
    let (frame, report, _) = run_batch(symbols, opts, &[])?;
    Ok((frame, report))
}

/// [`compress_batched`] with injected device failures: shards in flight
/// on a failed device are quarantined and rescheduled onto the surviving
/// devices ([`QuarantineReport`]). Errors when the faults leave no
/// surviving device to reschedule onto. The frame bytes are bit-identical
/// to the healthy run; only the modeled timelines change.
pub fn compress_batched_with_faults(
    symbols: &[u16],
    opts: &BatchOptions,
    faults: &[DeviceFault],
) -> Result<(Vec<u8>, BatchReport, QuarantineReport)> {
    run_batch(symbols, opts, faults)
}

/// Modeled timing of one batched range decode ([`decompress_range_batched`]).
#[derive(Debug, Clone)]
pub struct RangeBatchReport {
    /// Shards whose chunks overlapped the byte range (untouched shards
    /// cost a header peek, never a decode or a kernel launch).
    pub shards_touched: usize,
    /// Per-device scheduled timelines of the touched shards' range-decode
    /// kernels (seek probe + window decode per shard).
    pub devices: Vec<DeviceTimeline>,
    /// Modeled end-to-end time: the slowest device's makespan.
    pub makespan: f64,
    /// The same kernels back-to-back on one stream — the no-overlap
    /// baseline.
    pub serial_seconds: f64,
}

/// Decode only the bytes of `range` from a frame (or bare archive) with
/// the simulated-GPU range decoder, fanning touched shards out across the
/// batch's devices and streams exactly as [`compress_batched`] fans out
/// shard pipelines.
///
/// Only the shards overlapping the byte range launch kernels; within each
/// shard only the chunks covering its slice of the range are decoded (the
/// seek-index window, see [`crate::seek`]). The byte output and recovery
/// report are identical to the host path [`archive::decode_range`] —
/// devices and streams change modeled time, never bytes.
///
/// Of `batch`, only `devices`, `streams` and `symbol_bytes` matter here;
/// the compression-side fields (shard size, pipeline kind, plan) are
/// ignored because the frame header already fixes the geometry.
pub fn decompress_range_batched(
    bytes: &[u8],
    range: std::ops::Range<u64>,
    opts: &DecompressOptions,
    kind: DecoderKind,
    batch: &BatchOptions,
) -> Result<(RangeDecode, RangeBatchReport)> {
    if batch.streams == 0 || batch.devices.is_empty() {
        return Err(HuffError::BadArchive("batch needs streams and a device".into()));
    }
    let n_devices = batch.devices.len();

    // Decode each touched shard on its round-robin device, capturing the
    // kernel records for deterministic stream replay afterwards. The
    // frame layer supplies the shard-window arithmetic and report merge;
    // a bare archive is one implicit shard on device 0.
    let mut shard_records: Vec<(usize, Vec<KernelRecord>)> = Vec::new();
    let mut next_slot = 0usize;
    let decoded = if frame::is_frame(bytes) {
        frame::decode_range_with(bytes, range, opts, &mut |_, body, local| {
            let device = next_slot % n_devices;
            let gpu = Gpu::new(batch.devices[device].clone());
            gpu.set_trace(&batch.trace);
            let out = crate::decode::gpu::decode_range_on_gpu(&gpu, body, local, opts, kind);
            let records = gpu.clock().drain();
            if out.is_ok() {
                next_slot += 1;
                shard_records.push((device, records));
            }
            out.map(|(r, _)| r)
        })?
    } else {
        let gpu = Gpu::new(batch.devices[0].clone());
        gpu.set_trace(&batch.trace);
        let (r, _) = crate::decode::gpu::decode_range_on_gpu(&gpu, bytes, range, opts, kind)?;
        shard_records.push((0, gpu.clock().drain()));
        r
    };

    // Replay each device's shards onto its streams round-robin, same
    // discipline as run_batch's wave 1 (no buffer cap: a range decode
    // reads the archive in place, there is no staging buffer to recycle).
    let mut schedules: Vec<StreamSchedule> =
        batch.devices.iter().map(|d| StreamSchedule::new(d.clone(), batch.streams)).collect();
    let mut local_index = vec![0usize; n_devices];
    for (d, records) in &shard_records {
        let s = local_index[*d] % batch.streams;
        local_index[*d] += 1;
        schedules[*d].enqueue_all(s, records.iter().cloned());
    }
    let timelines: Vec<Timeline> = schedules.into_iter().map(StreamSchedule::run).collect();
    let serial_seconds: f64 =
        shard_records.iter().flat_map(|(_, r)| r.iter()).map(|r| r.cost.total).sum();
    let makespan = timelines.iter().map(|t| t.makespan).fold(0.0, f64::max);
    let devices = timelines
        .into_iter()
        .enumerate()
        .map(|(d, timeline)| DeviceTimeline { device: d, name: batch.devices[d].name, timeline })
        .collect();
    let report =
        RangeBatchReport { shards_touched: shard_records.len(), devices, makespan, serial_seconds };
    Ok((decoded, report))
}

fn run_batch(
    symbols: &[u16],
    opts: &BatchOptions,
    faults: &[DeviceFault],
) -> Result<(Vec<u8>, BatchReport, QuarantineReport)> {
    if symbols.is_empty() {
        return Err(HuffError::EmptyHistogram);
    }
    if opts.shard_symbols == 0 || opts.streams == 0 || opts.devices.is_empty() {
        return Err(HuffError::BadArchive("batch needs shards, streams and a device".into()));
    }
    if opts.kind == PipelineKind::PrefixSum {
        return Err(HuffError::BadArchive(
            "prefix-sum streams are not chunk-addressable; no archive form".into(),
        ));
    }

    let n_devices = opts.devices.len();
    let mut fail_time: Vec<Option<f64>> = vec![None; n_devices];
    for f in faults {
        if f.device >= n_devices {
            return Err(HuffError::BadArchive(format!(
                "device fault names device {} but the batch has {n_devices} device(s)",
                f.device
            )));
        }
        if !f.at.is_finite() || f.at < 0.0 {
            return Err(HuffError::BadArchive("device fault time must be finite and >= 0".into()));
        }
        let t = fail_time[f.device].get_or_insert(f.at);
        *t = t.min(f.at);
    }
    let shard_inputs: Vec<&[u16]> = symbols.chunks(opts.shard_symbols).collect();

    // Run every shard's pipeline with real host parallelism, each on a
    // fresh clock of its assigned device so records start at t=0.
    struct ShardOut {
        bytes: Vec<u8>,
        records: Vec<KernelRecord>,
        report: PipelineReport,
    }
    let outs: Vec<Result<ShardOut>> = shard_inputs
        .par_iter()
        .enumerate()
        .map(|(j, shard)| {
            let device = j % n_devices;
            let gpu = Gpu::new(opts.devices[device].clone());
            gpu.set_trace(&opts.trace);
            let (stream, book, report) = pipeline::run_with_plan(
                &gpu,
                shard,
                u64::from(opts.symbol_bytes),
                opts.num_symbols,
                opts.magnitude,
                opts.reduction,
                opts.kind,
                opts.plan,
            )?;
            let bytes = archive::serialize(&stream, &book, opts.symbol_bytes)?;
            Ok(ShardOut { bytes, records: gpu.clock().drain(), report })
        })
        .collect();
    let outs: Vec<ShardOut> = outs.into_iter().collect::<Result<Vec<_>>>()?;

    // Replay each device's shards onto its streams, deterministically.
    // Device-local shard k runs on stream k % streams; with a buffer cap,
    // shard k additionally waits for shard k - buffers to complete.
    // Injected faults kill a device's schedule mid-replay (wave 1).
    let mut schedules: Vec<StreamSchedule> = opts
        .devices
        .iter()
        .map(|d| {
            let mut s = StreamSchedule::new(d.clone(), opts.streams);
            s.set_trace(&opts.trace);
            s
        })
        .collect();
    for (d, t) in fail_time.iter().enumerate() {
        if let Some(t) = t {
            schedules[d].fail_at(*t);
        }
    }
    let mut done_events: Vec<Vec<gpu_sim::EventId>> = vec![Vec::new(); n_devices];
    let mut local_index = vec![0usize; n_devices];
    let mut placed = Vec::with_capacity(outs.len()); // final (device, stream) per shard
                                                     // Per (device, stream): shards in enqueue order with launch counts.
    let mut stream_order: Vec<Vec<Vec<(usize, usize)>>> =
        vec![vec![Vec::new(); opts.streams]; n_devices];
    for (j, out) in outs.iter().enumerate() {
        let d = j % n_devices;
        let k = local_index[d];
        local_index[d] += 1;
        let s = k % opts.streams;
        placed.push((d, s as u32));
        if opts.buffers > 0 && k >= opts.buffers {
            let ev = done_events[d][k - opts.buffers];
            schedules[d].wait_event(s, ev);
        }
        schedules[d].enqueue_all(s, out.records.iter().cloned());
        let ev = schedules[d].record_event(s);
        done_events[d].push(ev);
        stream_order[d][s].push((j, out.records.len()));
    }
    let wave1: Vec<Timeline> = schedules.into_iter().map(StreamSchedule::run).collect();

    // Quarantine: on a failed device, the completed records of each stream
    // are a prefix of its enqueue order, so a shard survived iff its whole
    // launch range fits inside that prefix.
    let failed_devices: Vec<usize> =
        (0..n_devices).filter(|&d| wave1[d].failed_at.is_some()).collect();
    let mut is_quarantined = vec![false; outs.len()];
    for &d in &failed_devices {
        for (s, order) in stream_order[d].iter().enumerate().take(opts.streams) {
            let completed = wave1[d].stream_records(s as u32).count();
            let mut cum = 0usize;
            for &(j, n) in order {
                cum += n;
                if cum > completed {
                    is_quarantined[j] = true;
                }
            }
        }
    }
    let quarantined: Vec<usize> = (0..outs.len()).filter(|&j| is_quarantined[j]).collect();

    // Recovery wave: replay quarantined shards round-robin across the
    // surviving devices, starting once the failure is detected (the
    // latest failure instant) and each survivor has drained its own
    // first-wave queue.
    let survivors: Vec<usize> = (0..n_devices).filter(|&d| wave1[d].failed_at.is_none()).collect();
    let mut rescheduled: Vec<(usize, usize)> = Vec::new();
    let mut wave2: Vec<Option<Timeline>> = vec![None; n_devices];
    let mut wave2_order: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); opts.streams]; n_devices];
    if !quarantined.is_empty() {
        if survivors.is_empty() {
            return Err(HuffError::BadArchive(
                "device failure left no surviving device to reschedule quarantined shards onto"
                    .into(),
            ));
        }
        let mut scheds: Vec<StreamSchedule> = survivors
            .iter()
            .map(|&d| {
                let mut s = StreamSchedule::new(opts.devices[d].clone(), opts.streams);
                s.set_trace(&opts.trace);
                s
            })
            .collect();
        let mut local = vec![0usize; survivors.len()];
        for (i, &j) in quarantined.iter().enumerate() {
            let si = i % survivors.len();
            let d = survivors[si];
            let k = local[si];
            local[si] += 1;
            let s = k % opts.streams;
            scheds[si].enqueue_all(s, outs[j].records.iter().cloned());
            rescheduled.push((j, d));
            wave2_order[d][s].push(j);
            placed[j] = (d, s as u32);
        }
        for (si, sched) in scheds.into_iter().enumerate() {
            wave2[survivors[si]] = Some(sched.run());
        }
    }
    let detect = wave1.iter().filter_map(|t| t.failed_at).fold(0.0, f64::max);
    let recovery_seconds = wave2.iter().flatten().map(|t| t.makespan).fold(0.0, f64::max);

    // Merge each survivor's recovery records onto its first-wave timeline,
    // shifted to the wave-2 start; the serial baseline is computed from
    // the shard records directly (a baseline machine never fails, so
    // quarantined shards must not count twice).
    let serial_seconds: f64 =
        outs.iter().flat_map(|o| o.records.iter()).map(|r| r.cost.total).sum();
    let mut timelines: Vec<Timeline> = Vec::with_capacity(n_devices);
    for (d, tl1) in wave1.into_iter().enumerate() {
        match wave2[d].take() {
            None => timelines.push(tl1),
            Some(tl2) => {
                let offset = tl1.makespan.max(detect);
                let mut records = tl1.records;
                for mut r in tl2.records {
                    r.start += offset;
                    r.end += offset;
                    records.push(r);
                }
                for (i, r) in records.iter_mut().enumerate() {
                    r.seq = i;
                }
                timelines.push(Timeline {
                    records,
                    makespan: offset + tl2.makespan,
                    serial_seconds: tl1.serial_seconds + tl2.serial_seconds,
                    dropped: tl1.dropped,
                    failed_at: tl1.failed_at,
                });
            }
        }
    }

    // Attribute each stream's scheduled records back to shard stages:
    // per stream, records appear in enqueue order (wave 1's surviving
    // shards, then wave 2's rescheduled ones), so walking shards in that
    // order and consuming each shard's launch count recovers the
    // per-shard contended stage times. Partial records of a quarantined
    // shard stay on the failed device's timeline, attributed to no shard
    // — wasted device time, which is what a failure costs.
    let take_sum = |cursor: &mut std::vec::IntoIter<KernelRecord>, n: usize| -> f64 {
        cursor.take(n).map(|r| r.cost.total).sum()
    };
    let mut stages_of: Vec<StageTimes> = vec![StageTimes::default(); outs.len()];
    for (d, tl) in timelines.iter().enumerate() {
        for s in 0..opts.streams {
            let mut cursor = tl.stream_records(s as u32).cloned().collect::<Vec<_>>().into_iter();
            let order: Vec<usize> = stream_order[d][s]
                .iter()
                .map(|&(j, _)| j)
                .filter(|&j| !is_quarantined[j] && placed[j] == (d, s as u32))
                .chain(wave2_order[d][s].iter().copied())
                .collect();
            for j in order {
                let spans = outs[j].report.spans;
                stages_of[j] = StageTimes {
                    histogram: take_sum(&mut cursor, spans.after_histogram - spans.base),
                    codebook: take_sum(&mut cursor, spans.after_codebook - spans.after_histogram),
                    encode: take_sum(&mut cursor, spans.after_encode - spans.after_codebook),
                };
            }
        }
    }
    let shards: Vec<ShardRun> = outs
        .iter()
        .enumerate()
        .map(|(j, out)| ShardRun {
            index: j,
            device: placed[j].0,
            stream: placed[j].1,
            symbols: shard_inputs[j].len(),
            stages: stages_of[j],
            report: out.report.clone(),
        })
        .collect();

    let makespan = timelines.iter().map(|t| t.makespan).fold(0.0, f64::max);
    let devices = timelines
        .into_iter()
        .enumerate()
        .map(|(d, timeline)| DeviceTimeline { device: d, name: opts.devices[d].name, timeline })
        .collect();

    let shard_bytes: Vec<Vec<u8>> = outs.into_iter().map(|o| o.bytes).collect();
    let frame = frame::assemble(
        &shard_bytes,
        symbols.len() as u64,
        opts.shard_symbols as u64,
        opts.symbol_bytes,
    )?;
    let report = BatchReport {
        shards,
        devices,
        input_bytes: symbols.len() as u64 * u64::from(opts.symbol_bytes),
        makespan,
        serial_seconds,
    };
    let quarantine =
        QuarantineReport { failed_devices, quarantined, rescheduled, recovery_seconds };
    {
        let mut reg = crate::metrics::registry::global();
        let ratio =
            if frame.is_empty() { 1.0 } else { report.input_bytes as f64 / frame.len() as f64 };
        reg.record_compress(report.input_bytes, frame.len() as u64, ratio, 0);
        reg.record_shards_built(report.shards.len());
        if !quarantine.is_clean() {
            reg.record_shards_quarantined(quarantine.quarantined.len());
        }
    }
    Ok((frame, report, quarantine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity::DecompressOptions;

    fn data(n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 38;
                (x % 512) as u16
            })
            .collect()
    }

    fn small_opts() -> BatchOptions {
        let mut o = BatchOptions::new(512);
        o.shard_symbols = 20_000;
        o.devices = vec![DeviceSpec::test_part()];
        o
    }

    #[test]
    fn batched_frame_roundtrips() {
        let syms = data(65_000);
        let (frame, report) = compress_batched(&syms, &small_opts()).unwrap();
        assert_eq!(archive::decompress(&frame).unwrap(), syms);
        assert_eq!(report.shards.len(), 4);
        let rec = archive::decompress_with(&frame, &DecompressOptions::best_effort()).unwrap();
        assert_eq!(rec.symbols, syms);
        assert!(rec.report.is_clean());
    }

    #[test]
    fn batched_frame_roundtrips_under_every_decoder() {
        let syms = data(65_000);
        let (frame, _) = compress_batched(&syms, &small_opts()).unwrap();
        for decoder in [
            crate::decode::DecoderKind::Serial,
            crate::decode::DecoderKind::Chunked,
            crate::decode::DecoderKind::Lut,
        ] {
            let opts = DecompressOptions::default().with_decoder(decoder);
            let rec = archive::decompress_with(&frame, &opts).unwrap();
            assert_eq!(rec.symbols, syms, "{}", decoder.name());
            assert!(rec.report.is_clean());
        }
    }

    #[test]
    fn shards_interleave_across_streams() {
        let syms = data(80_000);
        let (_, report) = compress_batched(&syms, &small_opts()).unwrap();
        let streams: Vec<u32> = report.shards.iter().map(|s| s.stream).collect();
        assert_eq!(streams, vec![0, 1, 0, 1]);
        // Shard 1 starts before shard 0 ends: overlapped execution.
        let tl = &report.devices[0].timeline;
        let s0_end = tl.stream_records(0).next().map(|r| r.end).unwrap();
        let s1_start = tl.stream_records(1).next().map(|r| r.start).unwrap();
        assert!(s1_start < s0_end, "no overlap: {s1_start} >= {s0_end}");
    }

    #[test]
    fn two_streams_beat_serial() {
        let syms = data(100_000);
        let (_, report) = compress_batched(&syms, &small_opts()).unwrap();
        assert!(report.makespan < report.serial_seconds);
        assert!(report.speedup() > 1.0);
    }

    #[test]
    fn stage_attribution_sums_to_stream_busy_time() {
        let syms = data(90_000);
        let (_, report) = compress_batched(&syms, &small_opts()).unwrap();
        let tl = &report.devices[0].timeline;
        for s in 0..2u32 {
            let attributed: f64 =
                report.shards.iter().filter(|sh| sh.stream == s).map(|sh| sh.stages.total()).sum();
            assert!(
                (attributed - tl.stream_busy(s)).abs() < 1e-12,
                "stream {s}: {attributed} vs {}",
                tl.stream_busy(s)
            );
        }
    }

    #[test]
    fn multi_device_splits_work() {
        let syms = data(80_000);
        let mut opts = small_opts();
        opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        let (frame, report) = compress_batched(&syms, &opts).unwrap();
        assert_eq!(archive::decompress(&frame).unwrap(), syms);
        assert_eq!(report.devices.len(), 2);
        let d0: Vec<usize> =
            report.shards.iter().filter(|s| s.device == 0).map(|s| s.index).collect();
        let d1: Vec<usize> =
            report.shards.iter().filter(|s| s.device == 1).map(|s| s.index).collect();
        assert_eq!(d0, vec![0, 2]);
        assert_eq!(d1, vec![1, 3]);
        // Two devices roughly halve the makespan vs one.
        let (_, one) = compress_batched(&syms, &small_opts()).unwrap();
        assert!(report.makespan < one.makespan);
    }

    #[test]
    fn buffer_cap_serializes_when_one() {
        let syms = data(80_000);
        let mut opts = small_opts();
        opts.buffers = 1; // one staging buffer: no two shards in flight
        let (_, capped) = compress_batched(&syms, &opts).unwrap();
        // With a single buffer every shard waits for the previous one, so
        // no kernel overlaps and the makespan equals the serial time.
        assert!((capped.makespan - capped.serial_seconds).abs() < 1e-12);
        let tl = &capped.devices[0].timeline;
        assert!(tl.records.iter().all(|r| (r.contention - 1.0).abs() < 1e-12));
    }

    #[test]
    fn single_shard_input_still_frames() {
        let syms = data(10_000);
        let mut opts = small_opts();
        opts.shard_symbols = 1 << 20;
        let (frame, report) = compress_batched(&syms, &opts).unwrap();
        assert_eq!(report.shards.len(), 1);
        assert!(crate::frame::is_frame(&frame));
        assert_eq!(archive::decompress(&frame).unwrap(), syms);
    }

    #[test]
    fn trace_id_reaches_every_timeline_record() {
        let syms = data(65_000);
        let mut opts = small_opts();
        opts.trace = "req-batch".into();
        let (_, report) = compress_batched(&syms, &opts).unwrap();
        for d in &report.devices {
            for r in d.timeline.records.iter().chain(&d.timeline.dropped) {
                assert_eq!(r.trace, "req-batch", "kernel {} lost its trace id", r.name);
            }
        }
    }

    #[test]
    fn deterministic_output_bytes() {
        let syms = data(70_000);
        let (a, _) = compress_batched(&syms, &small_opts()).unwrap();
        let (b, _) = compress_batched(&syms, &small_opts()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn device_failure_quarantines_and_reschedules_bit_exactly() {
        let syms = data(80_000);
        let mut opts = small_opts();
        opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        let (healthy_frame, healthy) = compress_batched(&syms, &opts).unwrap();

        // Kill device 1 immediately: its shards (1 and 3) must move to
        // device 0 and the frame must not change by a single byte.
        let faults = [DeviceFault { device: 1, at: 0.0 }];
        let (frame, report, q) = compress_batched_with_faults(&syms, &opts, &faults).unwrap();
        assert_eq!(frame, healthy_frame);
        assert_eq!(archive::decompress(&frame).unwrap(), syms);
        assert_eq!(q.failed_devices, vec![1]);
        assert_eq!(q.quarantined, vec![1, 3]);
        assert!(q.rescheduled.iter().all(|&(_, d)| d == 0));
        assert!(q.recovery_seconds > 0.0);
        // Every shard now reports a surviving device.
        assert!(report.shards.iter().all(|s| s.device == 0));
        // Failure costs modeled time, never correctness.
        assert!(report.makespan > healthy.makespan);
        assert!((report.serial_seconds - healthy.serial_seconds).abs() < 1e-12);
        // The failed device's timeline records the abandoned kernels.
        let tl1 = &report.devices[1].timeline;
        assert_eq!(tl1.failed_at, Some(0.0));
        assert!(!tl1.dropped.is_empty());
    }

    #[test]
    fn mid_run_failure_keeps_completed_shards_in_place() {
        let syms = data(80_000);
        let mut opts = small_opts();
        opts.streams = 1; // device 1 runs shards 1 then 3 back-to-back
        opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        let (_, healthy) = compress_batched(&syms, &opts).unwrap();
        // Fail device 1 just after its first shard's pipeline completes:
        // shard 1 survives in place, shard 3 is quarantined.
        let spans = healthy.shards[1].report.spans;
        let launches = spans.after_encode - spans.base;
        let d1 = &healthy.devices[1].timeline;
        let first_shard_end = d1.stream_records(0).nth(launches - 1).unwrap().end;
        let faults = [DeviceFault { device: 1, at: first_shard_end + 1e-9 }];
        let (frame, report, q) = compress_batched_with_faults(&syms, &opts, &faults).unwrap();
        assert_eq!(archive::decompress(&frame).unwrap(), syms);
        assert_eq!(q.quarantined, vec![3]);
        assert_eq!(report.shards[1].device, 1, "completed shard stays put");
        assert_eq!(report.shards[3].device, 0, "lost shard moves to the survivor");
    }

    #[test]
    fn rescheduled_stage_attribution_stays_consistent() {
        let syms = data(80_000);
        let mut opts = small_opts();
        opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        let faults = [DeviceFault { device: 1, at: 0.0 }];
        let (_, report, _) = compress_batched_with_faults(&syms, &opts, &faults).unwrap();
        // Every shard's attributed stage time is positive and finite.
        for s in &report.shards {
            assert!(s.stages.total() > 0.0, "shard {} has no attributed time", s.index);
            assert!(s.stages.total().is_finite());
        }
        // Attribution on the surviving device covers its whole busy time
        // (wave 1 + recovery wave).
        let tl0 = &report.devices[0].timeline;
        let busy: f64 = (0..opts.streams as u32).map(|s| tl0.stream_busy(s)).sum();
        let attributed: f64 =
            report.shards.iter().filter(|s| s.device == 0).map(|s| s.stages.total()).sum();
        assert!((attributed - busy).abs() < 1e-12, "{attributed} vs {busy}");
    }

    #[test]
    fn faults_are_deterministic() {
        let syms = data(70_000);
        let mut opts = small_opts();
        opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        let faults = [DeviceFault { device: 0, at: 0.001 }];
        let (fa, ra, qa) = compress_batched_with_faults(&syms, &opts, &faults).unwrap();
        let (fb, rb, qb) = compress_batched_with_faults(&syms, &opts, &faults).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(qa.quarantined, qb.quarantined);
        assert_eq!(ra.makespan, rb.makespan);
    }

    #[test]
    fn all_devices_failing_is_an_error() {
        let syms = data(50_000);
        let faults = [DeviceFault { device: 0, at: 0.0 }];
        let r = compress_batched_with_faults(&syms, &small_opts(), &faults);
        assert!(matches!(r, Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn fault_on_unknown_device_is_an_error() {
        let syms = data(50_000);
        let faults = [DeviceFault { device: 7, at: 0.0 }];
        let r = compress_batched_with_faults(&syms, &small_opts(), &faults);
        assert!(matches!(r, Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn empty_fault_list_matches_healthy_run() {
        let syms = data(65_000);
        let (frame, report) = compress_batched(&syms, &small_opts()).unwrap();
        let (f2, r2, q) = compress_batched_with_faults(&syms, &small_opts(), &[]).unwrap();
        assert_eq!(frame, f2);
        assert!(q.is_clean());
        assert_eq!(report.makespan, r2.makespan);
    }

    fn bytes_of(symbols: &[u16]) -> Vec<u8> {
        symbols.iter().flat_map(|s| s.to_le_bytes()).collect()
    }

    #[test]
    fn batched_range_decode_matches_full_slice() {
        let syms = data(80_000);
        let (frame, _) = compress_batched(&syms, &small_opts()).unwrap();
        let full = bytes_of(&syms);
        let (lo, hi) = (70_123, 90_456); // spans the shard-1/shard-2 seam
        let (r, report) = decompress_range_batched(
            &frame,
            lo..hi,
            &DecompressOptions::default(),
            DecoderKind::Chunked,
            &small_opts(),
        )
        .unwrap();
        assert_eq!(r.bytes, full[lo as usize..hi as usize]);
        assert!(r.index_used, "fresh frames carry a seek index in every shard");
        assert!(r.index_probes > 0);
        assert!(
            r.chunks_touched < r.total_chunks / 2,
            "{} of {} chunks for a quarter-frame slice",
            r.chunks_touched,
            r.total_chunks
        );
        assert_eq!(report.shards_touched, 2);
        assert!(report.makespan > 0.0 && report.makespan <= report.serial_seconds + 1e-15);
    }

    #[test]
    fn batched_range_decode_spreads_touched_shards_across_devices() {
        let syms = data(80_000);
        let mut opts = small_opts();
        opts.devices = vec![DeviceSpec::test_part(), DeviceSpec::test_part()];
        let (frame, _) = compress_batched(&syms, &opts).unwrap();
        // A range covering three shards round-robins them over two devices.
        let (r, report) = decompress_range_batched(
            &frame,
            41_000..150_000,
            &DecompressOptions::default(),
            DecoderKind::Lut,
            &opts,
        )
        .unwrap();
        assert_eq!(r.bytes, bytes_of(&syms)[41_000..150_000]);
        assert_eq!(report.shards_touched, 3);
        assert!(report.devices.iter().all(|d| !d.timeline.records.is_empty()));
        // Two devices overlap shard decodes: faster than one stream.
        assert!(report.makespan < report.serial_seconds);
    }

    #[test]
    fn batched_range_decode_rejects_degenerate_options() {
        let syms = data(30_000);
        let (frame, _) = compress_batched(&syms, &small_opts()).unwrap();
        let mut o = small_opts();
        o.devices.clear();
        let r = decompress_range_batched(
            &frame,
            0..100,
            &DecompressOptions::default(),
            DecoderKind::Serial,
            &o,
        );
        assert!(matches!(r, Err(HuffError::BadArchive(_))));
    }

    #[test]
    fn batched_range_decode_handles_bare_archives() {
        let syms = data(30_000);
        let packed =
            crate::archive::compress(&syms, &crate::archive::CompressOptions::new(512)).unwrap();
        let (r, report) = decompress_range_batched(
            &packed,
            5_000..6_000,
            &DecompressOptions::default(),
            DecoderKind::Chunked,
            &small_opts(),
        )
        .unwrap();
        assert_eq!(r.bytes, bytes_of(&syms)[5_000..6_000]);
        assert_eq!(report.shards_touched, 1);
        assert!(r.chunks_touched < r.total_chunks);
    }

    #[test]
    fn rejects_degenerate_options() {
        let syms = data(1000);
        assert!(compress_batched(&[], &small_opts()).is_err());
        let mut o = small_opts();
        o.streams = 0;
        assert!(compress_batched(&syms, &o).is_err());
        let mut o = small_opts();
        o.devices.clear();
        assert!(compress_batched(&syms, &o).is_err());
        let mut o = small_opts();
        o.kind = PipelineKind::PrefixSum;
        assert!(compress_batched(&syms, &o).is_err());
    }
}
